//! The write path end-to-end: open a vertically-partitioned column
//! store, mutate it through the [`Database`] front door, watch EXPLAIN
//! report the write-store union and the downgraded physical properties,
//! then merge and watch sorted-path dispatch come back — with the
//! storage layer accounting every written byte along the way.
//!
//! ```sh
//! cargo run --release --example updates
//! ```

use swans_core::{Database, Layout, StoreConfig};
use swans_datagen::{generate, BartonConfig};

fn main() -> Result<(), swans_core::Error> {
    let dataset = generate(&BartonConfig::with_triples(50_000));
    let db = Database::open(dataset, StoreConfig::column(Layout::VerticallyPartitioned))?;
    let q = "SELECT ?s WHERE { ?s <type> <Text> . ?s <origin> <info:marcorg/DLC> }";
    let baseline = db.query(q)?.len();
    println!(
        "opened {}; q-join baseline: {baseline} rows",
        db.config().label()
    );

    // Mutate: new subjects (new terms intern incrementally), one delete.
    let victims: Vec<Vec<String>> = db.query(q)?.decoded().into_iter().take(1).collect();
    db.insert([
        ("<example:swan-1>", "<type>", "<Text>"),
        ("<example:swan-1>", "<origin>", "<info:marcorg/DLC>"),
        ("<example:swan-2>", "<type>", "<Text>"),
    ])?;
    if let Some(row) = victims.first() {
        db.delete([
            (row[0].as_str(), "<type>", "<Text>"),
            (row[0].as_str(), "<origin>", "<info:marcorg/DLC>"),
        ])?;
    }
    println!(
        "applied delta: {} operations pending in the write store",
        db.pending_delta()
    );

    // Queries see the delta immediately; EXPLAIN shows why the plan is
    // temporarily hash-only.
    println!("q-join with pending delta: {} rows", db.query(q)?.len());
    println!(
        "\nEXPLAIN while the delta is pending:\n{}",
        db.explain_text(q)?
    );

    // Merge: affected sorted tables are rebuilt, write bytes accounted.
    let before = db.storage().stats();
    db.merge()?;
    let merged = db.storage().stats().since(&before);
    println!(
        "merged: {:.2} MB written rebuilding sorted tables, {} ops pending\n",
        merged.bytes_written as f64 / 1e6,
        db.pending_delta()
    );
    println!(
        "EXPLAIN after the merge (sorted dispatch is back):\n{}",
        db.explain_text(q)?
    );
    println!("q-join after merge: {} rows", db.query(q)?.len());
    Ok(())
}
