//! Quickstart: generate a Barton-like data set, load it into a
//! vertically-partitioned column store, and run benchmark query q1
//! ("how many resources of each type?") cold and hot.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use swans_core::{Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::{QueryContext, QueryId};

fn main() {
    // ~100k triples, 222 properties, calibrated to the paper's Table 1.
    let dataset = generate(&BartonConfig::with_triples(100_000));
    println!(
        "generated {} triples, {} distinct properties, {} dictionary strings",
        dataset.len(),
        dataset.distinct_properties().len(),
        dataset.dict.len()
    );

    // The query context resolves the benchmark constants (<type>, <Text>,
    // ...) and selects the 28 "interesting" properties.
    let ctx = QueryContext::from_dataset(&dataset, 28);
    let machine = swans_core::profile_for(&dataset, swans_storage::MachineProfile::B);

    // Load the vertically-partitioned layout on the column engine — the
    // configuration Abadi et al. advocated and the paper re-examines.
    let store = RdfStore::load(&dataset, StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine));
    println!(
        "loaded {} ({} bytes on simulated disk)",
        store.config().label(),
        store.disk_bytes()
    );

    // Cold run: nothing cached, every touched column is read from "disk".
    store.make_cold();
    let cold = store.run_query(QueryId::Q1, &ctx);
    // Hot run: the buffer pool is warm, no I/O at all.
    let hot = store.run_query(QueryId::Q1, &ctx);

    println!(
        "q1 cold: {:>8.3} ms real ({:>7.3} ms user, {:.2} MB read)",
        cold.real_seconds * 1e3,
        cold.user_seconds * 1e3,
        cold.io.megabytes_read()
    );
    println!(
        "q1 hot:  {:>8.3} ms real ({:>7.3} ms user, {:.2} MB read)",
        hot.real_seconds * 1e3,
        hot.user_seconds * 1e3,
        hot.io.megabytes_read()
    );

    // Decode the top classes through the dictionary.
    let mut rows = hot.rows;
    rows.sort_unstable_by_key(|r| std::cmp::Reverse(r[1]));
    println!("\ntop classes by instance count:");
    for row in rows.iter().take(5) {
        println!("  {:>8}  {}", row[1], dataset.dict.term(row[0]));
    }
}
