//! Quickstart: generate a Barton-like data set, open it as a [`Database`]
//! on a vertically-partitioned column store, and query it — first with an
//! ad-hoc SPARQL aggregation ("how many resources of each type?"), then
//! through the paper's benchmark path, cold and hot.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use swans_core::{Database, Layout, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::QueryId;

fn main() -> Result<(), swans_core::Error> {
    // ~100k triples, 222 properties, calibrated to the paper's Table 1.
    let dataset = generate(&BartonConfig::with_triples(100_000));
    println!(
        "generated {} triples, {} distinct properties, {} dictionary strings",
        dataset.len(),
        dataset.distinct_properties().len(),
        dataset.dict.len()
    );
    let machine = swans_core::profile_for(&dataset, swans_storage::MachineProfile::B);

    // Open the vertically-partitioned layout on the column engine — the
    // configuration Abadi et al. advocated and the paper re-examines.
    let db = Database::open(
        dataset,
        StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine),
    )?;
    println!(
        "opened {} ({} bytes on simulated disk)",
        db.config().label(),
        db.disk_bytes()
    );

    // One SPARQL string runs the whole pipeline: parse → plan → optimize →
    // lower to property tables → execute → decode through the dictionary.
    let results =
        db.query("SELECT ?class (COUNT(*) AS ?n) WHERE { ?s <type> ?class } GROUP BY ?class")?;
    let mut rows = results.decoded();
    rows.sort_by_key(|r| std::cmp::Reverse(r[1].parse::<u64>().unwrap_or(0)));
    println!("\ntop classes by instance count ({:?}):", results.columns());
    for row in rows.iter().take(5) {
        println!("  {:>8}  {}", row[1], row[0]);
    }

    // The same question through the benchmark path (q1), measured under
    // the paper's cold/hot protocol.
    let ctx = db.benchmark_context(28);
    db.make_cold();
    let cold = db.run_benchmark(QueryId::Q1, &ctx);
    let hot = db.run_benchmark(QueryId::Q1, &ctx);
    println!(
        "\nq1 cold: {:>8.3} ms real ({:>7.3} ms user, {:.2} MB read)",
        cold.real_seconds * 1e3,
        cold.user_seconds * 1e3,
        cold.io.megabytes_read()
    );
    println!(
        "q1 hot:  {:>8.3} ms real ({:>7.3} ms user, {:.2} MB read)",
        hot.real_seconds * 1e3,
        hot.user_seconds * 1e3,
        hot.io.megabytes_read()
    );
    Ok(())
}
