//! Crash-safe durability end to end: give a database a directory, watch
//! every commit land in the checksummed write-ahead log, kill the process
//! (here: drop without a checkpoint), and reopen — the acknowledged
//! batches come back, and the directory is engine-agnostic, so the same
//! data reopens under a different engine × layout.
//!
//! ```sh
//! cargo run --release --example durability
//! ```

use swans_core::{Database, Layout, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_rdf::SortOrder;

fn main() -> Result<(), swans_core::Error> {
    let dir = std::env::temp_dir().join(format!("swans-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let q = "SELECT ?s WHERE { ?s <type> <Text> . ?s <origin> <info:marcorg/DLC> }";
    let baseline;

    // Import a data set into a durable directory: the initial snapshot is
    // published atomically (temp file + rename, CRC-sealed).
    {
        let dataset = generate(&BartonConfig::with_triples(50_000));
        let db = Database::import_at(
            &dir,
            dataset,
            StoreConfig::column(Layout::VerticallyPartitioned),
            swans_core::DurabilityOptions::default(),
        )?;
        baseline = db.query(q)?.len();
        println!(
            "imported into {}: snapshot {:.2} MB, q-join baseline {baseline} rows",
            dir.display(),
            db.snapshot_bytes().unwrap_or(0) as f64 / 1e6,
        );

        // Two commits. Each is one WAL record: length-prefixed, CRC32-
        // checksummed, fsynced before the call returns.
        db.insert([
            ("<example:swan-1>", "<type>", "<Text>"),
            ("<example:swan-1>", "<origin>", "<info:marcorg/DLC>"),
        ])?;
        db.insert([("<example:swan-2>", "<type>", "<Text>")])?;
        println!(
            "2 batches committed: WAL holds {} bytes",
            db.wal_bytes().unwrap_or(0)
        );
        // No checkpoint, no merge — the process "crashes" here.
    }

    // Recovery: last valid snapshot + WAL replay. A torn tail (a record
    // cut short by the crash) would be truncated silently — acknowledged
    // batches always survive, a half-written one never half-applies.
    let db = Database::open_at(&dir, StoreConfig::column(Layout::VerticallyPartitioned))?;
    let report = db.recovery_report().expect("durable databases report");
    println!(
        "\nreopened: {} snapshot triples + {} replayed batches ({} ops), torn tail: {}",
        report.snapshot_triples, report.replayed_batches, report.replayed_ops, report.wal_tail_torn,
    );
    println!("q-join after recovery: {} rows", db.query(q)?.len());

    // Checkpoint: publish a fresh snapshot, truncate the replayed WAL.
    db.checkpoint()?;
    println!(
        "checkpointed: snapshot {:.2} MB, WAL {} bytes",
        db.snapshot_bytes().unwrap_or(0) as f64 / 1e6,
        db.wal_bytes().unwrap_or(0)
    );
    drop(db);

    // The directory stores terms + triples, not engine pages: the same
    // data reopens under any engine × layout configuration.
    let db = Database::open_at(&dir, StoreConfig::row(Layout::TripleStore(SortOrder::Pso)))?;
    println!(
        "\nreopened as {}: q-join still {} rows",
        db.config().label(),
        db.query(q)?.len()
    );

    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
