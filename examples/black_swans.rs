//! The paper's headline finding, in one program: *not all swans are white*.
//!
//! On a column store, the vertically-partitioned layout wins the original
//! benchmark queries (here: q2, restricted to 28 properties) — but the
//! moment a query stops restricting its properties (q2\*) or joins on
//! objects (q8), the plain triple-store clustered on PSO wins. Those
//! queries are the "black swans" that falsify the general claim.
//!
//! ```sh
//! cargo run --release --example black_swans
//! ```

use swans_core::{Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::{QueryContext, QueryId};
use swans_rdf::SortOrder;

fn main() {
    let dataset = generate(&BartonConfig::with_triples(250_000));
    let ctx = QueryContext::from_dataset(&dataset, 28);
    let machine = swans_core::profile_for(&dataset, swans_storage::MachineProfile::B);

    let triple = RdfStore::load(
        &dataset,
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
    );
    let vertical = RdfStore::load(
        &dataset,
        StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine),
    );

    println!("column engine, cold runs (real time = compute + simulated I/O):\n");
    println!(
        "{:<6} {:>14} {:>14}   verdict",
        "query", "triple/PSO", "vert/SO"
    );
    for q in [
        QueryId::Q2,
        QueryId::Q2Star,
        QueryId::Q6,
        QueryId::Q6Star,
        QueryId::Q8,
    ] {
        triple.make_cold();
        let t = triple.run_query(q, &ctx);
        vertical.make_cold();
        let v = vertical.run_query(q, &ctx);
        let verdict = if v.real_seconds < t.real_seconds {
            "white swan: vertical partitioning wins"
        } else {
            "BLACK SWAN: the triple-store wins"
        };
        println!(
            "{:<6} {:>11.3} ms {:>11.3} ms   {}",
            q.name(),
            t.real_seconds * 1e3,
            v.real_seconds * 1e3,
            verdict
        );
    }

    println!(
        "\nThe vertically-partitioned q2* plan has {} operator nodes (the\n\
         triple-store version has {}): the \"proliferation of union clauses\n\
         and joins\" the paper identifies as VP's own weakness.",
        swans_plan::build_plan(
            QueryId::Q2Star,
            swans_plan::Scheme::VerticallyPartitioned,
            &ctx
        )
        .node_count(),
        swans_plan::build_plan(QueryId::Q2Star, swans_plan::Scheme::TripleStore, &ctx).node_count(),
    );
}
