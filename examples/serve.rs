//! The HTTP front door end-to-end: generate a data set, serve it on an
//! ephemeral port, and play both sides — concurrent snapshot-isolated
//! readers and a writer — over plain HTTP. Prints the curl commands for
//! every request it makes, so the output doubles as a usage cheat sheet.
//!
//! ```sh
//! cargo run --release --example serve
//! ```

use std::sync::Arc;

use swans_core::{Database, Layout, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_serve::{http_request, percent_encode, serve};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = generate(&BartonConfig::with_triples(50_000));
    let db = Arc::new(Database::open(
        dataset,
        StoreConfig::column(Layout::VerticallyPartitioned),
    )?);
    let server = serve(db, "127.0.0.1:0")?;
    let addr = server.addr();
    println!("serving on http://{addr}\n");

    // A read: /query with a percent-encoded ?q=.
    let q = "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t";
    let target = format!("/query?q={}", percent_encode(q));
    println!("$ curl 'http://{addr}{target}'");
    let (status, body) = http_request(addr, "GET", &target, "")?;
    println!("{status}: {}…\n", &body[..body.len().min(120)]);

    // A write: /update speaks one mutation per line.
    let update = "+ <example:swan> <type> <Text>\n+ <example:swan> <title> \"a black swan\"\n";
    println!("$ curl -X POST --data-binary '+ <example:swan> <type> <Text>…' http://{addr}/update");
    let (status, body) = http_request(addr, "POST", "/update", update)?;
    println!("{status}: {body}\n");

    // Concurrent readers: every request pins its own snapshot version.
    std::thread::scope(|scope| {
        for i in 0..4 {
            scope.spawn(move || {
                let q = "SELECT ?o WHERE { <example:swan> <title> ?o }";
                let target = format!("/query?q={}", percent_encode(q));
                let (status, body) = http_request(addr, "GET", &target, "").expect("request");
                println!("reader {i}: {status} {body}");
            });
        }
    });
    println!();

    // The plan and the server-side counters.
    let target = format!("/explain?q={}", percent_encode(q));
    println!("$ curl 'http://{addr}{target}'");
    let (_, body) = http_request(addr, "GET", &target, "")?;
    println!("{}…\n", &body[..body.len().min(160)]);
    println!("$ curl http://{addr}/stats");
    let (_, body) = http_request(addr, "GET", "/stats", "")?;
    println!("{body}");

    server.shutdown();
    Ok(())
}
