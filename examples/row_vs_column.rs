//! Row store vs column store on the same RDF workload — the paper's
//! second axis.
//!
//! Loads the triple-store layout into both engines (with the paper's §4.1
//! index configurations) and compares cold-run I/O volume and user time
//! for a selection of benchmark queries, including the effect of the
//! clustering order (SPO vs PSO).
//!
//! ```sh
//! cargo run --release --example row_vs_column
//! ```

use swans_core::{EngineKind, Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::{QueryContext, QueryId};
use swans_rdf::SortOrder;

fn main() {
    let dataset = generate(&BartonConfig::with_triples(250_000));
    let ctx = QueryContext::from_dataset(&dataset, 28);

    let machine = swans_core::profile_for(&dataset, swans_storage::MachineProfile::B);
    let configs = [
        StoreConfig::row(Layout::TripleStore(SortOrder::Spo)).on_machine(machine),
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
        StoreConfig::column(Layout::TripleStore(SortOrder::Spo)).on_machine(machine),
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
    ];
    let stores: Vec<RdfStore> = configs
        .iter()
        .map(|c| RdfStore::load(&dataset, c.clone()))
        .collect();

    for store in &stores {
        println!(
            "{:<36} on-disk footprint {:>7.2} MB",
            store.config().label(),
            store.disk_bytes() as f64 / 1e6
        );
    }

    for q in [QueryId::Q1, QueryId::Q2, QueryId::Q5, QueryId::Q7] {
        println!("\n{} (cold):", q.name());
        println!(
            "  {:<36} {:>10} {:>10} {:>10}",
            "configuration", "real ms", "user ms", "MB read"
        );
        for store in &stores {
            store.make_cold();
            let run = store.run_query(q, &ctx);
            println!(
                "  {:<36} {:>10.3} {:>10.3} {:>10.2}",
                store.config().label(),
                run.real_seconds * 1e3,
                run.user_seconds * 1e3,
                run.io.megabytes_read()
            );
        }
    }

    // The paper's two engine-level observations, verified live:
    let row_pso = &stores[1];
    let col_pso = &stores[3];
    row_pso.make_cold();
    col_pso.make_cold();
    let r = row_pso.run_query(QueryId::Q2, &ctx);
    let c = col_pso.run_query(QueryId::Q2, &ctx);
    assert_eq!(row_pso.config().engine, EngineKind::Row);
    println!(
        "\nq2: the column engine used {:.1}x less CPU than the row engine\n\
         (vectorized column-at-a-time vs tuple-at-a-time Volcano iteration).",
        r.user_seconds / c.user_seconds.max(1e-9)
    );
}
