//! Ad-hoc querying through the [`Database`] front door.
//!
//! The paper could not add a single query to C-Store ("the query plans in
//! C-Store are hard-wired in C++ code"). Here a new query is one string:
//! `Database::query` parses it, plans it, optimizes it, lowers it to the
//! opened layout, executes it on the opened engine, and decodes the
//! answers back to term strings — identically on every engine/layout.
//!
//! ```sh
//! cargo run --release --example sparql
//! ```

use swans_core::{Database, Layout, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_rdf::SortOrder;

fn main() -> Result<(), swans_core::Error> {
    // One Arc shares the data set (and its dictionary) across all three
    // databases — cloning the Arc is a refcount bump, not a data copy.
    let dataset = std::sync::Arc::new(generate(&BartonConfig::with_triples(100_000)));
    let machine = swans_core::profile_for(&dataset, swans_storage::MachineProfile::B);

    // French-language Text resources and their origin — a three-pattern
    // basic graph pattern that is NOT part of the benchmark.
    let query = r#"
        SELECT DISTINCT ?s ?org WHERE {
            ?s <type> <Text> .
            ?s <language> <language/iso639-2b/fre> .
            ?s <origin> ?org
        }
    "#;
    println!("SPARQL:\n{query}");

    let databases = [
        Database::open(
            dataset.clone(),
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
        )?,
        Database::open(
            dataset.clone(),
            StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine),
        )?,
        Database::open(
            dataset,
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
        )?,
    ];

    // The same string compiles to a layout-appropriate plan in each
    // database: watch the triple scans turn into property-table scans.
    println!(
        "plan on {}:\n{}",
        databases[0].config().label(),
        databases[0].explain(query)?.explain()
    );
    println!(
        "plan on {}:\n{}",
        databases[1].config().label(),
        databases[1].explain(query)?.explain()
    );

    let mut reference: Option<Vec<Vec<String>>> = None;
    for db in &databases {
        db.make_cold();
        let (results, run) = db.query_timed(query)?;
        let mut rows = results.decoded();
        rows.sort();
        if let Some(r) = &reference {
            assert_eq!(r, &rows, "engines disagree!");
        } else {
            reference = Some(rows);
        }
        println!(
            "{:<40} {:>4} rows  {:>8.3} ms real  {:>7.2} MB read",
            db.config().label(),
            results.len(),
            run.real_seconds * 1e3,
            run.io.megabytes_read()
        );
    }

    // The answers are already decoded — no dictionary plumbing needed.
    let some = reference.expect("at least one database ran");
    println!("\nsample answers:");
    for row in some.iter().take(5) {
        println!("  {}", row.join("  "));
    }
    Ok(())
}
