//! Ad-hoc querying with the mini SPARQL front-end.
//!
//! The paper could not add a single query to C-Store ("the query plans in
//! C-Store are hard-wired in C++ code"). Here a new query is one string:
//! it parses to a logical plan, passes the rule-based optimizer (watch the
//! selection bound fuse into the scan), and runs on every engine/layout.
//!
//! ```sh
//! cargo run --release --example sparql
//! ```

use swans_core::{Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::sparql;
use swans_rdf::SortOrder;

fn main() {
    let dataset = generate(&BartonConfig::with_triples(100_000));
    let machine = swans_core::profile_for(&dataset, swans_storage::MachineProfile::B);

    // French-language Text resources and their origin — a three-pattern
    // basic graph pattern that is NOT part of the benchmark.
    let query = r#"
        SELECT DISTINCT ?s ?org WHERE {
            ?s <type> <Text> .
            ?s <language> <language/iso639-2b/fre> .
            ?s <origin> ?org
        }
    "#;
    println!("SPARQL:\n{query}");

    let plan = sparql::plan_for(query, &dataset).expect("valid query");
    println!("raw plan:\n{}", plan.explain());

    let optimized = swans_plan::optimize(plan.clone());
    println!("optimized plan:\n{}", optimized.explain());

    // For the vertically-partitioned store, lower the triple-store plan
    // into per-property-table scans (the generalized "Perl script").
    let all_props: Vec<_> = dataset
        .properties_by_frequency()
        .into_iter()
        .map(|(p, _)| p)
        .collect();
    let vp_plan = swans_plan::lower_to_vertical(&optimized, &all_props);

    let stores = [
        RdfStore::load(
            &dataset,
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
        ),
        RdfStore::load(
            &dataset,
            StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine),
        ),
        RdfStore::load(
            &dataset,
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
        ),
    ];

    let mut reference: Option<Vec<Vec<u64>>> = None;
    for store in &stores {
        store.make_cold();
        let plan = match store.config().layout {
            Layout::VerticallyPartitioned => &vp_plan,
            Layout::TripleStore(_) => &optimized,
        };
        let run = store.run_plan(plan);
        let mut rows = run.rows.clone();
        rows.sort_unstable();
        if let Some(r) = &reference {
            assert_eq!(r, &rows, "engines disagree!");
        } else {
            reference = Some(rows);
        }
        println!(
            "{:<40} {:>4} rows  {:>8.3} ms real  {:>7.2} MB read",
            store.config().label(),
            run.rows.len(),
            run.real_seconds * 1e3,
            run.io.megabytes_read()
        );
    }

    // Decode a few answers.
    let some = reference.expect("at least one store ran");
    println!("\nsample answers:");
    for row in some.iter().take(5) {
        println!(
            "  {}  {}",
            dataset.dict.term(row[0]),
            dataset.dict.term(row[1])
        );
    }
}
