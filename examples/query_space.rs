//! Exploring the RDF query design space (§2.2) — and going beyond the
//! fixed benchmark.
//!
//! The paper criticizes C-Store's hardwired query plans: new queries or
//! storage schemes could not be added "without major resource investments".
//! This reproduction keeps queries as *data* (logical plans), so this
//! example (a) prints the Table 2 coverage analysis and (b) builds and runs
//! a custom query — the point-lookup pattern p1 the benchmark lacks, plus a
//! brand-new join-pattern-B query — on both storage schemes.
//!
//! ```sh
//! cargo run --release --example query_space
//! ```

use swans_core::{Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::algebra::{join, project, Plan};
use swans_plan::{analyze, build_plan, QueryContext, QueryId, Scheme};
use swans_rdf::SortOrder;

fn main() {
    let dataset = generate(&BartonConfig::with_triples(100_000));
    let ctx = QueryContext::from_dataset(&dataset, 28);
    let machine = swans_core::profile_for(&dataset, swans_storage::MachineProfile::B);

    // (a) Table 2: which patterns does the benchmark cover?
    println!("Table 2 — coverage of the query space:\n");
    println!("{:<6} {:<16} join patterns", "query", "triple patterns");
    for q in [
        QueryId::Q1,
        QueryId::Q2,
        QueryId::Q3,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q7,
        QueryId::Q8,
    ] {
        let cov = analyze(&build_plan(q, Scheme::TripleStore, &ctx));
        println!("{:<6} {}", q.name(), cov.render());
    }

    // (b) A custom query the benchmark does not contain: the origins of
    // all French-language resources — two p2/p7 accesses glued by a
    // subject-subject join, composed directly in the algebra.
    let custom = project(
        join(
            // (s, p, o) of French-language triples: pattern p2
            Plan::ScanTriples {
                s: None,
                p: Some(ctx.language_p),
                o: Some(ctx.fre_o),
            },
            // (s, p, o) of origin triples: pattern p7
            Plan::ScanTriples {
                s: None,
                p: Some(ctx.origin_p),
                o: None,
            },
            0,
            0, // join pattern A (subject = subject)
        ),
        vec![3, 5], // origin subject, origin object
    );
    let cov = analyze(&custom);
    println!("\ncustom query coverage: {}", cov.render());

    let triple = RdfStore::load(
        &dataset,
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
    );
    let row = RdfStore::load(
        &dataset,
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
    );
    let a = triple.run_plan(&custom).expect("custom plan executes");
    let b = row.run_plan(&custom).expect("custom plan executes");
    assert_eq!(
        {
            let mut x = a.rows.clone();
            x.sort_unstable();
            x
        },
        {
            let mut y = b.rows.clone();
            y.sort_unstable();
            y
        },
        "engines must agree on custom plans too"
    );
    println!(
        "custom query: {} rows; column engine {:.3} ms, row engine {:.3} ms (hot)",
        a.rows.len(),
        a.user_seconds * 1e3,
        b.user_seconds * 1e3
    );

    // The point-lookup pattern p1 the paper says "should be present in
    // every benchmark to highlight index support":
    let some = &dataset.triples[dataset.len() / 2];
    let p1 = Plan::ScanTriples {
        s: Some(some.s),
        p: Some(some.p),
        o: Some(some.o),
    };
    let hit = row.run_plan(&p1).expect("point lookup executes");
    println!(
        "p1 point lookup: {} hit(s) in {:.3} ms via the clustered B+tree",
        hit.rows.len(),
        hit.user_seconds * 1e3
    );
}
