//! Plan-level fuzzing, in two tiers.
//!
//! **Mutation fuzzing of the plan verifier** (always on): every benchmark
//! plan, under every physical context, verifies cleanly — and stops
//! verifying the moment a single point is corrupted. The fuzzer derives
//! the optimizer's own claim tree, then flips exactly one thing — a
//! property claim (`sorted_by` / `distinct` / `run_encoded`) or a column
//! index inside the plan itself — and asserts `swans_plan::verify`
//! rejects the mutant with an error whose path resolves to a real node.
//!
//! **Property-based cross-engine fuzzing** (feature-gated): for
//! *arbitrary* logical plans over arbitrary small data sets, the row
//! engine, the column engine (all three clustering orders) and the naive
//! reference executor must return exactly the same bag of rows. Requires
//! the `proptest` crate, which is not declared as a dependency so the
//! workspace keeps resolving offline. To re-enable where crates.io is
//! reachable: add `proptest = "1"` to `[dev-dependencies]` of the root
//! package, then run `cargo test --features proptests`.

use swans_datagen::rng::StdRng;
use swans_plan::queries::{build_plan, QueryContext, QueryId, Scheme};
use swans_plan::verify::{locate, verify, verify_claims, Claims, PlanPath};
use swans_plan::{optimize_for, Plan, PropsContext};
use swans_rdf::SortOrder;

/// A small Barton-shaped data set: enough vocabulary to resolve every
/// benchmark query's constants.
fn query_context() -> QueryContext {
    let ds = swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0002,
        seed: 7,
        n_properties: 28,
    });
    QueryContext::from_dataset(&ds, 28)
}

/// The physical contexts the engine actually runs under: clean layouts in
/// each clustering order, pending-delta downgrades, and RLE storage.
fn props_contexts(q: &QueryContext) -> Vec<PropsContext> {
    let pso = PropsContext::with_order(SortOrder::Pso);
    vec![
        PropsContext::default(),
        PropsContext::with_order(SortOrder::Spo),
        pso.clone(),
        pso.clone().with_pending_inserts([q.type_p, q.language_p]),
        pso.clone().with_pending_tombstones([q.origin_p]),
        pso.with_rle_props(q.interesting.clone())
            .with_triple_lead_rle(),
    ]
}

/// Every benchmark plan in both schemes, plus its physically-optimized
/// form under `ctx` (join reordering changes the tree shape, so mutants
/// cover rotated joins and restore-order projections too).
fn benchmark_plans(q: &QueryContext, ctx: &PropsContext) -> Vec<Plan> {
    let mut plans = Vec::new();
    for query in QueryId::ALL {
        for scheme in [Scheme::TripleStore, Scheme::VerticallyPartitioned] {
            let plan = build_plan(query, scheme, q);
            plans.push(optimize_for(plan.clone(), ctx));
            plans.push(plan);
        }
    }
    plans
}

/// All root→node paths in the plan, in preorder.
fn all_paths(plan: &Plan) -> Vec<Vec<usize>> {
    fn walk(plan: &Plan, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        out.push(prefix.clone());
        let kids: Vec<&Plan> = match plan {
            Plan::ScanTriples { .. } | Plan::ScanProperty { .. } => vec![],
            Plan::Select { input, .. }
            | Plan::FilterIn { input, .. }
            | Plan::Project { input, .. }
            | Plan::GroupCount { input, .. }
            | Plan::HavingCountGt { input, .. }
            | Plan::Distinct { input } => vec![input],
            Plan::Join { left, right, .. } => vec![left, right],
            Plan::UnionAll { inputs } | Plan::LeapfrogJoin { inputs, .. } => {
                inputs.iter().collect()
            }
        };
        for (i, kid) in kids.into_iter().enumerate() {
            prefix.push(i);
            walk(kid, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut Vec::new(), &mut out);
    out
}

/// Mutable access to the node at `segs` (child indices from the root).
fn node_at_mut<'a>(plan: &'a mut Plan, segs: &[usize]) -> &'a mut Plan {
    let mut node = plan;
    for &seg in segs {
        node = match node {
            Plan::Select { input, .. }
            | Plan::FilterIn { input, .. }
            | Plan::Project { input, .. }
            | Plan::GroupCount { input, .. }
            | Plan::HavingCountGt { input, .. }
            | Plan::Distinct { input } => input,
            Plan::Join { left, right, .. } => {
                if seg == 0 {
                    left
                } else {
                    right
                }
            }
            Plan::UnionAll { inputs } | Plan::LeapfrogJoin { inputs, .. } => &mut inputs[seg],
            Plan::ScanTriples { .. } | Plan::ScanProperty { .. } => {
                unreachable!("path walks off a leaf")
            }
        };
    }
    node
}

/// One attempted single-point corruption. Returns the mutated
/// `(plan, claims)` pair, or `None` if the chosen node cannot host the
/// chosen mutation class (e.g. strengthening `distinct` on an
/// already-distinct node).
fn mutate(
    plan: &Plan,
    claims: &Claims,
    ctx: &PropsContext,
    segs: &[usize],
    class: usize,
    rng: &mut StdRng,
) -> Option<(Plan, Claims)> {
    let path = PlanPath::from_segments(segs.to_vec());
    let node = locate(plan, &path).expect("enumerated path resolves");
    let arity = node.arity();
    let mut mutated_claims = claims.clone();
    let entry = mutated_claims.at_mut(&path).expect("claims tree parallel");
    match class {
        // Strengthen (or reorder) the sort-key claim past what the layout
        // justifies.
        0 => {
            match &mut entry.props.sorted_by {
                None => entry.props.sorted_by = Some(vec![0]),
                Some(key) => {
                    if let Some(extra) = (0..arity).find(|c| !key.contains(c)) {
                        key.push(extra);
                    } else if key.len() >= 2 {
                        key.swap(0, 1);
                    } else {
                        return None;
                    }
                }
            }
            Some((plan.clone(), mutated_claims))
        }
        // Invent a distinct claim.
        1 => {
            if entry.props.distinct {
                return None;
            }
            entry.props.distinct = true;
            Some((plan.clone(), mutated_claims))
        }
        // Invent a run-encoding claim on a column no RLE scan feeds.
        2 => {
            let free: Vec<usize> = (0..arity)
                .filter(|c| !entry.props.run_encoded.contains(c))
                .collect();
            if free.is_empty() {
                return None;
            }
            entry
                .props
                .run_encoded
                .push(free[rng.random_range(0..free.len())]);
            Some((plan.clone(), mutated_claims))
        }
        // Corrupt a column index inside the plan itself (claims are
        // re-derived: the *structural* check must catch it).
        _ => {
            let mut mutated = plan.clone();
            let target = node_at_mut(&mut mutated, segs);
            match target {
                Plan::Select { pred, .. } => pred.col = arity + 7,
                Plan::FilterIn { col, .. } => *col = arity + 7,
                Plan::Join {
                    right_col, right, ..
                } => *right_col = right.arity() + 7,
                Plan::Project { cols, .. } => cols[0] = arity + 7,
                Plan::GroupCount { keys, .. } => keys[0] = arity + 7,
                _ => return None,
            }
            let claims = Claims::derive_tree(&mutated, ctx);
            Some((mutated, claims))
        }
    }
}

/// The verifier accepts the optimizer's own claims on every benchmark
/// plan under every physical context — zero false positives.
#[test]
fn unmutated_benchmark_plans_always_verify() {
    let q = query_context();
    for ctx in props_contexts(&q) {
        for plan in benchmark_plans(&q, &ctx) {
            verify(&plan, &ctx).unwrap_or_else(|e| panic!("{e}\non {}", plan.explain()));
        }
    }
}

/// The mutation fuzzer: ≥95% of single-point corruptions are rejected,
/// and every rejection names a node that actually exists in the plan.
#[test]
fn verifier_rejects_single_point_mutants() {
    let q = query_context();
    let mut rng = StdRng::seed_from_u64(0x5AA5_2008);
    let (mut attempted, mut rejected) = (0u64, 0u64);
    for ctx in props_contexts(&q) {
        for plan in benchmark_plans(&q, &ctx) {
            let claims = Claims::derive_tree(&plan, &ctx);
            let paths = all_paths(&plan);
            for _ in 0..6 {
                let segs = &paths[rng.random_range(0..paths.len())];
                let class = rng.random_range(0..4);
                let Some((mplan, mclaims)) = mutate(&plan, &claims, &ctx, segs, class, &mut rng)
                else {
                    continue;
                };
                attempted += 1;
                match verify_claims(&mplan, &mclaims, &ctx) {
                    Ok(_) => {}
                    Err(e) => {
                        rejected += 1;
                        assert!(
                            locate(&mplan, &e.path).is_some(),
                            "error path {} does not resolve in the mutant",
                            e.path
                        );
                    }
                }
            }
        }
    }
    assert!(attempted >= 500, "fuzzer starved: only {attempted} mutants");
    let rate = rejected as f64 / attempted as f64;
    eprintln!("mutation fuzzer: {rejected}/{attempted} mutants rejected ({rate:.3})");
    assert!(
        rate >= 0.95,
        "verifier caught only {rejected}/{attempted} mutants ({rate:.3})"
    );
}

/// Cross-engine equivalence on arbitrary generated plans (feature-gated:
/// needs the undeclared `proptest` crate — see the module docs).
#[cfg(feature = "proptests")]
mod cross_engine {
    use proptest::prelude::*;

    use swans_colstore::ColumnEngine;
    use swans_plan::algebra::{CmpOp, Plan, Predicate};
    use swans_plan::naive;
    use swans_rdf::{SortOrder, Triple};
    use swans_rowstore::engine::{RowEngine, TripleIndexConfig};
    use swans_storage::{MachineProfile, StorageManager};

    const ID_SPACE: u64 = 8;

    fn arb_opt_id() -> impl Strategy<Value = Option<u64>> {
        proptest::option::of(0..ID_SPACE)
    }

    fn arb_leaf() -> impl Strategy<Value = Plan> {
        prop_oneof![
            (arb_opt_id(), arb_opt_id(), arb_opt_id()).prop_map(|(s, p, o)| Plan::ScanTriples {
                s,
                p,
                o
            }),
            (0..ID_SPACE, arb_opt_id(), arb_opt_id(), any::<bool>()).prop_map(
                |(property, s, o, emit_property)| Plan::ScanProperty {
                    property,
                    s,
                    o,
                    emit_property,
                }
            ),
        ]
    }

    /// Recursive plan generator. Column indices are drawn as raw seeds and
    /// reduced modulo the child arity, so every generated plan is valid.
    fn arb_plan() -> impl Strategy<Value = Plan> {
        arb_leaf().prop_recursive(3, 20, 2, |inner| {
            prop_oneof![
                // Select
                (inner.clone(), any::<usize>(), 0..ID_SPACE, any::<bool>()).prop_map(
                    |(p, colseed, value, ne)| {
                        let col = colseed % p.arity();
                        Plan::Select {
                            input: Box::new(p),
                            pred: Predicate {
                                col,
                                op: if ne { CmpOp::Ne } else { CmpOp::Eq },
                                value,
                            },
                        }
                    }
                ),
                // FilterIn
                (
                    inner.clone(),
                    any::<usize>(),
                    proptest::collection::vec(0..ID_SPACE, 0..4)
                )
                    .prop_map(|(p, colseed, values)| {
                        let col = colseed % p.arity();
                        Plan::FilterIn {
                            input: Box::new(p),
                            col,
                            values,
                        }
                    }),
                // Join (cap the combined arity to keep row widths legal)
                (inner.clone(), inner.clone(), any::<usize>(), any::<usize>()).prop_map(
                    |(l, r, ls, rs)| {
                        if l.arity() + r.arity() > 9 {
                            // Too wide: degrade to the left child.
                            return l;
                        }
                        let left_col = ls % l.arity();
                        let right_col = rs % r.arity();
                        Plan::Join {
                            left: Box::new(l),
                            right: Box::new(r),
                            left_col,
                            right_col,
                        }
                    }
                ),
                // Project (non-empty)
                (
                    inner.clone(),
                    proptest::collection::vec(any::<usize>(), 1..4)
                )
                    .prop_map(|(p, seeds)| {
                        let a = p.arity();
                        Plan::Project {
                            input: Box::new(p),
                            cols: seeds.into_iter().map(|s| s % a).collect(),
                        }
                    }),
                // GroupCount on 1–2 distinct keys
                (
                    inner.clone(),
                    any::<usize>(),
                    proptest::option::of(any::<usize>())
                )
                    .prop_map(|(p, k0, k1)| {
                        let a = p.arity();
                        let mut keys = vec![k0 % a];
                        if let Some(k1) = k1 {
                            let k1 = k1 % a;
                            if !keys.contains(&k1) {
                                keys.push(k1);
                            }
                        }
                        Plan::GroupCount {
                            input: Box::new(p),
                            keys,
                        }
                    }),
                // HavingCountGt (valid over any non-empty schema: filters on
                // the last column)
                (inner.clone(), 0u64..3).prop_map(|(p, min)| Plan::HavingCountGt {
                    input: Box::new(p),
                    min,
                }),
                // UnionAll of two structurally identical branches
                inner.clone().prop_map(|p| Plan::UnionAll {
                    inputs: vec![p.clone(), p],
                }),
                // Distinct
                inner.prop_map(|p| Plan::Distinct { input: Box::new(p) }),
            ]
        })
    }

    fn arb_triples() -> impl Strategy<Value = Vec<Triple>> {
        proptest::collection::vec(
            (0..ID_SPACE, 0..ID_SPACE, 0..ID_SPACE).prop_map(|(s, p, o)| Triple::new(s, p, o)),
            0..60,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn engines_match_naive_on_random_plans(
            triples in arb_triples(),
            plan in arb_plan(),
        ) {
            prop_assert_eq!(plan.validate(), Ok(()));
            let want = naive::normalize(naive::execute(&plan, &triples));

            // The optimizer's rewrites must preserve answers on any plan.
            let optimized = swans_plan::optimize(plan.clone());
            prop_assert_eq!(optimized.validate(), Ok(()));
            let opt_rows = naive::normalize(naive::execute(&optimized, &triples));
            prop_assert_eq!(
                &opt_rows, &want,
                "optimize() changed answers: {:?} -> {:?}", plan, optimized
            );

            // Scheme lowering must preserve answers too (given the complete
            // property list of the data set).
            let all_props: Vec<u64> = {
                let mut ps: Vec<u64> = triples.iter().map(|t| t.p).collect();
                ps.sort_unstable();
                ps.dedup();
                ps
            };
            let lowered = swans_plan::lower_to_vertical(&plan, &all_props);
            prop_assert_eq!(lowered.validate(), Ok(()));
            let low_rows = naive::normalize(naive::execute(&lowered, &triples));
            prop_assert_eq!(
                &low_rows, &want,
                "lower_to_vertical() changed answers on {:?}", plan
            );

            // Column engine under all clustering orders — executing both the
            // raw and the optimized plan.
            for order in [SortOrder::Spo, SortOrder::Pso, SortOrder::Osp] {
                let m = StorageManager::new(MachineProfile::B);
                let mut col = ColumnEngine::new();
                col.load_triple_store(&m, &triples, order, true);
                col.load_vertical(&m, &triples, false);
                let got = naive::normalize(col.execute(&plan).expect("plan executes").to_rows());
                prop_assert_eq!(
                    &got, &want,
                    "column engine ({}) diverged on {:?}", order, plan
                );
                let got_opt =
                    naive::normalize(col.execute(&optimized).expect("plan executes").to_rows());
                prop_assert_eq!(
                    &got_opt, &want,
                    "column engine ({}) diverged on optimized {:?}", order, optimized
                );
            }

            // Row engine under both paper index configurations.
            for config in [TripleIndexConfig::spo(), TripleIndexConfig::pso()] {
                let m = StorageManager::new(MachineProfile::B);
                let mut row = RowEngine::new();
                row.load_triple_store(&m, &triples, &config);
                row.load_vertical(&m, &triples);
                let got = naive::normalize(row.execute(&plan).expect("plan executes"));
                prop_assert_eq!(
                    &got, &want,
                    "row engine ({}) diverged on {:?}", config.cluster, plan
                );
            }
        }
    }
}
