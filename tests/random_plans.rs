//! Property-based cross-engine fuzzing: for *arbitrary* logical plans over
//! arbitrary small data sets, the row engine, the column engine (all three
//! clustering orders) and the naive reference executor must return exactly
//! the same bag of rows. This goes beyond the twelve benchmark queries and
//! exercises operator compositions the benchmark never builds.
//!
//! Requires the `proptest` crate, which is not declared as a dependency
//! so the workspace keeps resolving offline. To re-enable where crates.io
//! is reachable: add `proptest = "1"` to `[dev-dependencies]` of the root
//! package, then run `cargo test --features proptests`.
#![cfg(feature = "proptests")]

use proptest::prelude::*;

use swans_colstore::ColumnEngine;
use swans_plan::algebra::{CmpOp, Plan, Predicate};
use swans_plan::naive;
use swans_rdf::{SortOrder, Triple};
use swans_rowstore::engine::{RowEngine, TripleIndexConfig};
use swans_storage::{MachineProfile, StorageManager};

const ID_SPACE: u64 = 8;

fn arb_opt_id() -> impl Strategy<Value = Option<u64>> {
    proptest::option::of(0..ID_SPACE)
}

fn arb_leaf() -> impl Strategy<Value = Plan> {
    prop_oneof![
        (arb_opt_id(), arb_opt_id(), arb_opt_id()).prop_map(|(s, p, o)| Plan::ScanTriples {
            s,
            p,
            o
        }),
        (0..ID_SPACE, arb_opt_id(), arb_opt_id(), any::<bool>()).prop_map(
            |(property, s, o, emit_property)| Plan::ScanProperty {
                property,
                s,
                o,
                emit_property,
            }
        ),
    ]
}

/// Recursive plan generator. Column indices are drawn as raw seeds and
/// reduced modulo the child arity, so every generated plan is valid.
fn arb_plan() -> impl Strategy<Value = Plan> {
    arb_leaf().prop_recursive(3, 20, 2, |inner| {
        prop_oneof![
            // Select
            (inner.clone(), any::<usize>(), 0..ID_SPACE, any::<bool>()).prop_map(
                |(p, colseed, value, ne)| {
                    let col = colseed % p.arity();
                    Plan::Select {
                        input: Box::new(p),
                        pred: Predicate {
                            col,
                            op: if ne { CmpOp::Ne } else { CmpOp::Eq },
                            value,
                        },
                    }
                }
            ),
            // FilterIn
            (
                inner.clone(),
                any::<usize>(),
                proptest::collection::vec(0..ID_SPACE, 0..4)
            )
                .prop_map(|(p, colseed, values)| {
                    let col = colseed % p.arity();
                    Plan::FilterIn {
                        input: Box::new(p),
                        col,
                        values,
                    }
                }),
            // Join (cap the combined arity to keep row widths legal)
            (inner.clone(), inner.clone(), any::<usize>(), any::<usize>()).prop_map(
                |(l, r, ls, rs)| {
                    if l.arity() + r.arity() > 9 {
                        // Too wide: degrade to the left child.
                        return l;
                    }
                    let left_col = ls % l.arity();
                    let right_col = rs % r.arity();
                    Plan::Join {
                        left: Box::new(l),
                        right: Box::new(r),
                        left_col,
                        right_col,
                    }
                }
            ),
            // Project (non-empty)
            (
                inner.clone(),
                proptest::collection::vec(any::<usize>(), 1..4)
            )
                .prop_map(|(p, seeds)| {
                    let a = p.arity();
                    Plan::Project {
                        input: Box::new(p),
                        cols: seeds.into_iter().map(|s| s % a).collect(),
                    }
                }),
            // GroupCount on 1–2 distinct keys
            (
                inner.clone(),
                any::<usize>(),
                proptest::option::of(any::<usize>())
            )
                .prop_map(|(p, k0, k1)| {
                    let a = p.arity();
                    let mut keys = vec![k0 % a];
                    if let Some(k1) = k1 {
                        let k1 = k1 % a;
                        if !keys.contains(&k1) {
                            keys.push(k1);
                        }
                    }
                    Plan::GroupCount {
                        input: Box::new(p),
                        keys,
                    }
                }),
            // HavingCountGt (valid over any non-empty schema: filters on
            // the last column)
            (inner.clone(), 0u64..3).prop_map(|(p, min)| Plan::HavingCountGt {
                input: Box::new(p),
                min,
            }),
            // UnionAll of two structurally identical branches
            inner.clone().prop_map(|p| Plan::UnionAll {
                inputs: vec![p.clone(), p],
            }),
            // Distinct
            inner.prop_map(|p| Plan::Distinct { input: Box::new(p) }),
        ]
    })
}

fn arb_triples() -> impl Strategy<Value = Vec<Triple>> {
    proptest::collection::vec(
        (0..ID_SPACE, 0..ID_SPACE, 0..ID_SPACE).prop_map(|(s, p, o)| Triple::new(s, p, o)),
        0..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn engines_match_naive_on_random_plans(
        triples in arb_triples(),
        plan in arb_plan(),
    ) {
        prop_assert_eq!(plan.validate(), Ok(()));
        let want = naive::normalize(naive::execute(&plan, &triples));

        // The optimizer's rewrites must preserve answers on any plan.
        let optimized = swans_plan::optimize(plan.clone());
        prop_assert_eq!(optimized.validate(), Ok(()));
        let opt_rows = naive::normalize(naive::execute(&optimized, &triples));
        prop_assert_eq!(
            &opt_rows, &want,
            "optimize() changed answers: {:?} -> {:?}", plan, optimized
        );

        // Scheme lowering must preserve answers too (given the complete
        // property list of the data set).
        let all_props: Vec<u64> = {
            let mut ps: Vec<u64> = triples.iter().map(|t| t.p).collect();
            ps.sort_unstable();
            ps.dedup();
            ps
        };
        let lowered = swans_plan::lower_to_vertical(&plan, &all_props);
        prop_assert_eq!(lowered.validate(), Ok(()));
        let low_rows = naive::normalize(naive::execute(&lowered, &triples));
        prop_assert_eq!(
            &low_rows, &want,
            "lower_to_vertical() changed answers on {:?}", plan
        );

        // Column engine under all clustering orders — executing both the
        // raw and the optimized plan.
        for order in [SortOrder::Spo, SortOrder::Pso, SortOrder::Osp] {
            let m = StorageManager::new(MachineProfile::B);
            let mut col = ColumnEngine::new();
            col.load_triple_store(&m, &triples, order, true);
            col.load_vertical(&m, &triples, false);
            let got = naive::normalize(col.execute(&plan).expect("plan executes").to_rows());
            prop_assert_eq!(
                &got, &want,
                "column engine ({}) diverged on {:?}", order, plan
            );
            let got_opt =
                naive::normalize(col.execute(&optimized).expect("plan executes").to_rows());
            prop_assert_eq!(
                &got_opt, &want,
                "column engine ({}) diverged on optimized {:?}", order, optimized
            );
        }

        // Row engine under both paper index configurations.
        for config in [TripleIndexConfig::spo(), TripleIndexConfig::pso()] {
            let m = StorageManager::new(MachineProfile::B);
            let mut row = RowEngine::new();
            row.load_triple_store(&m, &triples, &config);
            row.load_vertical(&m, &triples);
            let got = naive::normalize(row.execute(&plan).expect("plan executes"));
            prop_assert_eq!(
                &got, &want,
                "row engine ({}) diverged on {:?}", config.cluster, plan
            );
        }
    }
}
