//! End-to-end data pipeline: export a generated data set to the N-Triples
//! line format, read it back, and verify the round-trip preserves both the
//! statistics and every query answer.

use swans_core::{normalize_result, Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::queries::{QueryContext, QueryId};
use swans_rdf::stats::DatasetStats;
use swans_rdf::{ntriples, SortOrder};

#[test]
fn roundtrip_preserves_stats_and_answers() {
    let original = generate(&BartonConfig {
        scale: 0.0004,
        seed: 99,
        n_properties: 50,
    });

    let mut buf = Vec::new();
    ntriples::write(&original, &mut buf).expect("serialize");
    let reloaded = ntriples::read(buf.as_slice()).expect("parse");

    // Statistics are identical (ids may differ; the stats are id-free).
    let a = DatasetStats::compute(&original);
    let b = DatasetStats::compute(&reloaded);
    assert_eq!(a, b);

    // Every query answers identically after decoding through the
    // respective dictionaries.
    let ctx_a = QueryContext::from_dataset(&original, 20);
    let ctx_b = QueryContext::from_dataset(&reloaded, 20);
    let store_a = RdfStore::load(
        &original,
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
    );
    let store_b = RdfStore::load(
        &reloaded,
        StoreConfig::column(Layout::VerticallyPartitioned),
    );
    for q in QueryId::ALL {
        let rows_a = normalize_result(q, store_a.run_query(q, &ctx_a).rows);
        let rows_b = normalize_result(q, store_b.run_query(q, &ctx_b).rows);
        // Decode to strings: the two datasets assign different ids. Count
        // columns (the group counts) must be compared as numbers, not
        // dictionary ids — decode only columns that are valid term ids.
        let decode = |ds: &swans_rdf::Dataset, rows: &[Vec<u64>]| -> Vec<Vec<String>> {
            let mut out: Vec<Vec<String>> = rows
                .iter()
                .map(|r| {
                    r.iter()
                        .enumerate()
                        .map(|(i, &v)| {
                            let is_count = matches!(
                                q,
                                QueryId::Q1
                                    | QueryId::Q2
                                    | QueryId::Q2Star
                                    | QueryId::Q3
                                    | QueryId::Q3Star
                                    | QueryId::Q4
                                    | QueryId::Q4Star
                                    | QueryId::Q6
                                    | QueryId::Q6Star
                            ) && i == r.len() - 1;
                            if is_count {
                                format!("#{v}")
                            } else {
                                ds.dict.term(v).to_string()
                            }
                        })
                        .collect()
                })
                .collect();
            out.sort();
            out
        };
        assert_eq!(
            decode(&original, &rows_a),
            decode(&reloaded, &rows_b),
            "query {q} differs after round-trip"
        );
    }
}

#[test]
fn exported_file_is_line_per_triple() {
    let ds = generate(&BartonConfig {
        scale: 0.0002,
        seed: 1,
        n_properties: 30,
    });
    let mut buf = Vec::new();
    ntriples::write(&ds, &mut buf).expect("serialize");
    let text = String::from_utf8(buf).expect("utf8");
    assert_eq!(text.lines().count(), ds.len());
    assert!(text.lines().all(|l| l.ends_with(" .")));
}
