//! Resource-governance torture suite: adversarial queries killed by
//! deadlines, memory limits, and cooperative cancellation at every
//! injection point, on all six engine × layout configurations — always
//! surfacing as a typed `EngineError::Cancelled`, never a panic, never
//! a poisoned lock, with snapshot refcounts provably returning to
//! baseline and concurrent well-behaved queries unaffected.
//!
//! `SWANS_GOV_QUICK=1` thins the data set and iteration counts for CI
//! sanitizer runs.

use std::sync::Arc;
use std::time::Duration;

use swans_core::{CancelReason, Database, EngineError, Error, Layout, QueryBudget, StoreConfig};
use swans_rdf::{Dataset, SortOrder};

fn quick() -> bool {
    std::env::var_os("SWANS_GOV_QUICK").is_some()
}

/// Hot-key scale: the adversarial self-join below produces `n_hot²`
/// rows.
fn n_hot() -> usize {
    if quick() {
        150
    } else {
        700
    }
}

/// A data set with one pathologically hot key: every subject carries
/// `<p> <hot>`, so joining on the object is a full cross product —
/// exactly the query shape resource governance exists to contain —
/// plus a small well-behaved property for control queries.
fn skew_dataset(n: usize) -> Dataset {
    let mut ds = Dataset::new();
    for i in 0..n {
        ds.add(&format!("<s{i}>"), "<p>", "<hot>");
        ds.add(&format!("<s{i}>"), "<q>", &format!("<v{}>", i % 7));
    }
    ds
}

/// The adversarial cross product, at three output widths.
const BLOW_UPS: &[&str] = &[
    "SELECT ?a WHERE { ?a <p> ?v . ?b <p> ?v }",
    "SELECT ?a ?b WHERE { ?a <p> ?v . ?b <p> ?v }",
    "SELECT ?a ?b ?v WHERE { ?a <p> ?v . ?b <p> ?v }",
];

/// A cheap, well-behaved control query.
const CONTROL: &str = "SELECT ?s ?v WHERE { ?s <q> ?v }";

fn all_configs() -> Vec<StoreConfig> {
    vec![
        StoreConfig::row(Layout::TripleStore(SortOrder::Spo)),
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
        StoreConfig::row(Layout::VerticallyPartitioned),
        StoreConfig::column(Layout::TripleStore(SortOrder::Spo)),
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        StoreConfig::column(Layout::VerticallyPartitioned),
    ]
}

/// Unwraps the `Cancelled` out of a query result, panicking (with
/// context) on anything else.
fn expect_cancelled(
    label: &str,
    result: Result<swans_core::ResultSet, Error>,
) -> (CancelReason, swans_core::PartialStats) {
    match result {
        Err(Error::Engine(EngineError::Cancelled { reason, partial })) => (reason, partial),
        Ok(r) => panic!(
            "{label}: expected Cancelled, query completed with {} rows",
            r.len()
        ),
        Err(e) => panic!("{label}: expected Cancelled, got {e}"),
    }
}

/// Every kill site × every config × every width: an already-expired
/// deadline, a just-started deadline (expires at the first cooperative
/// check), a pre-latched cancellation token, and a memory limit the
/// cross product must overflow mid-build. After every kill the same
/// session keeps answering the control query bit-identically — clean
/// cancellation, no poisoned state.
#[test]
fn budget_kills_are_typed_and_clean_on_all_six_configs() {
    let ds = skew_dataset(n_hot());
    for config in all_configs() {
        let label = config.label();
        let db = Database::open(ds.clone(), config).expect("opens");
        let session = db.session().expect("forks");
        let reference = session.query(CONTROL).expect("control query").into_ids();

        for (w, blow_up) in BLOW_UPS.iter().enumerate() {
            // Deadline already expired at submission.
            let budget = QueryBudget::unlimited()
                .with_deadline(std::time::Instant::now() - Duration::from_millis(1));
            let (reason, partial) =
                expect_cancelled(&label, session.query_budgeted(blow_up, &budget));
            assert_eq!(reason, CancelReason::Timeout, "{label} width {w}");
            assert_eq!(budget.cancel_reason(), Some(CancelReason::Timeout));
            let _ = partial.elapsed_ms; // partial stats always present

            // Deadline expiring between submission and the first
            // cooperative check.
            let budget = QueryBudget::unlimited().with_timeout(Duration::from_nanos(1));
            let (reason, _) = expect_cancelled(&label, session.query_budgeted(blow_up, &budget));
            assert_eq!(reason, CancelReason::Timeout, "{label} width {w}");

            // Cancellation token latched before the query starts (the
            // shutdown path).
            let budget = QueryBudget::unlimited();
            budget.cancel();
            let (reason, _) = expect_cancelled(&label, session.query_budgeted(blow_up, &budget));
            assert_eq!(reason, CancelReason::Shutdown, "{label} width {w}");

            // Memory limit the cross product must blow through while
            // materializing — the kill lands mid-build, not after.
            let budget = QueryBudget::unlimited().with_mem_limit(64 << 10);
            let (reason, partial) =
                expect_cancelled(&label, session.query_budgeted(blow_up, &budget));
            assert_eq!(reason, CancelReason::MemoryLimit, "{label} width {w}");
            assert!(
                partial.peak_mem_bytes >= 64 << 10,
                "{label} width {w}: peak {} must have reached the limit",
                partial.peak_mem_bytes
            );

            // Clean cancellation: the very same session answers the
            // control query bit-identically after every kill.
            assert_eq!(
                session
                    .query(CONTROL)
                    .expect("control after kills")
                    .into_ids(),
                reference,
                "{label} width {w}: session poisoned by a cancelled query"
            );
        }

        // A generous budget lets the adversarial query complete, and its
        // peak-memory accounting is visible to the caller.
        let budget = QueryBudget::unlimited().with_mem_limit(1 << 30);
        let rows = session
            .query_budgeted(BLOW_UPS[1], &budget)
            .unwrap_or_else(|e| panic!("{label}: generous budget must suffice: {e}"));
        assert_eq!(rows.len(), n_hot() * n_hot(), "{label}");
        assert!(
            budget.peak_mem_bytes() > 0,
            "{label}: peak accounting missing"
        );
    }
}

/// Mid-execution cancellation from another thread, at a sweep of
/// delays: the query either completes or dies with the typed Shutdown
/// reason — never a panic — and the session stays usable either way.
#[test]
fn mid_execution_cancel_from_another_thread_is_clean() {
    let ds = skew_dataset(n_hot());
    let delays_us: &[u64] = if quick() {
        &[0, 200, 1000]
    } else {
        &[0, 50, 200, 500, 1000, 5000]
    };
    for config in [
        StoreConfig::column(Layout::VerticallyPartitioned),
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
    ] {
        let label = config.label();
        let db = Database::open(ds.clone(), config).expect("opens");
        let session = db.session().expect("forks");
        let reference = session.query(CONTROL).expect("control").into_ids();
        let mut cancelled = 0usize;
        for &delay in delays_us {
            let budget = QueryBudget::unlimited();
            let canceller = {
                let budget = budget.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_micros(delay));
                    budget.cancel();
                })
            };
            match session.query_budgeted(BLOW_UPS[1], &budget) {
                Ok(rows) => assert_eq!(rows.len(), n_hot() * n_hot(), "{label}"),
                Err(Error::Engine(EngineError::Cancelled { reason, .. })) => {
                    assert_eq!(reason, CancelReason::Shutdown, "{label}");
                    cancelled += 1;
                }
                Err(e) => panic!("{label}: cancellation must be typed, got {e}"),
            }
            canceller.join().expect("canceller thread");
            assert_eq!(
                session.query(CONTROL).expect("control").into_ids(),
                reference,
                "{label}: session unusable after a delayed cancel"
            );
        }
        // The sweep brackets the query's runtime: at least the
        // immediate cancel must land.
        assert!(cancelled > 0, "{label}: no delay produced a cancellation");
    }
}

/// Well-behaved queries on their own sessions are unaffected while an
/// adversary's queries are being killed next door: every round answers
/// bit-identically to an undisturbed twin, and the writer keeps
/// committing throughout.
#[test]
fn concurrent_well_behaved_queries_are_unaffected_by_kills() {
    let rounds = if quick() { 4 } else { 10 };
    for config in [
        StoreConfig::column(Layout::VerticallyPartitioned),
        StoreConfig::row(Layout::VerticallyPartitioned),
    ] {
        let label = config.label();
        let db = Database::open(skew_dataset(n_hot()), config).expect("opens");
        std::thread::scope(|scope| {
            let db = &db;
            let label = &label;
            // The adversary: a stream of queries dying on memory limits
            // and deadlines.
            scope.spawn(move || {
                let session = db.session().expect("forks");
                for i in 0..rounds * 2 {
                    let budget = if i % 2 == 0 {
                        QueryBudget::unlimited().with_mem_limit(32 << 10)
                    } else {
                        QueryBudget::unlimited().with_timeout(Duration::from_nanos(1))
                    };
                    let result = session.query_budgeted(BLOW_UPS[2], &budget);
                    assert!(
                        matches!(result, Err(Error::Engine(EngineError::Cancelled { .. }))),
                        "{label}: adversary query must die typed"
                    );
                }
            });
            // The bystander: unbudgeted queries on a private session,
            // compared round by round against an undisturbed twin.
            scope.spawn(move || {
                let session = db.session().expect("forks");
                let twin = db.session().expect("forks");
                let expected = twin.query(CONTROL).expect("twin").into_ids();
                for round in 0..rounds {
                    assert_eq!(
                        session.query(CONTROL).expect("bystander").into_ids(),
                        expected,
                        "{label} round {round}: bystander disturbed by kills"
                    );
                }
            });
            // The writer keeps publishing under both.
            for i in 0..rounds {
                db.insert([(
                    format!("<w{i}>").as_str(),
                    "<q>",
                    format!("<v{}>", i % 7).as_str(),
                )])
                .expect("churn insert");
            }
        });
    }
}

/// Cancelled queries must not leak snapshots: a session whose query was
/// killed releases its pinned version on drop, and `Arc` strong counts
/// return exactly to baseline.
#[test]
fn cancelled_queries_leak_no_snapshots() {
    let db = Database::open(
        skew_dataset(n_hot()),
        StoreConfig::column(Layout::VerticallyPartitioned),
    )
    .expect("opens");
    let current = db.snapshot();
    let baseline = Arc::strong_count(&current);
    let weak = Arc::downgrade(&current);
    {
        let session = db.session().expect("forks");
        assert_eq!(Arc::strong_count(&current), baseline + 1);
        for blow_up in BLOW_UPS {
            let budget = QueryBudget::unlimited().with_mem_limit(16 << 10);
            expect_cancelled("leak probe", session.query_budgeted(blow_up, &budget));
        }
        drop(session);
    }
    assert_eq!(
        Arc::strong_count(&current),
        baseline,
        "cancelled queries must not retain snapshot refs"
    );
    // And with every strong handle gone, the version deallocates: a
    // kill must not stash the snapshot anywhere hidden.
    db.insert([("<fresh>", "<q>", "<v0>")]).expect("publishes");
    drop(current);
    assert!(
        weak.upgrade().is_none(),
        "dropped version still alive — snapshot leak"
    );
}

/// `Database`-level budgeted entry points (no session) behave
/// identically, including on the writer-lock fallback path.
#[test]
fn database_level_budgets_work_without_sessions() {
    let db = Database::open(
        skew_dataset(if quick() { 100 } else { 300 }),
        StoreConfig::row(Layout::VerticallyPartitioned),
    )
    .expect("opens");
    let budget = QueryBudget::unlimited().with_mem_limit(16 << 10);
    let (reason, _) = expect_cancelled("db-level", db.query_budgeted(BLOW_UPS[1], &budget));
    assert_eq!(reason, CancelReason::MemoryLimit);
    // Unbudgeted queries still work right after.
    assert!(!db.query(CONTROL).expect("control").is_empty());
}

fn served_db() -> Arc<Database> {
    Arc::new(
        Database::open(
            skew_dataset(60),
            StoreConfig::column(Layout::VerticallyPartitioned),
        )
        .expect("opens"),
    )
}

/// Overload shedding at the front door: with one worker parked on a
/// slow client and the admission queue full, further requests are shed
/// immediately with `503` + `Retry-After` — and service resumes once
/// the pressure clears.
#[test]
fn overloaded_server_sheds_with_503_and_retry_after() {
    use std::net::TcpStream;

    let server = swans_serve::serve_with(
        served_db(),
        "127.0.0.1:0",
        swans_serve::ServeConfig {
            workers: 1,
            queue_depth: 1,
            ..swans_serve::ServeConfig::default()
        },
    )
    .expect("binds");
    let addr = server.addr();

    // Two connections that never send a request: one parks the only
    // worker in its read (the default 30s read timeout holds it there
    // for the whole test), the other fills the queue.
    let parked: Vec<TcpStream> = (0..2)
        .map(|_| TcpStream::connect(addr).expect("connects"))
        .collect();
    std::thread::sleep(Duration::from_millis(150));

    // Now probes must be shed with the backoff header. Probing retries
    // on a generous deadline: on a loaded runner the accept thread may
    // not have queued both parked connections yet, in which case an
    // early probe is admitted (and itself fills the queue for the next
    // round) or times out — either way a later probe observes the shed.
    let mut sheds = 0;
    let deadline = std::time::Instant::now() + Duration::from_secs(20);
    while sheds == 0 && std::time::Instant::now() < deadline {
        match swans_serve::http_request_full(addr, "GET", "/stats", "", Duration::from_secs(2)) {
            Ok((503, headers, body)) => {
                sheds += 1;
                assert!(
                    headers.iter().any(|(n, _)| n == "retry-after"),
                    "503 shed response must carry Retry-After, got {headers:?}"
                );
                assert!(body.contains("overloaded"), "unexpected shed body: {body}");
            }
            _ => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    assert!(sheds > 0, "full queue must shed requests");
    assert!(
        server.shed_requests() >= sheds,
        "shed counter must record the refusals"
    );

    // Pressure clears: the parked clients hang up, the worker frees up,
    // and the very same server answers again — with the shed episode on
    // the books in /stats.
    drop(parked);
    std::thread::sleep(Duration::from_millis(50));
    let q = swans_serve::percent_encode(CONTROL);
    let (status, body) =
        swans_serve::http_request(addr, "GET", &format!("/query?q={q}"), "").expect("recovers");
    assert_eq!(status, 200, "server must recover after shedding: {body}");
    let (status, stats) = swans_serve::http_request(addr, "GET", "/stats", "").expect("stats");
    assert_eq!(status, 200);
    assert!(
        stats.contains("\"governance\"") && stats.contains("\"shed_requests\""),
        "stats must expose governance counters: {stats}"
    );
    server.shutdown();
}

/// Per-request deadlines inherited from admission: a request whose
/// deadline has passed is cancelled cooperatively inside the engine and
/// answered `503` + `Retry-After`, and `/stats` counts it.
#[test]
fn expired_request_deadline_cancels_over_http() {
    let server = swans_serve::serve_with(
        served_db(),
        "127.0.0.1:0",
        swans_serve::ServeConfig {
            request_timeout: Duration::from_nanos(1),
            ..swans_serve::ServeConfig::default()
        },
    )
    .expect("binds");
    let addr = server.addr();
    let q = swans_serve::percent_encode(BLOW_UPS[1]);
    let (status, headers, body) = swans_serve::http_request_full(
        addr,
        "GET",
        &format!("/query?q={q}"),
        "",
        Duration::from_secs(10),
    )
    .expect("responds");
    assert_eq!(status, 503, "expired deadline must cancel: {body}");
    assert!(headers.iter().any(|(n, _)| n == "retry-after"));
    assert!(
        body.contains("deadline"),
        "cancellation body names the reason: {body}"
    );
    assert_eq!(server.cancelled_queries(), 1);
    let (_, stats) = swans_serve::http_request(addr, "GET", "/stats", "").expect("stats");
    assert!(
        stats.contains("\"cancelled_queries\":1"),
        "stats must count the cancellation: {stats}"
    );
    server.shutdown();
}

/// A per-query memory limit configured at the server caps what any one
/// HTTP query may materialize.
#[test]
fn server_memory_limit_caps_http_queries() {
    let server = swans_serve::serve_with(
        served_db(),
        "127.0.0.1:0",
        swans_serve::ServeConfig {
            query_mem_limit: Some(8 << 10),
            ..swans_serve::ServeConfig::default()
        },
    )
    .expect("binds");
    let addr = server.addr();
    let q = swans_serve::percent_encode(BLOW_UPS[1]);
    let (status, body) =
        swans_serve::http_request(addr, "GET", &format!("/query?q={q}"), "").expect("responds");
    assert_eq!(status, 503, "memory blow-up must be capped: {body}");
    assert!(body.contains("memory"), "body names the reason: {body}");
    // A query fitting the budget still answers.
    let q = swans_serve::percent_encode(CONTROL);
    let (status, _) =
        swans_serve::http_request(addr, "GET", &format!("/query?q={q}"), "").expect("responds");
    assert_eq!(status, 200);
    server.shutdown();
}

/// Hostile HTTP at the socket: oversized request lines and declared
/// bodies come back `413`, malformed requests `400` — the server never
/// buffers unbounded input and keeps serving afterwards.
#[test]
fn hostile_http_input_gets_typed_rejections() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let server = swans_serve::serve(served_db(), "127.0.0.1:0").expect("binds");
    let addr = server.addr();
    let raw_status = |bytes: &[u8]| -> u16 {
        let mut stream = TcpStream::connect(addr).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        stream.write_all(bytes).expect("writes");
        let mut line = String::new();
        BufReader::new(stream)
            .read_line(&mut line)
            .expect("status line");
        line.split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("malformed response: {line:?}"))
    };
    // Oversized: a request line that never ends, and a body declared
    // far over the cap (the server answers before reading it).
    assert_eq!(raw_status(&vec![b'a'; 10 << 10]), 413);
    assert_eq!(
        raw_status(b"POST /update HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n"),
        413
    );
    // Malformed: no target, bad content-length, binary garbage.
    assert_eq!(raw_status(b"GET\r\n\r\n"), 400);
    assert_eq!(
        raw_status(b"GET / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"),
        400
    );
    assert_eq!(raw_status(b"\xff\xfe\xfd\r\n\r\n"), 400);
    // And the server is unharmed.
    let q = swans_serve::percent_encode(CONTROL);
    let (status, _) =
        swans_serve::http_request(addr, "GET", &format!("/query?q={q}"), "").expect("responds");
    assert_eq!(status, 200);
    server.shutdown();
}

/// The engine's own governance counters: cancelled queries and the
/// peak-memory high-water mark are visible per session.
#[test]
fn governance_counters_surface_in_session_stats() {
    let db = Database::open(
        skew_dataset(n_hot()),
        StoreConfig::column(Layout::VerticallyPartitioned),
    )
    .expect("opens");
    let session = db.session().expect("forks");
    let counter = |name: &str, counters: &[(&'static str, u64)]| {
        counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    let before = session.stat_counters();
    assert_eq!(counter("cancelled_queries", &before), 0);
    let budget = QueryBudget::unlimited().with_mem_limit(32 << 10);
    expect_cancelled(
        "counter probe",
        session.query_budgeted(BLOW_UPS[1], &budget),
    );
    let after = session.stat_counters();
    assert_eq!(counter("cancelled_queries", &after), 1);
    assert!(
        counter("peak_mem_bytes", &after) >= 32 << 10,
        "peak high-water mark must record the overflowing build"
    );
}
