//! Plan-quality acceptance suite for the cost-based optimizer and the
//! leapfrog star kernel.
//!
//! Four invariants, each load-bearing for PR 9:
//!
//! * **Bit-equivalence** — a [`Plan::LeapfrogJoin`] returns exactly the
//!   rows, in exactly the order, of its binary merge-join fold, across
//!   layouts, compression settings, pool widths and write-store states
//!   (clean, pending delta, post-merge). The pending state additionally
//!   pins the *fallback*: an input that lost its sort order sends the
//!   node through the fold, and the dispatch counter proves it.
//! * **A/B answer equality** — cost-based enumeration
//!   ([`ColumnEngine::set_cbo`]) never changes answers relative to the
//!   rotation heuristic, on every benchmark query in every column
//!   configuration.
//! * **Never-worse under the model** — a hand-rolled seeded proptest:
//!   for random join chains, the enumerated plan's modeled cost never
//!   exceeds the rotation heuristic's, the enumerated plan passes the
//!   static verifier, and its answers match the original plan's.
//! * **Q-error gate** — the CI regression bound: across the 12-query ×
//!   6-configuration suite, the root-cardinality estimation error
//!   `max(est/actual, actual/est)` stays under a committed threshold.

use swans_bench::updates::configs as all_configs;
use swans_colstore::ColumnEngine;
use swans_datagen::rng::StdRng;
use swans_plan::algebra::{join, leapfrog, leapfrog_fold, Plan};
use swans_plan::naive;
use swans_plan::queries::{QueryContext, QueryId};
use swans_plan::verify::verify;
use swans_plan::{build_plan, cost, estimate_rows, optimize_cbo, reorder_joins};
use swans_rdf::{Dataset, Delta, SortOrder, Triple};
use swans_storage::{MachineProfile, StorageManager};

/// The committed q-error regression threshold the `plan-quality` CI job
/// gates on. Measured max across the suite at the time of commit was
/// ~117, at the triple-store q4/q4* plans — a three-way join under
/// `HAVING count(*) > 1`, whose flat 0.5 selectivity factor cannot see
/// the group-size distribution. The bound leaves ~2× headroom for
/// dataset drift without letting estimation regress by another order of
/// magnitude unnoticed.
const MAX_Q_ERROR: f64 = 256.0;

/// A star-shaped dataset: subjects share properties 3/4/5/6 with
/// per-subject object fan-out, so the VP subject columns run-encode and
/// every star join has work to do. Property 6 is sparse — the selective
/// driver a leapfrog gallop benefits from.
fn star_triples() -> Vec<Triple> {
    let mut t = Vec::new();
    for s in 0..300u64 {
        for o in 0..4 {
            t.push(Triple::new(s, 3, 100 + (s * 7 + o) % 40));
        }
        if s % 2 == 0 {
            for o in 0..2 {
                t.push(Triple::new(s, 4, 200 + (s + o) % 30));
            }
        }
        if s % 3 == 0 {
            t.push(Triple::new(s, 5, 300 + s % 20));
        }
        if s % 25 == 0 {
            t.push(Triple::new(s, 6, 400));
        }
    }
    t
}

fn vp_leaf(p: u64) -> Plan {
    Plan::ScanProperty {
        property: p,
        s: None,
        o: None,
        emit_property: false,
    }
}

fn ts_leaf(p: u64) -> Plan {
    Plan::ScanTriples {
        s: None,
        p: Some(p),
        o: None,
    }
}

/// The star plans under test: subject-keyed multi-way joins over the
/// vertically-partitioned and (SPO-clustered) triple-store layouts, at
/// widths 3 and 4.
fn star_plans() -> Vec<Plan> {
    vec![
        leapfrog(vec![vp_leaf(3), vp_leaf(4), vp_leaf(5)], vec![0, 0, 0]),
        leapfrog(
            vec![vp_leaf(6), vp_leaf(3), vp_leaf(4), vp_leaf(5)],
            vec![0, 0, 0, 0],
        ),
        leapfrog(vec![ts_leaf(3), ts_leaf(4), ts_leaf(5)], vec![0, 0, 0]),
        leapfrog(vec![vp_leaf(5), ts_leaf(4), vp_leaf(3)], vec![0, 0, 0]),
    ]
}

/// Tentpole bit-equivalence: the leapfrog kernel's output is
/// indistinguishable from the binary merge-join fold's — same rows, same
/// order — in every state, and the dispatch counters prove which path
/// ran: the kernel on clean sorted inputs, the fold while a pending
/// insert breaks an input's order claim, the kernel again after the
/// merge restores it.
#[test]
fn leapfrog_matches_its_binary_fold_bit_identically() {
    let data = star_triples();
    for compress in [true, false] {
        for threads in [1usize, 2, 8] {
            let m = StorageManager::new(MachineProfile::B);
            let mut e = ColumnEngine::new();
            e.set_threads(threads);
            e.load_triple_store(&m, &data, SortOrder::Spo, compress);
            e.load_vertical(&m, &data, compress);
            // Disable re-enumeration so the fold plan executes as
            // written — the A/B is kernel vs fold, not planner vs
            // planner.
            e.set_cbo(false);

            let mut live = data.clone();
            for (state, delta) in [
                ("clean", None),
                // An insert on property 3 downgrades that scan's order
                // claim until the merge folds it in.
                ("pending", Some(Triple::new(7, 3, 999))),
                ("merged", None),
            ] {
                if let Some(t) = delta {
                    e.apply(&m, Delta::new().insert(t)).expect("applies");
                    live.push(t);
                } else if state == "merged" {
                    e.merge(&m).expect("merges");
                }
                for (i, plan) in star_plans().iter().enumerate() {
                    let (inputs, cols) = match plan {
                        Plan::LeapfrogJoin { inputs, cols } => (inputs, cols),
                        _ => unreachable!("star_plans emits leapfrog roots"),
                    };
                    let fold = leapfrog_fold(inputs, cols);
                    e.reset_exec_stats();
                    let a = e.execute(plan).expect("leapfrog plan").to_rows();
                    let dispatched = e.exec_stats().leapfrog_dispatches;
                    let b = e.execute(&fold).expect("fold plan").to_rows();
                    if state == "pending" {
                        // The submitted fold is still rotated by the
                        // heuristic, and with property 3's order claim
                        // downgraded the rotation may legally pick a
                        // different join order — same rows, different
                        // order. Compare as multisets here; the
                        // bit-exact contract is pinned where the kernel
                        // dispatches.
                        assert_eq!(
                            naive::normalize(a.clone()),
                            naive::normalize(b),
                            "star {i} (pending, compress={compress}, threads={threads}): \
                             fallback and fold answers differ"
                        );
                        assert_eq!(
                            dispatched, 0,
                            "star {i}: pending insert on p3 must force the fold"
                        );
                    } else {
                        assert_eq!(
                            a, b,
                            "star {i} ({state}, compress={compress}, threads={threads}): \
                             kernel and fold rows differ"
                        );
                        assert_eq!(
                            dispatched, 1,
                            "star {i} ({state}): expected the leapfrog kernel"
                        );
                    }
                    assert_eq!(
                        naive::normalize(a),
                        naive::normalize(naive::execute(plan, &live)),
                        "star {i} ({state}): wrong answers vs naive"
                    );
                }
            }
        }
    }
}

/// A/B: cost-based enumeration answers exactly like the rotation
/// heuristic on all twelve benchmark queries, in every column layout ×
/// compression cell.
#[test]
fn cbo_answers_match_the_rotation_baseline() {
    let ds = swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0004,
        seed: 77,
        n_properties: 40,
    });
    let qctx = QueryContext::from_dataset(&ds, 10);
    let m = StorageManager::new(MachineProfile::B);
    for layout in [
        Some(SortOrder::Spo),
        Some(SortOrder::Pso),
        None, // vertically partitioned
    ] {
        for compress in [true, false] {
            let mut cbo = ColumnEngine::new();
            let mut heur = ColumnEngine::new();
            heur.set_cbo(false);
            assert!(cbo.cbo() && !heur.cbo());
            let scheme = match layout {
                Some(order) => {
                    cbo.load_triple_store(&m, &ds.triples, order, compress);
                    heur.load_triple_store(&m, &ds.triples, order, compress);
                    swans_plan::Scheme::TripleStore
                }
                None => {
                    cbo.load_vertical(&m, &ds.triples, compress);
                    heur.load_vertical(&m, &ds.triples, compress);
                    swans_plan::Scheme::VerticallyPartitioned
                }
            };
            for q in QueryId::ALL {
                let plan = build_plan(q, scheme, &qctx);
                let a = cbo.execute(&plan).expect("cbo run").to_rows();
                let b = heur.execute(&plan).expect("heuristic run").to_rows();
                assert_eq!(
                    naive::normalize(a),
                    naive::normalize(b),
                    "{q} ({layout:?}, compress={compress}): cbo and heuristic disagree"
                );
            }
            assert_eq!(heur.exec_stats().leapfrog_dispatches, 0);
        }
    }
}

/// The enumerator actually *reaches* the leapfrog kernel through a
/// submitted binary join chain: on a selective subject star — submitted
/// in its worst order, dense arms first — enumeration collapses the
/// chain into a [`Plan::LeapfrogJoin`] (clearing the plan-change
/// hysteresis margin), the kernel dispatches, and answers match the
/// heuristic engine's.
#[test]
fn enumeration_collapses_a_selective_star_into_leapfrog() {
    let data = star_triples();
    let m = StorageManager::new(MachineProfile::B);
    let mut cbo = ColumnEngine::new();
    cbo.load_vertical(&m, &data, true);
    let mut heur = ColumnEngine::new();
    heur.set_cbo(false);
    heur.load_vertical(&m, &data, true);
    // Dense arms 3 and 4 joined first, the sparse property-6 arm last.
    let chain = join(
        join(join(vp_leaf(3), vp_leaf(4), 0, 0), vp_leaf(5), 0, 0),
        vp_leaf(6),
        0,
        0,
    );
    let a = cbo.execute(&chain).expect("cbo run").to_rows();
    assert!(
        cbo.exec_stats().leapfrog_dispatches >= 1,
        "enumeration kept the binary fold on a selective star"
    );
    let b = heur.execute(&chain).expect("heuristic run").to_rows();
    assert_eq!(heur.exec_stats().leapfrog_dispatches, 0);
    assert_eq!(naive::normalize(a), naive::normalize(b));
}

const ID_SPACE: u64 = 6;

fn gen_leaf(rng: &mut StdRng) -> Plan {
    let opt = |rng: &mut StdRng| (rng.random() < 0.3).then(|| rng.next_u64() % ID_SPACE);
    if rng.random() < 0.5 {
        Plan::ScanTriples {
            s: opt(rng),
            p: opt(rng),
            o: opt(rng),
        }
    } else {
        Plan::ScanProperty {
            property: rng.next_u64() % ID_SPACE,
            s: opt(rng),
            o: opt(rng),
            emit_property: rng.random() < 0.5,
        }
    }
}

/// A random left-deep-or-bushy join chain of 2–5 leaves.
fn gen_join_chain(rng: &mut StdRng) -> Plan {
    let n = 2 + (rng.next_u64() % 4) as usize;
    let mut acc = gen_leaf(rng);
    for _ in 1..n {
        let right = gen_leaf(rng);
        let lc = (rng.next_u64() as usize) % acc.arity();
        let rc = (rng.next_u64() as usize) % right.arity();
        acc = if rng.random() < 0.2 {
            // Occasionally bushy: the chain goes under the right side.
            join(right, acc, rc, lc)
        } else {
            join(acc, right, lc, rc)
        };
    }
    acc
}

/// Hand-rolled proptest: under the cost model, enumeration never loses
/// to the rotation heuristic; every enumerated plan verifies; answers
/// are unchanged.
#[test]
fn enumerated_plans_never_cost_more_than_the_heuristic() {
    let mut rng = StdRng::seed_from_u64(0xC0_57_B0);
    let mut improved = 0usize;
    for round in 0..120 {
        let triples: Vec<Triple> = (0..rng.random_range(20..80))
            .map(|_| {
                Triple::new(
                    rng.next_u64() % ID_SPACE,
                    rng.next_u64() % ID_SPACE,
                    rng.next_u64() % ID_SPACE,
                )
            })
            .collect();
        let m = StorageManager::new(MachineProfile::B);
        let mut e = ColumnEngine::new();
        e.load_triple_store(&m, &triples, SortOrder::Pso, true);
        e.load_vertical(&m, &triples, true);
        let ctx = e.props_ctx();

        let plan = gen_join_chain(&mut rng);
        assert_eq!(plan.validate(), Ok(()), "round {round}");
        let enumerated = optimize_cbo(plan.clone(), &ctx);
        let rotated = reorder_joins(plan.clone(), &ctx);

        let ce = cost(&enumerated, &ctx);
        let cr = cost(&rotated, &ctx);
        assert!(
            ce <= cr * (1.0 + 1e-9),
            "round {round}: enumerated plan costs {ce}, heuristic {cr}\n{}",
            plan.explain()
        );
        if ce < cr {
            improved += 1;
        }
        verify(&enumerated, &ctx)
            .unwrap_or_else(|e| panic!("round {round}: enumerated plan fails verify: {e}"));
        assert_eq!(
            naive::normalize(naive::execute(&enumerated, &triples)),
            naive::normalize(naive::execute(&plan, &triples)),
            "round {round}: enumeration changed answers"
        );
        // The engine executes the enumerated form identically too.
        assert_eq!(
            naive::normalize(e.execute(&plan).expect("executes").to_rows()),
            naive::normalize(naive::execute(&plan, &triples)),
            "round {round}: engine answers diverge"
        );
    }
    assert!(
        improved > 10,
        "enumeration only improved {improved}/120 plans — suspiciously idle"
    );
}

/// The CI regression gate: root-cardinality q-error across the full
/// 12-query × 6-configuration benchmark suite stays under the committed
/// threshold, clean and with a pending delta. Row-engine configurations
/// publish no statistics catalog and are exercised for absence: their
/// contexts must report `stats: None` so EXPLAIN stays estimate-free.
#[test]
fn q_error_stays_under_the_committed_gate() {
    let ds: Dataset = swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0004,
        seed: 31,
        n_properties: 32,
    });
    let qctx = QueryContext::from_dataset(&ds, 28);
    let mut errors: Vec<(f64, String)> = Vec::new();
    let mut gated = 0usize;
    for config in all_configs() {
        let label = config.label();
        let db = swans_core::Database::open(ds.clone(), config).expect("opens");
        for state in ["clean", "pending"] {
            if state == "pending" {
                db.insert([("<q-s1>", "<q-p>", "<q-o>")]).expect("inserts");
            }
            let ctx = db.explain_context();
            let scheme = db.config().layout.scheme();
            for q in QueryId::ALL {
                let plan = build_plan(q, scheme, &qctx);
                let actual = db.execute_plan(&plan).expect("runs").len();
                let Some(_) = ctx.stats.as_ref() else {
                    // Row engine: no catalog, no estimates to gate.
                    continue;
                };
                let est = estimate_rows(&plan, &ctx).max(1.0);
                let q_err = (est / actual.max(1) as f64).max(actual.max(1) as f64 / est);
                gated += 1;
                errors.push((
                    q_err,
                    format!("{label}/{state}/{q} est={est} actual={actual}"),
                ));
            }
        }
    }
    assert!(gated >= 72, "gate covered only {gated} plan executions");
    errors.sort_by(|a, b| b.0.total_cmp(&a.0));
    for (q_err, site) in errors.iter().take(5) {
        eprintln!("[cost_model] q-error {q_err:.2} at {site}");
    }
    let (worst, site) = &errors[0];
    assert!(
        *worst <= MAX_Q_ERROR,
        "q-error regression: {worst} > {MAX_Q_ERROR} at {site}"
    );
}
