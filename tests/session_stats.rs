//! Per-session execution accounting: concurrent sessions must not
//! cross-contaminate their dispatch counters. Each [`swans_core::Session`]
//! runs on a private engine fork with zeroed counters, so a session's
//! `stat_counters()` reflect exactly its *own* queries — verified here by
//! diffing two concurrent sessions' counters against sequential twins of
//! the same workloads.

use std::collections::BTreeMap;

use swans_core::{Database, Layout, Session, StoreConfig};
use swans_rdf::Dataset;

const JOIN_Q: &str = "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <language> ?l }";
const SCAN_Q: &str = "SELECT ?s ?o WHERE { ?s <title> ?o }";

fn db() -> Database {
    let ds: Dataset = swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0004,
        seed: 17,
        n_properties: 30,
    });
    Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned)).expect("opens")
}

fn counters(session: &Session) -> BTreeMap<&'static str, u64> {
    session.stat_counters().into_iter().collect()
}

fn run_n(session: &Session, q: &str, n: usize) {
    for _ in 0..n {
        session.query(q).expect("query runs");
    }
}

#[test]
fn concurrent_sessions_do_not_cross_contaminate_dispatch_counters() {
    let db = db();

    // Sequential twins: what each workload costs when run alone.
    let seq_a = {
        let s = db.session().expect("forks");
        run_n(&s, JOIN_Q, 3);
        counters(&s)
    };
    let seq_b = {
        let s = db.session().expect("forks");
        run_n(&s, SCAN_Q, 1);
        counters(&s)
    };
    assert_ne!(
        seq_a, seq_b,
        "the two workloads must differ, or contamination would be invisible"
    );
    assert!(
        seq_a.values().any(|&v| v > 0),
        "the join workload must dispatch something: {seq_a:?}"
    );

    // The same two workloads, concurrently, interleaved hard.
    let (con_a, con_b) = std::thread::scope(|scope| {
        let db = &db;
        let a = scope.spawn(move || {
            let s = db.session().expect("forks");
            run_n(&s, JOIN_Q, 3);
            counters(&s)
        });
        let b = scope.spawn(move || {
            let s = db.session().expect("forks");
            run_n(&s, SCAN_Q, 1);
            counters(&s)
        });
        (a.join().expect("A"), b.join().expect("B"))
    });

    assert_eq!(
        con_a, seq_a,
        "session A's counters changed because B ran next to it"
    );
    assert_eq!(
        con_b, seq_b,
        "session B's counters changed because A ran next to it"
    );

    // A brand-new session starts from zero — nothing leaks across forks.
    let fresh = counters(&db.session().expect("forks"));
    assert!(
        fresh.values().all(|&v| v == 0),
        "a fresh session must start with zeroed counters: {fresh:?}"
    );
}

/// The writer's queries don't show up in sessions either: `db.query` runs
/// on the published snapshot's fork (or the writer engine), never on a
/// session's private fork.
#[test]
fn database_level_queries_leave_sessions_untouched() {
    let db = db();
    let session = db.session().expect("forks");
    run_n(&session, JOIN_Q, 1);
    let before = counters(&session);
    for _ in 0..4 {
        db.query(JOIN_Q).expect("front-door query");
        db.query(SCAN_Q).expect("front-door query");
    }
    assert_eq!(
        counters(&session),
        before,
        "front-door traffic contaminated a pinned session's counters"
    );
}
