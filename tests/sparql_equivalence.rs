//! Hand-written SPARQL == the benchmark generator.
//!
//! The paper's benchmark queries exist twice in this system: as logical
//! plans built by the generator (`swans_plan::queries::build_plan`, the
//! analogue of the paper's Perl script) and — for the shapes the SPARQL
//! subset can express — as plain query strings. This test pins their
//! equivalence: for q1, q2, q5 and q8, the string through
//! [`Database::query`] returns exactly the answers of the generated plan
//! through the benchmark path, on **all six engine × layout
//! configurations**, compared after decoding ids to term strings.

use swans_core::{normalize_result, Database, Layout, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::algebra::ColumnKind;
use swans_plan::queries::{build_plan, vocab, QueryContext, QueryId};
use swans_rdf::{Dataset, SortOrder};

fn all_configs() -> Vec<StoreConfig> {
    vec![
        StoreConfig::row(Layout::TripleStore(SortOrder::Spo)),
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
        StoreConfig::row(Layout::VerticallyPartitioned),
        StoreConfig::column(Layout::TripleStore(SortOrder::Spo)),
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        StoreConfig::column(Layout::VerticallyPartitioned),
    ]
}

/// Decodes normalized benchmark rows with the plan's own column kinds:
/// term ids through the dictionary, counts as numbers — the same rule
/// `ResultSet` applies.
fn decode(ds: &Dataset, kinds: &[ColumnKind], rows: &[Vec<u64>]) -> Vec<Vec<String>> {
    let mut out: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            r.iter()
                .zip(kinds)
                .map(|(&v, kind)| match kind {
                    ColumnKind::Term => ds.dict.term(v).to_string(),
                    ColumnKind::Count => v.to_string(),
                })
                .collect()
        })
        .collect();
    out.sort();
    out
}

/// The four benchmark queries the SPARQL subset can express, as strings.
/// q2's 28-interesting-properties restriction is spelled as a `FILTER IN`
/// over the context's property list.
fn sparql_for(q: QueryId, ds: &Dataset, ctx: &QueryContext) -> String {
    match q {
        // SELECT A.obj, count(*) FROM triples A WHERE A.prop = <type>
        // GROUP BY A.obj
        QueryId::Q1 => format!(
            "SELECT ?class (COUNT(*) AS ?n) WHERE {{ ?s {} ?class }} GROUP BY ?class",
            vocab::TYPE
        ),
        // A(type=Text) join-on-subject B, B.prop restricted to the
        // interesting list, GROUP BY B.prop.
        QueryId::Q2 => {
            let interesting: Vec<&str> = ctx.interesting.iter().map(|&p| ds.dict.term(p)).collect();
            format!(
                "SELECT ?p (COUNT(*) AS ?n) WHERE {{ \
                     ?s {} {} . \
                     ?s ?p ?o . \
                     FILTER(?p IN ({})) \
                 }} GROUP BY ?p",
                vocab::TYPE,
                vocab::TEXT,
                interesting.join(", ")
            )
        }
        // A(origin=DLC) ⋈s B(records); B.obj = C.subj; C(type != Text);
        // SELECT B.subj, C.obj.
        QueryId::Q5 => format!(
            "SELECT ?a ?obj WHERE {{ \
                 ?a {} {} . \
                 ?a {} ?b . \
                 ?b {} ?obj . \
                 FILTER(?obj != {}) \
             }}",
            vocab::ORIGIN,
            vocab::DLC,
            vocab::RECORDS,
            vocab::TYPE,
            vocab::TEXT
        ),
        // Subjects sharing an object with <conferences> (join pattern B).
        QueryId::Q8 => format!(
            "SELECT ?other WHERE {{ \
                 {} ?p ?o . \
                 ?other ?q ?o . \
                 FILTER(?other != {}) \
             }}",
            vocab::CONFERENCES,
            vocab::CONFERENCES
        ),
        other => panic!("{other} is outside the expressible subset"),
    }
}

#[test]
fn sparql_strings_match_generated_plans_on_all_six_configurations() {
    let ds = generate(&BartonConfig {
        scale: 0.0005, // ~25k triples
        seed: 404,
        n_properties: 60,
    });
    let ctx = QueryContext::from_dataset(&ds, 28);
    let queries = [QueryId::Q1, QueryId::Q2, QueryId::Q5, QueryId::Q8];

    for q in queries {
        let sparql = sparql_for(q, &ds, &ctx);
        // Reference: the generated triple-store plan decoded with its own
        // schema kinds.
        let reference_plan = build_plan(q, swans_plan::Scheme::TripleStore, &ctx);
        let reference_kinds = reference_plan.output_kinds();
        let mut cross_config: Option<Vec<Vec<String>>> = None;

        for config in all_configs() {
            let label = config.label();
            let db = Database::open(ds.clone(), config).expect("config opens");

            // Benchmark path: generator plan, this configuration.
            let bench = decode(
                &ds,
                &reference_kinds,
                &normalize_result(q, db.run_benchmark(q, &ctx).rows),
            );

            // Front-door path: the hand-written string.
            let results = db
                .query(&sparql)
                .unwrap_or_else(|e| panic!("{q} on {label}: {e}"));
            let kinds = results.kinds().to_vec();
            let decoded = decode(&ds, &kinds, &normalize_result(q, results.into_ids()));

            assert_eq!(
                decoded, bench,
                "{q} via SPARQL disagrees with the benchmark path on {label}"
            );
            match &cross_config {
                None => cross_config = Some(decoded),
                Some(r) => assert_eq!(
                    r, &decoded,
                    "{q} via SPARQL differs across configurations at {label}"
                ),
            }
        }
    }
}
