//! Concurrency torture suite: N reader threads × 1 writer on every
//! engine × layout configuration at pool widths {1, 2, 8}.
//!
//! The writer applies an ordered sequence of acknowledged batches —
//! inserts, tombstone deletes, merges, checkpoints — while readers
//! continuously open snapshot sessions and re-run the same query. The
//! invariants under test are exactly the snapshot-publication contract:
//!
//! * **prefix**: every reader observes exactly the batches `0..=j` for
//!   some `j` — never a later batch without all earlier ones;
//! * **never torn**: a batch is observed with *all* of its triples or
//!   none of them (readers see commit boundaries, not intermediate
//!   engine state);
//! * **never regressing**: the observed prefix length and the snapshot
//!   version are monotone per reader, and bit-stable within one pinned
//!   session;
//! * **sequential twin**: when the dust settles, the tortured database
//!   answers identically to a twin that applied the same batches with no
//!   concurrency at all — on every configuration.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

use swans_bench::updates::configs as all_configs;
use swans_core::{Database, StoreConfig};
use swans_rdf::Dataset;

/// Pool widths under test (engine-internal parallelism × serving
/// concurrency).
const WIDTHS: [usize; 3] = [1, 2, 8];
/// Triples per batch (beyond the churn triple) — the tear detector.
const PAYLOAD: usize = 3;

/// Quick mode (`SWANS_SERVE_QUICK=1`): fewer batches and readers, one
/// width. CI's sanitizer job runs this suite under ThreadSanitizer, where
/// every access is instrumented; the interleavings are what matter there,
/// not the volume.
fn quick() -> bool {
    std::env::var_os("SWANS_SERVE_QUICK").is_some_and(|v| v == "1")
}

fn n_batches() -> usize {
    if quick() {
        10
    } else {
        24
    }
}

fn n_readers() -> usize {
    if quick() {
        2
    } else {
        3
    }
}

/// The seed data set carries batch 0, so every term the readers' query
/// mentions is in the dictionary from version 1 on.
fn seed_dataset() -> Dataset {
    let mut ds = Dataset::new();
    for (s, p, o) in batch_triples(0) {
        ds.add(&s, &p, &o);
    }
    ds.add("<other>", "<type>", "<Text>");
    ds
}

fn batch_subject(k: usize) -> String {
    format!("<batch-{k:04}>")
}

/// Batch `k`: `PAYLOAD` payload triples on one subject (all-or-nothing
/// visibility is checked per subject) plus one churn triple that later
/// batches tombstone.
fn batch_triples(k: usize) -> Vec<(String, String, String)> {
    let s = batch_subject(k);
    let mut triples: Vec<(String, String, String)> = (0..PAYLOAD)
        .map(|i| (s.clone(), "<payload>".to_string(), format!("<item-{i}>")))
        .collect();
    triples.push((
        format!("<vol-{k:04}>"),
        "<volatile>".to_string(),
        "<x>".to_string(),
    ));
    triples
}

const OBSERVE: &str = "SELECT ?b ?o WHERE { ?b <payload> ?o }";
const CHURN: &str = "SELECT ?v ?o WHERE { ?v <volatile> ?o }";

/// Parses one observation into `batch index → item count`, asserting the
/// tear detector on the way.
fn observed_prefix(rows: &[Vec<String>], label: &str) -> usize {
    let mut per_batch: BTreeMap<usize, usize> = BTreeMap::new();
    for row in rows {
        let b = row[0]
            .strip_prefix("<batch-")
            .and_then(|r| r.strip_suffix('>'))
            .and_then(|r| r.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("{label}: unexpected subject {:?}", row[0]));
        *per_batch.entry(b).or_default() += 1;
    }
    let mut expect = 0usize;
    for (&b, &count) in &per_batch {
        assert_eq!(b, expect, "{label}: gap in observed batches — not a prefix");
        assert_eq!(
            count, PAYLOAD,
            "{label}: batch {b} observed torn ({count}/{PAYLOAD} triples)"
        );
        expect += 1;
    }
    assert!(
        expect > 0,
        "{label}: batch 0 is in the seed and must be seen"
    );
    expect
}

/// One torture run: spawn the readers, drive the writer, join, then diff
/// the end state against a sequentially built twin.
fn torture(db: &Database, config: &StoreConfig, label: &str) {
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        // ---- readers -------------------------------------------------
        for r in 0..n_readers() {
            let done = &done;
            let label = format!("{label} reader {r}");
            scope.spawn(move || {
                let mut last_prefix = 1;
                let mut last_version = 0;
                let mut iterations = 0u32;
                while !done.load(Ordering::Acquire) || iterations < 2 {
                    iterations += 1;
                    let session = db.session().expect("built-in engines fork");
                    assert!(
                        session.version() >= last_version,
                        "{label}: version regressed {last_version} -> {}",
                        session.version()
                    );
                    last_version = session.version();
                    let first = session.query(OBSERVE).expect("observe").decoded();
                    let prefix = observed_prefix(&first, &label);
                    assert!(
                        prefix >= last_prefix,
                        "{label}: prefix regressed {last_prefix} -> {prefix}"
                    );
                    last_prefix = prefix;
                    // Bit-stable within the pinned session, whatever the
                    // writer publishes meanwhile.
                    let again = session.query(OBSERVE).expect("observe").decoded();
                    assert_eq!(first, again, "{label}: a pinned session wavered");
                }
            });
        }

        // ---- the writer ---------------------------------------------
        for k in 1..=n_batches() {
            let triples = batch_triples(k);
            db.insert(triples.iter().map(|(s, p, o)| (&**s, &**p, &**o)))
                .expect("insert batch");
            if k % 3 == 0 {
                // Tombstone an older churn triple (never payload: the
                // prefix invariant is on payload only).
                let vol = format!("<vol-{:04}>", k - 2);
                db.delete([(vol.as_str(), "<volatile>", "<x>")])
                    .expect("delete churn");
            }
            if k % 4 == 0 {
                db.merge().expect("merge");
            }
            if k % 5 == 0 {
                db.checkpoint().expect("checkpoint");
            }
        }
        done.store(true, Ordering::Release);
    });

    // ---- sequential twin ---------------------------------------------
    let twin = Database::open(seed_dataset(), config.clone()).expect("twin opens");
    for k in 1..=n_batches() {
        let triples = batch_triples(k);
        twin.insert(triples.iter().map(|(s, p, o)| (&**s, &**p, &**o)))
            .expect("twin insert");
        if k % 3 == 0 {
            let vol = format!("<vol-{:04}>", k - 2);
            twin.delete([(vol.as_str(), "<volatile>", "<x>")])
                .expect("twin delete");
        }
        if k % 4 == 0 {
            twin.merge().expect("twin merge");
        }
    }
    for q in [OBSERVE, CHURN] {
        let mut got = db.query(q).expect("final query").decoded();
        let mut want = twin.query(q).expect("twin query").decoded();
        got.sort();
        want.sort();
        assert_eq!(
            got, want,
            "{label}: concurrent end state != sequential twin"
        );
    }
    assert_eq!(
        observed_prefix(&db.query(OBSERVE).expect("final").decoded(), label),
        n_batches() + 1,
        "{label}: final state must contain every acknowledged batch"
    );
}

/// The full matrix: 6 configurations × 3 widths (1 × 1 in quick mode),
/// in-memory.
#[test]
fn readers_observe_exact_prefixes_on_every_config_and_width() {
    let configs = all_configs();
    let (configs, widths): (Vec<StoreConfig>, &[usize]) = if quick() {
        (configs.into_iter().take(2).collect(), &WIDTHS[1..2])
    } else {
        (configs, &WIDTHS[..])
    };
    for config in &configs {
        for &w in widths {
            let config = config.clone().with_threads(w);
            let label = format!("{} @{w}T", config.label());
            let db = Database::open(seed_dataset(), config.clone()).expect("opens");
            torture(&db, &config, &label);
        }
    }
}

/// The same torture on a durable database: checkpoints are real (WAL
/// truncation under concurrent readers), and the end state survives a
/// reopen.
#[test]
#[cfg_attr(miri, ignore)] // real file I/O
fn durable_torture_checkpoints_and_reopens() {
    use swans_core::{DurabilityOptions, Layout};

    let dir = std::env::temp_dir().join(format!("swans-serve-torture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StoreConfig::column(Layout::VerticallyPartitioned).with_threads(2);
    let db = Database::import_at(
        &dir,
        seed_dataset(),
        config.clone(),
        DurabilityOptions::default(),
    )
    .expect("imports");
    torture(&db, &config, "durable column vert/SO @2T");
    drop(db);

    let db = Database::open_at(&dir, config).expect("reopens");
    assert_eq!(
        observed_prefix(
            &db.query(OBSERVE).expect("recovered query").decoded(),
            "durable reopen"
        ),
        n_batches() + 1,
        "every acknowledged batch survives the reopen"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
