//! The crash matrix: every acknowledged batch survives recovery, no torn
//! batch half-applies, and the recovered database is indistinguishable —
//! all 12 benchmark queries, all 6 engine × layout configurations — from a
//! twin that never crashed.
//!
//! The harness runs a mixed insert/delete/merge/checkpoint workload
//! against a durable database with an armed [`FaultState`], sweeping every
//! fault-injection point (every write, fsync, truncation and rename the
//! durability layer performs) × every fault kind (crash, torn write,
//! silent bit flip, transient I/O error). Each trial kills the process
//! model mid-workload, reopens the directory fault-free, and checks
//! *prefix consistency*: the recovered state is `apply(acked batches)` or
//! `apply(acked batches + the one in-flight batch)` — nothing less (an
//! acknowledged batch vanished), nothing else (a batch half-applied).
//!
//! `SWANS_CRASH_QUICK=1` thins the sweep for CI smoke runs (every other
//! injection point, crash + torn-write kinds only).

use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use swans_bench::updates::configs as all_configs;
use swans_core::{normalize_result, Database, DurabilityOptions, Error, Layout, StoreConfig};
use swans_plan::queries::{vocab, QueryId};
use swans_rdf::{Dataset, SortOrder};
use swans_storage::{FaultKind, FaultPolicy, FaultState, SNAPSHOT_FILE, WAL_FILE};

type Term3 = (String, String, String);

fn quick() -> bool {
    matches!(std::env::var("SWANS_CRASH_QUICK"), Ok(v) if !v.is_empty() && v != "0")
}

fn scratch(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "swans-crash-{}-{}-{}",
        tag,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Copies a pristine durable directory (snapshot + WAL) into `dst` — much
/// cheaper than re-importing the seed data set for every trial.
fn clone_dir(seed: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).expect("creates trial dir");
    for name in [SNAPSHOT_FILE, WAL_FILE] {
        let src = seed.join(name);
        if src.exists() {
            std::fs::copy(&src, dst.join(name)).expect("copies seed file");
        }
    }
}

fn base_dataset() -> Dataset {
    swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0002, // ~10k triples
        seed: 41,
        n_properties: 40,
    })
}

/// One step of the workload, at the *term* level: dictionary ids may come
/// out differently after a recovery (orphaned terms of unacknowledged
/// batches legitimately survive), so the ground truth is a bag of term
/// triples, never of ids.
enum WorkOp {
    Insert(Vec<Term3>),
    Delete(Vec<Term3>),
    Merge,
    Checkpoint,
}

impl WorkOp {
    fn is_batch(&self) -> bool {
        matches!(self, WorkOp::Insert(_) | WorkOp::Delete(_))
    }

    fn label(&self) -> &'static str {
        match self {
            WorkOp::Insert(_) => "insert",
            WorkOp::Delete(_) => "delete",
            WorkOp::Merge => "merge",
            WorkOp::Checkpoint => "checkpoint",
        }
    }
}

/// A mixed workload derived from the data set so mutations hit the
/// benchmark queries' own properties, with a mid-stream engine merge and
/// an explicit checkpoint so the sweep crosses the snapshot-publication
/// and WAL-truncation windows, not just plain appends.
fn workload(ds: &Dataset) -> Vec<WorkOp> {
    let decode = |i: usize| {
        let t = ds.triples[i];
        (
            ds.dict.term(t.s).to_string(),
            ds.dict.term(t.p).to_string(),
            ds.dict.term(t.o).to_string(),
        )
    };
    let ins1: Vec<Term3> = (0..30)
        .flat_map(|i| {
            let s = format!("<upd-s{i}>");
            [
                (s.clone(), vocab::TYPE.to_string(), vocab::TEXT.to_string()),
                (
                    s.clone(),
                    vocab::LANGUAGE.to_string(),
                    vocab::FRENCH.to_string(),
                ),
                (s, vocab::ORIGIN.to_string(), vocab::DLC.to_string()),
            ]
        })
        .collect();
    let dels1: Vec<Term3> = (0..ds.len()).step_by(97).map(decode).collect();
    let ins2: Vec<Term3> = (0..20)
        .map(|i| {
            (
                format!("<upd-s{i}>"),
                "<updated-by>".to_string(),
                "\"writer\"".to_string(),
            )
        })
        .collect();
    let dels2: Vec<Term3> = (0..30)
        .step_by(2)
        .map(|i| {
            (
                format!("<upd-s{i}>"),
                vocab::LANGUAGE.to_string(),
                vocab::FRENCH.to_string(),
            )
        })
        .collect();
    let ins3: Vec<Term3> = (0..15)
        .map(|i| {
            (
                format!("<late-s{i}>"),
                vocab::TYPE.to_string(),
                vocab::TEXT.to_string(),
            )
        })
        .collect();
    let dels3: Vec<Term3> = (0..ds.len()).skip(50).step_by(131).map(decode).collect();
    vec![
        WorkOp::Insert(ins1),
        WorkOp::Delete(dels1),
        WorkOp::Merge,
        WorkOp::Insert(ins2),
        WorkOp::Delete(dels2),
        WorkOp::Checkpoint,
        WorkOp::Insert(ins3),
        WorkOp::Delete(dels3),
    ]
}

fn run_op(db: &Database, op: &WorkOp) -> Result<(), Error> {
    fn strs(ts: &[Term3]) -> impl Iterator<Item = (&str, &str, &str)> {
        ts.iter()
            .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str()))
    }
    match op {
        WorkOp::Insert(ts) => db.insert(strs(ts)).map(|_| ()),
        WorkOp::Delete(ts) => db.delete(strs(ts)).map(|_| ()),
        WorkOp::Merge => db.merge(),
        WorkOp::Checkpoint => db.checkpoint(),
    }
}

/// Applies `op` to the term-level model with [`Dataset::apply`]'s
/// semantics: inserts extend the bag, a delete removes *every* copy of
/// each named triple, merges and checkpoints change nothing logical.
fn model_apply(bag: &mut Vec<Term3>, op: &WorkOp) {
    match op {
        WorkOp::Insert(ts) => bag.extend(ts.iter().cloned()),
        WorkOp::Delete(ts) => bag.retain(|t| !ts.contains(t)),
        WorkOp::Merge | WorkOp::Checkpoint => {}
    }
}

fn canon(mut bag: Vec<Term3>) -> Vec<Term3> {
    bag.sort_unstable();
    bag
}

fn db_bag(db: &Database) -> Vec<Term3> {
    let ds = db.dataset();
    canon(
        ds.triples
            .iter()
            .map(|t| {
                (
                    ds.dict.term(t.s).to_string(),
                    ds.dict.term(t.p).to_string(),
                    ds.dict.term(t.o).to_string(),
                )
            })
            .collect(),
    )
}

fn run_all(db: &Database, ctx: &swans_plan::queries::QueryContext) -> Vec<Vec<Vec<u64>>> {
    QueryId::ALL
        .iter()
        .map(|&q| normalize_result(q, db.run_benchmark(q, ctx).rows))
        .collect()
}

/// The twin check for one recovered directory: every configuration
/// answers all 12 queries identically, and a never-crashed database
/// bulk-loaded with the recovered data set cannot be told apart.
fn verify_against_twins(dir: &Path) {
    let mut reference: Option<Vec<Vec<Vec<u64>>>> = None;
    for config in all_configs() {
        let db = Database::open_at(dir, config.clone()).expect("recovered dir reopens");
        let ctx = db.benchmark_context(28);
        let answers = run_all(&db, &ctx);
        let twin = Database::open(db.dataset(), config.clone()).expect("twin bulk-loads");
        assert_eq!(
            run_all(&twin, &ctx),
            answers,
            "{}: a never-crashed twin of the recovered state disagrees",
            config.label()
        );
        match &reference {
            None => reference = Some(answers),
            Some(r) => assert_eq!(
                &answers,
                r,
                "{}: recovered directory answers differently under this configuration",
                config.label()
            ),
        }
    }
}

#[derive(Clone, Copy)]
enum KindTag {
    Crash,
    Torn,
    Flip,
    Err,
}

/// Torn lengths and flipped bits vary with the injection index so the
/// sweep covers many positions within the faulted buffers.
fn kind_for(tag: KindTag, i: u64) -> FaultKind {
    match tag {
        KindTag::Crash => FaultKind::CrashBefore,
        KindTag::Torn => FaultKind::Torn {
            keep: (i as usize).wrapping_mul(7) % 29,
        },
        KindTag::Flip => FaultKind::FlipBit {
            bit: i.wrapping_mul(2_654_435_761),
        },
        KindTag::Err => FaultKind::Error,
    }
}

/// The crash matrix itself. For every injection point × fault kind:
/// run the workload until the fault kills (or errors) the process model,
/// reopen fault-free, and assert prefix consistency. Distinct recovered
/// states are then each proven equivalent to a never-crashed twin on all
/// 12 queries × 6 configurations.
#[test]
#[cfg_attr(miri, ignore)] // real file I/O, large sweep
fn crash_matrix_recovers_a_consistent_prefix_at_every_injection_point() {
    let ds = base_dataset();
    let ops = workload(&ds);
    let config = StoreConfig::column(Layout::TripleStore(SortOrder::Spo));

    // The term-level ground truth after each workload prefix.
    let mut bag: Vec<Term3> = (0..ds.len())
        .map(|i| {
            let t = ds.triples[i];
            (
                ds.dict.term(t.s).to_string(),
                ds.dict.term(t.p).to_string(),
                ds.dict.term(t.o).to_string(),
            )
        })
        .collect();
    let mut states: Vec<Vec<Term3>> = vec![canon(bag.clone())];
    for op in &ops {
        model_apply(&mut bag, op);
        states.push(canon(bag.clone()));
    }

    // Seed directory: the imported base data set, checkpointed.
    let seed = scratch("seed");
    drop(
        Database::import_at(&seed, ds, config.clone(), DurabilityOptions::default())
            .expect("seed imports"),
    );

    // Dry run on a copy: count the faultable operations the workload
    // performs and sanity-check the model against a crash-free run.
    let total_ops = {
        let dir = scratch("dry");
        clone_dir(&seed, &dir);
        let faults = FaultState::new();
        let db = Database::open_at_with(
            &dir,
            config.clone(),
            DurabilityOptions {
                faults: Some(faults.clone()),
                ..DurabilityOptions::default()
            },
        )
        .expect("dry run opens");
        for op in &ops {
            run_op(&db, op).expect("dry run is fault-free");
        }
        assert_eq!(
            db_bag(&db),
            *states.last().expect("states nonempty"),
            "the term-level model disagrees with a crash-free run"
        );
        let _ = std::fs::remove_dir_all(&dir);
        faults.ops()
    };
    assert!(
        total_ops >= 15,
        "workload too small to be a sweep: {total_ops} ops"
    );

    let (kinds, step): (&[KindTag], usize) = if quick() {
        (&[KindTag::Crash, KindTag::Torn], 2)
    } else {
        (
            &[KindTag::Crash, KindTag::Torn, KindTag::Flip, KindTag::Err],
            1,
        )
    };

    // Distinct recovered states → the directory that produced each, kept
    // for the (expensive) 12-query × 6-config twin verification.
    let mut distinct: BTreeMap<Vec<Term3>, PathBuf> = BTreeMap::new();
    let mut trials = 0u32;

    for &tag in kinds {
        for i in (0..total_ops).step_by(step) {
            trials += 1;
            let kind = kind_for(tag, i);
            let dir = scratch("trial");
            clone_dir(&seed, &dir);

            let faults = FaultState::new();
            faults.arm(FaultPolicy { at_op: i, kind });
            let db = Database::open_at_with(
                &dir,
                config.clone(),
                DurabilityOptions {
                    faults: Some(faults.clone()),
                    ..DurabilityOptions::default()
                },
            )
            .expect("a clean reopen performs no faultable operation");

            // Run until the fault fires; any error is treated as fatal
            // (the process model is killed and the directory reopened).
            let mut completed = ops.len();
            for (k, op) in ops.iter().enumerate() {
                if run_op(&db, op).is_err() {
                    completed = k;
                    break;
                }
            }
            drop(db);
            assert!(
                completed < ops.len(),
                "{:?} at op {i}: the fault never fired (of {total_ops} ops)",
                kind
            );

            // Recovery must always succeed — a torn or corrupt WAL tail is
            // a clean end of log, never an error, never a panic.
            let recovered = Database::open_at(&dir, config.clone())
                .unwrap_or_else(|e| panic!("{kind:?} at op {i}: recovery failed: {e}"));
            assert!(
                recovered.recovery_report().is_some(),
                "durable reopen must carry a recovery report"
            );
            let got = db_bag(&recovered);
            drop(recovered);

            // Prefix consistency: exactly the acknowledged batches, plus
            // at most the one batch in flight when the fault hit (durable
            // in the WAL but unacknowledged — keeping it is allowed,
            // tearing it is not).
            let acked = &states[completed];
            let in_flight = ops[completed].is_batch().then(|| {
                let mut next = states[completed].clone();
                model_apply(&mut next, &ops[completed]);
                canon(next)
            });
            let ok = got == *acked || in_flight.as_ref() == Some(&got);
            assert!(
                ok,
                "{:?} at op {i} (failed during {} #{completed}): recovered state is neither \
                 apply(acked) ({} triples) nor apply(acked + in-flight) — got {} triples",
                kind,
                ops[completed].label(),
                acked.len(),
                got.len()
            );

            match distinct.entry(got) {
                Entry::Occupied(_) => {
                    let _ = std::fs::remove_dir_all(&dir);
                }
                Entry::Vacant(slot) => {
                    slot.insert(dir);
                }
            }
        }
    }

    assert!(
        distinct.len() >= 3,
        "the sweep only ever recovered {} distinct states over {trials} trials — \
         it is not crossing batch boundaries",
        distinct.len()
    );

    // Every distinct recovered state is indistinguishable from a
    // never-crashed twin: all 12 queries × all 6 configurations.
    for dir in distinct.values() {
        verify_against_twins(dir);
    }

    for dir in distinct.values() {
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_dir_all(&seed);
}

/// External single-bit corruption of the files themselves (not a modeled
/// write fault): a flip anywhere in the WAL yields a clean prefix of the
/// logged batches; a flip anywhere in the snapshot is *detected* — a typed
/// error, never a panic, never a silently wrong database.
#[test]
#[cfg_attr(miri, ignore)] // real file I/O
fn recovery_is_total_under_single_bit_file_corruption() {
    let mut ds = Dataset::new();
    ds.add("<s1>", "<type>", "<Text>");
    ds.add("<s2>", "<type>", "<Date>");
    ds.add("<s1>", "<lang>", "\"fre\"");
    ds.add("<s3>", "<origin>", "<DLC>");
    let config = StoreConfig::column(Layout::VerticallyPartitioned);

    // Seed: snapshot of the base data plus two un-checkpointed batches in
    // the WAL.
    let seed = scratch("flip-seed");
    let mut states: Vec<Vec<Term3>> = Vec::new();
    {
        let db = Database::import_at(&seed, ds, config.clone(), DurabilityOptions::default())
            .expect("imports");
        states.push(db_bag(&db));
        db.insert([("<s4>", "<type>", "<Text>"), ("<s4>", "<lang>", "\"deu\"")])
            .expect("inserts");
        states.push(db_bag(&db));
        db.delete([("<s2>", "<type>", "<Date>")]).expect("deletes");
        states.push(db_bag(&db));
    }

    for target in [WAL_FILE, SNAPSHOT_FILE] {
        let pristine = std::fs::read(seed.join(target)).expect("reads seed file");
        assert!(
            !pristine.is_empty(),
            "{target} must be non-empty for this test"
        );
        for pos in (0..pristine.len()).step_by(7) {
            for bit in [0u8, 4] {
                let dir = scratch("flip");
                clone_dir(&seed, &dir);
                let mut bytes = pristine.clone();
                bytes[pos] ^= 1 << bit;
                std::fs::write(dir.join(target), &bytes).expect("writes corrupted file");

                match Database::open_at(&dir, config.clone()) {
                    Ok(db) => {
                        assert_eq!(
                            target, WAL_FILE,
                            "a corrupt snapshot must never open (byte {pos} bit {bit})"
                        );
                        let got = db_bag(&db);
                        assert!(
                            states.contains(&got),
                            "{target} byte {pos} bit {bit}: recovered state is not a \
                             prefix of the logged batches"
                        );
                    }
                    Err(e) => {
                        // A detected-corrupt snapshot is the only
                        // acceptable failure, and it is a typed error.
                        assert_eq!(
                            target, SNAPSHOT_FILE,
                            "WAL corruption must recover to a prefix, got error: {e}"
                        );
                        assert!(
                            matches!(e, Error::Io(_)),
                            "corruption must surface as Error::Io, got: {e}"
                        );
                    }
                }
                let _ = std::fs::remove_dir_all(&dir);
            }
        }
    }
    let _ = std::fs::remove_dir_all(&seed);
}
