//! The paper's qualitative findings as executable assertions — each test
//! pins one "shape" the reproduction must exhibit. These are the
//! regression harness for the conclusions recorded in EXPERIMENTS.md.
//!
//! Timing shapes only hold for optimized code (a debug build distorts the
//! engines' relative CPU costs), so every test here is ignored under
//! `debug_assertions` — run `cargo test --release` to exercise them.

use swans_core::runner::{geometric_mean, measure_cold, measure_hot, real, run_all_queries};
use swans_core::{Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::queries::{QueryContext, QueryId};
use swans_rdf::{Dataset, SortOrder};
use swans_storage::MachineProfile;

fn dataset() -> Dataset {
    generate(&BartonConfig {
        scale: 0.002, // ~100k triples
        seed: 42,
        n_properties: 222,
    })
}

fn machine() -> MachineProfile {
    swans_core::scaled_profile(MachineProfile::B, 0.002)
}

/// §4.3: "the order of clustering is paramount to the triple-store
/// implementation ... our choice to cluster on PSO achieves a significant
/// improvement" — q1 improves by a factor of 5 in the paper.
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-shape test: run with --release")]
fn row_store_pso_beats_spo_cold() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let spo = RdfStore::load(
        &ds,
        StoreConfig::row(Layout::TripleStore(SortOrder::Spo)).on_machine(machine()),
    );
    let pso = RdfStore::load(
        &ds,
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).on_machine(machine()),
    );
    let q1_spo = measure_cold(&spo, QueryId::Q1, &ctx, 1);
    let q1_pso = measure_cold(&pso, QueryId::Q1, &ctx, 1);
    assert!(
        q1_pso.real_seconds * 2.0 < q1_spo.real_seconds,
        "q1: PSO {:.4}s should be well under half of SPO {:.4}s",
        q1_pso.real_seconds,
        q1_spo.real_seconds
    );
    // And PSO reads far fewer bytes (clustered range scan vs full scan).
    assert!(q1_pso.bytes_read * 2 < q1_spo.bytes_read);
}

/// §4.3 and §5: "once the proper clustered indices are used, the
/// triple-store performs better than the vertically-partitioned approach"
/// on the row store — by geometric mean over all 12 queries.
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-shape test: run with --release")]
fn row_store_triple_pso_beats_vp_on_g_star() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let pso = RdfStore::load(
        &ds,
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).on_machine(machine()),
    );
    let vp = RdfStore::load(
        &ds,
        StoreConfig::row(Layout::VerticallyPartitioned).on_machine(machine()),
    );
    let pso_row = run_all_queries(&pso, &ctx, true, 1);
    let vp_row = run_all_queries(&vp, &ctx, true, 1);
    assert!(
        pso_row.g_star(real) < vp_row.g_star(real),
        "row store G*: triple/PSO {:.4} must beat vert {:.4}",
        pso_row.g_star(real),
        vp_row.g_star(real)
    );
}

/// §4.3: "for the given benchmark, the vertically-partitioned approach
/// outperforms triple-store when both are implemented in a column-store"
/// — on the original seven queries (geometric mean G).
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-shape test: run with --release")]
fn column_store_vp_wins_the_original_benchmark() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let pso = RdfStore::load(
        &ds,
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine()),
    );
    let vp = RdfStore::load(
        &ds,
        StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine()),
    );
    let g_pso: Vec<f64> = QueryId::BASE7
        .iter()
        .map(|&q| measure_cold(&pso, q, &ctx, 1).real_seconds)
        .collect();
    let g_vp: Vec<f64> = QueryId::BASE7
        .iter()
        .map(|&q| measure_cold(&vp, q, &ctx, 1).real_seconds)
        .collect();
    assert!(
        geometric_mean(&g_vp) < geometric_mean(&g_pso),
        "column store G: vert {:.4} must beat triple/PSO {:.4}",
        geometric_mean(&g_vp),
        geometric_mean(&g_pso)
    );
}

/// §4.3: the black swans — "queries q2*, q3*, q6* and q8: for these
/// queries, triple-store ... exhibits better times" on the column store.
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-shape test: run with --release")]
fn column_store_black_swans_favor_triple_store() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let pso = RdfStore::load(
        &ds,
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine()),
    );
    let vp = RdfStore::load(
        &ds,
        StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine()),
    );
    for q in [
        QueryId::Q2Star,
        QueryId::Q3Star,
        QueryId::Q6Star,
        QueryId::Q8,
    ] {
        let t = measure_cold(&pso, q, &ctx, 1);
        let v = measure_cold(&vp, q, &ctx, 1);
        assert!(
            t.real_seconds < v.real_seconds,
            "{q}: triple/PSO {:.4}s must beat vert {:.4}s cold",
            t.real_seconds,
            v.real_seconds
        );
    }
}

/// §5: "the processing efficiency of column-stores is particularly suited
/// for RDF" — the column engine uses several times less CPU than the row
/// engine for the same layout and queries.
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-shape test: run with --release")]
fn column_engine_uses_less_cpu_than_row_engine() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let row = RdfStore::load(
        &ds,
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).on_machine(machine()),
    );
    let col = RdfStore::load(
        &ds,
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine()),
    );
    let mut row_total = 0.0;
    let mut col_total = 0.0;
    for q in [QueryId::Q2, QueryId::Q3, QueryId::Q6] {
        row_total += measure_hot(&row, q, &ctx, 2).user_seconds;
        col_total += measure_hot(&col, q, &ctx, 2).user_seconds;
    }
    assert!(
        col_total * 2.0 < row_total,
        "column CPU {:.4}s should be well under half of row CPU {:.4}s",
        col_total,
        row_total
    );
}

/// §4.3: the G*/G ratio — moving from the restricted 7-query set to the
/// full 12-query set hurts the vertically-partitioned layout more than the
/// triple-store, on both engines.
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-shape test: run with --release")]
fn g_ratio_penalizes_vertical_partitioning() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    for make in [
        StoreConfig::row as fn(Layout) -> StoreConfig,
        StoreConfig::column,
    ] {
        let pso = RdfStore::load(
            &ds,
            make(Layout::TripleStore(SortOrder::Pso)).on_machine(machine()),
        );
        let vp = RdfStore::load(
            &ds,
            make(Layout::VerticallyPartitioned).on_machine(machine()),
        );
        let pso_row = run_all_queries(&pso, &ctx, true, 1);
        let vp_row = run_all_queries(&vp, &ctx, true, 1);
        assert!(
            vp_row.g_ratio(real) > pso_row.g_ratio(real),
            "{}: VP G*/G {:.2} must exceed triple G*/G {:.2}",
            pso.config().engine.name(),
            vp_row.g_ratio(real),
            pso_row.g_ratio(real)
        );
    }
}

/// §4.4 / Figure 7: splitting properties makes the vertically-partitioned
/// approach steadily slower while the triple-store does not degrade —
/// the scalability verdict.
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-shape test: run with --release")]
fn splitting_degrades_vp_not_triple_store() {
    let ds = generate(&BartonConfig {
        scale: 0.001,
        seed: 42,
        n_properties: 222,
    });
    let series = swans_core::sweep::splitting_sweep(
        &ds,
        &[QueryId::Q2Star],
        &[222, 1000],
        1,
        42,
        swans_core::scaled_profile(MachineProfile::B, 0.001),
    );
    let pts = &series[0].points;
    let vp_growth = pts[1].vertical.real_seconds / pts[0].vertical.real_seconds;
    let triple_growth = pts[1].triple.real_seconds / pts[0].triple.real_seconds;
    assert!(
        vp_growth > 1.3,
        "VP should degrade with splits (got {vp_growth:.2}x)"
    );
    assert!(
        triple_growth < vp_growth,
        "triple-store ({triple_growth:.2}x) must degrade less than VP ({vp_growth:.2}x)"
    );
}

/// Figure 6: at 28 properties the vertically-partitioned layout wins q2
/// cold on the column store; widening the considered-property list erodes
/// its advantage.
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-shape test: run with --release")]
fn property_sweep_erodes_vp_advantage() {
    let ds = dataset();
    let series = swans_core::sweep::property_sweep(&ds, &[QueryId::Q2], &[28, 222], 1, machine());
    let pts = &series[0].points;
    let ratio_28 = pts[0].vertical.real_seconds / pts[0].triple.real_seconds;
    let ratio_222 = pts[1].vertical.real_seconds / pts[1].triple.real_seconds;
    assert!(
        ratio_28 < 1.0,
        "VP must win q2 at 28 properties ({ratio_28:.2})"
    );
    assert!(
        ratio_222 > ratio_28,
        "VP's relative cost must grow with the property count"
    );
}
