//! Snapshot-lifetime properties: a pinned snapshot keeps answering the
//! full 12-query benchmark suite **bit-identically** while the writer
//! publishes (and the system drops) newer versions around it — and the
//! `Arc` accounting says dropped versions are actually freed, with
//! strong counts returning to baseline once sessions end.

use std::sync::Arc;
use std::time::Duration;

use swans_core::{
    CancelReason, Database, DurabilityOptions, EngineError, Error, Layout, QueryBudget, StoreConfig,
};
use swans_plan::queries::{build_plan, QueryContext, QueryId};
use swans_rdf::Dataset;

fn dataset() -> Dataset {
    swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0004,
        seed: 63,
        n_properties: 36,
    })
}

/// The full suite, raw rows — bit-identical means same rows, same order.
fn run_suite(session: &swans_core::Session, ctx: &QueryContext) -> Vec<Vec<Vec<u64>>> {
    QueryId::ALL
        .iter()
        .map(|&q| session.run_benchmark(q, ctx).expect("suite query").rows)
        .collect()
}

/// One churn step: commit a batch of brand-new terms (publishes), and
/// merge every other step (publishes again; on a durable database the
/// merge also checkpoints, truncating the WAL under the pinned reader).
fn churn(db: &Database, step: usize) {
    let triples: Vec<(String, String, String)> = (0..40)
        .map(|i| {
            (
                format!("<churn-s{step}-{i}>"),
                "<churn-prop>".to_string(),
                format!("<churn-o{i}>"),
            )
        })
        .collect();
    db.insert(triples.iter().map(|(s, p, o)| (&**s, &**p, &**o)))
        .expect("churn insert");
    if step % 2 == 1 {
        db.merge().expect("churn merge");
    }
}

#[test]
#[cfg_attr(miri, ignore)] // durable directory: real file I/O
fn pinned_snapshot_answers_bit_identically_across_merges_and_checkpoints() {
    let dir = std::env::temp_dir().join(format!("swans-snap-life-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let db = Database::import_at(
        &dir,
        ds,
        StoreConfig::column(Layout::VerticallyPartitioned),
        DurabilityOptions::default(),
    )
    .expect("imports");

    let pinned = db.session().expect("pins version 1 via a fork");
    let v0 = pinned.version();
    let reference = run_suite(&pinned, &ctx);

    // A weak handle to the pinned version, to observe its deallocation.
    let old = Arc::downgrade(pinned.snapshot());

    // Interleave: churn (publish, merge, checkpoint) — then re-ask the
    // pinned reader, every round.
    for step in 0..6 {
        churn(&db, step);
        assert_eq!(
            run_suite(&pinned, &ctx),
            reference,
            "step {step}: the pinned snapshot's answers drifted"
        );
        assert_eq!(pinned.version(), v0);
    }
    assert!(
        db.snapshot().version() > v0 + 5,
        "churn must actually publish new versions"
    );

    // And concurrently: readers re-running the suite on their own pinned
    // sessions while the writer keeps publishing.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let ctx = &ctx;
            let db = &db;
            scope.spawn(move || {
                // Whatever version this session lands on, its own answers
                // must repeat bit-identically while the writer publishes.
                let mine = db.session().expect("forks");
                let before = run_suite(&mine, ctx);
                for _ in 0..3 {
                    assert_eq!(run_suite(&mine, ctx), before, "pinned answers drifted");
                }
            });
        }
        for step in 6..10 {
            churn(&db, step);
        }
    });

    // Lifetime: dropping the pinned session releases the old version.
    assert!(old.upgrade().is_some(), "pinned version still alive");
    drop(pinned);
    assert!(
        old.upgrade().is_none(),
        "nothing else may retain a dropped version — snapshot leak"
    );

    // Strong-count baseline: sessions add exactly one strong ref each to
    // the current snapshot and give it back when they end.
    let current = db.snapshot();
    let baseline = Arc::strong_count(&current);
    {
        let sessions: Vec<_> = (0..5).map(|_| db.session().expect("forks")).collect();
        assert_eq!(Arc::strong_count(&current), baseline + 5);
        drop(sessions);
    }
    assert_eq!(
        Arc::strong_count(&current),
        baseline,
        "session teardown must return the snapshot refcount to baseline"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Budget kills do not leak pinned versions: a session whose queries
/// were cancelled mid-execution (deadline, memory limit, and a cancel
/// fired from another thread) drops its snapshot fork cleanly — the
/// weak handle dies with the last strong ref and `Arc` strong counts
/// return exactly to baseline.
#[test]
fn cancelled_queries_release_session_forks_and_refcounts() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let db = Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned)).expect("opens");
    let scheme = db.config().layout.scheme();

    let current = db.snapshot();
    let baseline = Arc::strong_count(&current);
    {
        let session = db.session().expect("forks");
        assert_eq!(Arc::strong_count(&current), baseline + 1);

        // Deterministic kills: expired deadline and a starvation-level
        // memory limit, across the whole benchmark suite.
        for q in QueryId::ALL {
            let plan = build_plan(q, scheme, &ctx);
            let expired = QueryBudget::unlimited().with_timeout(Duration::from_nanos(1));
            match session.execute_plan_budgeted(&plan, &expired) {
                Err(Error::Engine(EngineError::Cancelled { reason, .. })) => {
                    assert_eq!(reason, CancelReason::Timeout, "query {q}");
                }
                other => panic!("query {q}: expected a timeout kill, got {other:?}"),
            }
            let starved = QueryBudget::unlimited().with_mem_limit(1);
            if let Err(e) = session.execute_plan_budgeted(&plan, &starved) {
                assert!(
                    matches!(
                        e,
                        Error::Engine(EngineError::Cancelled {
                            reason: CancelReason::MemoryLimit,
                            ..
                        })
                    ),
                    "query {q}: a budget failure must be the typed kill, got {e}"
                );
            }
        }

        // Racy kills: a canceller thread firing mid-execution at a sweep
        // of delays; each query either completes or dies typed.
        for delay_us in [0u64, 50, 200, 1000] {
            let budget = QueryBudget::unlimited();
            let canceller = {
                let budget = budget.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(Duration::from_micros(delay_us));
                    budget.cancel();
                })
            };
            let plan = build_plan(QueryId::Q2, scheme, &ctx);
            match session.execute_plan_budgeted(&plan, &budget) {
                Ok(_) => {}
                Err(Error::Engine(EngineError::Cancelled { reason, .. })) => {
                    assert_eq!(reason, CancelReason::Shutdown);
                }
                Err(e) => panic!("mid-execution cancel must stay typed: {e}"),
            }
            canceller.join().expect("canceller");
        }

        // The battered session still answers the full suite.
        let _ = run_suite(&session, &ctx);
        drop(session);
    }
    assert_eq!(
        Arc::strong_count(&current),
        baseline,
        "cancelled queries must not retain snapshot refs"
    );

    // With the writer past it and all strong handles gone, the version
    // deallocates — kills stash no hidden clones.
    let weak = Arc::downgrade(&current);
    db.insert([("<fresh>", "<p>", "<o>")]).expect("publishes");
    drop(current);
    assert!(
        weak.upgrade().is_none(),
        "version outlived every handle after cancelled queries — snapshot leak"
    );
}
