//! Snapshot-lifetime properties: a pinned snapshot keeps answering the
//! full 12-query benchmark suite **bit-identically** while the writer
//! publishes (and the system drops) newer versions around it — and the
//! `Arc` accounting says dropped versions are actually freed, with
//! strong counts returning to baseline once sessions end.

use std::sync::Arc;

use swans_core::{Database, DurabilityOptions, Layout, StoreConfig};
use swans_plan::queries::{QueryContext, QueryId};
use swans_rdf::Dataset;

fn dataset() -> Dataset {
    swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0004,
        seed: 63,
        n_properties: 36,
    })
}

/// The full suite, raw rows — bit-identical means same rows, same order.
fn run_suite(session: &swans_core::Session, ctx: &QueryContext) -> Vec<Vec<Vec<u64>>> {
    QueryId::ALL
        .iter()
        .map(|&q| session.run_benchmark(q, ctx).expect("suite query").rows)
        .collect()
}

/// One churn step: commit a batch of brand-new terms (publishes), and
/// merge every other step (publishes again; on a durable database the
/// merge also checkpoints, truncating the WAL under the pinned reader).
fn churn(db: &Database, step: usize) {
    let triples: Vec<(String, String, String)> = (0..40)
        .map(|i| {
            (
                format!("<churn-s{step}-{i}>"),
                "<churn-prop>".to_string(),
                format!("<churn-o{i}>"),
            )
        })
        .collect();
    db.insert(triples.iter().map(|(s, p, o)| (&**s, &**p, &**o)))
        .expect("churn insert");
    if step % 2 == 1 {
        db.merge().expect("churn merge");
    }
}

#[test]
#[cfg_attr(miri, ignore)] // durable directory: real file I/O
fn pinned_snapshot_answers_bit_identically_across_merges_and_checkpoints() {
    let dir = std::env::temp_dir().join(format!("swans-snap-life-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let db = Database::import_at(
        &dir,
        ds,
        StoreConfig::column(Layout::VerticallyPartitioned),
        DurabilityOptions::default(),
    )
    .expect("imports");

    let pinned = db.session().expect("pins version 1 via a fork");
    let v0 = pinned.version();
    let reference = run_suite(&pinned, &ctx);

    // A weak handle to the pinned version, to observe its deallocation.
    let old = Arc::downgrade(pinned.snapshot());

    // Interleave: churn (publish, merge, checkpoint) — then re-ask the
    // pinned reader, every round.
    for step in 0..6 {
        churn(&db, step);
        assert_eq!(
            run_suite(&pinned, &ctx),
            reference,
            "step {step}: the pinned snapshot's answers drifted"
        );
        assert_eq!(pinned.version(), v0);
    }
    assert!(
        db.snapshot().version() > v0 + 5,
        "churn must actually publish new versions"
    );

    // And concurrently: readers re-running the suite on their own pinned
    // sessions while the writer keeps publishing.
    std::thread::scope(|scope| {
        for _ in 0..2 {
            let ctx = &ctx;
            let db = &db;
            scope.spawn(move || {
                // Whatever version this session lands on, its own answers
                // must repeat bit-identically while the writer publishes.
                let mine = db.session().expect("forks");
                let before = run_suite(&mine, ctx);
                for _ in 0..3 {
                    assert_eq!(run_suite(&mine, ctx), before, "pinned answers drifted");
                }
            });
        }
        for step in 6..10 {
            churn(&db, step);
        }
    });

    // Lifetime: dropping the pinned session releases the old version.
    assert!(old.upgrade().is_some(), "pinned version still alive");
    drop(pinned);
    assert!(
        old.upgrade().is_none(),
        "nothing else may retain a dropped version — snapshot leak"
    );

    // Strong-count baseline: sessions add exactly one strong ref each to
    // the current snapshot and give it back when they end.
    let current = db.snapshot();
    let baseline = Arc::strong_count(&current);
    {
        let sessions: Vec<_> = (0..5).map(|_| db.session().expect("forks")).collect();
        assert_eq!(Arc::strong_count(&current), baseline + 5);
        drop(sessions);
    }
    assert_eq!(
        Arc::strong_count(&current),
        baseline,
        "session teardown must return the snapshot refcount to baseline"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
