//! Acceptance suite for the static plan verifier: every benchmark plan,
//! on every engine × layout configuration, in every write-store state
//! (clean, pending delta, post-merge), passes `swans_plan::verify` under
//! the physical context the live store reports — including the
//! join-reordered form the column engine actually dispatches. Executing
//! the plans in this (debug) build additionally routes each one through
//! the engine's own pre-execution verify and the shadow validator.

use swans_bench::updates::configs as all_configs;
use swans_core::Database;
use swans_plan::queries::{vocab, QueryContext, QueryId};
use swans_plan::verify::verify;
use swans_plan::{build_plan, optimize_cbo, optimize_for, reorder_joins};
use swans_rdf::Dataset;

fn dataset() -> Dataset {
    swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0004,
        seed: 31,
        n_properties: 32,
    })
}

/// Verifies (and executes) all twelve benchmark queries against `db`'s
/// live physical context, in both the planner's output form and the
/// physically optimized form.
fn verify_and_run_all(db: &Database, qctx: &QueryContext, label: &str) {
    let scheme = db.config().layout.scheme();
    let ctx = db.explain_context();
    for q in QueryId::ALL {
        let plan = build_plan(q, scheme, qctx);
        for (form, p) in [
            ("planned", plan.clone()),
            ("optimized", optimize_for(plan.clone(), &ctx)),
            ("enumerated", optimize_cbo(plan.clone(), &ctx)),
            ("reordered", reorder_joins(plan, &ctx)),
        ] {
            let report = verify(&p, &ctx)
                .unwrap_or_else(|e| panic!("{label} {q:?} ({form}): {e}\n{}", p.explain()));
            assert!(report.nodes >= 1, "{label} {q:?} ({form})");
            db.execute_plan(&p)
                .unwrap_or_else(|e| panic!("{label} {q:?} ({form}) fails to execute: {e}"));
        }
    }
}

#[test]
fn benchmark_plans_verify_in_every_configuration_and_state() {
    let ds = dataset();
    let qctx = QueryContext::from_dataset(&ds, 28);
    for config in all_configs() {
        let label = config.label();
        let db = Database::open(ds.clone(), config).expect("opens");
        verify_and_run_all(&db, &qctx, &format!("{label}/clean"));

        // Pending delta: tombstones on existing triples plus inserts on
        // query-bound properties — the states that downgrade scan claims.
        let gone = {
            let t = ds.triples[0];
            (
                ds.dict.term(t.s).to_string(),
                ds.dict.term(t.p).to_string(),
                ds.dict.term(t.o).to_string(),
            )
        };
        db.delete([(gone.0.as_str(), gone.1.as_str(), gone.2.as_str())])
            .expect("deletes");
        db.insert([
            ("<vp-s1>", vocab::TYPE, vocab::TEXT),
            ("<vp-s1>", vocab::LANGUAGE, vocab::FRENCH),
        ])
        .expect("inserts");
        verify_and_run_all(&db, &qctx, &format!("{label}/pending"));

        db.merge().expect("merges");
        verify_and_run_all(&db, &qctx, &format!("{label}/merged"));
    }
}
