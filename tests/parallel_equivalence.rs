//! Parallel-execution determinism: every benchmark query on every
//! engine × layout configuration produces identical (order-normalized)
//! results at pool widths 1, 2 and 8 — on a clean store *and* with a
//! non-empty write store pending (inserts and tombstones buffered, no
//! merge). The column engine's parallel barriers merge in morsel order,
//! so its results are in fact bit-identical across widths; this suite
//! additionally pins that stronger property directly on the engine,
//! together with the scratch-reuse accounting (morsels per partitioned
//! batch ≫ 1).

use swans_bench::updates::configs as all_configs;
use swans_core::{normalize_result, Database};
use swans_plan::queries::{vocab, QueryContext, QueryId};
use swans_rdf::Dataset;

/// Pool widths under test.
const WIDTHS: [usize; 3] = [1, 2, 8];

/// Quick mode (`SWANS_PAR_QUICK=1`): a ~5× smaller data set, same widths
/// and states. CI's sanitizer job runs this suite under ThreadSanitizer,
/// where every memory access is instrumented — full scale would blow the
/// job's time box without exercising any additional synchronization.
fn quick() -> bool {
    std::env::var_os("SWANS_PAR_QUICK").is_some_and(|v| v == "1")
}

fn dataset() -> Dataset {
    swans_datagen::generate(&swans_datagen::BartonConfig {
        // Full scale is ~75k triples: hot columns span many morsels.
        scale: if quick() { 0.0003 } else { 0.0015 },
        seed: 52,
        n_properties: 40,
    })
}

type TermTriples = Vec<(String, String, String)>;

/// A mutation batch that leaves the write store non-empty in every
/// interesting way: tombstones on existing triples, pending inserts on
/// query-relevant properties, and a brand-new property with no load-time
/// table.
fn mutation_batch(ds: &Dataset) -> (TermTriples, TermTriples) {
    let decode = |i: usize| {
        let t = ds.triples[i];
        (
            ds.dict.term(t.s).to_string(),
            ds.dict.term(t.p).to_string(),
            ds.dict.term(t.o).to_string(),
        )
    };
    let dels: TermTriples = (0..ds.len()).step_by(131).map(decode).collect();
    let ins: TermTriples = (0..60)
        .flat_map(|i| {
            let s = format!("<par-s{i}>");
            [
                (s.clone(), vocab::TYPE.to_string(), vocab::TEXT.to_string()),
                (
                    s.clone(),
                    vocab::LANGUAGE.to_string(),
                    vocab::FRENCH.to_string(),
                ),
                (s, "<par-prop>".to_string(), "\"p\"".to_string()),
            ]
        })
        .collect();
    (dels, ins)
}

fn run_all(db: &Database, ctx: &QueryContext) -> Vec<Vec<Vec<u64>>> {
    QueryId::ALL
        .iter()
        .map(|&q| normalize_result(q, db.run_benchmark(q, ctx).rows))
        .collect()
}

/// The acceptance criterion: 12 queries × 6 configurations × widths
/// {1, 2, 8}, identical order-normalized answers — clean, with a pending
/// (unmerged) write store, and after the merge.
#[test]
fn all_queries_agree_on_every_config_at_every_width() {
    let ds = dataset();
    let (dels, ins) = mutation_batch(&ds);

    // One database per (configuration, width).
    let mut dbs: Vec<(String, Database)> = Vec::new();
    for config in all_configs() {
        for &w in &WIDTHS {
            let c = config.clone().with_threads(w);
            let label = format!("{} @{w}T", c.label());
            dbs.push((label.clone(), Database::open(ds.clone(), c).expect(&label)));
        }
    }

    // Clean store: everything agrees.
    let ctx = QueryContext::from_dataset(&ds, 28);
    let reference = run_all(&dbs[0].1, &ctx);
    for (label, db) in &dbs[1..] {
        assert_eq!(run_all(db, &ctx), reference, "clean: {label} disagrees");
    }

    // Non-empty write store pending: deletes then inserts, no merge.
    for (label, db) in &mut dbs {
        let deleted = db
            .delete(
                dels.iter()
                    .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
            )
            .expect("deletes");
        assert!(deleted > 0, "{label}: workload must delete something");
        db.insert(
            ins.iter()
                .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
        )
        .expect("inserts");
        assert!(db.pending_delta() > 0 || !label.contains("column"));
    }
    let ctx = QueryContext::from_dataset(&dbs[0].1.dataset(), 28);
    let pending_reference = run_all(&dbs[0].1, &ctx);
    assert_ne!(
        pending_reference, reference,
        "the mutation batch must change some answer, or the pending leg is vacuous"
    );
    for (label, db) in &dbs[1..] {
        assert_eq!(
            run_all(db, &ctx),
            pending_reference,
            "pending delta: {label} disagrees"
        );
    }

    // And after the merge.
    for (label, db) in &mut dbs {
        db.merge().expect("merges");
        assert_eq!(db.pending_delta(), 0, "{label}");
        assert_eq!(
            run_all(db, &ctx),
            pending_reference,
            "post-merge: {label} disagrees"
        );
    }
}

/// The stronger engine-level property behind the suite: the column
/// engine's output is *bit-identical* (same rows, same order) at every
/// pool width, partitioning genuinely happens, and partitioned batches
/// span many morsels each — the scratch-reuse accounting (per-batch hash
/// maps and join tables, never per-morsel) visible through the
/// `ExecStats` counters.
#[test]
fn column_engine_is_bit_identical_and_batches_morsels() {
    use swans_colstore::ColumnEngine;
    use swans_plan::queries::{build_plan, Scheme};
    use swans_storage::{MachineProfile, StorageManager};

    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let m = StorageManager::new(MachineProfile::B);

    let mut reference: Vec<Vec<Vec<u64>>> = Vec::new();
    for (wi, &w) in WIDTHS.iter().enumerate() {
        let mut e = ColumnEngine::new();
        e.set_threads(w);
        e.load_vertical(&m, &ds.triples, true);
        e.load_triple_store(&m, &ds.triples, swans_rdf::SortOrder::Spo, true);
        for (qi, q) in QueryId::ALL.iter().enumerate() {
            for scheme in [Scheme::TripleStore, Scheme::VerticallyPartitioned] {
                let plan = build_plan(*q, scheme, &ctx);
                let rows = e.execute(&plan).expect("query runs").to_rows();
                if wi == 0 {
                    reference.push(rows);
                } else {
                    let idx = qi * 2 + usize::from(scheme == Scheme::VerticallyPartitioned);
                    assert_eq!(
                        rows,
                        reference[idx],
                        "{q}/{}: row stream differs at {w} threads",
                        scheme.name()
                    );
                }
            }
        }
        let stats = e.exec_stats();
        assert!(
            stats.parallel_tasks > 0,
            "width {w}: nothing partitioned — the suite would be vacuous: {stats:?}"
        );
        assert!(
            stats.morsels >= 4 * stats.parallel_tasks,
            "width {w}: batches should span several morsels (scratch is \
             per batch worker, not per morsel): {stats:?}"
        );
    }
}
