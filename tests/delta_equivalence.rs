//! Write-path equivalence: an insert/delete workload interleaved with the
//! full benchmark query set must answer identically on every engine ×
//! layout configuration — while the delta is buffered, after an explicit
//! merge, and compared against a fresh bulk load of the same final data
//! set (the ground truth the write path must be indistinguishable from).

use swans_bench::updates::configs as all_configs;
use swans_core::{normalize_result, Database};
use swans_plan::queries::{vocab, QueryContext, QueryId};
use swans_rdf::Dataset;

fn dataset() -> Dataset {
    swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0003, // ~15k triples
        seed: 37,
        n_properties: 40,
    })
}

type TermTriples = Vec<(String, String, String)>;

/// Two batches of mutations, derived from the data set so they hit the
/// benchmark queries' own properties: batch 1 deletes a slice of existing
/// triples and adds subjects with query-relevant properties, batch 2
/// deletes some of batch 1's inserts again and brings in a brand-new
/// property.
fn batches(ds: &Dataset) -> [(TermTriples, TermTriples); 2] {
    let decode = |i: usize| {
        let t = ds.triples[i];
        (
            ds.dict.term(t.s).to_string(),
            ds.dict.term(t.p).to_string(),
            ds.dict.term(t.o).to_string(),
        )
    };
    // Every 97th triple dies in batch 1.
    let dels1: TermTriples = (0..ds.len()).step_by(97).map(decode).collect();
    let ins1: TermTriples = (0..40)
        .flat_map(|i| {
            let s = format!("<upd-s{i}>");
            [
                (s.clone(), vocab::TYPE.to_string(), vocab::TEXT.to_string()),
                (
                    s.clone(),
                    vocab::LANGUAGE.to_string(),
                    vocab::FRENCH.to_string(),
                ),
                (s, vocab::ORIGIN.to_string(), vocab::DLC.to_string()),
            ]
        })
        .collect();
    // Batch 2 re-deletes half of batch 1's inserts and opens a new
    // property no load-time table exists for.
    let dels2: TermTriples = (0..40)
        .step_by(2)
        .map(|i| {
            (
                format!("<upd-s{i}>"),
                vocab::LANGUAGE.to_string(),
                vocab::FRENCH.to_string(),
            )
        })
        .collect();
    let ins2: TermTriples = (0..25)
        .map(|i| {
            (
                format!("<upd-s{i}>"),
                "<updated-by>".to_string(),
                "\"writer\"".to_string(),
            )
        })
        .collect();
    [(dels1, ins1), (dels2, ins2)]
}

fn run_all(db: &Database, ctx: &QueryContext) -> Vec<Vec<Vec<u64>>> {
    QueryId::ALL
        .iter()
        .map(|&q| normalize_result(q, db.run_benchmark(q, ctx).rows))
        .collect()
}

/// The acceptance criterion of the write path: all 12 queries, all 6
/// configurations, identical answers at every interleaving point, and a
/// fresh bulk load of the final data set cannot be told apart — before or
/// after `merge()`.
#[test]
fn interleaved_mutations_match_fresh_bulk_load_on_all_configs() {
    let ds = dataset();
    let batches = batches(&ds);

    let mut dbs: Vec<Database> = all_configs()
        .into_iter()
        .map(|c| Database::open(ds.clone(), c).expect("opens"))
        .collect();

    for (stage, (dels, ins)) in batches.iter().enumerate() {
        for db in &mut dbs {
            let deleted = db
                .delete(
                    dels.iter()
                        .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
                )
                .expect("deletes");
            assert!(deleted > 0, "stage {stage}: workload must delete something");
            db.insert(
                ins.iter()
                    .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
            )
            .expect("inserts");
        }
        // All twelve queries agree across all six configurations at this
        // interleaving point (the column configs are still unmerged).
        let ctx = QueryContext::from_dataset(&dbs[0].dataset(), 28);
        let reference = run_all(&dbs[0], &ctx);
        for db in &dbs[1..] {
            assert_eq!(
                run_all(db, &ctx),
                reference,
                "stage {stage}: {} disagrees",
                db.config().label()
            );
        }
    }

    // Final state: compare pre-merge, post-merge, and a fresh bulk load.
    let final_ds = dbs[0].dataset();
    let ctx = QueryContext::from_dataset(&final_ds, 28);
    for db in &mut dbs {
        let label = db.config().label();
        let pre_merge = run_all(db, &ctx);
        db.merge().expect("merges");
        assert_eq!(db.pending_delta(), 0, "{label}");
        let post_merge = run_all(db, &ctx);
        assert_eq!(pre_merge, post_merge, "{label}: merge changed answers");
        let fresh = Database::open(final_ds.clone(), db.config().clone()).expect("fresh load");
        assert_eq!(
            run_all(&fresh, &ctx),
            post_merge,
            "{label}: fresh bulk load of the final data set disagrees"
        );
    }
}

/// Merging restores sorted-path dispatch on the column engine: while the
/// delta is pending every scan unions the write store and no merge join
/// runs; after `merge()` the rebuilt sorted tables dispatch merge joins
/// again and the union path goes quiet.
#[test]
fn merge_restores_sorted_dispatch() {
    use swans_colstore::ColumnEngine;
    use swans_plan::queries::{build_plan, Scheme};
    use swans_storage::{MachineProfile, StorageManager};

    let mut ds = dataset();
    let m = StorageManager::new(MachineProfile::B);
    let mut e = ColumnEngine::new();
    e.load_vertical(&m, &ds.triples, true);

    // Apply a delta: new subjects carrying the q5 join properties.
    let mut delta = swans_rdf::Delta::new();
    for i in 0..50 {
        let s = format!("<delta-s{i}>");
        delta.insert(ds.encode(&s, vocab::TYPE, vocab::TEXT));
        delta.insert(ds.encode(&s, vocab::ORIGIN, vocab::DLC));
    }
    e.apply(&m, &delta).expect("applies");
    ds.apply(&delta);

    let ctx = QueryContext::from_dataset(&ds, 28);
    let q5 = build_plan(QueryId::Q5, Scheme::VerticallyPartitioned, &ctx);

    e.reset_exec_stats();
    let pending = e.execute(&q5).expect("executes").to_rows();
    let dirty = e.exec_stats();
    assert!(dirty.delta_union_scans > 0, "scans must union: {dirty:?}");
    assert_eq!(dirty.merge_joins, 0, "no order to exploit: {dirty:?}");

    e.merge(&m).expect("merges");
    e.reset_exec_stats();
    let merged = e.execute(&q5).expect("executes").to_rows();
    let clean = e.exec_stats();
    assert_eq!(
        clean.delta_union_scans, 0,
        "write store is empty: {clean:?}"
    );
    assert!(clean.merge_joins > 0, "sorted dispatch restored: {clean:?}");

    assert_eq!(
        normalize_result(QueryId::Q5, pending),
        normalize_result(QueryId::Q5, merged),
        "merge changed q5 answers"
    );
}
