//! Physical-property validation: the ordering knowledge `swans_plan::props`
//! derives must be *true of what the column engine actually produces* —
//! otherwise a merge join or run-based aggregation dispatched on a wrong
//! claim would silently return garbage. Randomized plans (seeded, no
//! external crates) are executed under every clustering order and the
//! derived `sorted_by` / `distinct` claims are checked row-by-row against
//! the materialized output, alongside full result equivalence with the
//! naive executor. A second suite pins the dispatch itself: the benchmark's
//! subject–subject vertically-partitioned joins must run through
//! `ops::merge_join` (observed via the engine's kernel-dispatch counters),
//! and the sorted paths must answer exactly like the hash baseline.

use swans_colstore::ColumnEngine;
use swans_datagen::rng::StdRng;
use swans_plan::algebra::{CmpOp, Plan, Predicate};
use swans_plan::naive;
use swans_plan::props::{derive, PropsContext};
use swans_rdf::{SortOrder, Triple};
use swans_storage::{MachineProfile, StorageManager};

const ID_SPACE: u64 = 6;

fn opt_id(rng: &mut StdRng) -> Option<u64> {
    (rng.random() < 0.4).then(|| rng.next_u64() % ID_SPACE)
}

fn gen_leaf(rng: &mut StdRng) -> Plan {
    if rng.random() < 0.5 {
        Plan::ScanTriples {
            s: opt_id(rng),
            p: opt_id(rng),
            o: opt_id(rng),
        }
    } else {
        Plan::ScanProperty {
            property: rng.next_u64() % ID_SPACE,
            s: opt_id(rng),
            o: opt_id(rng),
            emit_property: rng.random() < 0.5,
        }
    }
}

/// Random valid plan of bounded depth (column indices drawn modulo the
/// child arity, mirroring `tests/random_plans.rs`).
fn gen_plan(rng: &mut StdRng, depth: usize) -> Plan {
    if depth == 0 {
        return gen_leaf(rng);
    }
    match rng.random_range(0..9) {
        0 => gen_leaf(rng),
        1 => {
            let input = gen_plan(rng, depth - 1);
            let col = rng.random_range(0..input.arity());
            Plan::Select {
                input: Box::new(input),
                pred: Predicate {
                    col,
                    op: if rng.random() < 0.5 {
                        CmpOp::Eq
                    } else {
                        CmpOp::Ne
                    },
                    value: rng.next_u64() % ID_SPACE,
                },
            }
        }
        2 => {
            let input = gen_plan(rng, depth - 1);
            let col = rng.random_range(0..input.arity());
            let values: Vec<u64> = (0..rng.random_range(0..4))
                .map(|_| rng.next_u64() % ID_SPACE)
                .collect();
            Plan::FilterIn {
                input: Box::new(input),
                col,
                values,
            }
        }
        3 => {
            let l = gen_plan(rng, depth - 1);
            let r = gen_plan(rng, depth - 1);
            if l.arity() + r.arity() > 9 {
                return l;
            }
            let left_col = rng.random_range(0..l.arity());
            let right_col = rng.random_range(0..r.arity());
            Plan::Join {
                left: Box::new(l),
                right: Box::new(r),
                left_col,
                right_col,
            }
        }
        4 => {
            let input = gen_plan(rng, depth - 1);
            let a = input.arity();
            let cols: Vec<usize> = (0..rng.random_range(1..4))
                .map(|_| rng.random_range(0..a))
                .collect();
            Plan::Project {
                input: Box::new(input),
                cols,
            }
        }
        5 => {
            let input = gen_plan(rng, depth - 1);
            let a = input.arity();
            let mut keys = vec![rng.random_range(0..a)];
            let k1 = rng.random_range(0..a);
            if rng.random() < 0.5 && !keys.contains(&k1) {
                keys.push(k1);
            }
            Plan::GroupCount {
                input: Box::new(input),
                keys,
            }
        }
        6 => Plan::HavingCountGt {
            input: Box::new(gen_plan(rng, depth - 1)),
            min: rng.next_u64() % 3,
        },
        7 => {
            let input = gen_plan(rng, depth - 1);
            Plan::UnionAll {
                inputs: vec![input.clone(), input],
            }
        }
        _ => Plan::Distinct {
            input: Box::new(gen_plan(rng, depth - 1)),
        },
    }
}

fn gen_triples(rng: &mut StdRng) -> Vec<Triple> {
    (0..rng.random_range(0..60))
        .map(|_| {
            Triple::new(
                rng.next_u64() % ID_SPACE,
                rng.next_u64() % ID_SPACE,
                rng.next_u64() % ID_SPACE,
            )
        })
        .collect()
}

/// Lexicographic non-decrease of `rows` under the column key `sorted_by`.
fn is_sorted_by(rows: &[Vec<u64>], sorted_by: &[usize]) -> bool {
    rows.windows(2).all(|w| {
        let (a, b) = (&w[0], &w[1]);
        for &c in sorted_by {
            match a[c].cmp(&b[c]) {
                std::cmp::Ordering::Less => return true,
                std::cmp::Ordering::Greater => return false,
                std::cmp::Ordering::Equal => {}
            }
        }
        true
    })
}

/// The tentpole invariant: for randomized plans, whatever order (and
/// distinctness) the derivation claims is observable in the actual engine
/// output, and the answers match the naive executor exactly.
#[test]
fn derived_props_match_actual_output_on_random_plans() {
    let mut rng = StdRng::seed_from_u64(0x5047_5250);
    let mut sorted_claims = 0usize;
    let mut distinct_claims = 0usize;
    for round in 0..150 {
        let triples = gen_triples(&mut rng);
        let plan = gen_plan(&mut rng, 3);
        assert_eq!(plan.validate(), Ok(()), "round {round}");
        let want = naive::normalize(naive::execute(&plan, &triples));

        for order in [SortOrder::Spo, SortOrder::Pso, SortOrder::Osp] {
            let m = StorageManager::new(MachineProfile::B);
            let mut engine = ColumnEngine::new();
            engine.load_triple_store(&m, &triples, order, true);
            engine.load_vertical(&m, &triples, true);

            let chunk = engine.execute(&plan).expect("plan executes");
            let rows = chunk.to_rows();
            assert_eq!(
                naive::normalize(rows.clone()),
                want,
                "round {round}, order {order}: wrong answers for {plan:?}"
            );

            let props = derive(&plan, &PropsContext::with_order(order));
            if let Some(key) = &props.sorted_by {
                sorted_claims += 1;
                assert!(
                    is_sorted_by(&rows, key),
                    "round {round}, order {order}: output not sorted by \
                     {key:?} for {plan:?}\nrows: {rows:?}"
                );
            }
            if props.distinct {
                distinct_claims += 1;
                let mut unique = rows.clone();
                unique.sort_unstable();
                unique.dedup();
                assert_eq!(
                    unique.len(),
                    rows.len(),
                    "round {round}, order {order}: duplicate rows despite \
                     distinct claim for {plan:?}"
                );
            }
        }
    }
    // The generator must actually exercise the claims, not vacuously pass.
    assert!(
        sorted_claims > 100,
        "only {sorted_claims} sortedness claims"
    );
    assert!(
        distinct_claims > 20,
        "only {distinct_claims} distinct claims"
    );
}

/// The run-encoding claim is *sound*: a run-encoded column never flows
/// where the derivation (under the engine's own context, which knows
/// which stored columns are RLE) claims none — and wherever one does
/// flow, expanding it yields exactly the flat values. The claim is an
/// upper bound, not an exact predictor: the executor's cost gates may
/// materialize a claimed column flat (dense gathers over short runs).
/// Join-free plans only: the column engine reorders join chains before
/// executing, so a joined plan's *executed* shape can differ from the
/// derived one.
#[test]
fn run_encoded_columns_only_flow_where_claimed() {
    let mut rng = StdRng::seed_from_u64(0x52_554E);
    let mut actual_runs = 0usize;
    for round in 0..250 {
        // Heavily duplicated ids → VP subject columns and triples lead
        // columns compress, so run columns actually occur.
        let triples: Vec<Triple> = (0..rng.random_range(40..120))
            .map(|_| {
                Triple::new(
                    rng.next_u64() % 4,
                    rng.next_u64() % 3,
                    rng.next_u64() % ID_SPACE,
                )
            })
            .collect();
        let plan = gen_plan(&mut rng, 2);
        if swans_plan::optimize::has_join(&plan) {
            continue;
        }
        let m = StorageManager::new(MachineProfile::B);
        let mut engine = ColumnEngine::new();
        engine.load_triple_store(&m, &triples, SortOrder::Pso, true);
        engine.load_vertical(&m, &triples, true);
        let props = derive(&plan, &engine.props_ctx());
        let chunk = engine.execute(&plan).expect("plan executes");
        for col in 0..chunk.arity() {
            if let Some(runs) = chunk.col_runs(col) {
                actual_runs += 1;
                assert!(
                    props.run_encoded.contains(&col),
                    "round {round}: unclaimed run column {col} for {plan:?}"
                );
                let runs = runs.clone();
                assert_eq!(
                    runs.expand().as_slice(),
                    chunk.col(col),
                    "round {round}: run expansion differs from flat values"
                );
            }
        }
    }
    assert!(actual_runs > 10, "only {actual_runs} run-encoded outputs");
}

/// Randomized A/B: the sorted dispatch layer returns exactly the hash
/// baseline's answers.
#[test]
fn sorted_and_hash_paths_agree_on_random_plans() {
    let mut rng = StdRng::seed_from_u64(0xAB_CDEF);
    for _ in 0..80 {
        let triples = gen_triples(&mut rng);
        let plan = gen_plan(&mut rng, 3);
        let m = StorageManager::new(MachineProfile::B);
        let mut sorted = ColumnEngine::new();
        sorted.load_triple_store(&m, &triples, SortOrder::Pso, true);
        sorted.load_vertical(&m, &triples, true);
        let mut hash = ColumnEngine::new();
        hash.set_sorted_paths(false);
        hash.load_triple_store(&m, &triples, SortOrder::Pso, true);
        hash.load_vertical(&m, &triples, true);
        assert_eq!(
            naive::normalize(sorted.execute(&plan).expect("sorted").to_rows()),
            naive::normalize(hash.execute(&plan).expect("hash").to_rows()),
            "sorted/hash disagree on {plan:?}"
        );
    }
}

mod dispatch {
    use super::*;
    use swans_datagen::{generate, BartonConfig};
    use swans_plan::queries::{build_plan, QueryContext, QueryId, Scheme};

    /// The acceptance criterion: subject–subject joins on the
    /// vertically-partitioned layout run through `ops::merge_join`,
    /// observed via the kernel-dispatch counters — and with the sorted
    /// layer disabled they fall back to hashing with identical answers.
    #[test]
    fn vp_subject_joins_dispatch_merge_join() {
        let ds = generate(&BartonConfig {
            scale: 0.0004,
            seed: 9,
            n_properties: 40,
        });
        let ctx = QueryContext::from_dataset(&ds, 10);
        let m = StorageManager::new(MachineProfile::B);
        let mut sorted = ColumnEngine::new();
        sorted.load_vertical(&m, &ds.triples, true);
        let mut hash = ColumnEngine::new();
        hash.set_sorted_paths(false);
        hash.load_vertical(&m, &ds.triples, true);

        // q5 joins two subject-sorted property tables directly and q4's
        // chain is reordered so a sorted pair merges first; q7's
        // three-way subject star goes to the leapfrog kernel instead of
        // a merge-join pair since cost-based enumeration landed.
        for q in [QueryId::Q4, QueryId::Q5, QueryId::Q7] {
            let plan = build_plan(q, Scheme::VerticallyPartitioned, &ctx);
            sorted.reset_exec_stats();
            let got = sorted.execute(&plan).expect("sorted run");
            let stats = sorted.exec_stats();
            assert!(
                stats.merge_joins >= 1 || stats.leapfrog_dispatches >= 1,
                "{q}: expected an order-exploiting join, got {stats:?}"
            );

            hash.reset_exec_stats();
            let base = hash.execute(&plan).expect("hash run");
            assert_eq!(hash.exec_stats().merge_joins, 0);
            assert!(hash.exec_stats().hash_joins >= 1);
            assert_eq!(
                naive::normalize(got.to_rows()),
                naive::normalize(base.to_rows()),
                "{q}: sorted and hash answers differ"
            );
        }
    }

    /// On an SPO-clustered triples table, the q2 subject–subject join is
    /// merge-joinable too — the triple-store gets the same treatment.
    #[test]
    fn spo_triple_store_subject_joins_merge() {
        let ds = generate(&BartonConfig {
            scale: 0.0004,
            seed: 10,
            n_properties: 40,
        });
        let ctx = QueryContext::from_dataset(&ds, 10);
        let m = StorageManager::new(MachineProfile::B);
        let mut engine = ColumnEngine::new();
        engine.load_triple_store(&m, &ds.triples, SortOrder::Spo, true);

        let plan = build_plan(QueryId::Q2, Scheme::TripleStore, &ctx);
        engine.reset_exec_stats();
        let _ = engine.execute(&plan).expect("q2 runs");
        assert!(
            engine.exec_stats().merge_joins >= 1,
            "q2 on SPO should merge: {:?}",
            engine.exec_stats()
        );

        // Under PSO the scan output is property-ordered, not
        // subject-ordered: the same plan must hash.
        let mut pso = ColumnEngine::new();
        pso.load_triple_store(&m, &ds.triples, SortOrder::Pso, true);
        pso.reset_exec_stats();
        let _ = pso.execute(&plan).expect("q2 runs");
        assert_eq!(pso.exec_stats().merge_joins, 0);
        assert!(pso.exec_stats().hash_joins >= 1);
    }

    /// Run-based aggregation and linear distinct fire when the input order
    /// allows, with answers identical to the hash kernels.
    #[test]
    fn sorted_group_and_distinct_kernels_dispatch() {
        let triples: Vec<Triple> = (0..200)
            .map(|i| Triple::new(i % 20, i % 4, i % 7))
            .collect();
        let m = StorageManager::new(MachineProfile::B);
        let mut engine = ColumnEngine::new();
        engine.load_vertical(&m, &triples, true);
        engine.load_triple_store(&m, &triples, SortOrder::Pso, true);

        // Property table sorted (s, o): grouping by subject runs on runs.
        let scan = Plan::ScanProperty {
            property: 1,
            s: None,
            o: None,
            emit_property: false,
        };
        let group = Plan::GroupCount {
            input: Box::new(scan.clone()),
            keys: vec![0],
        };
        engine.reset_exec_stats();
        let got = engine.execute(&group).expect("group runs");
        assert_eq!(engine.exec_stats().sorted_group_counts, 1);
        assert_eq!(engine.exec_stats().hash_group_counts, 0);
        assert_eq!(
            naive::normalize(got.to_rows()),
            naive::normalize(naive::execute(&group, &triples))
        );

        // Grouping by (s, o) — the full sort key — also runs on runs.
        let group2 = Plan::GroupCount {
            input: Box::new(scan.clone()),
            keys: vec![0, 1],
        };
        engine.reset_exec_stats();
        let _ = engine.execute(&group2).expect("group2 runs");
        assert_eq!(engine.exec_stats().sorted_group_counts, 1);

        // Distinct over the (s, o)-sorted scan is the linear kernel.
        let distinct = Plan::Distinct {
            input: Box::new(scan),
        };
        engine.reset_exec_stats();
        let got = engine.execute(&distinct).expect("distinct runs");
        assert_eq!(engine.exec_stats().sorted_distincts, 1);
        assert_eq!(engine.exec_stats().sort_distincts, 0);
        assert_eq!(
            naive::normalize(got.to_rows()),
            naive::normalize(naive::execute(&distinct, &triples))
        );

        // Distinct over a GroupCount output is derived-distinct: no work.
        let nested = Plan::Distinct {
            input: Box::new(group),
        };
        engine.reset_exec_stats();
        let _ = engine.execute(&nested).expect("nested runs");
        assert_eq!(engine.exec_stats().distinct_passthroughs, 1);

        // Equality select on the subject of a property scan placed as an
        // explicit Select node resolves by binary search.
        let select = Plan::Select {
            input: Box::new(Plan::ScanProperty {
                property: 1,
                s: None,
                o: None,
                emit_property: false,
            }),
            pred: Predicate {
                col: 0,
                op: CmpOp::Eq,
                value: 5,
            },
        };
        engine.reset_exec_stats();
        let got = engine.execute(&select).expect("select runs");
        assert_eq!(engine.exec_stats().sorted_selects, 1);
        assert_eq!(
            naive::normalize(got.to_rows()),
            naive::normalize(naive::execute(&select, &triples))
        );
    }
}
