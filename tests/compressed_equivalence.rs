//! Compressed-execution determinism: every benchmark query on every
//! engine × layout configuration produces identical (order-normalized)
//! results with run-encoded execution on and off — at pool widths 1, 2
//! and 8, on a clean store, with a non-empty write store pending, and
//! after the merge. The column engine's run kernels are in fact
//! *bit-identical* to their flat twins (same rows, same order); a second
//! test pins that stronger property directly on the engine together with
//! the dispatch accounting (run scans and run kernels genuinely fire on
//! the compressed configurations, and compressed bytes undercut logical
//! bytes).

use swans_bench::updates::configs as all_configs;
use swans_colstore::ColumnEngine;
use swans_core::{normalize_result, Database, EngineKind, StoreConfig};
use swans_plan::queries::{vocab, QueryContext, QueryId};
use swans_rdf::Dataset;

/// Pool widths under test.
const WIDTHS: [usize; 3] = [1, 2, 8];

fn dataset() -> Dataset {
    swans_datagen::generate(&swans_datagen::BartonConfig {
        scale: 0.0015, // ~75k triples: enough rows for real run shapes
        seed: 53,
        n_properties: 40,
    })
}

type TermTriples = Vec<(String, String, String)>;

/// A mutation batch leaving the write store non-empty in every
/// interesting way (mirrors `parallel_equivalence`): tombstones on
/// existing triples, pending inserts on query-relevant properties, and a
/// brand-new property with no load-time table.
fn mutation_batch(ds: &Dataset) -> (TermTriples, TermTriples) {
    let decode = |i: usize| {
        let t = ds.triples[i];
        (
            ds.dict.term(t.s).to_string(),
            ds.dict.term(t.p).to_string(),
            ds.dict.term(t.o).to_string(),
        )
    };
    let dels: TermTriples = (0..ds.len()).step_by(137).map(decode).collect();
    let ins: TermTriples = (0..60)
        .flat_map(|i| {
            let s = format!("<cmp-s{i}>");
            [
                (s.clone(), vocab::TYPE.to_string(), vocab::TEXT.to_string()),
                (
                    s.clone(),
                    vocab::LANGUAGE.to_string(),
                    vocab::FRENCH.to_string(),
                ),
                (s, "<cmp-prop>".to_string(), "\"p\"".to_string()),
            ]
        })
        .collect();
    (dels, ins)
}

/// One database per (configuration, width, run-kernels flag). Row-engine
/// configurations have no run layer, so only the column configurations
/// get a run-off twin — every store must agree with every other anyway.
fn open_all(ds: &Dataset) -> Vec<(String, Database)> {
    let mut dbs = Vec::new();
    for config in all_configs() {
        for &w in &WIDTHS {
            let c: StoreConfig = config.clone().with_threads(w);
            let label = format!("{} @{w}T", c.label());
            dbs.push((
                format!("{label} runs=on"),
                Database::open(ds.clone(), c.clone()).expect(&label),
            ));
            if c.engine == EngineKind::Column {
                let mut engine = ColumnEngine::new();
                engine.set_run_kernels(false);
                dbs.push((
                    format!("{label} runs=off"),
                    Database::open_with_engine(ds.clone(), c, Box::new(engine)).expect(&label),
                ));
            }
        }
    }
    dbs
}

fn run_all(db: &Database, ctx: &QueryContext) -> Vec<Vec<Vec<u64>>> {
    QueryId::ALL
        .iter()
        .map(|&q| normalize_result(q, db.run_benchmark(q, ctx).rows))
        .collect()
}

/// The acceptance criterion: 12 queries × 6 configurations × widths
/// {1, 2, 8} × run kernels {on, off}, identical order-normalized answers —
/// clean, with a pending (unmerged) write store, and after the merge.
#[test]
fn all_queries_agree_with_run_kernels_on_and_off() {
    let ds = dataset();
    let (dels, ins) = mutation_batch(&ds);
    let mut dbs = open_all(&ds);

    // Clean store.
    let ctx = QueryContext::from_dataset(&ds, 28);
    let reference = run_all(&dbs[0].1, &ctx);
    for (label, db) in &dbs[1..] {
        assert_eq!(run_all(db, &ctx), reference, "clean: {label} disagrees");
    }

    // Non-empty write store pending: deletes then inserts, no merge.
    for (label, db) in &mut dbs {
        let deleted = db
            .delete(
                dels.iter()
                    .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
            )
            .expect("deletes");
        assert!(deleted > 0, "{label}: workload must delete something");
        db.insert(
            ins.iter()
                .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
        )
        .expect("inserts");
    }
    let ctx = QueryContext::from_dataset(&dbs[0].1.dataset(), 28);
    let pending_reference = run_all(&dbs[0].1, &ctx);
    assert_ne!(
        pending_reference, reference,
        "the mutation batch must change some answer, or the pending leg is vacuous"
    );
    for (label, db) in &dbs[1..] {
        assert_eq!(
            run_all(db, &ctx),
            pending_reference,
            "pending delta: {label} disagrees"
        );
    }

    // And after the merge.
    for (label, db) in &mut dbs {
        db.merge().expect("merges");
        assert_eq!(db.pending_delta(), 0, "{label}");
        assert_eq!(
            run_all(db, &ctx),
            pending_reference,
            "post-merge: {label} disagrees"
        );
    }
}

/// The stronger engine-level property: the run path's row stream is
/// *bit-identical* to the flat path's (not just set-equal) on every
/// column layout and width, and the dispatch counters prove the two
/// paths really differ — run scans and run kernels fire with the layer
/// on, never with it off, and the compressed bytes the run scans charge
/// undercut the logical bytes they replace.
///
/// Barton properties are mostly single-valued (one object per subject
/// and property), so vertically-partitioned *subject* columns do not
/// compress on the standard data set — faithful to the real Barton data,
/// where only a handful of properties (like `<type>`) are multi-valued.
/// This test therefore runs on a multi-valued derivative (every
/// statement carries five extra objects), the workload shape the
/// compressed VP layout is built for; the triple-store lead columns
/// compress either way.
#[test]
fn column_engine_run_path_is_bit_identical_to_flat_path() {
    use swans_plan::queries::{build_plan, Scheme};
    use swans_rdf::{SortOrder, Triple};
    use swans_storage::{MachineProfile, StorageManager};

    let base = dataset();
    let ctx = QueryContext::from_dataset(&base, 28);
    // Multi-valued derivative: ids are opaque to the engine, so the extra
    // objects can live outside the dictionary. Five extra objects per
    // statement put the subject runs comfortably past the engine's
    // run-emission threshold.
    let mut triples: Vec<Triple> = Vec::with_capacity(base.triples.len() * 6);
    for t in &base.triples {
        triples.push(*t);
        for k in 1..6u64 {
            triples.push(Triple::new(t.s, t.p, t.o.wrapping_add(k * 1_000_003)));
        }
    }
    let ds = swans_rdf::Dataset { triples, ..base };
    let m = StorageManager::new(MachineProfile::B);

    for (layout_name, order, scheme) in [
        ("triple/SPO", Some(SortOrder::Spo), Scheme::TripleStore),
        ("triple/PSO", Some(SortOrder::Pso), Scheme::TripleStore),
        ("vert/SO", None, Scheme::VerticallyPartitioned),
    ] {
        for &w in &WIDTHS {
            let mut run = ColumnEngine::new();
            run.set_threads(w);
            let mut flat = ColumnEngine::new();
            flat.set_run_kernels(false);
            flat.set_threads(w);
            match order {
                Some(o) => {
                    run.load_triple_store(&m, &ds.triples, o, true);
                    flat.load_triple_store(&m, &ds.triples, o, true);
                }
                None => {
                    run.load_vertical(&m, &ds.triples, true);
                    flat.load_vertical(&m, &ds.triples, true);
                }
            }
            for q in QueryId::ALL {
                let plan = build_plan(q, scheme, &ctx);
                let a = run.execute(&plan).expect("run path").to_rows();
                let b = flat.execute(&plan).expect("flat path").to_rows();
                assert_eq!(
                    a, b,
                    "{q}/{layout_name}@{w}T: run vs flat row stream differs"
                );
            }
            let rs = run.exec_stats();
            let fs = flat.exec_stats();
            assert!(
                rs.run_scans > 0 && rs.run_kernel_dispatches > 0,
                "{layout_name}@{w}T: the run layer must actually fire: {rs:?}"
            );
            assert!(
                rs.scan_bytes_compressed < rs.scan_bytes_logical,
                "{layout_name}@{w}T: {rs:?}"
            );
            assert_eq!(fs.run_scans, 0, "{layout_name}@{w}T baseline: {fs:?}");
            assert_eq!(fs.run_kernel_dispatches, 0);
        }
    }
}
