//! Cross-crate integration: every (engine × layout) configuration returns
//! exactly the same answers as the naive reference executor, for every
//! benchmark query, on generated data — including data sets transformed by
//! the §4.4 property splitting.

use swans_core::{normalize_result, Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, split_properties, BartonConfig};
use swans_plan::naive;
use swans_plan::queries::{build_plan, QueryContext, QueryId, Scheme};
use swans_rdf::{Dataset, SortOrder};

fn all_configs() -> Vec<StoreConfig> {
    vec![
        StoreConfig::row(Layout::TripleStore(SortOrder::Spo)),
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
        StoreConfig::row(Layout::VerticallyPartitioned),
        StoreConfig::column(Layout::TripleStore(SortOrder::Spo)),
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        StoreConfig::column(Layout::VerticallyPartitioned),
    ]
}

fn check_all(ds: &Dataset, n_interesting: usize) {
    let ctx = QueryContext::from_dataset(ds, n_interesting);
    let stores: Vec<RdfStore> = all_configs()
        .into_iter()
        .map(|c| RdfStore::load(ds, c))
        .collect();
    for q in QueryId::ALL {
        let reference = normalize_result(
            q,
            naive::execute(&build_plan(q, Scheme::TripleStore, &ctx), &ds.triples),
        );
        for store in &stores {
            let got = normalize_result(q, store.run_query(q, &ctx).rows);
            assert_eq!(
                got,
                reference,
                "{} disagrees with the reference on {q}",
                store.config().label()
            );
        }
    }
}

#[test]
fn all_configurations_match_reference_on_generated_data() {
    let ds = generate(&BartonConfig {
        scale: 0.0008, // ~40k triples
        seed: 1234,
        n_properties: 120,
    });
    check_all(&ds, 28);
}

#[test]
fn equivalence_survives_property_splitting() {
    let base = generate(&BartonConfig {
        scale: 0.0004,
        seed: 77,
        n_properties: 60,
    });
    let split = split_properties(&base, 200, 9);
    assert_eq!(split.distinct_properties().len(), 200);
    check_all(&split, 28);
}

#[test]
fn equivalence_with_tiny_interesting_set() {
    let ds = generate(&BartonConfig {
        scale: 0.0004,
        seed: 3,
        n_properties: 40,
    });
    // A pathological restriction list (only the forced six properties).
    check_all(&ds, 6);
}

#[test]
fn equivalence_when_everything_is_interesting() {
    let ds = generate(&BartonConfig {
        scale: 0.0004,
        seed: 4,
        n_properties: 30,
    });
    // Restriction list == all properties: q2 ≈ q2* etc.
    check_all(&ds, 30);
}

/// The sortedness-aware column-engine paths (merge joins, run-based
/// aggregation, linear distinct, binary-search selection) answer exactly
/// like the hash-only baseline, for all twelve benchmark queries on every
/// column layout — the A/B pair behind `BENCH_PR2.json`.
#[test]
fn sorted_paths_match_hash_paths_on_all_column_layouts() {
    use swans_colstore::ColumnEngine;

    let ds = generate(&BartonConfig {
        scale: 0.0006, // ~30k triples
        seed: 55,
        n_properties: 80,
    });
    let ctx = QueryContext::from_dataset(&ds, 28);
    for layout in [
        Layout::TripleStore(SortOrder::Spo),
        Layout::TripleStore(SortOrder::Pso),
        Layout::VerticallyPartitioned,
    ] {
        let config = StoreConfig::column(layout);
        let sorted = RdfStore::load(&ds, config.clone());
        let mut baseline_engine = ColumnEngine::new();
        baseline_engine.set_sorted_paths(false);
        let hash = RdfStore::with_engine(&ds, config, Box::new(baseline_engine))
            .expect("hash baseline loads");
        for q in QueryId::ALL {
            let scheme = layout.scheme();
            let plan = build_plan(q, scheme, &ctx);
            let a = normalize_result(q, sorted.run_plan(&plan).expect("sorted run").rows);
            let b = normalize_result(q, hash.run_plan(&plan).expect("hash run").rows);
            assert_eq!(a, b, "sorted vs hash differ on {q} / {}", layout.name());
        }
    }
}
