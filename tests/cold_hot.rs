//! The §2.3 benchmark conventions, verified as invariants: cold runs pay
//! I/O, hot runs do not; answers are temperature-independent; cold I/O is
//! deterministic.

use swans_core::runner::{measure_cold, measure_hot};
use swans_core::{Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::queries::{QueryContext, QueryId};
use swans_rdf::SortOrder;

fn dataset() -> swans_rdf::Dataset {
    generate(&BartonConfig {
        scale: 0.0006,
        seed: 5150,
        n_properties: 80,
    })
}

#[test]
fn hot_runs_do_no_io_in_any_configuration() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    for config in [
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
        StoreConfig::row(Layout::VerticallyPartitioned),
        StoreConfig::column(Layout::TripleStore(SortOrder::Spo)),
        StoreConfig::column(Layout::VerticallyPartitioned),
    ] {
        let store = RdfStore::load(&ds, config);
        for q in QueryId::ALL {
            let hot = measure_hot(&store, q, &ctx, 1);
            assert_eq!(
                hot.bytes_read,
                0,
                "{} leaked I/O into a hot {q} run",
                store.config().label()
            );
            assert!(
                (hot.real_seconds - hot.user_seconds).abs() < 1e-9,
                "hot real time must equal user time"
            );
        }
    }
}

#[test]
fn cold_runs_read_deterministic_volumes() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let store = RdfStore::load(&ds, StoreConfig::column(Layout::VerticallyPartitioned));
    for q in [QueryId::Q1, QueryId::Q2Star, QueryId::Q8] {
        store.make_cold();
        let a = store.run_query(q, &ctx);
        store.make_cold();
        let b = store.run_query(q, &ctx);
        assert_eq!(a.io.bytes_read, b.io.bytes_read, "{q} cold I/O varies");
        assert!(a.io.bytes_read > 0, "{q} cold run read nothing");
    }
}

#[test]
fn answers_are_temperature_independent() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let store = RdfStore::load(&ds, StoreConfig::row(Layout::TripleStore(SortOrder::Spo)));
    for q in QueryId::ALL {
        store.make_cold();
        let cold = swans_core::normalize_result(q, store.run_query(q, &ctx).rows);
        let hot = swans_core::normalize_result(q, store.run_query(q, &ctx).rows);
        assert_eq!(cold, hot, "{q} answers differ cold vs hot");
    }
}

#[test]
fn cold_real_time_exceeds_user_time() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    let store = RdfStore::load(
        &ds,
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
    );
    let cold = measure_cold(&store, QueryId::Q2, &ctx, 2);
    assert!(cold.real_seconds > cold.user_seconds);
}

#[test]
fn restricted_pool_rereads_like_cstore() {
    let ds = dataset();
    let ctx = QueryContext::from_dataset(&ds, 28);
    // A pool far smaller than the data forces re-reads even "hot".
    let store = RdfStore::load(
        &ds,
        StoreConfig::column(Layout::VerticallyPartitioned).with_pool_pages(8),
    );
    let hot = measure_hot(&store, QueryId::Q2Star, &ctx, 1);
    assert!(
        hot.bytes_read > 0,
        "an 8-page pool cannot keep a multi-MB working set resident"
    );
}
