//! # swans
//!
//! Umbrella crate of the *swans* RDF system — a reproduction of
//! *"Column-Store Support for RDF Data Management: not all swans are
//! white"* (Sidirourgos, Goncalves, Kersten, Nes, Manegold — VLDB 2008)
//! grown into a layered query system.
//!
//! The usual entry point is [`swans_core::Database`]:
//!
//! ```no_run
//! use swans_core::{Database, Layout, StoreConfig};
//! use swans_datagen::{generate, BartonConfig};
//!
//! let dataset = generate(&BartonConfig::with_triples(100_000));
//! let db = Database::open(dataset, StoreConfig::column(Layout::VerticallyPartitioned))
//!     .expect("valid configuration");
//! let results = db
//!     .query("SELECT ?s WHERE { ?s <type> <Text> . ?s <language> <language/iso639-2b/fre> }")
//!     .expect("valid query");
//! for row in results.iter() {
//!     println!("{}", row.join(" "));
//! }
//! ```
//!
//! Each layer lives in its own crate and is re-exported here (see the
//! top-level `ARCHITECTURE.md` for the full layer diagram, read path and
//! write path):
//!
//! * [`core`] — [`Database`], the [`Engine`] trait, [`RdfStore`] and the
//!   paper's experiment runners;
//! * [`plan`] — logical algebra, SPARQL front-end, optimizer, scheme
//!   lowering, physical-property derivation, benchmark query generator;
//! * [`rowstore`] / [`colstore`] — the two engine architectures, each
//!   with its own write path (in-place B+tree maintenance vs.
//!   write-store + merge);
//! * [`storage`] — the simulated disk, buffer pool and I/O accounting
//!   (read *and* written bytes);
//! * [`rdf`] — dictionary-encoded triples, mutation [`Delta`](rdf::Delta)
//!   batches and N-Triples I/O;
//! * [`datagen`] — the Barton-calibrated data generator.

pub use swans_colstore as colstore;
pub use swans_core as core;
pub use swans_datagen as datagen;
pub use swans_plan as plan;
pub use swans_rdf as rdf;
pub use swans_rowstore as rowstore;
pub use swans_storage as storage;

pub use swans_core::{
    Database, Engine, EngineKind, Error, Layout, RdfStore, ResultSet, StoreConfig,
};
