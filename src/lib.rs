//! # swans
//!
//! Umbrella crate of the *swans* RDF system — a reproduction of
//! *"Column-Store Support for RDF Data Management: not all swans are
//! white"* (Sidirourgos, Goncalves, Kersten, Nes, Manegold — VLDB 2008)
//! grown into a layered query system.
//!
//! The usual entry point is [`swans_core::Database`]:
//!
//! ```no_run
//! use swans_core::{Database, Layout, StoreConfig};
//! use swans_datagen::{generate, BartonConfig};
//!
//! let dataset = generate(&BartonConfig::with_triples(100_000));
//! let db = Database::open(dataset, StoreConfig::column(Layout::VerticallyPartitioned))
//!     .expect("valid configuration");
//! let results = db
//!     .query("SELECT ?s WHERE { ?s <type> <Text> . ?s <language> <language/iso639-2b/fre> }")
//!     .expect("valid query");
//! for row in results.iter() {
//!     println!("{}", row.join(" "));
//! }
//! ```
//!
//! Each layer lives in its own crate and is re-exported here:
//!
//! * [`core`](swans_core) — [`Database`](swans_core::Database), the
//!   [`Engine`](swans_core::Engine) trait, [`RdfStore`](swans_core::RdfStore)
//!   and the paper's experiment runners;
//! * [`plan`](swans_plan) — logical algebra, SPARQL front-end, optimizer,
//!   scheme lowering, benchmark query generator;
//! * [`rowstore`](swans_rowstore) / [`colstore`](swans_colstore) — the two
//!   engine architectures;
//! * [`storage`](swans_storage) — the simulated disk, buffer pool and I/O
//!   accounting;
//! * [`rdf`](swans_rdf) — dictionary-encoded triples and N-Triples I/O;
//! * [`datagen`](swans_datagen) — the Barton-calibrated data generator.

pub use swans_colstore as colstore;
pub use swans_core as core;
pub use swans_datagen as datagen;
pub use swans_plan as plan;
pub use swans_rdf as rdf;
pub use swans_rowstore as rowstore;
pub use swans_storage as storage;

pub use swans_core::{
    Database, Engine, EngineKind, Error, Layout, RdfStore, ResultSet, StoreConfig,
};
