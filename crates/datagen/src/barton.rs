//! The calibrated Barton-like generator.

use crate::rng::StdRng;

use swans_plan::queries::vocab;
use swans_rdf::{Dataset, Id, Triple};

/// Triple count of the real Barton Libraries core table (Table 1).
pub const BARTON_TRIPLES: u64 = 50_255_599;

/// Distinct-subject fraction of the real data set
/// (12,304,739 / 50,255,599).
const SUBJECT_FRACTION: f64 = 0.2448;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct BartonConfig {
    /// Fraction of the full Barton triple count to generate
    /// (1.0 ≈ 50.3M triples; the default 0.02 ≈ 1.0M).
    pub scale: f64,
    /// RNG seed — the generator is fully deterministic given the config.
    pub seed: u64,
    /// Number of distinct properties (the real data set has 222).
    pub n_properties: usize,
}

impl Default for BartonConfig {
    fn default() -> Self {
        Self {
            scale: 0.02,
            seed: 42,
            n_properties: 222,
        }
    }
}

impl BartonConfig {
    /// A config producing roughly `n` triples.
    pub fn with_triples(n: u64) -> Self {
        Self {
            scale: n as f64 / BARTON_TRIPLES as f64,
            ..Self::default()
        }
    }
}

/// Object-generation behaviour of a property.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PropKind {
    /// `<type>`: object is a class drawn from the class distribution.
    Type,
    /// Object is another subject (records and a third of the generic
    /// properties) — these create the subject/object overlap and feed join
    /// pattern C.
    Entity,
    /// Object drawn from a per-property literal pool with a skewed
    /// popularity profile.
    Literal,
    /// `<language>`: small fixed pool, French at ~15%.
    Language,
    /// `<origin>`: small fixed pool, DLC at ~60%.
    Origin,
    /// `<Point>`: `"end"` or `"start"`.
    Point,
}

/// Frequency-rank layout of the named properties. `<type>` is rank 0 by
/// construction (one triple per subject).
const RECORDS_RANK: usize = 1;
const TITLE_RANK: usize = 2;
const CREATOR_RANK: usize = 3;
const DATE_RANK: usize = 4;
const SUBJECT_RANK: usize = 5;
const LANGUAGE_RANK: usize = 6;
const DESCRIPTION_RANK: usize = 7;
const ORIGIN_RANK: usize = 8;
const ENCODING_RANK: usize = 9;
const POINT_RANK: usize = 10;

/// Human-readable names for the most frequent properties (Longwell-style).
const NAMED_PROPS: [(usize, &str); 10] = [
    (RECORDS_RANK, vocab::RECORDS),
    (TITLE_RANK, "<title>"),
    (CREATOR_RANK, "<creator>"),
    (DATE_RANK, "<date>"),
    (SUBJECT_RANK, "<subject>"),
    (LANGUAGE_RANK, vocab::LANGUAGE),
    (DESCRIPTION_RANK, "<description>"),
    (ORIGIN_RANK, vocab::ORIGIN),
    (ENCODING_RANK, vocab::ENCODING),
    (POINT_RANK, vocab::POINT),
];

/// Relative property masses for ranks `1..n` (rank 0 = `<type>` is handled
/// separately): the head (ranks 1–27) carries ~94% − 24.5%, ranks 28–55
/// another ~5%, the tail ~1% — reproducing the paper's "top 13% of the
/// total properties account for the 99% of all triples" and Figure 6's
/// 56-property knee.
fn property_weights(n_props: usize) -> Vec<f64> {
    assert!(n_props >= 12, "need at least the named properties");
    let zipf = |s: f64, lo: usize, hi: usize| -> Vec<f64> {
        (lo..hi)
            .map(|r| 1.0 / ((r - lo + 1) as f64).powf(s))
            .collect()
    };
    let head_hi = 28.min(n_props);
    let mid_hi = 56.min(n_props);
    let head = zipf(1.1, 1, head_hi);
    let mid = zipf(1.0, head_hi, mid_hi);
    let tail = zipf(0.8, mid_hi, n_props);

    // Mass fractions of the non-type population (which is ~75.5% of all
    // triples): head ≈ 0.695/0.755, mid ≈ 0.05/0.755, tail ≈ 0.01/0.755.
    let mut out = vec![0.0; n_props];
    let scale_into = |dst: &mut [f64], src: &[f64], mass: f64| {
        let sum: f64 = src.iter().sum();
        if sum > 0.0 {
            for (d, s) in dst.iter_mut().zip(src) {
                *d = s / sum * mass;
            }
        }
    };
    scale_into(&mut out[1..head_hi], &head, 0.695 / 0.755);
    if mid_hi > head_hi {
        scale_into(&mut out[head_hi..mid_hi], &mid, 0.050 / 0.755);
    }
    if n_props > mid_hi {
        scale_into(&mut out[mid_hi..n_props], &tail, 0.010 / 0.755);
    }
    out
}

fn prop_kind(rank: usize) -> PropKind {
    match rank {
        0 => PropKind::Type,
        RECORDS_RANK => PropKind::Entity,
        LANGUAGE_RANK => PropKind::Language,
        ORIGIN_RANK => PropKind::Origin,
        POINT_RANK => PropKind::Point,
        r if r >= 11 && r % 3 == 2 => PropKind::Entity,
        _ => PropKind::Literal,
    }
}

/// Class shares of the `<type>` triples: `<Date>` ~32.7% (8% of all
/// triples), `<Text>` ~14.8% (the q2–q6 selection), seven more named-class
/// shares, then a thin tail.
const CLASS_SHARES: [f64; 9] = [0.327, 0.148, 0.10, 0.08, 0.07, 0.06, 0.05, 0.04, 0.03];

/// Generates the data set.
pub fn generate(cfg: &BartonConfig) -> Dataset {
    assert!(cfg.scale > 0.0, "scale must be positive");
    let n_total = ((BARTON_TRIPLES as f64 * cfg.scale).round() as usize).max(1000);
    let n_subjects = ((n_total as f64 * SUBJECT_FRACTION).round() as usize).max(100);
    let n_props = cfg.n_properties.max(12);
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    let mut ds = Dataset::with_capacity(n_total + 16);

    // --- intern the fixed vocabulary -------------------------------------
    let type_p = ds.dict.intern(vocab::TYPE);
    let mut prop_ids: Vec<Id> = vec![0; n_props];
    prop_ids[0] = type_p;
    for (rank, slot) in prop_ids.iter_mut().enumerate().skip(1) {
        let name = NAMED_PROPS
            .iter()
            .find(|(r, _)| *r == rank)
            .map(|&(_, n)| n.to_string())
            .unwrap_or_else(|| format!("<prop{rank}>"));
        *slot = ds.dict.intern(&name);
    }

    // Classes: Date, Text, 7 named-ish, then a tail of minor classes.
    let n_classes = 40.min(8 + n_total / 2000).max(10);
    let mut class_ids: Vec<Id> = Vec::with_capacity(n_classes);
    class_ids.push(ds.dict.intern(vocab::DATE));
    class_ids.push(ds.dict.intern(vocab::TEXT));
    for i in 2..n_classes {
        class_ids.push(ds.dict.intern(&format!("<class{i}>")));
    }
    // Cumulative class distribution: the named shares + uniform tail.
    let class_cdf = {
        let named: f64 = CLASS_SHARES.iter().sum();
        let tail_each = (1.0 - named) / (n_classes - CLASS_SHARES.len()) as f64;
        let mut acc = 0.0;
        (0..n_classes)
            .map(|i| {
                acc += CLASS_SHARES.get(i).copied().unwrap_or(tail_each);
                acc
            })
            .collect::<Vec<f64>>()
    };

    // Languages: French at ~15% (the q4 selectivity), English dominant.
    let language_pool: Vec<(Id, f64)> = {
        let fre = ds.dict.intern(vocab::FRENCH);
        let eng = ds.dict.intern("<language/iso639-2b/eng>");
        let ger = ds.dict.intern("<language/iso639-2b/ger>");
        let spa = ds.dict.intern("<language/iso639-2b/spa>");
        let rus = ds.dict.intern("<language/iso639-2b/rus>");
        vec![
            (eng, 0.55),
            (fre, 0.15),
            (ger, 0.12),
            (spa, 0.10),
            (rus, 0.08),
        ]
    };
    let origin_pool: Vec<(Id, f64)> = {
        let dlc = ds.dict.intern(vocab::DLC);
        let ocm = ds.dict.intern("<info:marcorg/OCoLC>");
        let mh = ds.dict.intern("<info:marcorg/MH>");
        vec![(dlc, 0.60), (ocm, 0.25), (mh, 0.15)]
    };
    let point_pool: Vec<(Id, f64)> = {
        let end = ds.dict.intern(vocab::END);
        let start = ds.dict.intern("\"start\"");
        vec![(end, 0.5), (start, 0.5)]
    };

    // Subjects.
    let subject_ids: Vec<Id> = (0..n_subjects)
        .map(|i| ds.dict.intern(&format!("<sub{i:07}>")))
        .collect();

    // --- per-property triple counts ---------------------------------------
    let weights = property_weights(n_props);
    let remaining = n_total - n_subjects; // type triples take n_subjects
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w * remaining as f64).round() as usize).max(1))
        .collect();
    counts[0] = 0; // type handled below
                   // Trim/pad rounding drift on the largest property.
    let drift = counts.iter().sum::<usize>() as i64 - remaining as i64;
    let big = 1; // records, the largest non-type property
    counts[big] = (counts[big] as i64 - drift).max(1) as usize;

    // --- type triples: one per subject ------------------------------------
    for &s in &subject_ids {
        let u: f64 = rng.random();
        let class = class_ids[class_cdf.partition_point(|&c| c < u).min(n_classes - 1)];
        ds.add_encoded(Triple::new(s, type_p, class));
    }

    // --- remaining properties ---------------------------------------------
    let skewed_subject = |rng: &mut StdRng| -> Id {
        // Mild skew: a few subjects are "collections" with many triples,
        // most have a handful — the near-uniform CFD of Figure 1.
        let u: f64 = rng.random();
        let idx = ((n_subjects as f64) * u.powf(1.35)) as usize;
        subject_ids[idx.min(n_subjects - 1)]
    };

    for rank in 1..n_props {
        let p = prop_ids[rank];
        let kind = prop_kind(rank);
        let n_p = counts[rank];
        // Literal pool: ~32% of the property's triple count, skewed reuse.
        let pool: Vec<Id> = if kind == PropKind::Literal {
            let pool_n = ((n_p as f64 * 0.32).ceil() as usize).clamp(1, n_p.max(1));
            (0..pool_n)
                .map(|k| ds.dict.intern(&format!("\"v{rank}_{k}\"")))
                .collect()
        } else {
            Vec::new()
        };
        for _ in 0..n_p {
            let s = skewed_subject(&mut rng);
            let o = match kind {
                PropKind::Type => unreachable!("type triples emitted above"),
                PropKind::Entity => {
                    let idx = rng.random_range(0..n_subjects);
                    subject_ids[idx]
                }
                PropKind::Literal => {
                    let u: f64 = rng.random();
                    pool[((pool.len() as f64) * u * u) as usize % pool.len()]
                }
                PropKind::Language => weighted(&language_pool, &mut rng),
                PropKind::Origin => weighted(&origin_pool, &mut rng),
                PropKind::Point => weighted(&point_pool, &mut rng),
            };
            ds.add_encoded(Triple::new(s, p, o));
        }
    }

    // --- the q8 subject ----------------------------------------------------
    // <conferences> shares literal objects with other subjects: copy the
    // objects of a few existing triples of frequent literal properties.
    let conf = ds.dict.intern(vocab::CONFERENCES);
    let text = ds.expect_id(vocab::TEXT);
    let mut borrowed: Vec<Triple> = Vec::new();
    for rank in [TITLE_RANK, SUBJECT_RANK, DESCRIPTION_RANK, DATE_RANK] {
        let p = prop_ids[rank];
        if let Some(t) = ds.triples.iter().find(|t| t.p == p) {
            borrowed.push(Triple::new(conf, p, t.o));
        }
    }
    ds.add_encoded(Triple::new(conf, type_p, text));
    for t in borrowed {
        ds.add_encoded(t);
    }

    ds
}

fn weighted(pool: &[(Id, f64)], rng: &mut StdRng) -> Id {
    let mut u: f64 = rng.random();
    for &(id, w) in pool {
        if u < w {
            return id;
        }
        u -= w;
    }
    pool.last().expect("non-empty pool").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_rdf::stats::{cfd, DatasetStats};

    fn small() -> Dataset {
        generate(&BartonConfig {
            scale: 0.004, // ~200k triples
            seed: 7,
            n_properties: 222,
        })
    }

    #[test]
    fn determinism() {
        let cfg = BartonConfig {
            scale: 0.0005,
            seed: 99,
            n_properties: 222,
        };
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.triples, b.triples);
        assert_eq!(a.dict.len(), b.dict.len());
    }

    /// Table 1 calibration: ratios within tolerance of the paper.
    #[test]
    fn table1_calibration() {
        let ds = small();
        let st = DatasetStats::compute(&ds);
        let n = st.total_triples as f64;

        assert_eq!(st.distinct_properties, 222);

        // Subjects: 24.48% of triples (paper: 12.30M / 50.26M = 24.5%).
        let subj_frac = st.distinct_subjects as f64 / n;
        assert!((0.22..0.27).contains(&subj_frac), "subjects {subj_frac}");

        // Objects: 31.5% of triples (paper: 15.82M / 50.26M).
        let obj_frac = st.distinct_objects as f64 / n;
        assert!((0.24..0.40).contains(&obj_frac), "objects {obj_frac}");

        // Subject∩object overlap: ~78% of subjects (9.65M / 12.30M).
        let overlap = st.subject_object_overlap as f64 / st.distinct_subjects as f64;
        assert!((0.6..0.95).contains(&overlap), "overlap {overlap}");

        // Dictionary: ~37% of triples (18.47M / 50.26M).
        let dict_frac = st.dictionary_strings as f64 / n;
        assert!((0.28..0.48).contains(&dict_frac), "dict {dict_frac}");

        // Top property (<type>) ≈ 24.5% of triples.
        let top_p = st.top_property_count as f64 / n;
        assert!((0.22..0.27).contains(&top_p), "type share {top_p}");

        // Top object (<Date>) ≈ 8% of triples.
        let top_o = st.top_object_count as f64 / n;
        assert!((0.05..0.11).contains(&top_o), "Date share {top_o}");
    }

    /// Figure 1 / Figure 6 calibration: property CFD knee points.
    #[test]
    fn property_cfd_calibration() {
        let ds = small();
        let by_freq = ds.properties_by_frequency();
        let total: u64 = by_freq.iter().map(|&(_, c)| c).sum();
        let cum = |k: usize| -> f64 {
            by_freq[..k].iter().map(|&(_, c)| c).sum::<u64>() as f64 / total as f64
        };
        let top28 = cum(28);
        let top56 = cum(56);
        assert!((0.90..0.97).contains(&top28), "top-28 coverage {top28}");
        assert!(top56 >= 0.985, "top-56 coverage {top56}");
        // Long tail: the least frequent properties have little data.
        let min = by_freq.last().expect("non-empty").1;
        assert!(min <= 30, "tail property has {min} rows");
    }

    /// Figure 1 shape: the property CFD rises far faster than subjects'.
    #[test]
    fn cfd_property_skew_exceeds_subject_skew() {
        let ds = small();
        let [props, subjects, _objects] = cfd(&ds);
        assert!(props.coverage_at(15.0) > 95.0);
        assert!(subjects.coverage_at(15.0) < 50.0);
    }

    /// Every benchmark constant exists and each query has non-trivial
    /// matching data.
    #[test]
    fn query_constants_present_with_sane_selectivities() {
        let ds = small();
        let n = ds.len() as f64;
        let count = |p: &str, o: Option<&str>| -> usize {
            let pid = ds.expect_id(p);
            let oid = o.map(|o| ds.expect_id(o));
            ds.triples
                .iter()
                .filter(|t| t.p == pid && oid.is_none_or(|x| t.o == x))
                .count()
        };
        let text = count(vocab::TYPE, Some(vocab::TEXT));
        assert!((text as f64 / n) > 0.02, "Text class too rare: {text}");
        assert!(count(vocab::LANGUAGE, Some(vocab::FRENCH)) > 50);
        assert!(count(vocab::ORIGIN, Some(vocab::DLC)) > 50);
        assert!(count(vocab::POINT, Some(vocab::END)) > 50);
        assert!(count(vocab::RECORDS, None) as f64 / n > 0.08);
        // <conferences> exists with shared objects.
        let conf = ds.expect_id(vocab::CONFERENCES);
        let conf_objects: Vec<_> = ds
            .triples
            .iter()
            .filter(|t| t.s == conf)
            .map(|t| t.o)
            .collect();
        assert!(!conf_objects.is_empty());
        let shared = ds
            .triples
            .iter()
            .any(|t| t.s != conf && conf_objects.contains(&t.o));
        assert!(shared, "q8 would return an empty result");
    }

    /// `<records>` links subjects to subjects (join pattern C feeds q5/q6).
    #[test]
    fn records_objects_are_subjects() {
        let ds = small();
        let records = ds.expect_id(vocab::RECORDS);
        let type_p = ds.expect_id(vocab::TYPE);
        let subjects: std::collections::HashSet<Id> = ds
            .triples
            .iter()
            .filter(|t| t.p == type_p)
            .map(|t| t.s)
            .collect();
        let sample: Vec<Id> = ds
            .triples
            .iter()
            .filter(|t| t.p == records)
            .take(1000)
            .map(|t| t.o)
            .collect();
        assert!(!sample.is_empty());
        assert!(sample.iter().all(|o| subjects.contains(o)));
    }

    #[test]
    fn with_triples_hits_target() {
        let ds = generate(&BartonConfig::with_triples(50_000));
        let got = ds.len() as f64;
        assert!((45_000.0..55_000.0).contains(&got), "got {got}");
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = generate(&BartonConfig {
            scale: 0.0,
            ..Default::default()
        });
    }
}
