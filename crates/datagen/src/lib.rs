//! # swans-datagen
//!
//! A deterministic synthetic stand-in for the Barton Libraries data set
//! (reference \[2\] in the paper), calibrated against the paper's Table 1 and Figure 1,
//! plus the property-splitting transform of the §4.4 scalability
//! experiment.
//!
//! ## Substitution rationale
//!
//! The real Barton dump (50,255,599 triples from the MIT Simile project) is
//! not available in this environment, and a full-size run would not fit the
//! time budget anyway. Every conclusion the paper draws rests on
//! *distributional* facts, which the generator reproduces:
//!
//! * one `<type>` triple per subject (Barton: 12.3M type triples vs 12.3M
//!   subjects) — `<type>` is the most frequent property at ~24.5% of all
//!   triples;
//! * a highly Zipfian property distribution: the top 28 properties carry
//!   ~94% of the triples, the top 56 ~99% (the step the paper points out in
//!   Figure 6), and a long tail of properties with almost no data ("many
//!   with just a small number of rows");
//! * near-uniform subjects (every subject has a handful of triples, a few
//!   collection-style subjects have many);
//! * a skewed object distribution whose head is dominated by the `<type>`
//!   classes (`<Date>` at ~8% of all triples, `<Text>` among the runners-up)
//!   and whose body mixes entity references (subjects reused as objects —
//!   ~78% of subjects, Table 1's 9.65M overlap) with per-property literal
//!   pools;
//! * the query constants (`<language>`→French, `<origin>`→DLC,
//!   `<Point>`→`"end"`, `<records>` linking subjects to subjects,
//!   `<conferences>` sharing literal objects with other subjects) are all
//!   present with plausible selectivities, so every benchmark query has
//!   non-trivial work and a non-empty answer.
//!
//! [`BartonConfig::scale`] shrinks the triple count (default 1/50); the
//! harness records achieved-vs-paper statistics in EXPERIMENTS.md.

pub mod barton;
pub mod rng;
pub mod split;

pub use barton::{generate, BartonConfig, BARTON_TRIPLES};
pub use split::split_properties;
