//! A small deterministic PRNG for the data generator.
//!
//! The generator only needs uniform `f64`s and bounded `usize`s from a
//! seedable, reproducible source — not cryptographic quality. Bundling a
//! xoshiro256**-based generator keeps the workspace free of external
//! dependencies (the build must work fully offline) while preserving the
//! generator's contract: the same seed always produces the same data set.

use std::ops::{Range, RangeInclusive};

/// Seedable deterministic random number generator (xoshiro256**).
#[derive(Debug, Clone)]
pub struct StdRng {
    state: [u64; 4],
}

impl StdRng {
    /// Creates a generator from a 64-bit seed. The full 256-bit state is
    /// expanded with splitmix64, as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            state: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s1.wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn random(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` in the given (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn random_range<R: UsizeRange>(&mut self, range: R) -> usize {
        let (lo, hi) = range.bounds();
        assert!(lo < hi, "random_range over an empty range");
        let span = (hi - lo) as u64;
        // Multiply-shift bounded sampling (Lemire); the slight modulo bias
        // of the plain approach is irrelevant here, but this is just as
        // cheap and exact for spans that are powers of two.
        let hi128 = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        lo + hi128 as usize
    }
}

/// Ranges accepted by [`StdRng::random_range`], normalized to
/// `[lo, hi)` bounds.
pub trait UsizeRange {
    /// `(inclusive lower, exclusive upper)` bounds.
    fn bounds(self) -> (usize, usize);
}

impl UsizeRange for Range<usize> {
    fn bounds(self) -> (usize, usize) {
        (self.start, self.end)
    }
}

impl UsizeRange for RangeInclusive<usize> {
    fn bounds(self) -> (usize, usize) {
        let (lo, hi) = self.into_inner();
        (lo, hi + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn random_is_unit_interval_and_covers_it() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            let u = rng.random();
            assert!((0.0..1.0).contains(&u));
            lo_seen |= u < 0.1;
            hi_seen |= u > 0.9;
        }
        assert!(lo_seen && hi_seen, "samples must cover the interval");
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..2_000 {
            let v = rng.random_range(3..7);
            assert!((3..7).contains(&v));
            hit_lo |= v == 3;
            hit_hi |= v == 6;
            let w = rng.random_range(2..=4);
            assert!((2..=4).contains(&w));
        }
        assert!(hit_lo && hit_hi, "both range ends must be reachable");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(5..5);
    }
}
