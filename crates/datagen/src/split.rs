//! The §4.4 property-splitting transform.
//!
//! "We conduct a scalability experiment using the same data-set, thus
//! keeping the same number of triples, but increasing gradually the number
//! of properties in the data-set. This is done by splitting in each round
//! an arbitrary number of properties into n sub-properties, where
//! n = 1…9. The triples defined over the split properties are re-defined
//! on one of the sub-properties following a uniform distribution."

use crate::rng::StdRng;

use swans_plan::queries::vocab;
use swans_rdf::hash::FxHashMap;
use swans_rdf::{Dataset, Id};

/// Properties the benchmark queries bind by name; splitting them would
/// change query semantics, so they are exempt (the paper's splits are
/// "arbitrary" — the queries kept running, so the bound properties must
/// have survived).
const PROTECTED: [&str; 6] = [
    vocab::TYPE,
    vocab::RECORDS,
    vocab::ORIGIN,
    vocab::LANGUAGE,
    vocab::POINT,
    vocab::ENCODING,
];

/// Splits properties until the data set has `target` distinct properties.
/// The triple count is preserved exactly; only property ids change.
///
/// # Panics
/// Panics if `target` is below the current property count, or if there is
/// not enough splittable data to reach it.
pub fn split_properties(ds: &Dataset, target: usize, seed: u64) -> Dataset {
    let mut out = ds.clone();
    let mut rng = StdRng::seed_from_u64(seed);

    let protected: Vec<Id> = PROTECTED
        .iter()
        .filter_map(|name| out.dict.id_of(name))
        .collect();

    // Triple indexes per property.
    let mut by_prop: FxHashMap<Id, Vec<u32>> = FxHashMap::default();
    for (i, t) in out.triples.iter().enumerate() {
        by_prop.entry(t.p).or_default().push(i as u32);
    }
    let mut n_props = by_prop.len();
    assert!(
        target >= n_props,
        "target {target} below current property count {n_props}"
    );

    let mut splittable: Vec<Id> = by_prop
        .keys()
        .copied()
        .filter(|p| !protected.contains(p) && by_prop[p].len() >= 2)
        .collect();
    splittable.sort_unstable(); // determinism

    let mut round = 0u64;
    while n_props < target {
        assert!(
            !splittable.is_empty(),
            "no splittable properties left at {n_props}/{target}"
        );
        let pick = rng.random_range(0..splittable.len());
        let p = splittable.swap_remove(pick);
        let idxs = by_prop.remove(&p).expect("tracked property");

        // n sub-properties, capped by available triples and by the target.
        let max_new = (target - n_props + 1).min(9).min(idxs.len());
        let n: usize = if max_new <= 2 {
            2
        } else {
            rng.random_range(2..=max_new)
        };
        round += 1;

        let base_name = out.dict.term(p).to_owned();
        let sub_ids: Vec<Id> = (0..n)
            .map(|k| out.dict.intern(&format!("{base_name}|r{round}k{k}")))
            .collect();
        let mut sub_idxs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &i in &idxs {
            let k = rng.random_range(0..n);
            out.triples[i as usize].p = sub_ids[k];
            sub_idxs[k].push(i);
        }
        for (k, sid) in sub_ids.iter().enumerate() {
            if !sub_idxs[k].is_empty() {
                if sub_idxs[k].len() >= 2 {
                    splittable.push(*sid);
                }
                by_prop.insert(*sid, std::mem::take(&mut sub_idxs[k]));
            }
        }
        n_props = by_prop.len();
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barton::{generate, BartonConfig};

    fn base() -> Dataset {
        generate(&BartonConfig {
            scale: 0.001, // ~50k triples
            seed: 3,
            n_properties: 222,
        })
    }

    #[test]
    fn reaches_exact_target() {
        let ds = base();
        for target in [250, 400, 700, 1000] {
            let split = split_properties(&ds, target, 11);
            assert_eq!(split.distinct_properties().len(), target);
        }
    }

    #[test]
    fn preserves_triple_count_and_subjects_objects() {
        let ds = base();
        let split = split_properties(&ds, 500, 11);
        assert_eq!(split.len(), ds.len());
        for (a, b) in ds.triples.iter().zip(&split.triples) {
            assert_eq!(a.s, b.s);
            assert_eq!(a.o, b.o);
        }
    }

    #[test]
    fn protected_properties_survive() {
        let ds = base();
        let split = split_properties(&ds, 800, 11);
        for name in PROTECTED {
            let before = {
                let p = ds.expect_id(name);
                ds.triples.iter().filter(|t| t.p == p).count()
            };
            let after = {
                let p = split.expect_id(name);
                split.triples.iter().filter(|t| t.p == p).count()
            };
            assert_eq!(before, after, "{name} changed");
        }
    }

    #[test]
    fn split_is_deterministic() {
        let ds = base();
        let a = split_properties(&ds, 300, 5);
        let b = split_properties(&ds, 300, 5);
        assert_eq!(a.triples, b.triples);
    }

    #[test]
    fn noop_when_target_equals_current() {
        let ds = base();
        let n = ds.distinct_properties().len();
        let same = split_properties(&ds, n, 1);
        assert_eq!(same.triples, ds.triples);
    }

    #[test]
    #[should_panic(expected = "below current property count")]
    fn rejects_shrinking() {
        let ds = base();
        let _ = split_properties(&ds, 10, 1);
    }
}
