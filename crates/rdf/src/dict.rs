//! String ↔ [`Id`] dictionary.
//!
//! One global dictionary interns every term of a data set — subjects,
//! properties and objects share the id space, which is what makes the
//! paper's *join pattern C* (`o = s'`, "semantic role change") a plain
//! integer equi-join. The Barton data set interns 18,468,875 strings
//! (Table 1); the id assigned to a string is its insertion rank.

use crate::hash::FxHashMap;
use crate::Id;

/// Interning dictionary mapping term strings to dense [`Id`]s and back.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    strings: Vec<String>,
    lookup: FxHashMap<String, Id>,
    /// Total bytes of interned string payload (used for the Table 1
    /// "data set size" estimate).
    payload_bytes: u64,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty dictionary with room for `cap` strings.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            strings: Vec::with_capacity(cap),
            lookup: FxHashMap::with_capacity_and_hasher(cap, Default::default()),
            payload_bytes: 0,
        }
    }

    /// Interns `term`, returning its id. Existing terms keep their id.
    pub fn intern(&mut self, term: &str) -> Id {
        if let Some(&id) = self.lookup.get(term) {
            return id;
        }
        let id = self.strings.len() as Id;
        self.strings.push(term.to_owned());
        self.lookup.insert(term.to_owned(), id);
        self.payload_bytes += term.len() as u64;
        id
    }

    /// Looks up an already-interned term.
    pub fn id_of(&self, term: &str) -> Option<Id> {
        self.lookup.get(term).copied()
    }

    /// Resolves an id back to its term. Panics on an id this dictionary
    /// never produced (that is a logic error, not an input error).
    pub fn term(&self, id: Id) -> &str {
        &self.strings[id as usize]
    }

    /// Resolves an id if it is in range.
    pub fn get_term(&self, id: Id) -> Option<&str> {
        self.strings.get(id as usize).map(String::as_str)
    }

    /// Number of interned strings (Table 1: "strings in dictionary").
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Total bytes of interned string payload.
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Iterates `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (Id, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (i as Id, s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("<type>");
        let b = d.intern("<type>");
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_insertion_ranks() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
        assert_eq!(d.intern("b"), 1);
    }

    #[test]
    fn roundtrip() {
        let mut d = Dictionary::new();
        let id = d.intern("<http://example.org/records>");
        assert_eq!(d.term(id), "<http://example.org/records>");
        assert_eq!(d.id_of("<http://example.org/records>"), Some(id));
        assert_eq!(d.id_of("<missing>"), None);
        assert_eq!(d.get_term(999), None);
    }

    #[test]
    fn payload_bytes_counts_each_string_once() {
        let mut d = Dictionary::new();
        d.intern("abcd");
        d.intern("abcd");
        d.intern("ef");
        assert_eq!(d.payload_bytes(), 6);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut d = Dictionary::new();
        d.intern("x");
        d.intern("y");
        let collected: Vec<_> = d.iter().collect();
        assert_eq!(collected, vec![(0, "x"), (1, "y")]);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Interning any sequence of strings round-trips: every string maps
        /// to an id that resolves back to the same string, and ids stay
        /// dense in `0..len`.
        #[test]
        fn roundtrip_random(terms in proptest::collection::vec(".{0,24}", 0..200)) {
            let mut d = Dictionary::new();
            let ids: Vec<Id> = terms.iter().map(|t| d.intern(t)).collect();
            for (t, id) in terms.iter().zip(&ids) {
                prop_assert_eq!(d.term(*id), t.as_str());
                prop_assert_eq!(d.id_of(t), Some(*id));
            }
            let distinct: std::collections::HashSet<_> = terms.iter().collect();
            prop_assert_eq!(d.len(), distinct.len());
            for id in ids {
                prop_assert!((id as usize) < d.len());
            }
        }
    }
}
