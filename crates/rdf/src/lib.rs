//! # swans-rdf
//!
//! The RDF data model underlying the `swans` reproduction of
//! *"Column-Store Support for RDF Data Management: not all swans are white"*
//! (Sidirourgos et al., VLDB 2008).
//!
//! An RDF data set is a bag of *triples* `(subject, property, object)`.
//! Following the paper (and its appendix: *"the actual queries use integer
//! predicates, since all strings are encoded on a dictionary structure"*),
//! every term is interned in a global [`Dictionary`] and all downstream
//! processing happens on dense integer [`Id`]s.
//!
//! This crate provides:
//!
//! * [`Dictionary`] — string ↔ [`Id`] interning with O(1) lookups both ways,
//! * [`Triple`] and the six [`SortOrder`] permutations used by the storage
//!   schemes (SPO, PSO, ...),
//! * [`Dataset`] — an in-memory triple bag plus its dictionary,
//! * [`Delta`] — one batch of triple mutations (the currency of the write
//!   path: deletes-before-inserts, set-semantics deletes),
//! * [`stats`] — the data-set statistics of the paper's Table 1 and the
//!   cumulative frequency distributions of Figure 1,
//! * [`ntriples`] — a minimal line-oriented N-Triples-style reader/writer so
//!   real data can be loaded and synthetic data exported.

pub mod dataset;
pub mod delta;
pub mod dict;
pub mod hash;
pub mod ntriples;
pub mod stats;
pub mod triple;

pub use dataset::Dataset;
pub use delta::{Delta, DeltaDecodeError};
pub use dict::Dictionary;
pub use stats::{CfdSeries, DatasetStats};
pub use triple::{SortOrder, Triple};

/// Dense identifier for an interned term (subject, property or object).
///
/// Ids are assigned contiguously from 0 by the [`Dictionary`], so they can be
/// used directly as indexes into side arrays. The paper's full Barton data
/// set interns ~18.5M strings; `u64` leaves ample headroom while keeping
/// column vectors simple (`Vec<Id>`).
pub type Id = u64;
