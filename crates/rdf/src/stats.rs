//! Data-set statistics: the paper's Table 1 and Figure 1.
//!
//! Table 1 reports, for the Barton Libraries data set: total triples,
//! distinct properties / subjects / objects, the subject∩object overlap,
//! dictionary size and raw data size. Figure 1 plots cumulative frequency
//! distributions (CFDs) of properties, subjects and objects over the triple
//! population: x = % of the distinct items (most frequent first),
//! y = % of triples they cover.

use crate::hash::{FxHashMap, FxHashSet};
use crate::{Dataset, Id};

/// The Table 1 summary of a data set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetStats {
    /// Total triples (paper: 50,255,599).
    pub total_triples: u64,
    /// Distinct properties (paper: 222).
    pub distinct_properties: u64,
    /// Distinct subjects (paper: 12,304,739).
    pub distinct_subjects: u64,
    /// Distinct objects (paper: 15,817,921).
    pub distinct_objects: u64,
    /// Distinct terms appearing as both subject and object
    /// (paper: 9,654,007).
    pub subject_object_overlap: u64,
    /// Strings in the dictionary (paper: 18,468,875) — the distinct terms
    /// occurring in the triples (|subjects ∪ properties ∪ objects|).
    pub dictionary_strings: u64,
    /// Estimated raw data-set size in bytes: each triple serialized as its
    /// three terms plus separators, N-Triples style (paper: 1253 MB).
    pub raw_bytes: u64,
    /// Frequency of the most frequent property (paper: 12,327,859 for
    /// `#type`).
    pub top_property_count: u64,
    /// Frequency of the most frequent object (paper: 4,035,522 for
    /// `#Date`).
    pub top_object_count: u64,
    /// Frequency of the most frequent subject (paper: 3,794).
    pub top_subject_count: u64,
}

impl DatasetStats {
    /// Computes all Table 1 statistics in two passes over the triples.
    pub fn compute(ds: &Dataset) -> Self {
        let mut prop_freq: FxHashMap<Id, u64> = Default::default();
        let mut subj_freq: FxHashMap<Id, u64> = Default::default();
        let mut obj_freq: FxHashMap<Id, u64> = Default::default();
        let mut raw_bytes: u64 = 0;

        for t in &ds.triples {
            *prop_freq.entry(t.p).or_insert(0) += 1;
            *subj_freq.entry(t.s).or_insert(0) += 1;
            *obj_freq.entry(t.o).or_insert(0) += 1;
            // "<s> <p> <o> .\n" — three terms, three spaces, dot, newline.
            raw_bytes += ds.dict.term(t.s).len() as u64
                + ds.dict.term(t.p).len() as u64
                + ds.dict.term(t.o).len() as u64
                + 5;
        }

        let subjects: FxHashSet<Id> = subj_freq.keys().copied().collect();
        let overlap = obj_freq.keys().filter(|o| subjects.contains(o)).count() as u64;
        let mut terms: FxHashSet<Id> = subjects;
        terms.extend(prop_freq.keys());
        terms.extend(obj_freq.keys());

        Self {
            total_triples: ds.triples.len() as u64,
            distinct_properties: prop_freq.len() as u64,
            distinct_subjects: subj_freq.len() as u64,
            distinct_objects: obj_freq.len() as u64,
            subject_object_overlap: overlap,
            dictionary_strings: terms.len() as u64,
            raw_bytes,
            top_property_count: prop_freq.values().copied().max().unwrap_or(0),
            top_object_count: obj_freq.values().copied().max().unwrap_or(0),
            top_subject_count: subj_freq.values().copied().max().unwrap_or(0),
        }
    }
}

/// One cumulative-frequency-distribution series of Figure 1.
///
/// `points[i] = (pct_of_items, pct_of_triples)` after including the
/// `i+1` most frequent items.
#[derive(Debug, Clone, PartialEq)]
pub struct CfdSeries {
    /// Which dimension this CFD describes ("properties", "subjects",
    /// "objects").
    pub label: &'static str,
    /// Cumulative points, most frequent item first.
    pub points: Vec<(f64, f64)>,
}

impl CfdSeries {
    /// Builds the CFD for a frequency map.
    fn from_freqs(label: &'static str, freqs: &FxHashMap<Id, u64>, total: u64) -> Self {
        let mut counts: Vec<u64> = freqs.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let n_items = counts.len() as f64;
        let total = total as f64;
        let mut cum = 0u64;
        let points = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                cum += c;
                (100.0 * (i + 1) as f64 / n_items, 100.0 * cum as f64 / total)
            })
            .collect();
        Self { label, points }
    }

    /// The % of triples covered by the top `pct_items` % of items.
    pub fn coverage_at(&self, pct_items: f64) -> f64 {
        self.points
            .iter()
            .take_while(|(x, _)| *x <= pct_items + 1e-9)
            .last()
            .map(|&(_, y)| y)
            .unwrap_or(0.0)
    }
}

/// All three Figure 1 series for a data set.
pub fn cfd(ds: &Dataset) -> [CfdSeries; 3] {
    let mut prop_freq: FxHashMap<Id, u64> = Default::default();
    let mut subj_freq: FxHashMap<Id, u64> = Default::default();
    let mut obj_freq: FxHashMap<Id, u64> = Default::default();
    for t in &ds.triples {
        *prop_freq.entry(t.p).or_insert(0) += 1;
        *subj_freq.entry(t.s).or_insert(0) += 1;
        *obj_freq.entry(t.o).or_insert(0) += 1;
    }
    let total = ds.triples.len() as u64;
    [
        CfdSeries::from_freqs("properties", &prop_freq, total),
        CfdSeries::from_freqs("subjects", &subj_freq, total),
        CfdSeries::from_freqs("objects", &obj_freq, total),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        let mut d = Dataset::new();
        // type appears 3x, lang 1x; s1 is also an object of one triple.
        d.add("s1", "type", "Text");
        d.add("s2", "type", "Text");
        d.add("s3", "type", "Date");
        d.add("s2", "lang", "s1");
        d
    }

    #[test]
    fn table1_counts() {
        let st = DatasetStats::compute(&sample());
        assert_eq!(st.total_triples, 4);
        assert_eq!(st.distinct_properties, 2);
        assert_eq!(st.distinct_subjects, 3);
        assert_eq!(st.distinct_objects, 3); // Text, Date, s1
        assert_eq!(st.subject_object_overlap, 1); // s1
        assert_eq!(st.dictionary_strings, 7); // s1 s2 s3 type lang Text Date
        assert_eq!(st.top_property_count, 3);
        assert_eq!(st.top_subject_count, 2); // s2
        assert_eq!(st.top_object_count, 2); // Text
    }

    #[test]
    fn raw_bytes_counts_terms_and_separators() {
        let mut d = Dataset::new();
        d.add("ab", "c", "def"); // 2+1+3 + 5 = 11
        let st = DatasetStats::compute(&d);
        assert_eq!(st.raw_bytes, 11);
    }

    #[test]
    fn cfd_is_monotone_and_ends_at_100() {
        let series = cfd(&sample());
        for s in &series {
            let mut prev = (0.0, 0.0);
            for &(x, y) in &s.points {
                assert!(x >= prev.0 && y >= prev.1, "CFD must be monotone");
                prev = (x, y);
            }
            let last = s.points.last().unwrap();
            assert!((last.0 - 100.0).abs() < 1e-9);
            assert!((last.1 - 100.0).abs() < 1e-9);
        }
    }

    #[test]
    fn cfd_property_skew_visible() {
        let series = cfd(&sample());
        let props = &series[0];
        // Top property (type, 3 of 4 triples) = 50% of items, 75% of triples.
        assert_eq!(props.points[0], (50.0, 75.0));
        assert!((props.coverage_at(50.0) - 75.0).abs() < 1e-9);
    }

    #[test]
    fn empty_dataset_is_all_zeroes() {
        let st = DatasetStats::compute(&Dataset::new());
        assert_eq!(st.total_triples, 0);
        assert_eq!(st.top_property_count, 0);
    }
}
