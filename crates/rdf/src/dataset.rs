//! The in-memory data set: a triple bag plus its dictionary.

use crate::hash::FxHashSet;
use crate::{Dictionary, Id, Triple};

/// A dictionary-encoded RDF data set.
///
/// This is the neutral interchange form: the storage engines load from it,
/// the generator produces it, and [`crate::stats`] summarizes it. Triples
/// are kept in load order; the storage schemes impose their own clustering.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    /// Term dictionary shared by subjects, properties and objects.
    pub dict: Dictionary,
    /// The triple bag, in load order.
    pub triples: Vec<Triple>,
}

impl Dataset {
    /// Creates an empty data set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty data set sized for `triples` triples.
    pub fn with_capacity(triples: usize) -> Self {
        Self {
            dict: Dictionary::with_capacity(triples / 2),
            triples: Vec::with_capacity(triples),
        }
    }

    /// Interns the three terms and appends the triple.
    pub fn add(&mut self, s: &str, p: &str, o: &str) -> Triple {
        let t = Triple::new(
            self.dict.intern(s),
            self.dict.intern(p),
            self.dict.intern(o),
        );
        self.triples.push(t);
        t
    }

    /// Appends an already-encoded triple. The caller guarantees the ids came
    /// from this data set's dictionary.
    pub fn add_encoded(&mut self, t: Triple) {
        self.triples.push(t);
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the data set holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Distinct property ids, sorted by descending frequency (ties by id).
    ///
    /// This ordering matters: the benchmark's "28 interesting properties"
    /// and the Figure 6 property sweep both take prefixes of the
    /// frequency-ranked property list.
    pub fn properties_by_frequency(&self) -> Vec<(Id, u64)> {
        let mut freq: crate::hash::FxHashMap<Id, u64> = Default::default();
        for t in &self.triples {
            *freq.entry(t.p).or_insert(0) += 1;
        }
        let mut v: Vec<(Id, u64)> = freq.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Distinct property ids in ascending id order.
    pub fn distinct_properties(&self) -> Vec<Id> {
        let mut set = FxHashSet::default();
        for t in &self.triples {
            set.insert(t.p);
        }
        let mut v: Vec<Id> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Looks up a term id, panicking with a clear message when the term is
    /// not part of this data set (benchmark constants must exist).
    pub fn expect_id(&self, term: &str) -> Id {
        self.dict
            .id_of(term)
            .unwrap_or_else(|| panic!("term {term:?} is not in the data set dictionary"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut d = Dataset::new();
        d.add("s1", "type", "Text");
        d.add("s1", "lang", "fre");
        d.add("s2", "type", "Text");
        d.add("s2", "type", "Date");
        d
    }

    #[test]
    fn add_interns_and_appends() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        // s1, type, Text, lang, fre, s2, Date = 7 strings
        assert_eq!(d.dict.len(), 7);
    }

    #[test]
    fn properties_by_frequency_ranks_type_first() {
        let d = tiny();
        let props = d.properties_by_frequency();
        assert_eq!(props.len(), 2);
        assert_eq!(d.dict.term(props[0].0), "type");
        assert_eq!(props[0].1, 3);
        assert_eq!(d.dict.term(props[1].0), "lang");
    }

    #[test]
    fn distinct_properties_sorted_by_id() {
        let d = tiny();
        let props = d.distinct_properties();
        assert_eq!(props.len(), 2);
        assert!(props.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "not in the data set dictionary")]
    fn expect_id_panics_on_missing_term() {
        tiny().expect_id("<nope>");
    }

    #[test]
    fn frequency_ties_break_by_id() {
        let mut d = Dataset::new();
        d.add("a", "p1", "x");
        d.add("a", "p2", "x");
        let props = d.properties_by_frequency();
        assert!(props[0].0 < props[1].0);
    }
}
