//! The in-memory data set: a triple bag plus its dictionary.

use crate::hash::FxHashSet;
use crate::{Delta, Dictionary, Id, Triple};

/// A dictionary-encoded RDF data set.
///
/// This is the neutral interchange form: the storage engines load from it,
/// the generator produces it, and [`crate::stats`] summarizes it. Triples
/// are kept in load order; the storage schemes impose their own clustering.
#[derive(Debug, Default, Clone)]
pub struct Dataset {
    /// Term dictionary shared by subjects, properties and objects.
    pub dict: Dictionary,
    /// The triple bag, in load order.
    pub triples: Vec<Triple>,
}

impl Dataset {
    /// Creates an empty data set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty data set sized for `triples` triples.
    pub fn with_capacity(triples: usize) -> Self {
        Self {
            dict: Dictionary::with_capacity(triples / 2),
            triples: Vec::with_capacity(triples),
        }
    }

    /// Interns the three terms and appends the triple.
    pub fn add(&mut self, s: &str, p: &str, o: &str) -> Triple {
        let t = Triple::new(
            self.dict.intern(s),
            self.dict.intern(p),
            self.dict.intern(o),
        );
        self.triples.push(t);
        t
    }

    /// Appends an already-encoded triple. The caller guarantees the ids came
    /// from this data set's dictionary.
    pub fn add_encoded(&mut self, t: Triple) {
        self.triples.push(t);
    }

    /// Interns the three terms *without* appending a triple — the
    /// incremental-interning step of the write path: new terms arriving in
    /// an insert batch get fresh dense ids, existing terms keep theirs, and
    /// nothing else about the dictionary is rebuilt.
    pub fn encode(&mut self, s: &str, p: &str, o: &str) -> Triple {
        Triple::new(
            self.dict.intern(s),
            self.dict.intern(p),
            self.dict.intern(o),
        )
    }

    /// Encodes a triple only if all three terms are already interned.
    ///
    /// This is the delete-path encoder: a triple naming an unknown term
    /// cannot be stored here, so there is nothing to delete (and no reason
    /// to pollute the dictionary with the attempt).
    pub fn try_encode(&self, s: &str, p: &str, o: &str) -> Option<Triple> {
        Some(Triple::new(
            self.dict.id_of(s)?,
            self.dict.id_of(p)?,
            self.dict.id_of(o)?,
        ))
    }

    /// Applies a [`Delta`] to the triple bag: removes every copy of each
    /// deleted triple, then appends the inserts in order. The caller
    /// guarantees the delta's ids came from this data set's dictionary.
    ///
    /// This keeps the data set the *logical* truth of the system while the
    /// engines absorb the same delta physically — a fresh bulk load of the
    /// post-`apply` data set must answer every query exactly like an engine
    /// that took the delta through its write path.
    pub fn apply(&mut self, delta: &Delta) {
        if !delta.deletes.is_empty() {
            let doomed: FxHashSet<Triple> = delta.deletes.iter().copied().collect();
            self.triples.retain(|t| !doomed.contains(t));
        }
        self.triples.extend_from_slice(&delta.inserts);
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.triples.len()
    }

    /// True when the data set holds no triples.
    pub fn is_empty(&self) -> bool {
        self.triples.is_empty()
    }

    /// Distinct property ids, sorted by descending frequency (ties by id).
    ///
    /// This ordering matters: the benchmark's "28 interesting properties"
    /// and the Figure 6 property sweep both take prefixes of the
    /// frequency-ranked property list.
    pub fn properties_by_frequency(&self) -> Vec<(Id, u64)> {
        let mut freq: crate::hash::FxHashMap<Id, u64> = Default::default();
        for t in &self.triples {
            *freq.entry(t.p).or_insert(0) += 1;
        }
        let mut v: Vec<(Id, u64)> = freq.into_iter().collect();
        v.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }

    /// Distinct property ids in ascending id order.
    pub fn distinct_properties(&self) -> Vec<Id> {
        let mut set = FxHashSet::default();
        for t in &self.triples {
            set.insert(t.p);
        }
        let mut v: Vec<Id> = set.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Looks up a term id, panicking with a clear message when the term is
    /// not part of this data set (benchmark constants must exist).
    pub fn expect_id(&self, term: &str) -> Id {
        self.dict
            .id_of(term)
            .unwrap_or_else(|| panic!("term {term:?} is not in the data set dictionary"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        let mut d = Dataset::new();
        d.add("s1", "type", "Text");
        d.add("s1", "lang", "fre");
        d.add("s2", "type", "Text");
        d.add("s2", "type", "Date");
        d
    }

    #[test]
    fn add_interns_and_appends() {
        let d = tiny();
        assert_eq!(d.len(), 4);
        // s1, type, Text, lang, fre, s2, Date = 7 strings
        assert_eq!(d.dict.len(), 7);
    }

    #[test]
    fn properties_by_frequency_ranks_type_first() {
        let d = tiny();
        let props = d.properties_by_frequency();
        assert_eq!(props.len(), 2);
        assert_eq!(d.dict.term(props[0].0), "type");
        assert_eq!(props[0].1, 3);
        assert_eq!(d.dict.term(props[1].0), "lang");
    }

    #[test]
    fn distinct_properties_sorted_by_id() {
        let d = tiny();
        let props = d.distinct_properties();
        assert_eq!(props.len(), 2);
        assert!(props.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "not in the data set dictionary")]
    fn expect_id_panics_on_missing_term() {
        tiny().expect_id("<nope>");
    }

    #[test]
    fn apply_deletes_all_copies_then_inserts() {
        let mut d = tiny();
        d.add("s2", "type", "Text"); // second copy
        let doomed = d.try_encode("s2", "type", "Text").unwrap();
        let fresh = d.encode("s3", "type", "Image");
        let mut delta = Delta::new();
        delta.delete(doomed).insert(fresh);
        let before = d.len();
        d.apply(&delta);
        assert_eq!(d.len(), before - 2 + 1, "both copies go, one insert lands");
        assert!(!d.triples.contains(&doomed));
        assert!(d.triples.contains(&fresh));
    }

    #[test]
    fn try_encode_requires_known_terms() {
        let d = tiny();
        assert!(d.try_encode("s1", "type", "Text").is_some());
        assert_eq!(d.try_encode("s1", "type", "<unseen>"), None);
    }

    #[test]
    fn encode_interns_without_appending() {
        let mut d = tiny();
        let n = d.len();
        let t = d.encode("brand", "new", "terms");
        assert_eq!(d.len(), n, "encode must not append");
        assert_eq!(d.dict.term(t.p), "new");
    }

    #[test]
    fn frequency_ties_break_by_id() {
        let mut d = Dataset::new();
        d.add("a", "p1", "x");
        d.add("a", "p2", "x");
        let props = d.properties_by_frequency();
        assert!(props[0].0 < props[1].0);
    }
}
