//! [`Delta`]: one batch of triple mutations.
//!
//! The write path of the system moves deltas, not triples: the front door
//! ([`Database::insert`]/[`Database::delete`] in `swans-core`) encodes the
//! caller's term strings through the dictionary and hands the engines an
//! already-encoded [`Delta`]; each engine absorbs it into its write store
//! (column engine) or applies it to its B+trees in place (row engine).
//!
//! Semantics, shared by every consumer:
//!
//! * Within one delta, **deletes apply before inserts** — deleting and
//!   re-inserting the same triple in one batch leaves it present.
//! * A delete removes **every copy** of the matching triple (RDF set
//!   semantics over the stored bag); deleting an absent triple is a no-op.
//! * An insert appends one copy (bag semantics) — callers wanting set
//!   semantics delete first or deduplicate upstream.
//!
//! [`Database::insert`]: https://docs.rs/swans-core
//! [`Database::delete`]: https://docs.rs/swans-core

use crate::Triple;

/// A batch of triple mutations in dictionary-encoded space.
///
/// Deletes apply before inserts (see the module docs for the full
/// semantics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Triples to remove (every stored copy of each).
    pub deletes: Vec<Triple>,
    /// Triples to append, in arrival order.
    pub inserts: Vec<Triple>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// A delta that only inserts.
    pub fn of_inserts(inserts: Vec<Triple>) -> Self {
        Self {
            deletes: Vec::new(),
            inserts,
        }
    }

    /// A delta that only deletes.
    pub fn of_deletes(deletes: Vec<Triple>) -> Self {
        Self {
            deletes,
            inserts: Vec::new(),
        }
    }

    /// Queues an insert.
    pub fn insert(&mut self, t: Triple) -> &mut Self {
        self.inserts.push(t);
        self
    }

    /// Queues a delete.
    pub fn delete(&mut self, t: Triple) -> &mut Self {
        self.deletes.push(t);
        self
    }

    /// Number of queued operations (inserts + deletes).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when the delta mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// The delta's payload in bytes (3 × 8 bytes per operation) — what the
    /// storage layer charges a write-ahead append of this batch.
    pub fn payload_bytes(&self) -> u64 {
        self.len() as u64 * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_both_kinds() {
        let mut d = Delta::new();
        d.insert(Triple::new(1, 2, 3)).delete(Triple::new(4, 5, 6));
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.payload_bytes(), 48);
        assert!(Delta::new().is_empty());
    }

    #[test]
    fn of_constructors_fill_one_side() {
        let ins = Delta::of_inserts(vec![Triple::new(1, 2, 3)]);
        assert_eq!(ins.len(), 1);
        assert!(ins.deletes.is_empty());
        let del = Delta::of_deletes(vec![Triple::new(1, 2, 3)]);
        assert_eq!(del.len(), 1);
        assert!(del.inserts.is_empty());
    }
}
