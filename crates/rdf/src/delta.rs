//! [`Delta`]: one batch of triple mutations.
//!
//! The write path of the system moves deltas, not triples: the front door
//! ([`Database::insert`]/[`Database::delete`] in `swans-core`) encodes the
//! caller's term strings through the dictionary and hands the engines an
//! already-encoded [`Delta`]; each engine absorbs it into its write store
//! (column engine) or applies it to its B+trees in place (row engine).
//!
//! Semantics, shared by every consumer:
//!
//! * Within one delta, **deletes apply before inserts** — deleting and
//!   re-inserting the same triple in one batch leaves it present.
//! * A delete removes **every copy** of the matching triple (RDF set
//!   semantics over the stored bag); deleting an absent triple is a no-op.
//! * An insert appends one copy (bag semantics) — callers wanting set
//!   semantics delete first or deduplicate upstream.
//!
//! [`Database::insert`]: https://docs.rs/swans-core
//! [`Database::delete`]: https://docs.rs/swans-core

use crate::Triple;

/// A batch of triple mutations in dictionary-encoded space.
///
/// Deletes apply before inserts (see the module docs for the full
/// semantics).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Delta {
    /// Triples to remove (every stored copy of each).
    pub deletes: Vec<Triple>,
    /// Triples to append, in arrival order.
    pub inserts: Vec<Triple>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// A delta that only inserts.
    pub fn of_inserts(inserts: Vec<Triple>) -> Self {
        Self {
            deletes: Vec::new(),
            inserts,
        }
    }

    /// A delta that only deletes.
    pub fn of_deletes(deletes: Vec<Triple>) -> Self {
        Self {
            deletes,
            inserts: Vec::new(),
        }
    }

    /// Queues an insert.
    pub fn insert(&mut self, t: Triple) -> &mut Self {
        self.inserts.push(t);
        self
    }

    /// Queues a delete.
    pub fn delete(&mut self, t: Triple) -> &mut Self {
        self.deletes.push(t);
        self
    }

    /// Number of queued operations (inserts + deletes).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }

    /// True when the delta mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// The delta's payload in bytes (3 × 8 bytes per operation) — what the
    /// storage layer charges a write-ahead append of this batch.
    pub fn payload_bytes(&self) -> u64 {
        self.len() as u64 * 24
    }

    /// Serializes the delta for the write-ahead log:
    ///
    /// ```text
    /// [n_deletes: u32 LE][n_inserts: u32 LE]
    /// n_deletes × [s: u64 LE][p: u64 LE][o: u64 LE]
    /// n_inserts × [s: u64 LE][p: u64 LE][o: u64 LE]
    /// ```
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.len() * 24);
        out.extend_from_slice(&(self.deletes.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.inserts.len() as u32).to_le_bytes());
        for t in self.deletes.iter().chain(&self.inserts) {
            for id in t.as_row() {
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a [`Delta::to_bytes`] image. Exact-length: the buffer must
    /// hold precisely the announced operations — truncation and trailing
    /// garbage are both typed errors (the WAL's checksum makes corruption
    /// a parse-stopper upstream; this codec still never panics on any
    /// input).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DeltaDecodeError> {
        if bytes.len() < 8 {
            return Err(DeltaDecodeError::Truncated);
        }
        let n_del = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize;
        let n_ins = u32::from_le_bytes(bytes[4..8].try_into().unwrap()) as usize;
        let need = n_del
            .checked_add(n_ins)
            .and_then(|n| n.checked_mul(24))
            .and_then(|n| n.checked_add(8))
            .ok_or(DeltaDecodeError::Truncated)?;
        if bytes.len() < need {
            return Err(DeltaDecodeError::Truncated);
        }
        if bytes.len() > need {
            return Err(DeltaDecodeError::TrailingBytes);
        }
        let mut triples = bytes[8..].chunks_exact(24).map(|c| {
            Triple::new(
                u64::from_le_bytes(c[0..8].try_into().unwrap()),
                u64::from_le_bytes(c[8..16].try_into().unwrap()),
                u64::from_le_bytes(c[16..24].try_into().unwrap()),
            )
        });
        let deletes: Vec<Triple> = triples.by_ref().take(n_del).collect();
        let inserts: Vec<Triple> = triples.collect();
        Ok(Self { deletes, inserts })
    }
}

/// Why a [`Delta::from_bytes`] image failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaDecodeError {
    /// The buffer ends before the announced operations.
    Truncated,
    /// The buffer holds bytes past the announced operations.
    TrailingBytes,
}

impl std::fmt::Display for DeltaDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaDecodeError::Truncated => write!(f, "delta image truncated"),
            DeltaDecodeError::TrailingBytes => write!(f, "delta image has trailing bytes"),
        }
    }
}

impl std::error::Error for DeltaDecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_collects_both_kinds() {
        let mut d = Delta::new();
        d.insert(Triple::new(1, 2, 3)).delete(Triple::new(4, 5, 6));
        assert_eq!(d.len(), 2);
        assert!(!d.is_empty());
        assert_eq!(d.payload_bytes(), 48);
        assert!(Delta::new().is_empty());
    }

    #[test]
    fn codec_round_trips() {
        let mut d = Delta::new();
        d.insert(Triple::new(1, 2, 3))
            .insert(Triple::new(u64::MAX, 0, 7))
            .delete(Triple::new(4, 5, 6));
        assert_eq!(Delta::from_bytes(&d.to_bytes()), Ok(d));
        let empty = Delta::new();
        assert_eq!(Delta::from_bytes(&empty.to_bytes()), Ok(empty));
    }

    #[test]
    fn codec_rejects_truncation_and_trailing_bytes() {
        let mut d = Delta::new();
        d.insert(Triple::new(1, 2, 3)).delete(Triple::new(4, 5, 6));
        let bytes = d.to_bytes();
        for cut in 0..bytes.len() {
            assert_eq!(
                Delta::from_bytes(&bytes[..cut]),
                Err(DeltaDecodeError::Truncated),
                "cut at {cut}"
            );
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            Delta::from_bytes(&long),
            Err(DeltaDecodeError::TrailingBytes)
        );
        // A corrupted count that would overflow the length math is a
        // clean rejection, not a huge allocation or a panic.
        let mut huge = bytes;
        huge[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(Delta::from_bytes(&huge), Err(DeltaDecodeError::Truncated));
    }

    #[test]
    fn of_constructors_fill_one_side() {
        let ins = Delta::of_inserts(vec![Triple::new(1, 2, 3)]);
        assert_eq!(ins.len(), 1);
        assert!(ins.deletes.is_empty());
        let del = Delta::of_deletes(vec![Triple::new(1, 2, 3)]);
        assert_eq!(del.len(), 1);
        assert!(del.inserts.is_empty());
    }
}
