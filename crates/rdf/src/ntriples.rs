//! Minimal N-Triples-style reader/writer.
//!
//! The Barton Libraries data set ships as RDF/XML converted to triples; for
//! this reproduction we exchange data in the simplest whitespace-separated
//! line format: three terms followed by ` .`. Terms may be `<uri>`s,
//! `"literal"`s (no embedded spaces after escaping) or bare tokens. This is
//! deliberately not a full W3C N-Triples parser — it supports round-tripping
//! our own exports and loading simple third-party dumps.

use std::io::{BufRead, Write};

use crate::{Dataset, Triple};

/// Errors raised while parsing.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line did not have the `<s> <p> <o> .` shape.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending line content.
        content: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "I/O error: {e}"),
            ParseError::Malformed { line, content } => {
                write!(f, "malformed triple at line {line}: {content:?}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

/// Splits one line into its three terms. Returns `None` for blank lines and
/// `#` comments, or when the shape is wrong.
fn split_line(line: &str) -> Option<(&str, &str, &str)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return None;
    }
    let line = line.strip_suffix('.').unwrap_or(line).trim_end();
    let mut parts = line.split_whitespace();
    let s = parts.next()?;
    let p = parts.next()?;
    let o = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    Some((s, p, o))
}

/// Reads triples from `reader` into a fresh [`Dataset`].
pub fn read<R: BufRead>(reader: R) -> Result<Dataset, ParseError> {
    let mut ds = Dataset::new();
    for (i, line) in reader.lines().enumerate() {
        let n = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match split_line(&line) {
            Some((s, p, o)) => {
                ds.add(s, p, o);
            }
            None => {
                return Err(ParseError::Malformed {
                    line: n,
                    content: line,
                })
            }
        }
    }
    Ok(ds)
}

/// Writes `ds` in the line format accepted by [`read`].
pub fn write<W: Write>(ds: &Dataset, out: &mut W) -> std::io::Result<()> {
    let mut buf = std::io::BufWriter::new(out);
    for &Triple { s, p, o } in &ds.triples {
        writeln!(
            buf,
            "{} {} {} .",
            ds.dict.term(s),
            ds.dict.term(p),
            ds.dict.term(o)
        )?;
    }
    buf.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_lines() {
        let input = "<s1> <type> <Text> .\n# comment\n\n<s2> <lang> \"fre\" .\n";
        let ds = read(input.as_bytes()).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.dict.term(ds.triples[1].o), "\"fre\"");
    }

    #[test]
    fn rejects_malformed_line_with_position() {
        let input = "<s1> <type> <Text> .\n<s2> <only-two>\n";
        let err = read(input.as_bytes()).unwrap_err();
        match err {
            ParseError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn rejects_four_terms() {
        let err = read("<a> <b> <c> <d> .\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ParseError::Malformed { line: 1, .. }));
    }

    #[test]
    fn roundtrip() {
        let mut ds = Dataset::new();
        ds.add("<s1>", "<type>", "<Text>");
        ds.add("<s1>", "<lang>", "\"fre\"");
        let mut buf = Vec::new();
        write(&ds, &mut buf).unwrap();
        let ds2 = read(buf.as_slice()).unwrap();
        assert_eq!(ds2.len(), 2);
        for (a, b) in ds.triples.iter().zip(&ds2.triples) {
            assert_eq!(ds.dict.term(a.s), ds2.dict.term(b.s));
            assert_eq!(ds.dict.term(a.p), ds2.dict.term(b.p));
            assert_eq!(ds.dict.term(a.o), ds2.dict.term(b.o));
        }
    }

    #[test]
    fn dot_is_optional() {
        let ds = read("<a> <b> <c>\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 1);
    }
}
