//! A fast, non-cryptographic hasher for dictionary and join hash tables.
//!
//! The standard library's SipHash is collision-resistant but slow for the
//! short integer and string keys that dominate RDF query processing. This is
//! the well-known FNV-1a/Fx-style multiply-xor scheme: low quality, very
//! fast, and adequate because none of our tables face adversarial input.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiplicative hasher (Fx-style).
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the fast hasher.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_integers_hash_distinctly() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // A weak hash could collide, but over 10k consecutive integers the
        // multiply-rotate scheme must not collapse.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn string_hashing_is_stable_and_spread() {
        let mut h1 = FxHasher::default();
        h1.write(b"<http://example.org/type>");
        let mut h2 = FxHasher::default();
        h2.write(b"<http://example.org/type>");
        assert_eq!(h1.finish(), h2.finish());

        let mut h3 = FxHasher::default();
        h3.write(b"<http://example.org/typf>");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn map_works_with_string_keys() {
        let mut m: FxHashMap<String, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(format!("term-{i}"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m["term-517"], 517);
    }
}
