//! Triples and the column permutations that define clustering orders.

use crate::Id;

/// A dictionary-encoded RDF triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject id.
    pub s: Id,
    /// Property (predicate) id.
    pub p: Id,
    /// Object id.
    pub o: Id,
}

impl Triple {
    /// Creates a triple.
    #[inline]
    pub fn new(s: Id, p: Id, o: Id) -> Self {
        Self { s, p, o }
    }

    /// The triple as an `[s, p, o]` row, the layout used by the engines.
    #[inline]
    pub fn as_row(&self) -> [Id; 3] {
        [self.s, self.p, self.o]
    }

    /// Reorders the triple's columns into `order`'s key layout.
    #[inline]
    pub fn key(&self, order: SortOrder) -> [Id; 3] {
        let [a, b, c] = order.permutation();
        let row = self.as_row();
        [row[a], row[b], row[c]]
    }
}

impl From<(Id, Id, Id)> for Triple {
    fn from((s, p, o): (Id, Id, Id)) -> Self {
        Self { s, p, o }
    }
}

/// The six permutations of (subject, property, object).
///
/// The paper's triple-store experiments cluster on [`SortOrder::Spo`]
/// (following Abadi et al.) and on [`SortOrder::Pso`] (the authors' improved
/// choice, equivalent in spirit to the vertically-partitioned layout once
/// key-prefix compression removes the leading property column). The
/// remaining permutations serve as the unclustered secondary indices DBX is
/// given in §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SortOrder {
    /// (subject, property, object)
    Spo,
    /// (subject, object, property)
    Sop,
    /// (property, subject, object)
    Pso,
    /// (property, object, subject)
    Pos,
    /// (object, subject, property)
    Osp,
    /// (object, property, subject)
    Ops,
}

impl SortOrder {
    /// All six permutations, in the order the paper lists the DBX indices.
    pub const ALL: [SortOrder; 6] = [
        SortOrder::Spo,
        SortOrder::Pso,
        SortOrder::Pos,
        SortOrder::Osp,
        SortOrder::Sop,
        SortOrder::Ops,
    ];

    /// Maps key position → source column (0 = s, 1 = p, 2 = o).
    #[inline]
    pub fn permutation(self) -> [usize; 3] {
        match self {
            SortOrder::Spo => [0, 1, 2],
            SortOrder::Sop => [0, 2, 1],
            SortOrder::Pso => [1, 0, 2],
            SortOrder::Pos => [1, 2, 0],
            SortOrder::Osp => [2, 0, 1],
            SortOrder::Ops => [2, 1, 0],
        }
    }

    /// The source column (0 = s, 1 = p, 2 = o) at key position `i`.
    #[inline]
    pub fn col_at(self, i: usize) -> usize {
        self.permutation()[i]
    }

    /// Human-readable name, e.g. `"PSO"`.
    pub fn name(self) -> &'static str {
        match self {
            SortOrder::Spo => "SPO",
            SortOrder::Sop => "SOP",
            SortOrder::Pso => "PSO",
            SortOrder::Pos => "POS",
            SortOrder::Osp => "OSP",
            SortOrder::Ops => "OPS",
        }
    }

    /// Sorts triples by this order's lexicographic key.
    pub fn sort(self, triples: &mut [Triple]) {
        triples.sort_unstable_by_key(|t| t.key(self));
    }
}

impl std::fmt::Display for SortOrder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_permutation_spo_is_identity() {
        let t = Triple::new(1, 2, 3);
        assert_eq!(t.key(SortOrder::Spo), [1, 2, 3]);
    }

    #[test]
    fn key_permutation_pso_moves_property_first() {
        let t = Triple::new(1, 2, 3);
        assert_eq!(t.key(SortOrder::Pso), [2, 1, 3]);
        assert_eq!(t.key(SortOrder::Pos), [2, 3, 1]);
        assert_eq!(t.key(SortOrder::Osp), [3, 1, 2]);
        assert_eq!(t.key(SortOrder::Ops), [3, 2, 1]);
        assert_eq!(t.key(SortOrder::Sop), [1, 3, 2]);
    }

    #[test]
    fn all_orders_are_distinct_permutations() {
        let mut perms: Vec<[usize; 3]> = SortOrder::ALL.iter().map(|o| o.permutation()).collect();
        perms.sort();
        perms.dedup();
        assert_eq!(perms.len(), 6);
    }

    #[test]
    fn sort_orders_triples_lexicographically() {
        let mut ts = vec![
            Triple::new(2, 1, 1),
            Triple::new(1, 2, 1),
            Triple::new(1, 1, 2),
        ];
        SortOrder::Pso.sort(&mut ts);
        // PSO keys: (1,2,1), (2,1,1), (1,1,2) -> sorted: (1,1,2),(1,2,1),(2,1,1)
        assert_eq!(
            ts,
            vec![
                Triple::new(1, 1, 2),
                Triple::new(2, 1, 1),
                Triple::new(1, 2, 1),
            ]
        );
    }

    #[test]
    fn col_at_matches_permutation() {
        for o in SortOrder::ALL {
            for i in 0..3 {
                assert_eq!(o.col_at(i), o.permutation()[i]);
            }
        }
    }
}
