//! The benchmark query generator.
//!
//! Builds the paper's queries q1–q7 (Abadi et al.'s benchmark), their
//! unrestricted `*` variants (q2*, q3*, q4*, q6* — "our full-scale
//! experiment where all 222 properties are included in the aggregation"),
//! and the paper's extension q8 (join pattern B), as logical plans for
//! either storage scheme.
//!
//! For the vertically-partitioned scheme, any triple access whose property
//! is unbound expands into a `UnionAll` over one `ScanProperty` per
//! property — the plan-level equivalent of the paper's generated SQL whose
//! `*` variants "grow to a size that seriously challenges the optimizer of
//! DBX" with "more than two hundred unions and joins".

use swans_rdf::{Dataset, Id};

use crate::algebra::{group_count, join, project, scan_all, scan_p, scan_po};
use crate::algebra::{CmpOp, Plan, Predicate};

/// Well-known term spellings shared by the data generator and the query
/// layer. These mirror the constants in the paper's appendix SQL.
pub mod vocab {
    /// The `<type>` property (rdf:type).
    pub const TYPE: &str = "<type>";
    /// The `<Text>` class.
    pub const TEXT: &str = "<Text>";
    /// The `<Date>` class (most frequent object in the data set).
    pub const DATE: &str = "<Date>";
    /// The `<language>` property.
    pub const LANGUAGE: &str = "<language>";
    /// The French language object.
    pub const FRENCH: &str = "<language/iso639-2b/fre>";
    /// The `<origin>` property.
    pub const ORIGIN: &str = "<origin>";
    /// The Library of Congress origin object.
    pub const DLC: &str = "<info:marcorg/DLC>";
    /// The `<records>` property (links records to the entities they
    /// describe; object position holds *subjects*).
    pub const RECORDS: &str = "<records>";
    /// The `<Point>` property.
    pub const POINT: &str = "<Point>";
    /// The `"end"` literal object of `<Point>`.
    pub const END: &str = "\"end\"";
    /// The `<Encoding>` property.
    pub const ENCODING: &str = "<Encoding>";
    /// The `<conferences>` subject used by q8.
    pub const CONFERENCES: &str = "<conferences>";
}

/// The twelve benchmark queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum QueryId {
    Q1,
    Q2,
    Q2Star,
    Q3,
    Q3Star,
    Q4,
    Q4Star,
    Q5,
    Q6,
    Q6Star,
    Q7,
    Q8,
}

impl QueryId {
    /// All queries in result-table order (q1, q2, q2*, ..., q8).
    pub const ALL: [QueryId; 12] = [
        QueryId::Q1,
        QueryId::Q2,
        QueryId::Q2Star,
        QueryId::Q3,
        QueryId::Q3Star,
        QueryId::Q4,
        QueryId::Q4Star,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q6Star,
        QueryId::Q7,
        QueryId::Q8,
    ];

    /// The original seven queries of Abadi et al. (the geometric-mean-G
    /// subset also run on C-Store).
    pub const BASE7: [QueryId; 7] = [
        QueryId::Q1,
        QueryId::Q2,
        QueryId::Q3,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q7,
    ];

    /// True for the unrestricted `*` variants.
    pub fn is_star(self) -> bool {
        matches!(
            self,
            QueryId::Q2Star | QueryId::Q3Star | QueryId::Q4Star | QueryId::Q6Star
        )
    }

    /// Display name, e.g. `"q2*"`.
    pub fn name(self) -> &'static str {
        match self {
            QueryId::Q1 => "q1",
            QueryId::Q2 => "q2",
            QueryId::Q2Star => "q2*",
            QueryId::Q3 => "q3",
            QueryId::Q3Star => "q3*",
            QueryId::Q4 => "q4",
            QueryId::Q4Star => "q4*",
            QueryId::Q5 => "q5",
            QueryId::Q6 => "q6",
            QueryId::Q6Star => "q6*",
            QueryId::Q7 => "q7",
            QueryId::Q8 => "q8",
        }
    }
}

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The storage scheme a plan is generated for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// One 3-column `triples` table.
    TripleStore,
    /// One 2-column `(subject, object)` table per property.
    VerticallyPartitioned,
}

impl Scheme {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::TripleStore => "triple-store",
            Scheme::VerticallyPartitioned => "vertically-partitioned",
        }
    }
}

/// Dictionary-encoded constants and property lists needed to build the
/// benchmark plans.
#[derive(Debug, Clone)]
pub struct QueryContext {
    /// `<type>` property id.
    pub type_p: Id,
    /// `<Text>` class id.
    pub text_o: Id,
    /// `<language>` property id.
    pub language_p: Id,
    /// French-language object id.
    pub fre_o: Id,
    /// `<origin>` property id.
    pub origin_p: Id,
    /// `<info:marcorg/DLC>` object id.
    pub dlc_o: Id,
    /// `<records>` property id.
    pub records_p: Id,
    /// `<Point>` property id.
    pub point_p: Id,
    /// `"end"` object id.
    pub end_o: Id,
    /// `<Encoding>` property id.
    pub encoding_p: Id,
    /// `<conferences>` subject id.
    pub conferences_s: Id,
    /// The "interesting" properties the Longwell administrator selected
    /// (28 in the paper) — the aggregation restriction of q2, q3, q4, q6.
    pub interesting: Vec<Id>,
    /// All properties in the data set, most frequent first — the expansion
    /// list for vertically-partitioned plans with unbound property.
    pub all_properties: Vec<Id>,
}

impl QueryContext {
    /// Builds a context from a data set: resolves the vocabulary constants
    /// and takes the `n_interesting` most frequent properties (the paper
    /// uses 28), force-including the six properties the queries bind.
    ///
    /// # Panics
    /// Panics if a vocabulary constant is missing from the data set.
    pub fn from_dataset(ds: &Dataset, n_interesting: usize) -> Self {
        let by_freq = ds.properties_by_frequency();
        let all_properties: Vec<Id> = by_freq.iter().map(|&(p, _)| p).collect();
        let mut ctx = Self {
            type_p: ds.expect_id(vocab::TYPE),
            text_o: ds.expect_id(vocab::TEXT),
            language_p: ds.expect_id(vocab::LANGUAGE),
            fre_o: ds.expect_id(vocab::FRENCH),
            origin_p: ds.expect_id(vocab::ORIGIN),
            dlc_o: ds.expect_id(vocab::DLC),
            records_p: ds.expect_id(vocab::RECORDS),
            point_p: ds.expect_id(vocab::POINT),
            end_o: ds.expect_id(vocab::END),
            encoding_p: ds.expect_id(vocab::ENCODING),
            conferences_s: ds.expect_id(vocab::CONFERENCES),
            interesting: Vec::new(),
            all_properties,
        };
        ctx.set_interesting(n_interesting);
        ctx
    }

    /// Re-selects the interesting-property list as the `n` most frequent
    /// properties (force-including the bound query properties). Used by the
    /// Figure 6 sweep.
    pub fn set_interesting(&mut self, n: usize) {
        let n = n.min(self.all_properties.len());
        let required = [
            self.type_p,
            self.records_p,
            self.origin_p,
            self.language_p,
            self.point_p,
            self.encoding_p,
        ];
        let mut interesting: Vec<Id> = self.all_properties[..n].to_vec();
        for req in required {
            if !interesting.contains(&req) {
                // Evict the least frequent non-required property to make room.
                if let Some(pos) = interesting.iter().rposition(|p| !required.contains(p)) {
                    interesting.remove(pos);
                }
                interesting.push(req);
            }
        }
        self.interesting = interesting;
    }
}

/// One `ScanProperty` node.
fn vp_scan(property: Id, s: Option<Id>, o: Option<Id>, emit_property: bool) -> Plan {
    Plan::ScanProperty {
        property,
        s,
        o,
        emit_property,
    }
}

/// Expands a property-unbound triple access into a union over property
/// tables (the VP "Perl script" step).
fn vp_scan_union(props: &[Id], s: Option<Id>, o: Option<Id>, emit_property: bool) -> Plan {
    Plan::UnionAll {
        inputs: props
            .iter()
            .map(|&p| vp_scan(p, s, o, emit_property))
            .collect(),
    }
}

/// Restricts column `col` to the interesting-property list — the paper's
/// join against the `properties` table.
fn filter_props(input: Plan, col: usize, ctx: &QueryContext) -> Plan {
    Plan::FilterIn {
        input: Box::new(input),
        col,
        values: ctx.interesting.clone(),
    }
}

fn select_ne(input: Plan, col: usize, value: Id) -> Plan {
    Plan::Select {
        input: Box::new(input),
        pred: Predicate {
            col,
            op: CmpOp::Ne,
            value,
        },
    }
}

fn distinct(input: Plan) -> Plan {
    Plan::Distinct {
        input: Box::new(input),
    }
}

fn having_gt(input: Plan, min: u64) -> Plan {
    Plan::HavingCountGt {
        input: Box::new(input),
        min,
    }
}

/// Builds the logical plan for `query` under `scheme`.
pub fn build_plan(query: QueryId, scheme: Scheme, ctx: &QueryContext) -> Plan {
    let plan = match scheme {
        Scheme::TripleStore => build_triple_store(query, ctx),
        Scheme::VerticallyPartitioned => build_vertical(query, ctx),
    };
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

/// Plans against the single `triples(s, p, o)` table, following the
/// appendix SQL.
fn build_triple_store(query: QueryId, ctx: &QueryContext) -> Plan {
    match query {
        // SELECT A.obj, count(*) FROM triples A WHERE A.prop = <type>
        // GROUP BY A.obj
        QueryId::Q1 => group_count(project(scan_p(ctx.type_p), vec![2]), vec![0]),

        // q2/q2*: A(type=Text) ⋈s B [⋈ properties P], GROUP BY B.prop
        QueryId::Q2 | QueryId::Q2Star => {
            let a = scan_po(ctx.type_p, ctx.text_o);
            let mut b = scan_all();
            if query == QueryId::Q2 {
                b = filter_props(b, 1, ctx);
            }
            // join out: (A.s, A.p, A.o, B.s, B.p, B.o)
            group_count(project(join(a, b, 0, 0), vec![4]), vec![0])
        }

        // q3/q3*: as q2 but GROUP BY B.prop, B.obj HAVING count(*) > 1
        QueryId::Q3 | QueryId::Q3Star => {
            let a = scan_po(ctx.type_p, ctx.text_o);
            let mut b = scan_all();
            if query == QueryId::Q3 {
                b = filter_props(b, 1, ctx);
            }
            having_gt(
                group_count(project(join(a, b, 0, 0), vec![4, 5]), vec![0, 1]),
                1,
            )
        }

        // q4/q4*: q3 plus C(language=fre) joined on subject
        QueryId::Q4 | QueryId::Q4Star => {
            let a = scan_po(ctx.type_p, ctx.text_o);
            let mut b = scan_all();
            if query == QueryId::Q4 {
                b = filter_props(b, 1, ctx);
            }
            let c = scan_po(ctx.language_p, ctx.fre_o);
            // (A.s,A.p,A.o,B.s,B.p,B.o) ⋈ C on A.s=C.s -> 9 cols
            let j = join(join(a, b, 0, 0), c, 0, 0);
            having_gt(group_count(project(j, vec![4, 5]), vec![0, 1]), 1)
        }

        // q5: A(origin=DLC) ⋈s B(records) ; B.obj = C.subj, C(type != Text)
        QueryId::Q5 => {
            let a = scan_po(ctx.origin_p, ctx.dlc_o);
            let b = scan_p(ctx.records_p);
            let c = select_ne(scan_p(ctx.type_p), 2, ctx.text_o);
            // (A..,B..) = 6 cols; B.obj = col 5; join C on C.s (col 0)
            let j = join(join(a, b, 0, 0), c, 5, 0);
            project(j, vec![3, 8]) // B.subj, C.obj
        }

        // q6/q6*: uniontable = {type=Text subjects} ∪ {records-chain
        // subjects}; A ⋈s uniontable, GROUP BY A.prop
        QueryId::Q6 | QueryId::Q6Star => {
            let b = scan_po(ctx.type_p, ctx.text_o);
            let c = scan_p(ctx.records_p);
            let d = scan_po(ctx.type_p, ctx.text_o);
            let chain = project(join(c, d, 2, 0), vec![0]); // C.subj
            let union = distinct(Plan::UnionAll {
                inputs: vec![project(b, vec![0]), chain],
            });
            let mut a = scan_all();
            if query == QueryId::Q6 {
                a = filter_props(a, 1, ctx);
            }
            // (A.s,A.p,A.o,U.s) -> group by A.prop
            group_count(project(join(a, union, 0, 0), vec![1]), vec![0])
        }

        // q7: A(Point="end") ⋈s B(Encoding) ⋈s C(type)
        QueryId::Q7 => {
            let a = scan_po(ctx.point_p, ctx.end_o);
            let b = scan_p(ctx.encoding_p);
            let c = scan_p(ctx.type_p);
            let j = join(join(a, b, 0, 0), c, 0, 0);
            project(j, vec![0, 5, 8]) // A.subj, B.obj, C.obj
        }

        // q8: subjects sharing an object with <conferences>
        QueryId::Q8 => {
            let a = Plan::ScanTriples {
                s: Some(ctx.conferences_s),
                p: None,
                o: None,
            };
            let b = select_ne(scan_all(), 0, ctx.conferences_s);
            // (A.s,A.p,A.o,B.s,B.p,B.o), join A.o = B.o
            project(join(a, b, 2, 2), vec![3]) // B.subj
        }
    }
}

/// Plans against the per-property tables. Property-unbound accesses expand
/// into unions; the `*` variants union over *all* properties.
fn build_vertical(query: QueryId, ctx: &QueryContext) -> Plan {
    let interesting = &ctx.interesting;
    let all = &ctx.all_properties;
    match query {
        QueryId::Q1 => group_count(
            project(vp_scan(ctx.type_p, None, None, false), vec![1]),
            vec![0],
        ),

        QueryId::Q2 | QueryId::Q2Star => {
            let props = if query == QueryId::Q2 {
                interesting
            } else {
                all
            };
            let a = vp_scan(ctx.type_p, None, Some(ctx.text_o), false); // (s,o)
            let b = vp_scan_union(props, None, None, true); // (s,p,o)
                                                            // (A.s, A.o, B.s, B.p, B.o)
            group_count(project(join(a, b, 0, 0), vec![3]), vec![0])
        }

        QueryId::Q3 | QueryId::Q3Star => {
            let props = if query == QueryId::Q3 {
                interesting
            } else {
                all
            };
            let a = vp_scan(ctx.type_p, None, Some(ctx.text_o), false);
            let b = vp_scan_union(props, None, None, true);
            having_gt(
                group_count(project(join(a, b, 0, 0), vec![3, 4]), vec![0, 1]),
                1,
            )
        }

        QueryId::Q4 | QueryId::Q4Star => {
            let props = if query == QueryId::Q4 {
                interesting
            } else {
                all
            };
            let a = vp_scan(ctx.type_p, None, Some(ctx.text_o), false);
            let b = vp_scan_union(props, None, None, true);
            let c = vp_scan(ctx.language_p, None, Some(ctx.fre_o), false);
            // (A.s,A.o,B.s,B.p,B.o) ⋈ C on A.s=C.s -> 7 cols
            let j = join(join(a, b, 0, 0), c, 0, 0);
            having_gt(group_count(project(j, vec![3, 4]), vec![0, 1]), 1)
        }

        QueryId::Q5 => {
            let a = vp_scan(ctx.origin_p, None, Some(ctx.dlc_o), false);
            let b = vp_scan(ctx.records_p, None, None, false);
            let c = select_ne(vp_scan(ctx.type_p, None, None, false), 1, ctx.text_o);
            // (A.s,A.o,B.s,B.o) ; B.o = col 3 ; C.s = col 0
            let j = join(join(a, b, 0, 0), c, 3, 0);
            project(j, vec![2, 5]) // B.subj, C.obj
        }

        QueryId::Q6 | QueryId::Q6Star => {
            let props = if query == QueryId::Q6 {
                interesting
            } else {
                all
            };
            let b = vp_scan(ctx.type_p, None, Some(ctx.text_o), false);
            let c = vp_scan(ctx.records_p, None, None, false);
            let d = vp_scan(ctx.type_p, None, Some(ctx.text_o), false);
            let chain = project(join(c, d, 1, 0), vec![0]);
            let union = distinct(Plan::UnionAll {
                inputs: vec![project(b, vec![0]), chain],
            });
            let a = vp_scan_union(props, None, None, true); // (s,p,o)
            group_count(project(join(a, union, 0, 0), vec![1]), vec![0])
        }

        QueryId::Q7 => {
            let a = vp_scan(ctx.point_p, None, Some(ctx.end_o), false);
            let b = vp_scan(ctx.encoding_p, None, None, false);
            let c = vp_scan(ctx.type_p, None, None, false);
            let j = join(join(a, b, 0, 0), c, 0, 0);
            project(j, vec![0, 3, 5]) // A.s, B.o, C.o
        }

        // q8 VP (§4.2): first collect the objects of <conferences> from
        // every property table into a temporary t, then join t back against
        // every property table with subj != <conferences>.
        QueryId::Q8 => {
            let t = distinct(project(
                vp_scan_union(all, Some(ctx.conferences_s), None, false),
                vec![1],
            ));
            let b = select_ne(vp_scan_union(all, None, None, false), 0, ctx.conferences_s);
            // (t.o, B.s, B.o), join t.o = B.o
            project(join(t, b, 0, 1), vec![1]) // B.subj
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> QueryContext {
        QueryContext {
            type_p: 0,
            text_o: 100,
            language_p: 1,
            fre_o: 101,
            origin_p: 2,
            dlc_o: 102,
            records_p: 3,
            point_p: 4,
            end_o: 103,
            encoding_p: 5,
            conferences_s: 200,
            interesting: (0..28).collect(),
            all_properties: (0..222).collect(),
        }
    }

    #[test]
    fn all_plans_validate_both_schemes() {
        let ctx = ctx();
        for q in QueryId::ALL {
            for scheme in [Scheme::TripleStore, Scheme::VerticallyPartitioned] {
                let p = build_plan(q, scheme, &ctx);
                assert_eq!(p.validate(), Ok(()), "{q} {}", scheme.name());
            }
        }
    }

    #[test]
    fn result_arities_match_the_sql() {
        let ctx = ctx();
        let arities = [
            (QueryId::Q1, 2), // obj, count
            (QueryId::Q2, 2), // prop, count
            (QueryId::Q2Star, 2),
            (QueryId::Q3, 3), // prop, obj, count
            (QueryId::Q3Star, 3),
            (QueryId::Q4, 3),
            (QueryId::Q4Star, 3),
            (QueryId::Q5, 2), // B.subj, C.obj
            (QueryId::Q6, 2), // prop, count
            (QueryId::Q6Star, 2),
            (QueryId::Q7, 3), // subj, B.obj, C.obj
            (QueryId::Q8, 1), // B.subj
        ];
        for (q, want) in arities {
            for scheme in [Scheme::TripleStore, Scheme::VerticallyPartitioned] {
                assert_eq!(
                    build_plan(q, scheme, &ctx).arity(),
                    want,
                    "{q} {}",
                    scheme.name()
                );
            }
        }
    }

    #[test]
    fn star_vp_plans_explode_in_size() {
        let ctx = ctx();
        let q2 = build_plan(QueryId::Q2, Scheme::VerticallyPartitioned, &ctx);
        let q2s = build_plan(QueryId::Q2Star, Scheme::VerticallyPartitioned, &ctx);
        // "more than two hundred unions and joins"
        assert!(q2s.node_count() > 222, "q2* has {} nodes", q2s.node_count());
        assert!(q2s.node_count() > 3 * q2.node_count());
        // Triple-store plans stay small regardless.
        let t2s = build_plan(QueryId::Q2Star, Scheme::TripleStore, &ctx);
        assert!(t2s.node_count() < 10);
    }

    #[test]
    fn non_star_triple_plans_carry_property_filter() {
        let ctx = ctx();
        fn has_filter(p: &Plan) -> bool {
            match p {
                Plan::FilterIn { .. } => true,
                Plan::Select { input, .. }
                | Plan::Project { input, .. }
                | Plan::GroupCount { input, .. }
                | Plan::HavingCountGt { input, .. }
                | Plan::Distinct { input } => has_filter(input),
                Plan::Join { left, right, .. } => has_filter(left) || has_filter(right),
                Plan::UnionAll { inputs } => inputs.iter().any(has_filter),
                _ => false,
            }
        }
        for (q, star) in [
            (QueryId::Q2, QueryId::Q2Star),
            (QueryId::Q3, QueryId::Q3Star),
            (QueryId::Q4, QueryId::Q4Star),
            (QueryId::Q6, QueryId::Q6Star),
        ] {
            assert!(has_filter(&build_plan(q, Scheme::TripleStore, &ctx)));
            assert!(!has_filter(&build_plan(star, Scheme::TripleStore, &ctx)));
        }
    }

    #[test]
    fn base7_is_the_c_store_subset() {
        assert_eq!(QueryId::BASE7.len(), 7);
        assert!(QueryId::BASE7
            .iter()
            .all(|q| !q.is_star() && *q != QueryId::Q8));
    }

    #[test]
    fn set_interesting_forces_query_properties() {
        let mut c = ctx();
        // Make the frequency ranking exclude the bound properties.
        c.all_properties = (50..272).collect();
        c.set_interesting(10);
        for p in [
            c.type_p,
            c.records_p,
            c.origin_p,
            c.language_p,
            c.point_p,
            c.encoding_p,
        ] {
            assert!(c.interesting.contains(&p));
        }
        assert_eq!(c.interesting.len(), 10);
    }

    #[test]
    fn query_names_follow_paper() {
        assert_eq!(QueryId::Q2Star.name(), "q2*");
        assert_eq!(QueryId::Q8.name(), "q8");
        assert!(QueryId::Q2Star.is_star());
        assert!(!QueryId::Q8.is_star());
    }
}
