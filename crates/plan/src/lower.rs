//! Scheme lowering: rewrite any triple-store plan into an equivalent
//! vertically-partitioned plan.
//!
//! This generalizes the benchmark generator (and the paper's Perl script)
//! to *arbitrary* plans — e.g. ones compiled from SPARQL: every
//! [`Plan::ScanTriples`] becomes either a single property-table scan (when
//! the property is bound) or a `UnionAll` over all property tables (when
//! it is not). The rewritten scans emit the property as a constant middle
//! column, so the schema — and therefore every downstream column
//! reference — is unchanged.

use swans_rdf::Id;

use crate::algebra::Plan;

/// Rewrites `plan` to run against the vertically-partitioned layout.
/// `properties` must list every property id present in the data set
/// (most-frequent-first order is conventional but not required).
pub fn lower_to_vertical(plan: &Plan, properties: &[Id]) -> Plan {
    let lowered = match plan {
        Plan::ScanTriples { s, p, o } => match p {
            Some(p) => Plan::ScanProperty {
                property: *p,
                s: *s,
                o: *o,
                emit_property: true,
            },
            None if properties.is_empty() => {
                // No property tables at all (an empty data set): the scan
                // is the empty relation. `Id::MAX` is never assigned by a
                // dictionary (ids are dense ranks), so a scan of it keeps
                // the (s, p, o) schema and yields no rows.
                Plan::ScanProperty {
                    property: Id::MAX,
                    s: *s,
                    o: *o,
                    emit_property: true,
                }
            }
            None => Plan::UnionAll {
                inputs: properties
                    .iter()
                    .map(|&property| Plan::ScanProperty {
                        property,
                        s: *s,
                        o: *o,
                        emit_property: true,
                    })
                    .collect(),
            },
        },
        Plan::ScanProperty { .. } => plan.clone(),
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(lower_to_vertical(input, properties)),
            pred: *pred,
        },
        Plan::FilterIn { input, col, values } => Plan::FilterIn {
            input: Box::new(lower_to_vertical(input, properties)),
            col: *col,
            values: values.clone(),
        },
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => Plan::Join {
            left: Box::new(lower_to_vertical(left, properties)),
            right: Box::new(lower_to_vertical(right, properties)),
            left_col: *left_col,
            right_col: *right_col,
        },
        Plan::LeapfrogJoin { inputs, cols } => Plan::LeapfrogJoin {
            inputs: inputs
                .iter()
                .map(|i| lower_to_vertical(i, properties))
                .collect(),
            cols: cols.clone(),
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(lower_to_vertical(input, properties)),
            cols: cols.clone(),
        },
        Plan::GroupCount { input, keys } => Plan::GroupCount {
            input: Box::new(lower_to_vertical(input, properties)),
            keys: keys.clone(),
        },
        Plan::HavingCountGt { input, min } => Plan::HavingCountGt {
            input: Box::new(lower_to_vertical(input, properties)),
            min: *min,
        },
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs
                .iter()
                .map(|i| lower_to_vertical(i, properties))
                .collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(lower_to_vertical(input, properties)),
        },
    };
    debug_assert_eq!(lowered.arity(), plan.arity(), "lowering must not reshape");
    lowered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{group_count, join, project, scan_all, scan_po};
    use crate::naive;
    use swans_rdf::Triple;

    fn triples() -> Vec<Triple> {
        (0..200)
            .map(|i| Triple::new(50 + i % 23, i % 7, 100 + i % 11))
            .collect()
    }

    fn props() -> Vec<Id> {
        (0..7).collect()
    }

    fn check(plan: &Plan) {
        let lowered = lower_to_vertical(plan, &props());
        assert_eq!(lowered.validate(), Ok(()));
        let a = naive::normalize(naive::execute(plan, &triples()));
        let b = naive::normalize(naive::execute(&lowered, &triples()));
        assert_eq!(a, b, "lowering changed answers for {plan:?}");
    }

    #[test]
    fn bound_property_becomes_single_table() {
        let lowered = lower_to_vertical(&scan_po(3, 105), &props());
        assert!(matches!(
            lowered,
            Plan::ScanProperty {
                property: 3,
                o: Some(105),
                emit_property: true,
                ..
            }
        ));
        check(&scan_po(3, 105));
    }

    #[test]
    fn unbound_property_becomes_union() {
        let lowered = lower_to_vertical(&scan_all(), &props());
        let Plan::UnionAll { inputs } = &lowered else {
            panic!("expected union");
        };
        assert_eq!(inputs.len(), 7);
        check(&scan_all());
    }

    #[test]
    fn schema_is_preserved_through_joins_and_groups() {
        let plan = group_count(
            project(join(scan_po(0, 100), scan_all(), 0, 0), vec![4]),
            vec![0],
        );
        assert_eq!(lower_to_vertical(&plan, &props()).arity(), plan.arity());
        check(&plan);
    }

    #[test]
    fn q8_shape_lowering() {
        // subject-bound scan with p unbound (pattern p6), joined on objects.
        let a = Plan::ScanTriples {
            s: Some(50),
            p: None,
            o: None,
        };
        let plan = project(join(a, scan_all(), 2, 2), vec![3]);
        check(&plan);
    }

    #[test]
    fn empty_property_list_lowers_to_empty_relation() {
        let lowered = lower_to_vertical(&scan_all(), &[]);
        assert_eq!(lowered.validate(), Ok(()));
        assert_eq!(lowered.arity(), 3);
        assert!(naive::execute(&lowered, &[]).is_empty());
    }

    #[test]
    fn missing_property_lists_still_valid() {
        // Lowering against a *subset* of properties changes answers (it
        // drops data) but must still be structurally valid.
        let lowered = lower_to_vertical(&scan_all(), &[1, 2]);
        assert_eq!(lowered.validate(), Ok(()));
        let rows = naive::execute(&lowered, &triples());
        assert!(rows.iter().all(|r| r[1] == 1 || r[1] == 2));
    }
}
