//! Table statistics for the cost model.
//!
//! Engines collect a [`StatsCatalog`] when they load or merge their sorted
//! tables — row counts, per-column distinct counts, and the run counts the
//! RLE headers already hold — and publish it through
//! [`PropsContext::stats`](crate::props::PropsContext::stats). The cost
//! model ([`crate::cost`](mod@crate::cost)) prices scans and joins off these numbers;
//! without a catalog it falls back to fixed defaults, so plan enumeration
//! still works (just blindly) against a statistics-free context.
//!
//! The catalog describes the *sorted read store* only: a pending
//! write-store delta leaves it slightly stale until the next merge
//! rebuilds the tables and the engine recollects. Estimates tolerate that
//! drift — the q-error gate in `tests/cost_model.rs` bounds how far.

use std::collections::BTreeMap;

use swans_rdf::Id;

/// Statistics of one vertically-partitioned `(s, o)` property table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropStats {
    /// Total rows (triples with this property).
    pub rows: u64,
    /// Distinct subject values. On the (subject, object)-sorted table this
    /// equals the subject column's run count — the RLE headers give it for
    /// free.
    pub distinct_subjects: u64,
    /// Distinct object values.
    pub distinct_objects: u64,
    /// Bytes a full scan of the table touches: the compressed run headers
    /// for an RLE-stored subject column (16 B per run), flat values
    /// (8 B per row) otherwise, plus the flat object column.
    pub scan_bytes: u64,
}

/// Statistics of the 3-column triples table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TripleStats {
    /// Total rows.
    pub rows: u64,
    /// Distinct values per logical column (`[s, p, o]`).
    pub distinct: [u64; 3],
    /// Bytes a full scan touches (compressed lead column when RLE-stored).
    pub scan_bytes: u64,
}

/// The per-table statistics an engine collects at load/merge time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsCatalog {
    /// Triples-table statistics, when that layout is loaded.
    pub triple: Option<TripleStats>,
    /// Per-property statistics of the vertically-partitioned layout.
    pub props: BTreeMap<Id, PropStats>,
}

impl StatsCatalog {
    /// Total triples across the vertically-partitioned tables.
    pub fn vp_rows(&self) -> u64 {
        self.props.values().map(|p| p.rows).sum()
    }
}
