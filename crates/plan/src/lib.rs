#![warn(missing_docs)]

//! # swans-plan
//!
//! The query layer shared by both engines:
//!
//! * [`pattern`] — the paper's Figure 2: the 8 simple triple query patterns
//!   (`p1`–`p8`) and the join patterns (`A`, `B`, `C`, plus the RDF/S
//!   reasoning combinations),
//! * [`algebra`] — a small logical algebra (`scan`, `select`, `join`,
//!   `group-count`, `union`, ...) in dictionary-encoded integer space,
//! * [`queries`] — the benchmark query generator: builds q1–q8 (and the
//!   unrestricted `*` variants) as logical plans for either the
//!   *triple-store* or the *vertically-partitioned* scheme. This is the
//!   analogue of the Perl script the paper used to produce the
//!   vertically-partitioned SQL ("the SQL code for the
//!   vertically-partitioned implementation is produced by a Perl script",
//!   appendix),
//! * [`coverage`] — reproduces Table 2 by analysing which simple/join
//!   patterns each query plan exercises,
//! * [`naive`] — a deliberately simple reference executor defining the
//!   semantics both engines must match (used heavily by the test suites),
//! * [`props`] — physical-property derivation: which output columns every
//!   plan node keeps sorted (and whether rows are distinct), threaded from
//!   the storage layout so executors can dispatch merge joins and
//!   run-based aggregation,
//! * [`stats`] — the per-table statistics catalog engines collect at
//!   load/merge time (row counts, distincts, compressed scan bytes off the
//!   RLE headers) and publish through [`props::PropsContext::stats`],
//! * [`cost`](mod@cost) — the cost model: cardinality estimation and plan pricing
//!   (scans by compressed bytes, joins by merge-vs-hash-vs-leapfrog
//!   dispatch), driving the plan enumerator,
//! * [`mod@optimize`] — a rule-based rewriter (selection pushdown into scans,
//!   through unions, joins and projections) plus cost-based join
//!   enumeration ([`optimize::optimize_cbo`]) with the older order-aware
//!   rotation kept as the statistics-free fallback,
//! * [`lower`] — scheme lowering: any triple-store plan rewritten for the
//!   vertically-partitioned layout (the generalized "Perl script"),
//! * [`sparql`] — a miniature SPARQL front-end compiling
//!   `SELECT ... WHERE { BGP }` to logical plans, so *new* queries (the
//!   thing the paper could not do with C-Store) are one string away,
//! * [`mod@verify`] — the static plan verifier: flow typing, physical-property
//!   soundness and executor legality checked before execution, with typed
//!   [`verify::VerifyError`]s naming the offending operator by plan path,
//! * [`exec`] — the [`exec::EngineError`] type every executor reports
//!   through instead of panicking.
//!
//! ## Module map
//!
//! ```text
//!  sparql ──► algebra ◄── queries        (front-ends produce plans)
//!                │
//!     optimize / lower                   (plan → plan rewrites)
//!                │
//!      props ────┴──── coverage          (analyses over plans)
//!                │
//!        naive / exec                    (reference execution, errors)
//! ```
//!
//! The storage engines consuming this crate live in `swans-colstore` and
//! `swans-rowstore`; the user-facing entry point is `swans-core`.

pub mod algebra;
pub mod cost;
pub mod coverage;
pub mod exec;
pub mod lower;
pub mod naive;
pub mod optimize;
pub mod pattern;
pub mod props;
pub mod queries;
pub mod sparql;
pub mod stats;
pub mod verify;

pub use algebra::{CmpOp, ColumnKind, Plan, Predicate};
pub use cost::{cost, estimate_rows};
pub use coverage::{analyze, Coverage};
pub use exec::{CancelReason, EngineError, PartialStats, QueryBudget};
pub use lower::lower_to_vertical;
pub use optimize::{optimize, optimize_cbo, optimize_for, reorder_joins};
pub use pattern::{JoinPattern, SimplePattern};
pub use props::{derive as derive_props, PhysProps, PropsContext};
pub use queries::{build_plan, QueryContext, QueryId, Scheme};
pub use sparql::{compile_sparql, CompiledQuery, SparqlError};
pub use stats::{PropStats, StatsCatalog, TripleStats};
pub use verify::{verify, Claims, PlanPath, VerifyError, VerifyErrorKind, VerifyReport};
