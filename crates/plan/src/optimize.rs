//! A small rule-based plan optimizer.
//!
//! The paper repeatedly turns on optimizer behaviour: DBX "creates more
//! efficient query plans" given all index permutations, while the 222-way
//! vertically-partitioned SQL "seriously challenges" it. Our engines pick
//! access paths at execution time, but they can only exploit a bound
//! column if the *plan* exposes it as a scan bound. These rewrites close
//! that gap:
//!
//! 1. **Selection pushdown into scans** — `Select(col = const)` over a
//!    `ScanTriples`/`ScanProperty` output column becomes a scan bound,
//!    unlocking clustered/sorted access paths.
//! 2. **Selection pushdown through unions** — a filter over a `UnionAll`
//!    is applied to every input (so per-property-table scans can bind it).
//! 3. **Selection pushdown through joins** — a filter lands on whichever
//!    join side owns the column.
//! 4. **Order-aware join reordering** ([`reorder_joins`], applied by
//!    [`optimize_for`] and by the column engine at execution time — *not*
//!    by the engine-agnostic [`optimize`]) — a left-deep join chain that
//!    joins the same column of its base relation twice is rotated so that
//!    the *sorted–sorted* pair joins first, turning a hash join into the
//!    linear merge join the sorted layouts were built for (see
//!    [`crate::props`]). The same rotation is what places run-encoded
//!    columns ([`crate::props::PhysProps::run_encoded`]) opposite each
//!    other: the rotated sorted pair is exactly where a compressed scan's
//!    run column meets another, letting the engine's run×block merge join
//!    advance whole runs instead of rows.
//!
//! All rewrites are proven answer-preserving by the cross-engine fuzzer in
//! `tests/random_plans.rs` (which round-trips every random plan through
//! [`optimize`]) and the randomized suites in `tests/physprops.rs`.
//!
//! ## Cost-based enumeration
//!
//! [`optimize_cbo`] supersedes the single-rotation heuristic with proper
//! join enumeration: every maximal chain of `Join` nodes is flattened into
//! its base relations and join conditions, and a Selinger-style dynamic
//! program over connected sub-chains picks the cheapest order under
//! [`crate::cost`](mod@crate::cost) — merge-preserving orders win exactly when the engine
//! would dispatch merge joins, because the cost model consults the same
//! [`derive`](crate::props::derive()) the executor does. Star-shaped chains (three or more
//! relations all joining one shared variable, every input sorted on its
//! key) are additionally offered as a single multi-way
//! [`Plan::LeapfrogJoin`]. The final pick between the enumerated order,
//! the leapfrog form and the old rotation is made by the *real* cost
//! function, so the enumerated plan never prices above the heuristic's.
//! [`reorder_joins`] remains available as the statistics-free fallback the
//! engine uses when cost-based optimization is disabled (`set_cbo(false)`).

use crate::algebra::{CmpOp, Plan, Predicate};
use crate::cost::{cost, distinct_estimate, estimate_rows};
use crate::props::{derive, PhysProps, PropsContext};

/// Applies the logical rewrite rules (selection pushdown) bottom-up until
/// a fixpoint (bounded by plan depth). Returns an equivalent plan.
///
/// Purely logical and engine-agnostic — the physical order-aware join
/// reordering is *not* applied here (a rotation only pays on an executor
/// with merge joins; the column engine runs it itself at execution time).
/// Use [`optimize_for`] to also reorder when the target layout is known.
pub fn optimize(plan: Plan) -> Plan {
    let rewritten = rewrite(plan);
    debug_assert_eq!(rewritten.validate(), Ok(()));
    rewritten
}

/// [`optimize`] plus the physical cost-based enumeration pass for a known
/// layout — for callers planning specifically for an order-exploiting
/// executor.
pub fn optimize_for(plan: Plan, ctx: &PropsContext) -> Plan {
    let rewritten = optimize_cbo(rewrite(plan), ctx);
    debug_assert_eq!(rewritten.validate(), Ok(()));
    rewritten
}

/// Rotates left-deep join chains to prefer sorted–sorted join pairs.
///
/// The pattern: `(A ⋈_{A.x=B.y} B) ⋈_{A.x=C.z} C` where `A` is sorted on
/// `x`, `C` is sorted on `z`, but `B` is *not* sorted on `y` (the typical
/// vertically-partitioned shape — `B` is a union over property tables).
/// Executed as written, both joins hash; rotated to
/// `((A ⋈_{A.x=C.z} C) ⋈_{A.x=B.y} B)` the inner pair merge-joins and its
/// order-preserving output keeps `A.x` sorted for downstream operators.
/// A projection restores the original `A ++ B ++ C` column order, so the
/// rewrite is invisible to the rest of the plan.
pub fn reorder_joins(plan: Plan, ctx: &PropsContext) -> Plan {
    if !has_join(&plan) {
        // Join-free plans can't rotate; skip the rebuild.
        return plan;
    }
    match plan {
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let left = reorder_joins(*left, ctx);
            let right = reorder_joins(*right, ctx);
            try_rotate(left, right, left_col, right_col, ctx)
        }
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(reorder_joins(*input, ctx)),
            pred,
        },
        Plan::FilterIn { input, col, values } => Plan::FilterIn {
            input: Box::new(reorder_joins(*input, ctx)),
            col,
            values,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(reorder_joins(*input, ctx)),
            cols,
        },
        Plan::GroupCount { input, keys } => Plan::GroupCount {
            input: Box::new(reorder_joins(*input, ctx)),
            keys,
        },
        Plan::HavingCountGt { input, min } => Plan::HavingCountGt {
            input: Box::new(reorder_joins(*input, ctx)),
            min,
        },
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.into_iter().map(|i| reorder_joins(i, ctx)).collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(reorder_joins(*input, ctx)),
        },
        Plan::LeapfrogJoin { inputs, cols } => Plan::LeapfrogJoin {
            inputs: inputs.into_iter().map(|i| reorder_joins(i, ctx)).collect(),
            cols,
        },
        leaf => leaf,
    }
}

/// Whether the plan contains any binary join — executors use this to skip
/// the reordering plan clone entirely for join-free plans. A
/// [`Plan::LeapfrogJoin`] does not count: it is already a physical join
/// choice, so a plan containing only leapfrog joins has nothing left to
/// reorder (its inputs are still searched).
pub fn has_join(plan: &Plan) -> bool {
    match plan {
        Plan::Join { .. } => true,
        Plan::ScanTriples { .. } | Plan::ScanProperty { .. } => false,
        Plan::Select { input, .. }
        | Plan::FilterIn { input, .. }
        | Plan::Project { input, .. }
        | Plan::GroupCount { input, .. }
        | Plan::HavingCountGt { input, .. }
        | Plan::Distinct { input } => has_join(input),
        Plan::UnionAll { inputs } | Plan::LeapfrogJoin { inputs, .. } => {
            inputs.iter().any(has_join)
        }
    }
}

/// Applies one rotation at this join if it converts a hash join into a
/// merge join; otherwise rebuilds the join unchanged.
fn try_rotate(
    left: Plan,
    right: Plan,
    left_col: usize,
    right_col: usize,
    ctx: &PropsContext,
) -> Plan {
    let rotate = match &left {
        Plan::Join {
            left: a,
            right: b,
            left_col: x,
            right_col: y,
        } if left_col < a.arity() && left_col == *x => {
            // The outer join keys on the same A column as the inner one.
            derive(a, ctx).sorted_on(*x)
                && derive(&right, ctx).sorted_on(right_col)
                && !derive(b, ctx).sorted_on(*y)
        }
        _ => false,
    };
    if !rotate {
        return Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            left_col,
            right_col,
        };
    }
    let Plan::Join {
        left: a,
        right: b,
        left_col: x,
        right_col: y,
    } = left
    else {
        unreachable!("rotate is only set for join patterns");
    };
    let (a_ar, b_ar, c_ar) = (a.arity(), b.arity(), right.arity());
    let inner = Plan::Join {
        left: a,
        right: Box::new(right),
        left_col: x,
        right_col,
    };
    let outer = Plan::Join {
        left: Box::new(inner),
        right: b,
        left_col: x,
        right_col: y,
    };
    // Restore the original A ++ B ++ C column order.
    let cols: Vec<usize> = (0..a_ar)
        .chain(a_ar + c_ar..a_ar + c_ar + b_ar)
        .chain(a_ar..a_ar + c_ar)
        .collect();
    Plan::Project {
        input: Box::new(outer),
        cols,
    }
}

/// Largest join chain the dynamic program enumerates; longer chains fall
/// back to [`reorder_joins`]. 2^8 subsets × 3^8 splits stays well under a
/// millisecond even with fat union leaves.
const MAX_DP_LEAVES: usize = 8;

/// Cost-based join enumeration for a known physical layout.
///
/// Flattens every maximal chain of binary [`Plan::Join`] nodes into its
/// base relations and join conditions, then picks the cheapest of:
///
/// 1. the Selinger-style dynamic program's best order over connected
///    sub-chains (bushy plans allowed, cross products excluded), wrapped
///    in a projection restoring the original column order,
/// 2. a multi-way [`Plan::LeapfrogJoin`] when the chain is star-shaped —
///    every relation joins one shared variable and is sorted on its join
///    column — so the already-sorted columns can be intersected directly,
/// 3. the [`reorder_joins`] rotation heuristic (which also serves as the
///    fallback for chains the enumerator does not handle: longer than
///    `MAX_DP_LEAVES`, cyclic condition graphs, or cross products).
///
/// The final pick uses [`cost`] on the complete candidate plans, so the
/// returned plan never prices above the rotation heuristic's under the
/// model. Statistics come from [`PropsContext::stats`]; without a catalog
/// the cost model's defaults make this a purely structural search (which
/// still prefers merge-preserving orders, as the dispatch prediction
/// consults [`derive`](crate::props::derive()) rather than the catalog).
pub fn optimize_cbo(plan: Plan, ctx: &PropsContext) -> Plan {
    if !has_join(&plan) {
        return plan;
    }
    let out = enumerate(plan, ctx);
    debug_assert_eq!(out.validate(), Ok(()));
    out
}

/// Recursive descent: enumerate every maximal join-chain root, recurse
/// through everything else.
fn enumerate(plan: Plan, ctx: &PropsContext) -> Plan {
    match plan {
        Plan::Join { .. } => enumerate_chain(plan, ctx),
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(enumerate(*input, ctx)),
            pred,
        },
        Plan::FilterIn { input, col, values } => Plan::FilterIn {
            input: Box::new(enumerate(*input, ctx)),
            col,
            values,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(enumerate(*input, ctx)),
            cols,
        },
        Plan::GroupCount { input, keys } => Plan::GroupCount {
            input: Box::new(enumerate(*input, ctx)),
            keys,
        },
        Plan::HavingCountGt { input, min } => Plan::HavingCountGt {
            input: Box::new(enumerate(*input, ctx)),
            min,
        },
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.into_iter().map(|i| enumerate(i, ctx)).collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(enumerate(*input, ctx)),
        },
        Plan::LeapfrogJoin { inputs, cols } => Plan::LeapfrogJoin {
            inputs: inputs.into_iter().map(|i| enumerate(i, ctx)).collect(),
            cols,
        },
        leaf => leaf,
    }
}

/// Flattens a tree of `Join` nodes rooted at `plan` into leaves (with
/// their global column offsets in the original output schema) and join
/// conditions (as global column pairs).
fn flatten(
    plan: Plan,
    base: usize,
    leaves: &mut Vec<(Plan, usize)>,
    conds: &mut Vec<(usize, usize)>,
) {
    if let Plan::Join {
        left,
        right,
        left_col,
        right_col,
    } = plan
    {
        let la = left.arity();
        flatten(*left, base, leaves, conds);
        flatten(*right, base + la, leaves, conds);
        conds.push((base + left_col, base + la + right_col));
    } else {
        leaves.push((plan, base));
    }
}

/// A join condition localized to leaf coordinates:
/// `((left leaf, left column), (right leaf, right column))`.
type LocalCond = ((usize, usize), (usize, usize));

/// One dynamic-programming candidate: a plan for a subset of leaves plus
/// the order its output concatenates them in.
struct Cand {
    plan: Plan,
    order: Vec<usize>,
    props: PhysProps,
    cost: f64,
}

fn enumerate_chain(plan: Plan, ctx: &PropsContext) -> Plan {
    let original = plan.clone();
    let mut raw_leaves: Vec<(Plan, usize)> = Vec::new();
    let mut raw_conds: Vec<(usize, usize)> = Vec::new();
    flatten(plan, 0, &mut raw_leaves, &mut raw_conds);
    let n = raw_leaves.len();
    if !(2..=MAX_DP_LEAVES).contains(&n) {
        return reorder_joins(original, ctx);
    }
    let offsets: Vec<usize> = raw_leaves.iter().map(|&(_, b)| b).collect();
    // Recursively enumerate below each leaf (a leaf may hide further join
    // chains under projections, filters or unions).
    let leaves: Vec<Plan> = raw_leaves
        .into_iter()
        .map(|(l, _)| enumerate(l, ctx))
        .collect();
    let arities: Vec<usize> = leaves.iter().map(Plan::arity).collect();
    // Localize conditions: global column → (leaf index, local column).
    let locate = |g: usize| {
        let i = offsets.iter().rposition(|&b| b <= g).expect("offset 0");
        (i, g - offsets[i])
    };
    let conds: Vec<LocalCond> = raw_conds
        .iter()
        .map(|&(l, r)| (locate(l), locate(r)))
        .collect();
    // The condition graph must be a spanning tree of the leaves (a chain
    // of k joins always has k conditions over k+1 leaves, so only
    // connectivity can fail — a cross product somewhere in the chain).
    if !connected(n, &conds) {
        return reorder_joins(original, ctx);
    }

    let mut candidates: Vec<Plan> = Vec::new();
    if let Some(cols) = star_columns(n, &conds) {
        let all_sorted = leaves
            .iter()
            .zip(&cols)
            .all(|(l, &c)| derive(l, ctx).sorted_on(c));
        if all_sorted {
            // Output schema equals the original leaf concatenation: no
            // restoring projection needed.
            candidates.push(Plan::LeapfrogJoin {
                inputs: leaves.clone(),
                cols,
            });
        }
    }
    if let Some(best) = dp_enumerate(&leaves, &arities, &conds, ctx) {
        candidates.push(restore_order(best, &arities));
    }
    // The rotation heuristic over the original chain is both the baseline
    // the enumerated plan must beat and the fallback if the DP found
    // nothing. Note the whole choice reads only cardinalities, costs and
    // *sort* claims — never run-encoding claims, which vary with an
    // engine's compressed-execution switch while answers (and therefore
    // the chosen order) must not.
    //
    // Hysteresis: the model's abstract units carry estimation error and
    // ignore kernel constants, so a plan change must *predict* a win
    // beyond that noise before we deviate from the baseline — a small
    // modeled edge is as likely to be estimation error as a real win,
    // and the baseline is never wrong about itself. The leapfrog margin
    // is stricter than the reorder margin because the kernel's per-seek
    // constant (binary search, odometer emission) exceeds a linear merge
    // step — its real advantage is asymptotic (skipping), which shows up
    // as a large modeled gap precisely when it is real.
    let baseline = reorder_joins(original, ctx);
    let base_cost = cost(&baseline, ctx);
    candidates
        .into_iter()
        .map(|p| {
            let margin = match p {
                Plan::LeapfrogJoin { .. } => LEAPFROG_MARGIN,
                _ => REORDER_MARGIN,
            };
            let c = cost(&p, ctx) * margin;
            (p, c)
        })
        .filter(|&(_, c)| c < base_cost)
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map_or(baseline, |(p, _)| p)
}

/// An enumerated join order must predict at least this cost advantage
/// over the rotation baseline before it replaces it.
const REORDER_MARGIN: f64 = 1.25;
/// A leapfrog star must predict at least this advantage over the
/// baseline before it replaces the binary fold.
const LEAPFROG_MARGIN: f64 = 2.0;

/// Whether the join-condition graph connects all `n` leaves.
fn connected(n: usize, conds: &[LocalCond]) -> bool {
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(i) = stack.pop() {
        for &((a, _), (b, _)) in conds {
            for (x, y) in [(a, b), (b, a)] {
                if x == i && !seen[y] {
                    seen[y] = true;
                    stack.push(y);
                }
            }
        }
    }
    seen.into_iter().all(|s| s)
}

/// If the chain is star-shaped — at least 3 leaves, every leaf joining
/// through exactly one column, all conditions in one equivalence class —
/// returns the per-leaf join columns.
fn star_columns(n: usize, conds: &[LocalCond]) -> Option<Vec<usize>> {
    if n < 3 {
        return None;
    }
    let mut col_of: Vec<Option<usize>> = vec![None; n];
    for &((li, lc), (rj, rc)) in conds {
        for (i, c) in [(li, lc), (rj, rc)] {
            match col_of[i] {
                None => col_of[i] = Some(c),
                Some(prev) if prev == c => {}
                Some(_) => return None, // leaf joins through two columns
            }
        }
    }
    // With a connected spanning tree and one column per leaf, all
    // endpoints sit in a single equivalence class.
    col_of.into_iter().collect()
}

/// Selinger-style dynamic program over connected leaf subsets. Returns
/// the best full-set candidate, or `None` if the condition graph never
/// connects the full set (cannot happen after [`connected`] passed, but
/// kept total for safety).
fn dp_enumerate(
    leaves: &[Plan],
    arities: &[usize],
    conds: &[LocalCond],
    ctx: &PropsContext,
) -> Option<Cand> {
    let n = leaves.len();
    // Base statistics, computed once per leaf/endpoint (leaf subtrees are
    // shallow — scans, filtered scans, unions).
    let est: Vec<f64> = leaves.iter().map(|l| estimate_rows(l, ctx)).collect();
    let dist: Vec<f64> = conds
        .iter()
        .flat_map(|&((li, lc), (rj, rc))| {
            [
                distinct_estimate(&leaves[li], lc, ctx),
                distinct_estimate(&leaves[rj], rc, ctx),
            ]
        })
        .collect();
    // Factorized subset cardinality: product of leaf estimates divided by
    // max(d_left, d_right) of every condition internal to the subset.
    let card = |mask: usize| -> f64 {
        let mut c: f64 = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| est[i])
            .product();
        for (k, &((li, _), (rj, _))) in conds.iter().enumerate() {
            if mask & (1 << li) != 0 && mask & (1 << rj) != 0 {
                c /= dist[2 * k].max(dist[2 * k + 1]).max(1.0);
            }
        }
        c
    };
    let mut best: Vec<Option<Cand>> = (0..1usize << n).map(|_| None).collect();
    for (i, leaf) in leaves.iter().enumerate() {
        best[1 << i] = Some(Cand {
            plan: leaf.clone(),
            order: vec![i],
            props: derive(leaf, ctx),
            cost: cost(leaf, ctx),
        });
    }
    for mask in 1..1usize << n {
        if mask.count_ones() < 2 {
            continue;
        }
        let out_card = card(mask);
        let mut sub = (mask - 1) & mask;
        while sub != 0 {
            let other = mask ^ sub;
            if let (Some(l), Some(r)) = (&best[sub], &best[other]) {
                // Exactly one condition crosses a connected split of a
                // tree-shaped chain; take the first.
                let cross = conds.iter().find_map(|&((li, lc), (rj, rc))| {
                    if sub & (1 << li) != 0 && other & (1 << rj) != 0 {
                        Some((
                            output_col(&l.order, arities, li, lc),
                            output_col(&r.order, arities, rj, rc),
                        ))
                    } else if sub & (1 << rj) != 0 && other & (1 << li) != 0 {
                        Some((
                            output_col(&l.order, arities, rj, rc),
                            output_col(&r.order, arities, li, lc),
                        ))
                    } else {
                        None
                    }
                });
                if let Some((left_col, right_col)) = cross {
                    let merge = l.props.sorted_on(left_col) && r.props.sorted_on(right_col);
                    let op = if merge {
                        card(sub) + card(other)
                    } else {
                        4.0 * card(sub) + 2.0 * card(other)
                    };
                    let total = l.cost + r.cost + op + out_card;
                    if best[mask].as_ref().is_none_or(|b| total < b.cost) {
                        let plan = Plan::Join {
                            left: Box::new(l.plan.clone()),
                            right: Box::new(r.plan.clone()),
                            left_col,
                            right_col,
                        };
                        let props = derive(&plan, ctx);
                        let mut order = l.order.clone();
                        order.extend(&r.order);
                        best[mask] = Some(Cand {
                            plan,
                            order,
                            props,
                            cost: total,
                        });
                    }
                }
            }
            sub = (sub - 1) & mask;
        }
    }
    best[(1 << n) - 1].take()
}

/// Output position of `(leaf, local)` in a candidate concatenating its
/// leaves in `order`.
fn output_col(order: &[usize], arities: &[usize], leaf: usize, local: usize) -> usize {
    let mut off = 0;
    for &l in order {
        if l == leaf {
            return off + local;
        }
        off += arities[l];
    }
    unreachable!("leaf {leaf} not in candidate order {order:?}")
}

/// Wraps a DP candidate in the projection restoring the original leaf
/// concatenation order (skipped when the order is already the identity).
fn restore_order(cand: Cand, arities: &[usize]) -> Plan {
    let n = arities.len();
    if cand.order.iter().copied().eq(0..n) {
        return cand.plan;
    }
    let cols: Vec<usize> = (0..n)
        .flat_map(|leaf| {
            let base = output_col(&cand.order, arities, leaf, 0);
            base..base + arities[leaf]
        })
        .collect();
    Plan::Project {
        input: Box::new(cand.plan),
        cols,
    }
}

fn rewrite(plan: Plan) -> Plan {
    // First rewrite children, then try to sink a Select at this node.
    match plan {
        Plan::Select { input, pred } => {
            let input = rewrite(*input);
            push_select(input, pred)
        }
        Plan::FilterIn { input, col, values } => Plan::FilterIn {
            input: Box::new(rewrite(*input)),
            col,
            values,
        },
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => Plan::Join {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            left_col,
            right_col,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(rewrite(*input)),
            cols,
        },
        Plan::GroupCount { input, keys } => Plan::GroupCount {
            input: Box::new(rewrite(*input)),
            keys,
        },
        Plan::HavingCountGt { input, min } => Plan::HavingCountGt {
            input: Box::new(rewrite(*input)),
            min,
        },
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.into_iter().map(rewrite).collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(rewrite(*input)),
        },
        Plan::LeapfrogJoin { inputs, cols } => Plan::LeapfrogJoin {
            inputs: inputs.into_iter().map(rewrite).collect(),
            cols,
        },
        leaf => leaf,
    }
}

/// Sinks `Select(pred)` into `input` as far as semantics allow.
fn push_select(input: Plan, pred: Predicate) -> Plan {
    match input {
        // --- into a triples scan: only Eq on an unbound position ---------
        Plan::ScanTriples { s, p, o } if pred.op == CmpOp::Eq => {
            let mut bounds = [s, p, o];
            match bounds[pred.col] {
                None => {
                    bounds[pred.col] = Some(pred.value);
                    Plan::ScanTriples {
                        s: bounds[0],
                        p: bounds[1],
                        o: bounds[2],
                    }
                }
                Some(v) if v == pred.value => Plan::ScanTriples { s, p, o },
                // Contradiction: the scan is already bound to another
                // value; keep the filter (it yields the empty result).
                Some(_) => wrap(Plan::ScanTriples { s, p, o }, pred),
            }
        }
        // --- into a property-table scan -----------------------------------
        Plan::ScanProperty {
            property,
            s,
            o,
            emit_property,
        } if pred.op == CmpOp::Eq => {
            let o_pos = if emit_property { 2 } else { 1 };
            let scan = |s, o| Plan::ScanProperty {
                property,
                s,
                o,
                emit_property,
            };
            if pred.col == 0 && s.is_none() {
                scan(Some(pred.value), o)
            } else if pred.col == o_pos && o.is_none() {
                scan(s, Some(pred.value))
            } else if emit_property && pred.col == 1 {
                // Filter on the constant property column: statically
                // decidable.
                if pred.value == property {
                    scan(s, o)
                } else {
                    // Always-false: empty via a contradictory filter.
                    wrap(scan(s, o), pred)
                }
            } else if (pred.col == 0 && s == Some(pred.value))
                || (pred.col == o_pos && o == Some(pred.value))
            {
                scan(s, o)
            } else {
                wrap(scan(s, o), pred)
            }
        }
        // --- through a union ----------------------------------------------
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.into_iter().map(|i| push_select(i, pred)).collect(),
        },
        // --- through a join ------------------------------------------------
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let la = left.arity();
            if pred.col < la {
                Plan::Join {
                    left: Box::new(push_select(*left, pred)),
                    right,
                    left_col,
                    right_col,
                }
            } else {
                let mut p = pred;
                p.col -= la;
                Plan::Join {
                    left,
                    right: Box::new(push_select(*right, p)),
                    left_col,
                    right_col,
                }
            }
        }
        // --- through a projection ------------------------------------------
        Plan::Project { input, cols } => {
            let mut p = pred;
            p.col = cols[pred.col];
            Plan::Project {
                input: Box::new(push_select(*input, p)),
                cols,
            }
        }
        // --- through another select (reorder so ours can keep sinking) -----
        Plan::Select { input, pred: inner } => Plan::Select {
            input: Box::new(push_select(*input, pred)),
            pred: inner,
        },
        // Anything else: stop sinking.
        other => wrap(other, pred),
    }
}

fn wrap(input: Plan, pred: Predicate) -> Plan {
    Plan::Select {
        input: Box::new(input),
        pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{join, project, scan_all, scan_p};
    use crate::naive;
    use swans_rdf::Triple;

    fn select(input: Plan, col: usize, value: u64) -> Plan {
        Plan::Select {
            input: Box::new(input),
            pred: Predicate {
                col,
                op: CmpOp::Eq,
                value,
            },
        }
    }

    #[test]
    fn select_fuses_into_scan_bound() {
        let p = select(scan_all(), 1, 7);
        assert_eq!(
            optimize(p),
            Plan::ScanTriples {
                s: None,
                p: Some(7),
                o: None
            }
        );
    }

    #[test]
    fn contradictory_select_is_kept() {
        let p = select(scan_p(3), 1, 7);
        // p bound to 3, filter wants 7: the filter must survive so the
        // result stays empty.
        assert!(matches!(optimize(p), Plan::Select { .. }));
    }

    #[test]
    fn redundant_select_is_dropped() {
        let p = select(scan_p(7), 1, 7);
        assert_eq!(optimize(p), scan_p(7));
    }

    #[test]
    fn select_pushes_through_union_into_property_scans() {
        let union = Plan::UnionAll {
            inputs: (0..3)
                .map(|pid| Plan::ScanProperty {
                    property: pid,
                    s: None,
                    o: None,
                    emit_property: true,
                })
                .collect(),
        };
        let p = select(union, 0, 5); // bind the subject
        let opt = optimize(p);
        let Plan::UnionAll { inputs } = opt else {
            panic!("union should survive");
        };
        for i in inputs {
            assert!(
                matches!(i, Plan::ScanProperty { s: Some(5), .. }),
                "subject bound in every branch: {i:?}"
            );
        }
    }

    #[test]
    fn select_routes_to_the_owning_join_side() {
        let p = select(join(scan_all(), scan_all(), 0, 0), 4, 9); // right p
        let opt = optimize(p);
        assert_eq!(
            opt,
            join(
                scan_all(),
                Plan::ScanTriples {
                    s: None,
                    p: Some(9),
                    o: None
                },
                0,
                0
            )
        );
    }

    #[test]
    fn select_pushes_through_projection() {
        let p = select(project(scan_all(), vec![2, 0]), 0, 4); // col 0 = o
        let opt = optimize(p);
        assert_eq!(
            opt,
            project(
                Plan::ScanTriples {
                    s: None,
                    p: None,
                    o: Some(4)
                },
                vec![2, 0]
            )
        );
    }

    #[test]
    fn ne_predicates_are_not_fused() {
        let p = Plan::Select {
            input: Box::new(scan_all()),
            pred: Predicate {
                col: 0,
                op: CmpOp::Ne,
                value: 1,
            },
        };
        assert!(matches!(optimize(p), Plan::Select { .. }));
    }

    fn vp_scan(property: u64) -> Plan {
        Plan::ScanProperty {
            property,
            s: None,
            o: None,
            emit_property: false,
        }
    }

    /// The q4-VP shape: (A ⋈s B-union) ⋈s C with A, C subject-sorted and
    /// B a multi-input union. The rotation must pair A with C first and
    /// restore the original column order with a projection.
    #[test]
    fn join_chain_rotates_to_pair_sorted_inputs() {
        let a = vp_scan(1);
        let b = Plan::UnionAll {
            inputs: vec![vp_scan(2), vp_scan(3)],
        };
        let c = vp_scan(4);
        let plan = join(join(a.clone(), b.clone(), 0, 0), c.clone(), 0, 0);
        let got = reorder_joins(plan, &PropsContext::default());
        // A and C have 2 columns each, the B union has 2: the wrapper maps
        // (A, C, B) output positions back to the original A ++ B ++ C.
        let want = project(join(join(a, c, 0, 0), b, 0, 0), vec![0, 1, 4, 5, 2, 3]);
        assert_eq!(got, want);
        assert_eq!(got.validate(), Ok(()));
        // The rotated inner pair is now sorted-sorted on the join column.
        let Plan::Project { input, .. } = &got else {
            panic!("projection wrapper expected");
        };
        let Plan::Join { left, .. } = input.as_ref() else {
            panic!("outer join expected");
        };
        assert!(derive(left, &PropsContext::default()).sorted_on(0));
    }

    /// No rotation when the inner pair already merges, when the outer join
    /// keys on a different column, or when nothing is sorted.
    #[test]
    fn join_chain_rotation_is_gated() {
        // Inner pair already sorted-sorted: untouched.
        let merged = join(join(vp_scan(1), vp_scan(2), 0, 0), vp_scan(3), 0, 0);
        assert_eq!(
            reorder_joins(merged.clone(), &PropsContext::default()),
            merged
        );
        // Outer join keys on B's side (col 2 ∉ A): untouched.
        let union = Plan::UnionAll {
            inputs: vec![vp_scan(2), vp_scan(3)],
        };
        let keyed_on_b = join(join(vp_scan(1), union.clone(), 0, 0), vp_scan(3), 2, 0);
        assert_eq!(
            reorder_joins(keyed_on_b.clone(), &PropsContext::default()),
            keyed_on_b
        );
        // C unsorted on its join column: untouched.
        let c_unsorted = join(join(vp_scan(1), union, 0, 0), vp_scan(3), 0, 1);
        assert_eq!(
            reorder_joins(c_unsorted.clone(), &PropsContext::default()),
            c_unsorted
        );
    }

    /// Rotation preserves answers (naive-executor check on a join chain
    /// with duplicates on the join column).
    #[test]
    fn rotation_preserves_answers() {
        let union = Plan::UnionAll {
            inputs: vec![vp_scan(2), vp_scan(3)],
        };
        let plan = join(join(vp_scan(1), union, 0, 0), vp_scan(4), 0, 0);
        let rotated = reorder_joins(plan.clone(), &PropsContext::default());
        assert_ne!(rotated, plan, "rotation should fire on this shape");
        let triples: Vec<Triple> = (0..40)
            .map(|i| Triple::new(i % 5, 1 + i % 4, i % 3))
            .collect();
        let a = naive::normalize(naive::execute(&plan, &triples));
        let b = naive::normalize(naive::execute(&rotated, &triples));
        assert_eq!(a, b);
    }

    #[test]
    fn benchmark_plans_unchanged_by_optimizer_semantics() {
        // All benchmark plans already push their bounds into scans, so the
        // optimizer must leave their answers intact (and mostly their
        // shapes too).
        use crate::queries::{build_plan, QueryContext, QueryId, Scheme};
        let ctx = QueryContext {
            type_p: 0,
            text_o: 100,
            language_p: 1,
            fre_o: 101,
            origin_p: 2,
            dlc_o: 102,
            records_p: 3,
            point_p: 4,
            end_o: 103,
            encoding_p: 5,
            conferences_s: 200,
            interesting: (0..6).collect(),
            all_properties: (0..8).collect(),
        };
        let triples: Vec<Triple> = (0..400)
            .map(|i| Triple::new(200 + i % 40, i % 8, 100 + i % 7))
            .collect();
        for q in QueryId::ALL {
            for scheme in [Scheme::TripleStore, Scheme::VerticallyPartitioned] {
                let plan = build_plan(q, scheme, &ctx);
                let opt = optimize(plan.clone());
                assert_eq!(opt.validate(), Ok(()));
                let a = naive::normalize(naive::execute(&plan, &triples));
                let b = naive::normalize(naive::execute(&opt, &triples));
                assert_eq!(a, b, "{q}/{} changed answers", scheme.name());
            }
        }
    }
}
