//! A small rule-based plan optimizer.
//!
//! The paper repeatedly turns on optimizer behaviour: DBX "creates more
//! efficient query plans" given all index permutations, while the 222-way
//! vertically-partitioned SQL "seriously challenges" it. Our engines pick
//! access paths at execution time, but they can only exploit a bound
//! column if the *plan* exposes it as a scan bound. These rewrites close
//! that gap:
//!
//! 1. **Selection pushdown into scans** — `Select(col = const)` over a
//!    `ScanTriples`/`ScanProperty` output column becomes a scan bound,
//!    unlocking clustered/sorted access paths.
//! 2. **Selection pushdown through unions** — a filter over a `UnionAll`
//!    is applied to every input (so per-property-table scans can bind it).
//! 3. **Selection pushdown through joins** — a filter lands on whichever
//!    join side owns the column.
//!
//! All rewrites are proven answer-preserving by the cross-engine fuzzer in
//! `tests/random_plans.rs` (which round-trips every random plan through
//! [`optimize`]).

use crate::algebra::{CmpOp, Plan, Predicate};

/// Applies the rewrite rules bottom-up until a fixpoint (bounded by plan
/// depth). Returns an equivalent plan.
pub fn optimize(plan: Plan) -> Plan {
    let rewritten = rewrite(plan);
    debug_assert_eq!(rewritten.validate(), Ok(()));
    rewritten
}

fn rewrite(plan: Plan) -> Plan {
    // First rewrite children, then try to sink a Select at this node.
    match plan {
        Plan::Select { input, pred } => {
            let input = rewrite(*input);
            push_select(input, pred)
        }
        Plan::FilterIn { input, col, values } => Plan::FilterIn {
            input: Box::new(rewrite(*input)),
            col,
            values,
        },
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => Plan::Join {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            left_col,
            right_col,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(rewrite(*input)),
            cols,
        },
        Plan::GroupCount { input, keys } => Plan::GroupCount {
            input: Box::new(rewrite(*input)),
            keys,
        },
        Plan::HavingCountGt { input, min } => Plan::HavingCountGt {
            input: Box::new(rewrite(*input)),
            min,
        },
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.into_iter().map(rewrite).collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(rewrite(*input)),
        },
        leaf => leaf,
    }
}

/// Sinks `Select(pred)` into `input` as far as semantics allow.
fn push_select(input: Plan, pred: Predicate) -> Plan {
    match input {
        // --- into a triples scan: only Eq on an unbound position ---------
        Plan::ScanTriples { s, p, o } if pred.op == CmpOp::Eq => {
            let mut bounds = [s, p, o];
            match bounds[pred.col] {
                None => {
                    bounds[pred.col] = Some(pred.value);
                    Plan::ScanTriples {
                        s: bounds[0],
                        p: bounds[1],
                        o: bounds[2],
                    }
                }
                Some(v) if v == pred.value => Plan::ScanTriples { s, p, o },
                // Contradiction: the scan is already bound to another
                // value; keep the filter (it yields the empty result).
                Some(_) => wrap(Plan::ScanTriples { s, p, o }, pred),
            }
        }
        // --- into a property-table scan -----------------------------------
        Plan::ScanProperty {
            property,
            s,
            o,
            emit_property,
        } if pred.op == CmpOp::Eq => {
            let o_pos = if emit_property { 2 } else { 1 };
            let scan = |s, o| Plan::ScanProperty {
                property,
                s,
                o,
                emit_property,
            };
            if pred.col == 0 && s.is_none() {
                scan(Some(pred.value), o)
            } else if pred.col == o_pos && o.is_none() {
                scan(s, Some(pred.value))
            } else if emit_property && pred.col == 1 {
                // Filter on the constant property column: statically
                // decidable.
                if pred.value == property {
                    scan(s, o)
                } else {
                    // Always-false: empty via a contradictory filter.
                    wrap(scan(s, o), pred)
                }
            } else if (pred.col == 0 && s == Some(pred.value))
                || (pred.col == o_pos && o == Some(pred.value))
            {
                scan(s, o)
            } else {
                wrap(scan(s, o), pred)
            }
        }
        // --- through a union ----------------------------------------------
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.into_iter().map(|i| push_select(i, pred)).collect(),
        },
        // --- through a join ------------------------------------------------
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let la = left.arity();
            if pred.col < la {
                Plan::Join {
                    left: Box::new(push_select(*left, pred)),
                    right,
                    left_col,
                    right_col,
                }
            } else {
                let mut p = pred;
                p.col -= la;
                Plan::Join {
                    left,
                    right: Box::new(push_select(*right, p)),
                    left_col,
                    right_col,
                }
            }
        }
        // --- through a projection ------------------------------------------
        Plan::Project { input, cols } => {
            let mut p = pred;
            p.col = cols[pred.col];
            Plan::Project {
                input: Box::new(push_select(*input, p)),
                cols,
            }
        }
        // --- through another select (reorder so ours can keep sinking) -----
        Plan::Select { input, pred: inner } => Plan::Select {
            input: Box::new(push_select(*input, pred)),
            pred: inner,
        },
        // Anything else: stop sinking.
        other => wrap(other, pred),
    }
}

fn wrap(input: Plan, pred: Predicate) -> Plan {
    Plan::Select {
        input: Box::new(input),
        pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{join, project, scan_all, scan_p};
    use crate::naive;
    use swans_rdf::Triple;

    fn select(input: Plan, col: usize, value: u64) -> Plan {
        Plan::Select {
            input: Box::new(input),
            pred: Predicate {
                col,
                op: CmpOp::Eq,
                value,
            },
        }
    }

    #[test]
    fn select_fuses_into_scan_bound() {
        let p = select(scan_all(), 1, 7);
        assert_eq!(
            optimize(p),
            Plan::ScanTriples {
                s: None,
                p: Some(7),
                o: None
            }
        );
    }

    #[test]
    fn contradictory_select_is_kept() {
        let p = select(scan_p(3), 1, 7);
        // p bound to 3, filter wants 7: the filter must survive so the
        // result stays empty.
        assert!(matches!(optimize(p), Plan::Select { .. }));
    }

    #[test]
    fn redundant_select_is_dropped() {
        let p = select(scan_p(7), 1, 7);
        assert_eq!(optimize(p), scan_p(7));
    }

    #[test]
    fn select_pushes_through_union_into_property_scans() {
        let union = Plan::UnionAll {
            inputs: (0..3)
                .map(|pid| Plan::ScanProperty {
                    property: pid,
                    s: None,
                    o: None,
                    emit_property: true,
                })
                .collect(),
        };
        let p = select(union, 0, 5); // bind the subject
        let opt = optimize(p);
        let Plan::UnionAll { inputs } = opt else {
            panic!("union should survive");
        };
        for i in inputs {
            assert!(
                matches!(i, Plan::ScanProperty { s: Some(5), .. }),
                "subject bound in every branch: {i:?}"
            );
        }
    }

    #[test]
    fn select_routes_to_the_owning_join_side() {
        let p = select(join(scan_all(), scan_all(), 0, 0), 4, 9); // right p
        let opt = optimize(p);
        assert_eq!(
            opt,
            join(
                scan_all(),
                Plan::ScanTriples {
                    s: None,
                    p: Some(9),
                    o: None
                },
                0,
                0
            )
        );
    }

    #[test]
    fn select_pushes_through_projection() {
        let p = select(project(scan_all(), vec![2, 0]), 0, 4); // col 0 = o
        let opt = optimize(p);
        assert_eq!(
            opt,
            project(
                Plan::ScanTriples {
                    s: None,
                    p: None,
                    o: Some(4)
                },
                vec![2, 0]
            )
        );
    }

    #[test]
    fn ne_predicates_are_not_fused() {
        let p = Plan::Select {
            input: Box::new(scan_all()),
            pred: Predicate {
                col: 0,
                op: CmpOp::Ne,
                value: 1,
            },
        };
        assert!(matches!(optimize(p), Plan::Select { .. }));
    }

    #[test]
    fn benchmark_plans_unchanged_by_optimizer_semantics() {
        // All benchmark plans already push their bounds into scans, so the
        // optimizer must leave their answers intact (and mostly their
        // shapes too).
        use crate::queries::{build_plan, QueryContext, QueryId, Scheme};
        let ctx = QueryContext {
            type_p: 0,
            text_o: 100,
            language_p: 1,
            fre_o: 101,
            origin_p: 2,
            dlc_o: 102,
            records_p: 3,
            point_p: 4,
            end_o: 103,
            encoding_p: 5,
            conferences_s: 200,
            interesting: (0..6).collect(),
            all_properties: (0..8).collect(),
        };
        let triples: Vec<Triple> = (0..400)
            .map(|i| Triple::new(200 + i % 40, i % 8, 100 + i % 7))
            .collect();
        for q in QueryId::ALL {
            for scheme in [Scheme::TripleStore, Scheme::VerticallyPartitioned] {
                let plan = build_plan(q, scheme, &ctx);
                let opt = optimize(plan.clone());
                assert_eq!(opt.validate(), Ok(()));
                let a = naive::normalize(naive::execute(&plan, &triples));
                let b = naive::normalize(naive::execute(&opt, &triples));
                assert_eq!(a, b, "{q}/{} changed answers", scheme.name());
            }
        }
    }
}
