//! A small rule-based plan optimizer.
//!
//! The paper repeatedly turns on optimizer behaviour: DBX "creates more
//! efficient query plans" given all index permutations, while the 222-way
//! vertically-partitioned SQL "seriously challenges" it. Our engines pick
//! access paths at execution time, but they can only exploit a bound
//! column if the *plan* exposes it as a scan bound. These rewrites close
//! that gap:
//!
//! 1. **Selection pushdown into scans** — `Select(col = const)` over a
//!    `ScanTriples`/`ScanProperty` output column becomes a scan bound,
//!    unlocking clustered/sorted access paths.
//! 2. **Selection pushdown through unions** — a filter over a `UnionAll`
//!    is applied to every input (so per-property-table scans can bind it).
//! 3. **Selection pushdown through joins** — a filter lands on whichever
//!    join side owns the column.
//! 4. **Order-aware join reordering** ([`reorder_joins`], applied by
//!    [`optimize_for`] and by the column engine at execution time — *not*
//!    by the engine-agnostic [`optimize`]) — a left-deep join chain that
//!    joins the same column of its base relation twice is rotated so that
//!    the *sorted–sorted* pair joins first, turning a hash join into the
//!    linear merge join the sorted layouts were built for (see
//!    [`crate::props`]). The same rotation is what places run-encoded
//!    columns ([`crate::props::PhysProps::run_encoded`]) opposite each
//!    other: the rotated sorted pair is exactly where a compressed scan's
//!    run column meets another, letting the engine's run×block merge join
//!    advance whole runs instead of rows.
//!
//! All rewrites are proven answer-preserving by the cross-engine fuzzer in
//! `tests/random_plans.rs` (which round-trips every random plan through
//! [`optimize`]) and the randomized suites in `tests/physprops.rs`.

use crate::algebra::{CmpOp, Plan, Predicate};
use crate::props::{derive, PropsContext};

/// Applies the logical rewrite rules (selection pushdown) bottom-up until
/// a fixpoint (bounded by plan depth). Returns an equivalent plan.
///
/// Purely logical and engine-agnostic — the physical order-aware join
/// reordering is *not* applied here (a rotation only pays on an executor
/// with merge joins; the column engine runs it itself at execution time).
/// Use [`optimize_for`] to also reorder when the target layout is known.
pub fn optimize(plan: Plan) -> Plan {
    let rewritten = rewrite(plan);
    debug_assert_eq!(rewritten.validate(), Ok(()));
    rewritten
}

/// [`optimize`] plus the physical [`reorder_joins`] pass for a known
/// layout — for callers planning specifically for an order-exploiting
/// executor.
pub fn optimize_for(plan: Plan, ctx: &PropsContext) -> Plan {
    let rewritten = reorder_joins(rewrite(plan), ctx);
    debug_assert_eq!(rewritten.validate(), Ok(()));
    rewritten
}

/// Rotates left-deep join chains to prefer sorted–sorted join pairs.
///
/// The pattern: `(A ⋈_{A.x=B.y} B) ⋈_{A.x=C.z} C` where `A` is sorted on
/// `x`, `C` is sorted on `z`, but `B` is *not* sorted on `y` (the typical
/// vertically-partitioned shape — `B` is a union over property tables).
/// Executed as written, both joins hash; rotated to
/// `((A ⋈_{A.x=C.z} C) ⋈_{A.x=B.y} B)` the inner pair merge-joins and its
/// order-preserving output keeps `A.x` sorted for downstream operators.
/// A projection restores the original `A ++ B ++ C` column order, so the
/// rewrite is invisible to the rest of the plan.
pub fn reorder_joins(plan: Plan, ctx: &PropsContext) -> Plan {
    if !has_join(&plan) {
        // Join-free plans can't rotate; skip the rebuild.
        return plan;
    }
    match plan {
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let left = reorder_joins(*left, ctx);
            let right = reorder_joins(*right, ctx);
            try_rotate(left, right, left_col, right_col, ctx)
        }
        Plan::Select { input, pred } => Plan::Select {
            input: Box::new(reorder_joins(*input, ctx)),
            pred,
        },
        Plan::FilterIn { input, col, values } => Plan::FilterIn {
            input: Box::new(reorder_joins(*input, ctx)),
            col,
            values,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(reorder_joins(*input, ctx)),
            cols,
        },
        Plan::GroupCount { input, keys } => Plan::GroupCount {
            input: Box::new(reorder_joins(*input, ctx)),
            keys,
        },
        Plan::HavingCountGt { input, min } => Plan::HavingCountGt {
            input: Box::new(reorder_joins(*input, ctx)),
            min,
        },
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.into_iter().map(|i| reorder_joins(i, ctx)).collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(reorder_joins(*input, ctx)),
        },
        leaf => leaf,
    }
}

/// Whether the plan contains any join — executors use this to skip the
/// [`reorder_joins`] plan clone entirely for join-free plans.
pub fn has_join(plan: &Plan) -> bool {
    match plan {
        Plan::Join { .. } => true,
        Plan::ScanTriples { .. } | Plan::ScanProperty { .. } => false,
        Plan::Select { input, .. }
        | Plan::FilterIn { input, .. }
        | Plan::Project { input, .. }
        | Plan::GroupCount { input, .. }
        | Plan::HavingCountGt { input, .. }
        | Plan::Distinct { input } => has_join(input),
        Plan::UnionAll { inputs } => inputs.iter().any(has_join),
    }
}

/// Applies one rotation at this join if it converts a hash join into a
/// merge join; otherwise rebuilds the join unchanged.
fn try_rotate(
    left: Plan,
    right: Plan,
    left_col: usize,
    right_col: usize,
    ctx: &PropsContext,
) -> Plan {
    let rotate = match &left {
        Plan::Join {
            left: a,
            right: b,
            left_col: x,
            right_col: y,
        } if left_col < a.arity() && left_col == *x => {
            // The outer join keys on the same A column as the inner one.
            derive(a, ctx).sorted_on(*x)
                && derive(&right, ctx).sorted_on(right_col)
                && !derive(b, ctx).sorted_on(*y)
        }
        _ => false,
    };
    if !rotate {
        return Plan::Join {
            left: Box::new(left),
            right: Box::new(right),
            left_col,
            right_col,
        };
    }
    let Plan::Join {
        left: a,
        right: b,
        left_col: x,
        right_col: y,
    } = left
    else {
        unreachable!("rotate is only set for join patterns");
    };
    let (a_ar, b_ar, c_ar) = (a.arity(), b.arity(), right.arity());
    let inner = Plan::Join {
        left: a,
        right: Box::new(right),
        left_col: x,
        right_col,
    };
    let outer = Plan::Join {
        left: Box::new(inner),
        right: b,
        left_col: x,
        right_col: y,
    };
    // Restore the original A ++ B ++ C column order.
    let cols: Vec<usize> = (0..a_ar)
        .chain(a_ar + c_ar..a_ar + c_ar + b_ar)
        .chain(a_ar..a_ar + c_ar)
        .collect();
    Plan::Project {
        input: Box::new(outer),
        cols,
    }
}

fn rewrite(plan: Plan) -> Plan {
    // First rewrite children, then try to sink a Select at this node.
    match plan {
        Plan::Select { input, pred } => {
            let input = rewrite(*input);
            push_select(input, pred)
        }
        Plan::FilterIn { input, col, values } => Plan::FilterIn {
            input: Box::new(rewrite(*input)),
            col,
            values,
        },
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => Plan::Join {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            left_col,
            right_col,
        },
        Plan::Project { input, cols } => Plan::Project {
            input: Box::new(rewrite(*input)),
            cols,
        },
        Plan::GroupCount { input, keys } => Plan::GroupCount {
            input: Box::new(rewrite(*input)),
            keys,
        },
        Plan::HavingCountGt { input, min } => Plan::HavingCountGt {
            input: Box::new(rewrite(*input)),
            min,
        },
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.into_iter().map(rewrite).collect(),
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(rewrite(*input)),
        },
        leaf => leaf,
    }
}

/// Sinks `Select(pred)` into `input` as far as semantics allow.
fn push_select(input: Plan, pred: Predicate) -> Plan {
    match input {
        // --- into a triples scan: only Eq on an unbound position ---------
        Plan::ScanTriples { s, p, o } if pred.op == CmpOp::Eq => {
            let mut bounds = [s, p, o];
            match bounds[pred.col] {
                None => {
                    bounds[pred.col] = Some(pred.value);
                    Plan::ScanTriples {
                        s: bounds[0],
                        p: bounds[1],
                        o: bounds[2],
                    }
                }
                Some(v) if v == pred.value => Plan::ScanTriples { s, p, o },
                // Contradiction: the scan is already bound to another
                // value; keep the filter (it yields the empty result).
                Some(_) => wrap(Plan::ScanTriples { s, p, o }, pred),
            }
        }
        // --- into a property-table scan -----------------------------------
        Plan::ScanProperty {
            property,
            s,
            o,
            emit_property,
        } if pred.op == CmpOp::Eq => {
            let o_pos = if emit_property { 2 } else { 1 };
            let scan = |s, o| Plan::ScanProperty {
                property,
                s,
                o,
                emit_property,
            };
            if pred.col == 0 && s.is_none() {
                scan(Some(pred.value), o)
            } else if pred.col == o_pos && o.is_none() {
                scan(s, Some(pred.value))
            } else if emit_property && pred.col == 1 {
                // Filter on the constant property column: statically
                // decidable.
                if pred.value == property {
                    scan(s, o)
                } else {
                    // Always-false: empty via a contradictory filter.
                    wrap(scan(s, o), pred)
                }
            } else if (pred.col == 0 && s == Some(pred.value))
                || (pred.col == o_pos && o == Some(pred.value))
            {
                scan(s, o)
            } else {
                wrap(scan(s, o), pred)
            }
        }
        // --- through a union ----------------------------------------------
        Plan::UnionAll { inputs } => Plan::UnionAll {
            inputs: inputs.into_iter().map(|i| push_select(i, pred)).collect(),
        },
        // --- through a join ------------------------------------------------
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let la = left.arity();
            if pred.col < la {
                Plan::Join {
                    left: Box::new(push_select(*left, pred)),
                    right,
                    left_col,
                    right_col,
                }
            } else {
                let mut p = pred;
                p.col -= la;
                Plan::Join {
                    left,
                    right: Box::new(push_select(*right, p)),
                    left_col,
                    right_col,
                }
            }
        }
        // --- through a projection ------------------------------------------
        Plan::Project { input, cols } => {
            let mut p = pred;
            p.col = cols[pred.col];
            Plan::Project {
                input: Box::new(push_select(*input, p)),
                cols,
            }
        }
        // --- through another select (reorder so ours can keep sinking) -----
        Plan::Select { input, pred: inner } => Plan::Select {
            input: Box::new(push_select(*input, pred)),
            pred: inner,
        },
        // Anything else: stop sinking.
        other => wrap(other, pred),
    }
}

fn wrap(input: Plan, pred: Predicate) -> Plan {
    Plan::Select {
        input: Box::new(input),
        pred,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{join, project, scan_all, scan_p};
    use crate::naive;
    use swans_rdf::Triple;

    fn select(input: Plan, col: usize, value: u64) -> Plan {
        Plan::Select {
            input: Box::new(input),
            pred: Predicate {
                col,
                op: CmpOp::Eq,
                value,
            },
        }
    }

    #[test]
    fn select_fuses_into_scan_bound() {
        let p = select(scan_all(), 1, 7);
        assert_eq!(
            optimize(p),
            Plan::ScanTriples {
                s: None,
                p: Some(7),
                o: None
            }
        );
    }

    #[test]
    fn contradictory_select_is_kept() {
        let p = select(scan_p(3), 1, 7);
        // p bound to 3, filter wants 7: the filter must survive so the
        // result stays empty.
        assert!(matches!(optimize(p), Plan::Select { .. }));
    }

    #[test]
    fn redundant_select_is_dropped() {
        let p = select(scan_p(7), 1, 7);
        assert_eq!(optimize(p), scan_p(7));
    }

    #[test]
    fn select_pushes_through_union_into_property_scans() {
        let union = Plan::UnionAll {
            inputs: (0..3)
                .map(|pid| Plan::ScanProperty {
                    property: pid,
                    s: None,
                    o: None,
                    emit_property: true,
                })
                .collect(),
        };
        let p = select(union, 0, 5); // bind the subject
        let opt = optimize(p);
        let Plan::UnionAll { inputs } = opt else {
            panic!("union should survive");
        };
        for i in inputs {
            assert!(
                matches!(i, Plan::ScanProperty { s: Some(5), .. }),
                "subject bound in every branch: {i:?}"
            );
        }
    }

    #[test]
    fn select_routes_to_the_owning_join_side() {
        let p = select(join(scan_all(), scan_all(), 0, 0), 4, 9); // right p
        let opt = optimize(p);
        assert_eq!(
            opt,
            join(
                scan_all(),
                Plan::ScanTriples {
                    s: None,
                    p: Some(9),
                    o: None
                },
                0,
                0
            )
        );
    }

    #[test]
    fn select_pushes_through_projection() {
        let p = select(project(scan_all(), vec![2, 0]), 0, 4); // col 0 = o
        let opt = optimize(p);
        assert_eq!(
            opt,
            project(
                Plan::ScanTriples {
                    s: None,
                    p: None,
                    o: Some(4)
                },
                vec![2, 0]
            )
        );
    }

    #[test]
    fn ne_predicates_are_not_fused() {
        let p = Plan::Select {
            input: Box::new(scan_all()),
            pred: Predicate {
                col: 0,
                op: CmpOp::Ne,
                value: 1,
            },
        };
        assert!(matches!(optimize(p), Plan::Select { .. }));
    }

    fn vp_scan(property: u64) -> Plan {
        Plan::ScanProperty {
            property,
            s: None,
            o: None,
            emit_property: false,
        }
    }

    /// The q4-VP shape: (A ⋈s B-union) ⋈s C with A, C subject-sorted and
    /// B a multi-input union. The rotation must pair A with C first and
    /// restore the original column order with a projection.
    #[test]
    fn join_chain_rotates_to_pair_sorted_inputs() {
        let a = vp_scan(1);
        let b = Plan::UnionAll {
            inputs: vec![vp_scan(2), vp_scan(3)],
        };
        let c = vp_scan(4);
        let plan = join(join(a.clone(), b.clone(), 0, 0), c.clone(), 0, 0);
        let got = reorder_joins(plan, &PropsContext::default());
        // A and C have 2 columns each, the B union has 2: the wrapper maps
        // (A, C, B) output positions back to the original A ++ B ++ C.
        let want = project(join(join(a, c, 0, 0), b, 0, 0), vec![0, 1, 4, 5, 2, 3]);
        assert_eq!(got, want);
        assert_eq!(got.validate(), Ok(()));
        // The rotated inner pair is now sorted-sorted on the join column.
        let Plan::Project { input, .. } = &got else {
            panic!("projection wrapper expected");
        };
        let Plan::Join { left, .. } = input.as_ref() else {
            panic!("outer join expected");
        };
        assert!(derive(left, &PropsContext::default()).sorted_on(0));
    }

    /// No rotation when the inner pair already merges, when the outer join
    /// keys on a different column, or when nothing is sorted.
    #[test]
    fn join_chain_rotation_is_gated() {
        // Inner pair already sorted-sorted: untouched.
        let merged = join(join(vp_scan(1), vp_scan(2), 0, 0), vp_scan(3), 0, 0);
        assert_eq!(
            reorder_joins(merged.clone(), &PropsContext::default()),
            merged
        );
        // Outer join keys on B's side (col 2 ∉ A): untouched.
        let union = Plan::UnionAll {
            inputs: vec![vp_scan(2), vp_scan(3)],
        };
        let keyed_on_b = join(join(vp_scan(1), union.clone(), 0, 0), vp_scan(3), 2, 0);
        assert_eq!(
            reorder_joins(keyed_on_b.clone(), &PropsContext::default()),
            keyed_on_b
        );
        // C unsorted on its join column: untouched.
        let c_unsorted = join(join(vp_scan(1), union, 0, 0), vp_scan(3), 0, 1);
        assert_eq!(
            reorder_joins(c_unsorted.clone(), &PropsContext::default()),
            c_unsorted
        );
    }

    /// Rotation preserves answers (naive-executor check on a join chain
    /// with duplicates on the join column).
    #[test]
    fn rotation_preserves_answers() {
        let union = Plan::UnionAll {
            inputs: vec![vp_scan(2), vp_scan(3)],
        };
        let plan = join(join(vp_scan(1), union, 0, 0), vp_scan(4), 0, 0);
        let rotated = reorder_joins(plan.clone(), &PropsContext::default());
        assert_ne!(rotated, plan, "rotation should fire on this shape");
        let triples: Vec<Triple> = (0..40)
            .map(|i| Triple::new(i % 5, 1 + i % 4, i % 3))
            .collect();
        let a = naive::normalize(naive::execute(&plan, &triples));
        let b = naive::normalize(naive::execute(&rotated, &triples));
        assert_eq!(a, b);
    }

    #[test]
    fn benchmark_plans_unchanged_by_optimizer_semantics() {
        // All benchmark plans already push their bounds into scans, so the
        // optimizer must leave their answers intact (and mostly their
        // shapes too).
        use crate::queries::{build_plan, QueryContext, QueryId, Scheme};
        let ctx = QueryContext {
            type_p: 0,
            text_o: 100,
            language_p: 1,
            fre_o: 101,
            origin_p: 2,
            dlc_o: 102,
            records_p: 3,
            point_p: 4,
            end_o: 103,
            encoding_p: 5,
            conferences_s: 200,
            interesting: (0..6).collect(),
            all_properties: (0..8).collect(),
        };
        let triples: Vec<Triple> = (0..400)
            .map(|i| Triple::new(200 + i % 40, i % 8, 100 + i % 7))
            .collect();
        for q in QueryId::ALL {
            for scheme in [Scheme::TripleStore, Scheme::VerticallyPartitioned] {
                let plan = build_plan(q, scheme, &ctx);
                let opt = optimize(plan.clone());
                assert_eq!(opt.validate(), Ok(()));
                let a = naive::normalize(naive::execute(&plan, &triples));
                let b = naive::normalize(naive::execute(&opt, &triples));
                assert_eq!(a, b, "{q}/{} changed answers", scheme.name());
            }
        }
    }
}
