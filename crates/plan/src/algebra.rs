//! The logical algebra both engines execute.
//!
//! Plans operate on relations of `u64` columns in dictionary-encoded space.
//! A `Join` output is the concatenation of the left and right input rows;
//! `GroupCount` appends the count as the last column. The two base scans
//! correspond to the two physical schemes: [`Plan::ScanTriples`] reads the
//! 3-column `triples` table, [`Plan::ScanProperty`] reads one 2-column
//! property table of the vertically-partitioned layout.

use swans_rdf::Id;

/// Comparison operators for [`Predicate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal (e.g. q5's `C.obj != '<Text>'`).
    Ne,
}

/// A single-column comparison against a constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Predicate {
    /// Output column index of the input plan.
    pub col: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Dictionary-encoded constant.
    pub value: Id,
}

impl Predicate {
    /// Evaluates the predicate against one row.
    #[inline]
    pub fn eval(&self, row: &[u64]) -> bool {
        match self.op {
            CmpOp::Eq => row[self.col] == self.value,
            CmpOp::Ne => row[self.col] != self.value,
        }
    }
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Plan {
    /// Scan the `triples(s, p, o)` relation, with optional bound positions
    /// pushed into the access path. Output schema: `(s, p, o)`.
    ScanTriples {
        /// Bound subject.
        s: Option<Id>,
        /// Bound property.
        p: Option<Id>,
        /// Bound object.
        o: Option<Id>,
    },
    /// Scan one vertically-partitioned property table. Output schema
    /// `(s, o)`, or `(s, p, o)` when `emit_property` (the constant property
    /// column is re-materialized, as the VP SQL does with literal columns).
    ScanProperty {
        /// The property whose table is scanned.
        property: Id,
        /// Bound subject.
        s: Option<Id>,
        /// Bound object.
        o: Option<Id>,
        /// Emit the property as a middle column.
        emit_property: bool,
    },
    /// Filter rows by a predicate.
    Select {
        /// Input plan.
        input: Box<Plan>,
        /// Filter predicate.
        pred: Predicate,
    },
    /// Equi-join; output = left row ++ right row.
    Join {
        /// Left input (build side for hash joins).
        left: Box<Plan>,
        /// Right input (probe side).
        right: Box<Plan>,
        /// Join column in the left schema.
        left_col: usize,
        /// Join column in the right schema.
        right_col: usize,
    },
    /// Multi-way equi-join of ≥2 inputs on one shared key (the star
    /// pattern): row `i` of the output concatenates one row from every
    /// input, all carrying the same value at their respective `cols`
    /// position. Semantically identical to the left-deep fold of binary
    /// [`Plan::Join`]s `((inputs[0] ⋈ inputs[1]) ⋈ inputs[2]) ⋈ ...` on
    /// that key — including row order — but executable by the
    /// leapfrog-triejoin kernel when every input is sorted on its key
    /// column, which intersects all inputs at once instead of
    /// materializing pairwise intermediates.
    LeapfrogJoin {
        /// Input plans, in output-schema order.
        inputs: Vec<Plan>,
        /// Per-input join column (in that input's own schema).
        cols: Vec<usize>,
    },
    /// Keep rows whose `col` is in `values` — the benchmark's
    /// "28 interesting properties" restriction, realized in the paper's SQL
    /// as a join against a `properties` table.
    FilterIn {
        /// Input plan.
        input: Box<Plan>,
        /// Column to test.
        col: usize,
        /// Allowed values.
        values: Vec<Id>,
    },
    /// Column projection / reordering.
    Project {
        /// Input plan.
        input: Box<Plan>,
        /// Output columns as indices into the input schema.
        cols: Vec<usize>,
    },
    /// Group by `keys`, count rows per group. Output: keys ++ count.
    GroupCount {
        /// Input plan.
        input: Box<Plan>,
        /// Grouping columns.
        keys: Vec<usize>,
    },
    /// Keep groups with count > `min`; input's last column is the count.
    HavingCountGt {
        /// Input plan (a `GroupCount`).
        input: Box<Plan>,
        /// Exclusive lower bound on the count.
        min: u64,
    },
    /// Bag union of union-compatible inputs.
    UnionAll {
        /// Input plans (all the same arity).
        inputs: Vec<Plan>,
    },
    /// Duplicate elimination over whole rows.
    Distinct {
        /// Input plan.
        input: Box<Plan>,
    },
}

/// What one output column of a [`Plan`] holds — the information a result
/// decoder needs to know whether a `u64` is a dictionary id or a plain
/// number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// A dictionary-encoded term id (decode through the dictionary).
    Term,
    /// An aggregate count (render as a number).
    Count,
}

impl Plan {
    /// Number of output columns.
    pub fn arity(&self) -> usize {
        match self {
            Plan::ScanTriples { .. } => 3,
            Plan::ScanProperty { emit_property, .. } => {
                if *emit_property {
                    3
                } else {
                    2
                }
            }
            Plan::Select { input, .. }
            | Plan::FilterIn { input, .. }
            | Plan::HavingCountGt { input, .. }
            | Plan::Distinct { input } => input.arity(),
            Plan::Join { left, right, .. } => left.arity() + right.arity(),
            Plan::LeapfrogJoin { inputs, .. } => inputs.iter().map(Plan::arity).sum(),
            Plan::Project { cols, .. } => cols.len(),
            Plan::GroupCount { keys, .. } => keys.len() + 1,
            Plan::UnionAll { inputs } => inputs.first().map_or(0, Plan::arity),
        }
    }

    /// The kind of every output column, in schema order. This is what lets
    /// a result decoder resolve term ids through the dictionary while
    /// rendering aggregate counts as numbers — for *any* plan, not just the
    /// benchmark queries whose count columns are known by convention.
    pub fn output_kinds(&self) -> Vec<ColumnKind> {
        match self {
            Plan::ScanTriples { .. } | Plan::ScanProperty { .. } => {
                vec![ColumnKind::Term; self.arity()]
            }
            Plan::Select { input, .. }
            | Plan::FilterIn { input, .. }
            | Plan::HavingCountGt { input, .. }
            | Plan::Distinct { input } => input.output_kinds(),
            Plan::Join { left, right, .. } => {
                let mut kinds = left.output_kinds();
                kinds.extend(right.output_kinds());
                kinds
            }
            Plan::LeapfrogJoin { inputs, .. } => {
                inputs.iter().flat_map(Plan::output_kinds).collect()
            }
            Plan::Project { input, cols } => {
                let kinds = input.output_kinds();
                cols.iter().map(|&c| kinds[c]).collect()
            }
            Plan::GroupCount { input, keys } => {
                let kinds = input.output_kinds();
                let mut out: Vec<ColumnKind> = keys.iter().map(|&k| kinds[k]).collect();
                out.push(ColumnKind::Count);
                out
            }
            Plan::UnionAll { inputs } => inputs.first().map(Plan::output_kinds).unwrap_or_default(),
        }
    }

    /// Validates column references and union compatibility, returning a
    /// human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            Plan::ScanTriples { .. } => Ok(()),
            Plan::ScanProperty { .. } => Ok(()),
            Plan::Select { input, pred } => {
                input.validate()?;
                if pred.col >= input.arity() {
                    return Err(format!(
                        "Select references column {} of an arity-{} input",
                        pred.col,
                        input.arity()
                    ));
                }
                Ok(())
            }
            Plan::Join {
                left,
                right,
                left_col,
                right_col,
            } => {
                left.validate()?;
                right.validate()?;
                if *left_col >= left.arity() {
                    return Err(format!(
                        "Join left column {} out of range (arity {})",
                        left_col,
                        left.arity()
                    ));
                }
                if *right_col >= right.arity() {
                    return Err(format!(
                        "Join right column {} out of range (arity {})",
                        right_col,
                        right.arity()
                    ));
                }
                Ok(())
            }
            Plan::LeapfrogJoin { inputs, cols } => {
                if inputs.len() < 2 {
                    return Err(format!(
                        "LeapfrogJoin needs at least 2 inputs, has {}",
                        inputs.len()
                    ));
                }
                if cols.len() != inputs.len() {
                    return Err(format!(
                        "LeapfrogJoin has {} inputs but {} join columns",
                        inputs.len(),
                        cols.len()
                    ));
                }
                for (i, (p, &c)) in inputs.iter().zip(cols.iter()).enumerate() {
                    p.validate()?;
                    if c >= p.arity() {
                        return Err(format!(
                            "LeapfrogJoin input {i} join column {c} out of range (arity {})",
                            p.arity()
                        ));
                    }
                }
                Ok(())
            }
            Plan::FilterIn { input, col, .. } => {
                input.validate()?;
                if *col >= input.arity() {
                    return Err(format!(
                        "FilterIn references column {} of an arity-{} input",
                        col,
                        input.arity()
                    ));
                }
                Ok(())
            }
            Plan::Project { input, cols } => {
                input.validate()?;
                for &c in cols {
                    if c >= input.arity() {
                        return Err(format!(
                            "Project references column {c} of an arity-{} input",
                            input.arity()
                        ));
                    }
                }
                Ok(())
            }
            Plan::GroupCount { input, keys } => {
                input.validate()?;
                for &k in keys {
                    if k >= input.arity() {
                        return Err(format!(
                            "GroupCount key {k} out of range (arity {})",
                            input.arity()
                        ));
                    }
                }
                Ok(())
            }
            Plan::HavingCountGt { input, .. } => {
                input.validate()?;
                if input.arity() == 0 {
                    return Err("HavingCountGt over empty schema".into());
                }
                Ok(())
            }
            Plan::UnionAll { inputs } => {
                if inputs.is_empty() {
                    return Err("UnionAll with no inputs".into());
                }
                let a = inputs[0].arity();
                let kinds = inputs[0].output_kinds();
                for (i, p) in inputs.iter().enumerate() {
                    p.validate()?;
                    if p.arity() != a {
                        return Err(format!(
                            "UnionAll input {i} has arity {} but input 0 has {a}",
                            p.arity()
                        ));
                    }
                    // Kinds must agree too: `output_kinds` reports only the
                    // first input, so a branch mixing counts into a term
                    // column (or vice versa) would decode wrongly.
                    if p.output_kinds() != kinds {
                        return Err(format!(
                            "UnionAll input {i} has column kinds {:?} but input 0 has {kinds:?}",
                            p.output_kinds()
                        ));
                    }
                }
                Ok(())
            }
            Plan::Distinct { input } => input.validate(),
        }
    }

    /// Renders an EXPLAIN-style indented operator tree. Unions over many
    /// property tables (the vertically-partitioned expansion) are
    /// summarized rather than listed in full.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    /// The one-line operator label of this node (no children, no indent) —
    /// shared by [`Plan::explain`] and the physical-property-annotated
    /// rendering in [`crate::props`].
    pub(crate) fn node_label(&self) -> String {
        let b = |x: &Option<Id>| x.map_or("?".to_string(), |v| v.to_string());
        match self {
            Plan::ScanTriples { s, p, o } => {
                format!("ScanTriples(s={}, p={}, o={})", b(s), b(p), b(o))
            }
            Plan::ScanProperty {
                property,
                s,
                o,
                emit_property,
            } => format!(
                "ScanProperty(p{property}, s={}, o={}{})",
                b(s),
                b(o),
                if *emit_property { ", emit p" } else { "" }
            ),
            Plan::Select { pred, .. } => {
                let op = match pred.op {
                    CmpOp::Eq => "=",
                    CmpOp::Ne => "!=",
                };
                format!("Select(col{} {op} {})", pred.col, pred.value)
            }
            Plan::FilterIn { col, values, .. } => {
                format!("FilterIn(col{col} in {} values)", values.len())
            }
            Plan::Join {
                left_col,
                right_col,
                ..
            } => format!("Join(left.col{left_col} = right.col{right_col})"),
            Plan::LeapfrogJoin { inputs, cols } => {
                format!("LeapfrogJoin({}-way, cols={cols:?})", inputs.len())
            }
            Plan::Project { cols, .. } => format!("Project({cols:?})"),
            Plan::GroupCount { keys, .. } => format!("GroupCount(keys={keys:?})"),
            Plan::HavingCountGt { min, .. } => format!("HavingCountGt({min})"),
            Plan::UnionAll { inputs } => format!("UnionAll({} inputs)", inputs.len()),
            Plan::Distinct { .. } => "Distinct".to_string(),
        }
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{}", self.node_label());
        match self {
            Plan::ScanTriples { .. } | Plan::ScanProperty { .. } => {}
            Plan::Select { input, .. }
            | Plan::FilterIn { input, .. }
            | Plan::Project { input, .. }
            | Plan::GroupCount { input, .. }
            | Plan::HavingCountGt { input, .. }
            | Plan::Distinct { input } => input.explain_into(out, depth + 1),
            Plan::Join { left, right, .. } => {
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            Plan::LeapfrogJoin { inputs, .. } => {
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            Plan::UnionAll { inputs } => {
                if inputs.len() <= 4 {
                    for i in inputs {
                        i.explain_into(out, depth + 1);
                    }
                } else {
                    inputs[0].explain_into(out, depth + 1);
                    let _ = writeln!(
                        out,
                        "{}... {} more property-table scans ...",
                        "  ".repeat(depth + 1),
                        inputs.len() - 1
                    );
                }
            }
        }
    }

    /// Number of operator nodes (plan size — the "hundreds of unions and
    /// joins" the paper measures against the optimizer).
    pub fn node_count(&self) -> usize {
        1 + match self {
            Plan::ScanTriples { .. } | Plan::ScanProperty { .. } => 0,
            Plan::Select { input, .. }
            | Plan::FilterIn { input, .. }
            | Plan::Project { input, .. }
            | Plan::GroupCount { input, .. }
            | Plan::HavingCountGt { input, .. }
            | Plan::Distinct { input } => input.node_count(),
            Plan::Join { left, right, .. } => left.node_count() + right.node_count(),
            Plan::LeapfrogJoin { inputs, .. } | Plan::UnionAll { inputs } => {
                inputs.iter().map(Plan::node_count).sum()
            }
        }
    }
}

// ------- convenience builders (used by the query generator and tests) ----

/// Scan of the full triples relation.
pub fn scan_all() -> Plan {
    Plan::ScanTriples {
        s: None,
        p: None,
        o: None,
    }
}

/// Scan of triples with a bound property.
pub fn scan_p(p: Id) -> Plan {
    Plan::ScanTriples {
        s: None,
        p: Some(p),
        o: None,
    }
}

/// Scan of triples with bound property and object.
pub fn scan_po(p: Id, o: Id) -> Plan {
    Plan::ScanTriples {
        s: None,
        p: Some(p),
        o: Some(o),
    }
}

/// Equi-join helper.
pub fn join(left: Plan, right: Plan, left_col: usize, right_col: usize) -> Plan {
    Plan::Join {
        left: Box::new(left),
        right: Box::new(right),
        left_col,
        right_col,
    }
}

/// Multi-way same-key join helper.
pub fn leapfrog(inputs: Vec<Plan>, cols: Vec<usize>) -> Plan {
    Plan::LeapfrogJoin { inputs, cols }
}

/// The binary-join fold a [`Plan::LeapfrogJoin`] is semantically (and
/// row-order) equivalent to: `((inputs[0] ⋈ inputs[1]) ⋈ inputs[2]) ⋈ ...`,
/// each later input joined against the shared key at `cols[0]` — input 0
/// sits at offset 0 of every accumulated schema, so the key keeps that
/// position throughout. Executors without a multi-way kernel (and the
/// column engine when an input loses its sort order) evaluate the
/// operator through this expansion.
pub fn leapfrog_fold(inputs: &[Plan], cols: &[usize]) -> Plan {
    assert!(
        inputs.len() >= 2 && cols.len() == inputs.len(),
        "malformed leapfrog shape"
    );
    let mut acc = inputs[0].clone();
    for (right, &rc) in inputs[1..].iter().zip(&cols[1..]) {
        acc = join(acc, right.clone(), cols[0], rc);
    }
    acc
}

/// Projection helper.
pub fn project(input: Plan, cols: Vec<usize>) -> Plan {
    Plan::Project {
        input: Box::new(input),
        cols,
    }
}

/// Group-count helper.
pub fn group_count(input: Plan, keys: Vec<usize>) -> Plan {
    Plan::GroupCount {
        input: Box::new(input),
        keys,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_propagates() {
        let p = group_count(
            project(join(scan_po(1, 2), scan_all(), 0, 0), vec![4]),
            vec![0],
        );
        // join: 3+3=6, project: 1, group: key+count = 2
        assert_eq!(p.arity(), 2);
    }

    #[test]
    fn scan_property_arity_depends_on_emit() {
        let a = Plan::ScanProperty {
            property: 1,
            s: None,
            o: None,
            emit_property: false,
        };
        let b = Plan::ScanProperty {
            property: 1,
            s: None,
            o: None,
            emit_property: true,
        };
        assert_eq!(a.arity(), 2);
        assert_eq!(b.arity(), 3);
    }

    #[test]
    fn validate_catches_bad_columns() {
        let bad = project(scan_all(), vec![3]);
        assert!(bad.validate().is_err());
        let ok = project(scan_all(), vec![2, 0]);
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validate_catches_union_mismatch() {
        let bad = Plan::UnionAll {
            inputs: vec![scan_all(), project(scan_all(), vec![0])],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn validate_rejects_empty_union() {
        assert!(Plan::UnionAll { inputs: vec![] }.validate().is_err());
    }

    /// Same arity but different column kinds (term vs count) must not
    /// union: `output_kinds` reports the first input, so the other branch
    /// would decode wrongly.
    #[test]
    fn validate_rejects_kind_mismatched_union() {
        let terms = project(scan_all(), vec![0, 1]); // Term, Term
        let counted = group_count(scan_all(), vec![0]); // Term, Count
        let bad = Plan::UnionAll {
            inputs: vec![terms, counted.clone()],
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("column kinds"), "{err}");
        let ok = Plan::UnionAll {
            inputs: vec![counted.clone(), counted],
        };
        assert_eq!(ok.validate(), Ok(()));
    }

    #[test]
    fn node_count_counts_all_operators() {
        let p = join(scan_all(), scan_all(), 0, 0);
        assert_eq!(p.node_count(), 3);
        let u = Plan::UnionAll {
            inputs: vec![scan_all(), scan_all(), scan_all()],
        };
        assert_eq!(u.node_count(), 4);
    }

    #[test]
    fn explain_renders_indented_tree() {
        let p = group_count(
            project(join(scan_po(1, 2), scan_all(), 0, 0), vec![4]),
            vec![0],
        );
        let text = p.explain();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "GroupCount(keys=[0])");
        assert_eq!(lines[1], "  Project([4])");
        assert_eq!(lines[2], "    Join(left.col0 = right.col0)");
        assert!(lines[3].contains("ScanTriples(s=?, p=1, o=2)"));
    }

    #[test]
    fn explain_summarizes_wide_unions() {
        let u = Plan::UnionAll {
            inputs: (0..222)
                .map(|p| Plan::ScanProperty {
                    property: p,
                    s: None,
                    o: None,
                    emit_property: true,
                })
                .collect(),
        };
        let text = u.explain();
        assert!(text.contains("UnionAll(222 inputs)"));
        assert!(text.contains("221 more property-table scans"));
        assert!(text.lines().count() < 10, "wide unions must be summarized");
    }

    #[test]
    fn output_kinds_track_counts_through_operators() {
        // (keys..., count) out of a GroupCount.
        let g = group_count(scan_all(), vec![1]);
        assert_eq!(g.output_kinds(), vec![ColumnKind::Term, ColumnKind::Count]);
        // Project can reorder the count before a key.
        let p = project(g.clone(), vec![1, 0]);
        assert_eq!(p.output_kinds(), vec![ColumnKind::Count, ColumnKind::Term]);
        // Joining a group result against a scan keeps both sides' kinds.
        let j = join(g, scan_all(), 0, 0);
        assert_eq!(
            j.output_kinds(),
            vec![
                ColumnKind::Term,
                ColumnKind::Count,
                ColumnKind::Term,
                ColumnKind::Term,
                ColumnKind::Term
            ]
        );
        // Grouping by a count column keeps its Count kind.
        let gg = group_count(group_count(scan_all(), vec![0]), vec![1]);
        assert_eq!(
            gg.output_kinds(),
            vec![ColumnKind::Count, ColumnKind::Count]
        );
    }

    #[test]
    fn leapfrog_shape_and_fold() {
        let star = leapfrog(
            vec![scan_po(0, 1), scan_all(), scan_po(2, 3)],
            vec![0, 0, 0],
        );
        assert_eq!(star.arity(), 9);
        assert_eq!(star.validate(), Ok(()));
        assert_eq!(star.node_count(), 4);
        let Plan::LeapfrogJoin { inputs, cols } = &star else {
            unreachable!()
        };
        let fold = leapfrog_fold(inputs, cols);
        assert_eq!(fold.arity(), star.arity());
        assert_eq!(fold.output_kinds(), star.output_kinds());
        assert!(star
            .explain()
            .contains("LeapfrogJoin(3-way, cols=[0, 0, 0])"));

        assert!(leapfrog(vec![scan_all()], vec![0]).validate().is_err());
        assert!(leapfrog(vec![scan_all(), scan_all()], vec![0])
            .validate()
            .is_err());
        assert!(leapfrog(vec![scan_all(), scan_all()], vec![0, 5])
            .validate()
            .is_err());
    }

    #[test]
    fn predicate_eval() {
        let eq = Predicate {
            col: 1,
            op: CmpOp::Eq,
            value: 7,
        };
        let ne = Predicate {
            col: 1,
            op: CmpOp::Ne,
            value: 7,
        };
        assert!(eq.eval(&[0, 7, 0]));
        assert!(!eq.eval(&[0, 8, 0]));
        assert!(ne.eval(&[0, 8, 0]));
        assert!(!ne.eval(&[0, 7, 0]));
    }
}
