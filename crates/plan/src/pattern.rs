//! The RDF query design space of the paper's §2.2 / Figure 2.

use swans_rdf::Id;

/// The eight simple triple query patterns: every combination of binding
/// subject / property / object to a constant or a variable.
///
/// `P1 = (s, p, o)` is a point lookup; `P8 = (?s, ?p, ?o)` scans everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimplePattern {
    /// `(s, p, o)` — all constants (the missing point-lookup pattern the
    /// paper notes "should be present in every benchmark").
    P1,
    /// `(?s, p, o)`
    P2,
    /// `(s, ?p, o)`
    P3,
    /// `(s, p, ?o)`
    P4,
    /// `(?s, ?p, o)`
    P5,
    /// `(s, ?p, ?o)`
    P6,
    /// `(?s, p, ?o)`
    P7,
    /// `(?s, ?p, ?o)`
    P8,
}

impl SimplePattern {
    /// All patterns in Figure 2 order.
    pub const ALL: [SimplePattern; 8] = [
        SimplePattern::P1,
        SimplePattern::P2,
        SimplePattern::P3,
        SimplePattern::P4,
        SimplePattern::P5,
        SimplePattern::P6,
        SimplePattern::P7,
        SimplePattern::P8,
    ];

    /// Classifies a triple access by which positions are bound.
    pub fn classify(s: Option<Id>, p: Option<Id>, o: Option<Id>) -> Self {
        match (s.is_some(), p.is_some(), o.is_some()) {
            (true, true, true) => SimplePattern::P1,
            (false, true, true) => SimplePattern::P2,
            (true, false, true) => SimplePattern::P3,
            (true, true, false) => SimplePattern::P4,
            (false, false, true) => SimplePattern::P5,
            (true, false, false) => SimplePattern::P6,
            (false, true, false) => SimplePattern::P7,
            (false, false, false) => SimplePattern::P8,
        }
    }

    /// Pattern name, e.g. `"p2"`.
    pub fn name(self) -> &'static str {
        match self {
            SimplePattern::P1 => "p1",
            SimplePattern::P2 => "p2",
            SimplePattern::P3 => "p3",
            SimplePattern::P4 => "p4",
            SimplePattern::P5 => "p5",
            SimplePattern::P6 => "p6",
            SimplePattern::P7 => "p7",
            SimplePattern::P8 => "p8",
        }
    }

    /// The `(s, p, o)` template with `?` for variables, as in Figure 2.
    pub fn template(self) -> &'static str {
        match self {
            SimplePattern::P1 => "(s, p, o)",
            SimplePattern::P2 => "(?s, p, o)",
            SimplePattern::P3 => "(s, ?p, o)",
            SimplePattern::P4 => "(s, p, ?o)",
            SimplePattern::P5 => "(?s, ?p, o)",
            SimplePattern::P6 => "(s, ?p, ?o)",
            SimplePattern::P7 => "(?s, p, ?o)",
            SimplePattern::P8 => "(?s, ?p, ?o)",
        }
    }
}

impl std::fmt::Display for SimplePattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The role a column plays relative to its originating triple scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// Subject position.
    S,
    /// Property position.
    P,
    /// Object position.
    O,
}

/// How two triples are related by an equality join (§2.2).
///
/// Patterns `A`, `B`, `C` "form the RDF data graph"; the property-involving
/// combinations "play a role in semantic reasoning, usually found on the
/// RDF Schema level".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum JoinPattern {
    /// Pattern A: `s = s'` — join on the subjects of two triples.
    A,
    /// Pattern B: `o = o'` — join on the objects of two triples.
    B,
    /// Pattern C: `o = s'` (or `s = o'`) — semantic role change.
    C,
    /// `p = p'` — strongly-typed property equality.
    PropertyProperty,
    /// `s = p'` or `p = s'` — RDF/S reasoning.
    PropertySubject,
    /// `o = p'` or `p = o'` — RDF/S reasoning.
    PropertyObject,
}

impl JoinPattern {
    /// Classifies a join by the roles of its two join columns.
    pub fn classify(left: Role, right: Role) -> Self {
        use Role::*;
        match (left, right) {
            (S, S) => JoinPattern::A,
            (O, O) => JoinPattern::B,
            (S, O) | (O, S) => JoinPattern::C,
            (P, P) => JoinPattern::PropertyProperty,
            (P, S) | (S, P) => JoinPattern::PropertySubject,
            (P, O) | (O, P) => JoinPattern::PropertyObject,
        }
    }

    /// Name as used in Table 2, e.g. `"A"`.
    pub fn name(self) -> &'static str {
        match self {
            JoinPattern::A => "A",
            JoinPattern::B => "B",
            JoinPattern::C => "C",
            JoinPattern::PropertyProperty => "p=p'",
            JoinPattern::PropertySubject => "s=p'",
            JoinPattern::PropertyObject => "o=p'",
        }
    }
}

impl std::fmt::Display for JoinPattern {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_all_eight() {
        use SimplePattern::*;
        let b = Some(1u64);
        assert_eq!(SimplePattern::classify(b, b, b), P1);
        assert_eq!(SimplePattern::classify(None, b, b), P2);
        assert_eq!(SimplePattern::classify(b, None, b), P3);
        assert_eq!(SimplePattern::classify(b, b, None), P4);
        assert_eq!(SimplePattern::classify(None, None, b), P5);
        assert_eq!(SimplePattern::classify(b, None, None), P6);
        assert_eq!(SimplePattern::classify(None, b, None), P7);
        assert_eq!(SimplePattern::classify(None, None, None), P8);
    }

    #[test]
    fn join_patterns_match_figure_2() {
        use Role::*;
        assert_eq!(JoinPattern::classify(S, S), JoinPattern::A);
        assert_eq!(JoinPattern::classify(O, O), JoinPattern::B);
        assert_eq!(JoinPattern::classify(O, S), JoinPattern::C);
        assert_eq!(JoinPattern::classify(S, O), JoinPattern::C);
        assert_eq!(JoinPattern::classify(P, P), JoinPattern::PropertyProperty);
        assert_eq!(JoinPattern::classify(P, O), JoinPattern::PropertyObject);
    }

    #[test]
    fn templates_have_question_marks_for_variables() {
        assert_eq!(SimplePattern::P7.template(), "(?s, p, ?o)");
        assert!(!SimplePattern::P1.template().contains('?'));
    }

    /// §2.2: 2^4 × 6/2 ... the paper counts 6 equality predicates between
    /// two triple patterns and 4 remaining free terms — sanity-check the
    /// enumeration sizes our types encode.
    #[test]
    fn design_space_sizes() {
        assert_eq!(SimplePattern::ALL.len(), 8);
        // 6 distinct role pairings (A, B, C and the three RDF/S ones).
        use Role::*;
        let mut kinds = std::collections::BTreeSet::new();
        for l in [S, P, O] {
            for r in [S, P, O] {
                kinds.insert(JoinPattern::classify(l, r));
            }
        }
        assert_eq!(kinds.len(), 6);
    }
}
