//! Query-space coverage analysis — reproduces the paper's Table 2.
//!
//! Walks a (triple-store) logical plan, tracking for every output column
//! which base scan and triple position (`s`/`p`/`o`) it originates from.
//! Scans contribute [`SimplePattern`]s (from their bound positions), joins
//! contribute [`JoinPattern`]s (from the roles of their join columns).

use std::collections::BTreeSet;

use crate::algebra::Plan;
use crate::pattern::{JoinPattern, Role, SimplePattern};

/// The patterns a query exercises (one row of Table 2).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Simple triple patterns used by the base scans.
    pub simple: BTreeSet<SimplePattern>,
    /// Join patterns used by the joins.
    pub joins: BTreeSet<JoinPattern>,
}

impl Coverage {
    /// Formats like Table 2, e.g. `"p2,p8 | A"`.
    pub fn render(&self) -> String {
        let simple: Vec<&str> = self.simple.iter().map(|p| p.name()).collect();
        let joins: Vec<&str> = self.joins.iter().map(|p| p.name()).collect();
        format!(
            "{} | {}",
            simple.join(","),
            if joins.is_empty() {
                "–".to_string()
            } else {
                joins.join(", ")
            }
        )
    }
}

/// Per-column provenance: which scan and which triple position.
type Prov = Vec<Option<Role>>;

fn walk(plan: &Plan, cov: &mut Coverage) -> Prov {
    match plan {
        Plan::ScanTriples { s, p, o } => {
            cov.simple.insert(SimplePattern::classify(*s, *p, *o));
            vec![Some(Role::S), Some(Role::P), Some(Role::O)]
        }
        Plan::ScanProperty {
            s,
            o,
            emit_property,
            ..
        } => {
            // A property table access is a triple access with p bound.
            cov.simple.insert(SimplePattern::classify(*s, Some(0), *o));
            if *emit_property {
                vec![Some(Role::S), Some(Role::P), Some(Role::O)]
            } else {
                vec![Some(Role::S), Some(Role::O)]
            }
        }
        // Filters do not *bind* a position to a constant in the pattern
        // sense (q8's `B.subj != 'conferences'` leaves B a p8 scan).
        Plan::Select { input, .. } | Plan::FilterIn { input, .. } => walk(input, cov),
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let lp = walk(left, cov);
            let rp = walk(right, cov);
            if let (Some(lr), Some(rr)) = (lp[*left_col], rp[*right_col]) {
                cov.joins.insert(JoinPattern::classify(lr, rr));
            }
            let mut out = lp;
            out.extend(rp);
            out
        }
        Plan::LeapfrogJoin { inputs, cols } => {
            // The multi-way join covers the same patterns as its binary
            // fold: input 0's key column joined against every other input.
            let provs: Vec<Prov> = inputs.iter().map(|i| walk(i, cov)).collect();
            if let Some(lr) = provs[0][cols[0]] {
                for (p, &c) in provs[1..].iter().zip(&cols[1..]) {
                    if let Some(rr) = p[c] {
                        cov.joins.insert(JoinPattern::classify(lr, rr));
                    }
                }
            }
            provs.into_iter().flatten().collect()
        }
        Plan::Project { input, cols } => {
            let p = walk(input, cov);
            cols.iter().map(|&c| p[c]).collect()
        }
        Plan::GroupCount { input, keys } => {
            let p = walk(input, cov);
            let mut out: Prov = keys.iter().map(|&k| p[k]).collect();
            out.push(None); // the count column has no triple provenance
            out
        }
        Plan::HavingCountGt { input, .. } | Plan::Distinct { input } => walk(input, cov),
        Plan::UnionAll { inputs } => {
            let mut first: Option<Prov> = None;
            for i in inputs {
                let p = walk(i, cov);
                if first.is_none() {
                    first = Some(p);
                }
            }
            first.unwrap_or_default()
        }
    }
}

/// Computes the pattern coverage of a plan.
pub fn analyze(plan: &Plan) -> Coverage {
    let mut cov = Coverage::default();
    walk(plan, &mut cov);
    cov
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::{build_plan, QueryContext, QueryId, Scheme};
    use JoinPattern as J;
    use SimplePattern as P;

    fn ctx() -> QueryContext {
        QueryContext {
            type_p: 0,
            text_o: 100,
            language_p: 1,
            fre_o: 101,
            origin_p: 2,
            dlc_o: 102,
            records_p: 3,
            point_p: 4,
            end_o: 103,
            encoding_p: 5,
            conferences_s: 200,
            interesting: (0..28).collect(),
            all_properties: (0..222).collect(),
        }
    }

    fn cov(q: QueryId) -> Coverage {
        analyze(&build_plan(q, Scheme::TripleStore, &ctx()))
    }

    fn set<T: Ord + Copy>(xs: &[T]) -> BTreeSet<T> {
        xs.iter().copied().collect()
    }

    /// The central check: our generated plans reproduce Table 2 exactly.
    #[test]
    fn table2_coverage_matches_paper() {
        let expected: [(QueryId, &[P], &[J]); 8] = [
            (QueryId::Q1, &[P::P7], &[]),
            (QueryId::Q2, &[P::P2, P::P8], &[J::A]),
            (QueryId::Q3, &[P::P2, P::P8], &[J::A]),
            (QueryId::Q4, &[P::P2, P::P8], &[J::A]),
            (QueryId::Q5, &[P::P2, P::P7], &[J::A, J::C]),
            (QueryId::Q6, &[P::P2, P::P7, P::P8], &[J::A, J::C]),
            (QueryId::Q7, &[P::P2, P::P7], &[J::A]),
            (QueryId::Q8, &[P::P6, P::P8], &[J::B]),
        ];
        for (q, simple, joins) in expected {
            let c = cov(q);
            assert_eq!(c.simple, set(simple), "{q} simple patterns");
            assert_eq!(c.joins, set(joins), "{q} join patterns");
        }
    }

    /// The benchmark (q1–q7) leaves patterns p1, p3, p4, p5, p6 and join
    /// pattern B uncovered — the gap q8 partially closes (§2.2).
    #[test]
    fn original_benchmark_gaps() {
        let mut simple = BTreeSet::new();
        let mut joins = BTreeSet::new();
        for q in QueryId::BASE7 {
            let c = cov(q);
            simple.extend(c.simple);
            joins.extend(c.joins);
        }
        for missing in [P::P1, P::P3, P::P4, P::P5, P::P6] {
            assert!(!simple.contains(&missing), "{missing} unexpectedly covered");
        }
        assert!(!joins.contains(&J::B));
        // q8 adds p6 and join pattern B.
        let c8 = cov(QueryId::Q8);
        assert!(c8.simple.contains(&P::P6));
        assert!(c8.joins.contains(&J::B));
    }

    #[test]
    fn render_formats_like_table2() {
        assert_eq!(cov(QueryId::Q2).render(), "p2,p8 | A");
        assert_eq!(cov(QueryId::Q1).render(), "p7 | –");
    }

    #[test]
    fn star_variants_cover_like_their_base() {
        for (a, b) in [
            (QueryId::Q2, QueryId::Q2Star),
            (QueryId::Q3, QueryId::Q3Star),
            (QueryId::Q4, QueryId::Q4Star),
            (QueryId::Q6, QueryId::Q6Star),
        ] {
            assert_eq!(cov(a), cov(b));
        }
    }

    /// VP plans see every property-bound access as a p-bound pattern; the
    /// analysis still terminates and finds the same join patterns.
    #[test]
    fn vp_plans_analyzable() {
        let c = analyze(&build_plan(
            QueryId::Q8,
            Scheme::VerticallyPartitioned,
            &ctx(),
        ));
        assert!(c.joins.contains(&J::B));
    }
}
