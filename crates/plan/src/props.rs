//! Physical properties: the ordering knowledge a plan's output carries.
//!
//! The paper's performance argument for vertically-partitioned column
//! layouts rests on per-property `(s, o)` tables being *sorted by
//! subject*, enabling "fast (linear) merge joins" — but an executor can
//! only exploit that if sortedness is threaded from the storage layout
//! through every operator of the plan. [`fn@derive`] does exactly that: given
//! a plan and a [`PropsContext`] describing the physical layout (the
//! triples table's clustering order), it computes for every node whether
//! the output rows are sorted, and by which columns.
//!
//! The column engine consults this derivation at dispatch time: a
//! [`Plan::Join`] whose inputs are both sorted on their join columns runs
//! as a merge join, a [`Plan::GroupCount`] over key-sorted input
//! aggregates runs instead of hashing, and a [`Plan::Distinct`] over fully
//! sorted (or already-distinct) input degenerates to a linear scan (or a
//! no-op). Because both the dispatch decision and the claimed output
//! order come from this one function, the derivation stays consistent
//! with what the executor actually produces — a property pinned by the
//! randomized sortedness tests in `tests/physprops.rs`.

use std::collections::BTreeSet;

use swans_rdf::{Id, SortOrder};

use crate::algebra::Plan;

/// The physical layout context a derivation runs against.
///
/// `Default` (no triples clustering order known) is the conservative
/// setting: triples scans claim no order, property-table scans — whose
/// `(subject, object)` sort is inherent to the vertically-partitioned
/// layout — still do.
///
/// Pending write-store state is tracked **per property**: a pending
/// insert for property X downgrades only the scans X can reach (property
/// X's table, and triples scans whose property bound is X or absent) —
/// scans over untouched properties keep their order claims and their
/// merge-join/run-aggregation dispatch. This is why the context is
/// `Clone` rather than `Copy`: it carries the pending property sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropsContext {
    /// Clustering order of the `triples(s, p, o)` table, when one is
    /// loaded.
    pub triple_order: Option<SortOrder>,
    /// Properties with pending (unmerged) write-store *inserts*. A base
    /// scan such an insert could reach unions an *unsorted* tail of
    /// pending rows behind the sorted read-store rows, so that scan must
    /// not claim any order until a merge rebuilds the sorted tables.
    /// Deletes alone do not appear here: tombstone filtering preserves
    /// order.
    pub pending_insert_props: BTreeSet<Id>,
    /// Properties with pending (unmerged) *tombstones*. Purely
    /// informational for [`Plan::explain_annotated`] — affected scans
    /// still execute the write-store union (filter) path, which EXPLAIN
    /// must show, but hiding rows from a sorted stream preserves every
    /// order claim, so [`fn@derive`] ignores this set.
    pub pending_tombstone_props: BTreeSet<Id>,
}

impl PropsContext {
    /// A context for a triples table clustered by `order`.
    pub fn with_order(order: SortOrder) -> Self {
        Self {
            triple_order: Some(order),
            ..Self::default()
        }
    }

    /// Adds properties with pending write-store inserts.
    pub fn with_pending_inserts(mut self, props: impl IntoIterator<Item = Id>) -> Self {
        self.pending_insert_props.extend(props);
        self
    }

    /// Adds properties with pending write-store tombstones.
    pub fn with_pending_tombstones(mut self, props: impl IntoIterator<Item = Id>) -> Self {
        self.pending_tombstone_props.extend(props);
        self
    }

    /// Whether any write-store insert is pending at all.
    pub fn any_pending_inserts(&self) -> bool {
        !self.pending_insert_props.is_empty()
    }

    /// Whether a pending insert can reach a triples scan bound (or not)
    /// to property `p` — if so, the scan's unioned tail destroys its
    /// order claim.
    pub fn inserts_reach_triple_scan(&self, p: Option<Id>) -> bool {
        match p {
            Some(v) => self.pending_insert_props.contains(&v),
            None => self.any_pending_inserts(),
        }
    }

    /// Whether a pending insert can reach property `p`'s table scan.
    pub fn inserts_reach_property_scan(&self, p: Id) -> bool {
        self.pending_insert_props.contains(&p)
    }

    /// Whether a pending tombstone can reach a triples scan bound (or
    /// not) to property `p` — the scan then runs the (order-preserving)
    /// tombstone filter, which EXPLAIN renders.
    pub fn tombstones_reach_triple_scan(&self, p: Option<Id>) -> bool {
        match p {
            Some(v) => self.pending_tombstone_props.contains(&v),
            None => !self.pending_tombstone_props.is_empty(),
        }
    }

    /// Whether a pending tombstone can reach property `p`'s table scan.
    pub fn tombstones_reach_property_scan(&self, p: Id) -> bool {
        self.pending_tombstone_props.contains(&p)
    }
}

/// Physical properties of one plan node's output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhysProps {
    /// When `Some(key)`, the output rows are non-decreasing under
    /// lexicographic comparison of the listed output columns (leading
    /// column first). `None` claims nothing.
    pub sorted_by: Option<Vec<usize>>,
    /// Whether no two output rows are equal on *all* columns.
    pub distinct: bool,
}

impl PhysProps {
    /// Properties claiming nothing (the safe bottom element).
    pub fn unordered() -> Self {
        Self::default()
    }

    /// Whether `col` is globally non-decreasing, i.e. the leading column
    /// of the derived sort key — the requirement for a merge join on
    /// `col`.
    pub fn sorted_on(&self, col: usize) -> bool {
        self.sorted_by
            .as_ref()
            .is_some_and(|k| k.first() == Some(&col))
    }

    /// Whether the sort key starts with exactly `keys` (in order) — the
    /// requirement for run-based aggregation grouped by `keys`.
    pub fn sorted_by_prefix(&self, keys: &[usize]) -> bool {
        self.sorted_by
            .as_ref()
            .is_some_and(|k| k.len() >= keys.len() && k[..keys.len()] == *keys)
    }

    /// Whether the sort key covers every column of an `arity`-wide
    /// relation — the requirement for run-based duplicate elimination
    /// (equal rows are then adjacent).
    pub fn covers_all_columns(&self, arity: usize) -> bool {
        self.sorted_by
            .as_ref()
            .is_some_and(|k| (0..arity).all(|c| k.contains(&c)))
    }
}

/// Derives the physical properties of `plan`'s output under `ctx`.
///
/// The rules mirror the column engine's operators exactly:
///
/// * scans emit rows in clustering order (bound columns are constant and
///   may appear anywhere in the key, so they are listed last),
/// * selections and filters preserve order (ascending selection vectors),
/// * projection keeps the longest key prefix that survives the column
///   list,
/// * a join is order-preserving on the left key only when the executor
///   will merge-join it (both sides sorted on their join columns) —
///   hash joins destroy order,
/// * group-count emits key-sorted, key-distinct rows on every path,
/// * multi-input unions destroy order (concatenation),
/// * distinct preserves order and guarantees distinctness.
pub fn derive(plan: &Plan, ctx: &PropsContext) -> PhysProps {
    match plan {
        Plan::ScanTriples { s, p, o } => {
            // Pending write-store inserts append an unsorted tail to every
            // base scan they can reach: the derivation must stop claiming
            // order there or the executor would merge-join rows that are
            // not merge-joinable. Scans bound to an untouched property are
            // unaffected and keep their claims.
            if ctx.inserts_reach_triple_scan(*p) {
                return PhysProps::unordered();
            }
            let Some(order) = ctx.triple_order else {
                return PhysProps::unordered();
            };
            let bound = [s.is_some(), p.is_some(), o.is_some()];
            // Rows come out in clustering order. A bound column is
            // constant, so it can be dropped from its key position and
            // appended at the end without breaking lexicographic order.
            let mut key: Vec<usize> = order
                .permutation()
                .iter()
                .copied()
                .filter(|&c| !bound[c])
                .collect();
            key.extend((0..3).filter(|&c| bound[c]));
            PhysProps {
                sorted_by: Some(key),
                distinct: false,
            }
        }
        Plan::ScanProperty {
            property,
            s,
            o,
            emit_property,
        } => {
            if ctx.inserts_reach_property_scan(*property) {
                return PhysProps::unordered();
            }
            // Property tables are sorted by (subject, object); the
            // re-materialized property column (if any) is constant.
            let o_pos = if *emit_property { 2 } else { 1 };
            let mut key = Vec::new();
            if s.is_none() {
                key.push(0);
            }
            if o.is_none() {
                key.push(o_pos);
            }
            if *emit_property {
                key.push(1);
            }
            if s.is_some() {
                key.push(0);
            }
            if o.is_some() {
                key.push(o_pos);
            }
            PhysProps {
                sorted_by: Some(key),
                distinct: false,
            }
        }
        Plan::Select { input, .. }
        | Plan::FilterIn { input, .. }
        | Plan::HavingCountGt { input, .. } => derive(input, ctx),
        Plan::Distinct { input } => PhysProps {
            sorted_by: derive(input, ctx).sorted_by,
            distinct: true,
        },
        Plan::Project { input, cols } => {
            let ip = derive(input, ctx);
            let sorted_by = ip.sorted_by.and_then(|key| {
                // The output stays sorted by the longest key prefix whose
                // columns all survive the projection.
                let mut out = Vec::new();
                for k in key {
                    match cols.iter().position(|&c| c == k) {
                        Some(pos) => out.push(pos),
                        None => break,
                    }
                }
                (!out.is_empty()).then_some(out)
            });
            // Dropping columns can merge previously distinct rows.
            let distinct = ip.distinct && (0..input.arity()).all(|c| cols.contains(&c));
            PhysProps {
                sorted_by,
                distinct,
            }
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let lp = derive(left, ctx);
            let rp = derive(right, ctx);
            // Distinct inputs produce distinct (left row ++ right row)
            // concatenations: equal outputs would need equal rows on both
            // sides, which distinctness rules out.
            let distinct = lp.distinct && rp.distinct;
            if lp.sorted_on(*left_col) && rp.sorted_on(*right_col) {
                // Merge join: the left selection vector is non-decreasing,
                // so every left-side ordering survives.
                PhysProps {
                    sorted_by: lp.sorted_by,
                    distinct,
                }
            } else {
                PhysProps {
                    sorted_by: None,
                    distinct,
                }
            }
        }
        Plan::GroupCount { keys, .. } => {
            // Every group-count path (hash + sort, and the run-based
            // sorted kernels) emits key-sorted rows with distinct keys;
            // the trailing count column never breaks ties because there
            // are none.
            PhysProps {
                sorted_by: Some((0..=keys.len()).collect()),
                distinct: true,
            }
        }
        Plan::UnionAll { inputs } => {
            if inputs.len() == 1 {
                derive(&inputs[0], ctx)
            } else {
                // Concatenation destroys order and can duplicate rows.
                PhysProps::unordered()
            }
        }
    }
}

impl Plan {
    /// Renders the EXPLAIN tree with the [`PhysProps`] annotation
    /// ([`fn@derive`]d under `ctx`) on every node — the auditable form of
    /// operator selection: a join whose both inputs print `sorted_by=[0,
    /// ...]` on the join columns will run as a merge join, a group-count
    /// over input sorted by exactly its keys will aggregate runs, and so
    /// on.
    ///
    /// While the write store is non-empty, each base scan the pending
    /// state can *reach* (per the context's pending property sets)
    /// additionally prints the write-store union branch it executes — the
    /// unsorted tail of pending inserts and/or the tombstone filter.
    /// Scans over untouched properties print no branch: they run the
    /// plain read-store path. Only pending *inserts* force an affected
    /// scan's own annotation down to `[unsorted]` until a merge; a pure
    /// tombstone filter preserves order, and the rendering reflects that.
    pub fn explain_annotated(&self, ctx: &PropsContext) -> String {
        let mut out = String::new();
        annotate_into(self, ctx, &mut out, 0);
        out
    }
}

fn annotate_into(plan: &Plan, ctx: &PropsContext, out: &mut String, depth: usize) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    let props = derive(plan, ctx);
    let order = match &props.sorted_by {
        Some(key) => format!("sorted_by={key:?}"),
        None => "unsorted".to_string(),
    };
    let distinct = if props.distinct { ", distinct" } else { "" };
    let _ = writeln!(out, "{pad}{} [{order}{distinct}]", plan.node_label());
    match plan {
        Plan::ScanTriples { p, .. } => {
            if ctx.inserts_reach_triple_scan(*p) {
                let _ = writeln!(out, "{pad}  ∪ WriteStoreScan(pending delta) [unsorted]");
            } else if ctx.tombstones_reach_triple_scan(*p) {
                let _ = writeln!(out, "{pad}  ∪ WriteStoreScan(tombstone filter) [{order}]");
            }
        }
        Plan::ScanProperty { property, .. } => {
            if ctx.inserts_reach_property_scan(*property) {
                let _ = writeln!(out, "{pad}  ∪ WriteStoreScan(pending delta) [unsorted]");
            } else if ctx.tombstones_reach_property_scan(*property) {
                let _ = writeln!(out, "{pad}  ∪ WriteStoreScan(tombstone filter) [{order}]");
            }
        }
        Plan::Select { input, .. }
        | Plan::FilterIn { input, .. }
        | Plan::Project { input, .. }
        | Plan::GroupCount { input, .. }
        | Plan::HavingCountGt { input, .. }
        | Plan::Distinct { input } => annotate_into(input, ctx, out, depth + 1),
        Plan::Join { left, right, .. } => {
            annotate_into(left, ctx, out, depth + 1);
            annotate_into(right, ctx, out, depth + 1);
        }
        Plan::UnionAll { inputs } => {
            if inputs.len() <= 4 {
                for i in inputs {
                    annotate_into(i, ctx, out, depth + 1);
                }
            } else {
                annotate_into(&inputs[0], ctx, out, depth + 1);
                let _ = writeln!(
                    out,
                    "{}... {} more property-table scans ...",
                    "  ".repeat(depth + 1),
                    inputs.len() - 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{group_count, join, project, scan_all, scan_p, scan_po};

    fn pso() -> PropsContext {
        PropsContext::with_order(SortOrder::Pso)
    }

    #[test]
    fn scan_orders_follow_clustering() {
        let p = derive(&scan_all(), &pso());
        assert_eq!(p.sorted_by, Some(vec![1, 0, 2]));
        assert!(!p.distinct);
        let spo = derive(&scan_all(), &PropsContext::with_order(SortOrder::Spo));
        assert_eq!(spo.sorted_by, Some(vec![0, 1, 2]));
        // No order known without a clustering context.
        assert_eq!(
            derive(&scan_all(), &PropsContext::default()).sorted_by,
            None
        );
    }

    #[test]
    fn bound_scan_columns_move_to_the_key_tail() {
        // p bound under PSO: rows sorted by (s, o), p constant.
        let p = derive(&scan_p(7), &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 2, 1]));
        assert!(p.sorted_on(0));
        // p and o bound: only s varies.
        let po = derive(&scan_po(7, 9), &pso());
        assert_eq!(po.sorted_by, Some(vec![0, 1, 2]));
    }

    #[test]
    fn property_scans_are_subject_sorted() {
        let scan = Plan::ScanProperty {
            property: 3,
            s: None,
            o: None,
            emit_property: false,
        };
        assert_eq!(derive(&scan, &pso()).sorted_by, Some(vec![0, 1]));
        let emit = Plan::ScanProperty {
            property: 3,
            s: None,
            o: None,
            emit_property: true,
        };
        assert_eq!(derive(&emit, &pso()).sorted_by, Some(vec![0, 2, 1]));
        let bound_o = Plan::ScanProperty {
            property: 3,
            s: None,
            o: Some(5),
            emit_property: false,
        };
        assert_eq!(derive(&bound_o, &pso()).sorted_by, Some(vec![0, 1]));
    }

    #[test]
    fn projection_keeps_surviving_key_prefix() {
        // scan_p under PSO: sorted (s, o, p).
        let keep_s = project(scan_p(7), vec![0]);
        assert_eq!(derive(&keep_s, &pso()).sorted_by, Some(vec![0]));
        // Dropping the leading key column loses the order entirely.
        let keep_o = project(scan_p(7), vec![2]);
        assert_eq!(derive(&keep_o, &pso()).sorted_by, None);
        // Reordering maps key positions through the column list.
        let swap = project(scan_p(7), vec![2, 0]);
        assert_eq!(derive(&swap, &pso()).sorted_by, Some(vec![1, 0]));
    }

    #[test]
    fn merge_joins_preserve_left_order_hash_joins_do_not() {
        let sorted = Plan::ScanProperty {
            property: 1,
            s: None,
            o: None,
            emit_property: false,
        };
        let merged = join(sorted.clone(), sorted.clone(), 0, 0);
        let p = derive(&merged, &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 1]));
        // Joining on the object column (not leading) falls back to hash.
        let hashed = join(sorted.clone(), sorted, 1, 1);
        assert_eq!(derive(&hashed, &pso()).sorted_by, None);
    }

    #[test]
    fn group_count_is_key_sorted_and_distinct() {
        let g = group_count(scan_all(), vec![2, 1]);
        let p = derive(&g, &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 1, 2]));
        assert!(p.distinct);
        assert!(p.sorted_by_prefix(&[0]));
        assert!(p.sorted_by_prefix(&[0, 1]));
        assert!(p.covers_all_columns(3));
    }

    #[test]
    fn unions_destroy_order_unless_singleton() {
        let scan = Plan::ScanProperty {
            property: 1,
            s: None,
            o: None,
            emit_property: false,
        };
        let single = Plan::UnionAll {
            inputs: vec![scan.clone()],
        };
        assert_eq!(derive(&single, &pso()).sorted_by, Some(vec![0, 1]));
        let multi = Plan::UnionAll {
            inputs: vec![scan.clone(), scan],
        };
        assert_eq!(derive(&multi, &pso()), PhysProps::unordered());
    }

    #[test]
    fn distinct_sets_the_flag_and_keeps_order() {
        let d = Plan::Distinct {
            input: Box::new(scan_p(7)),
        };
        let p = derive(&d, &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 2, 1]));
        assert!(p.distinct);
        // Projecting away a column forfeits distinctness...
        let narrowed = project(d.clone(), vec![0]);
        assert!(!derive(&narrowed, &pso()).distinct);
        // ...but a permutation keeps it.
        let permuted = project(d, vec![2, 0, 1]);
        assert!(derive(&permuted, &pso()).distinct);
    }

    #[test]
    fn pending_inserts_downgrade_only_reachable_scans() {
        let ctx = pso().with_pending_inserts([3]);
        // A property-unbound triples scan can see any pending insert.
        assert_eq!(derive(&scan_all(), &ctx), PhysProps::unordered());
        // A triples scan bound to the pending property is reachable...
        assert_eq!(derive(&scan_p(3), &ctx), PhysProps::unordered());
        // ...but one bound to an untouched property keeps its claims.
        assert_eq!(derive(&scan_p(7), &ctx).sorted_by, Some(vec![0, 2, 1]));
        let vp = |p: u64| Plan::ScanProperty {
            property: p,
            s: None,
            o: None,
            emit_property: false,
        };
        assert_eq!(derive(&vp(3), &ctx), PhysProps::unordered());
        assert_eq!(derive(&vp(4), &ctx).sorted_by, Some(vec![0, 1]));
        // Derived (not storage-inherited) orders survive: group-count
        // output is key-sorted regardless of scan order.
        let g = group_count(scan_all(), vec![1]);
        assert_eq!(derive(&g, &ctx).sorted_by, Some(vec![0, 1]));
    }

    #[test]
    fn tombstones_never_downgrade_order_claims() {
        let ctx = pso().with_pending_tombstones([3]);
        assert_eq!(derive(&scan_all(), &ctx).sorted_by, Some(vec![1, 0, 2]));
        assert_eq!(derive(&scan_p(3), &ctx).sorted_by, Some(vec![0, 2, 1]));
        assert!(ctx.tombstones_reach_triple_scan(Some(3)));
        assert!(!ctx.tombstones_reach_triple_scan(Some(4)));
        assert!(ctx.tombstones_reach_triple_scan(None));
    }

    #[test]
    fn explain_annotated_prints_props_per_node() {
        let p = join(scan_p(7), scan_p(8), 0, 0);
        let text = p.explain_annotated(&pso());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "Join(left.col0 = right.col0) [sorted_by=[0, 2, 1]]"
        );
        assert!(lines[1].contains("ScanTriples(s=?, p=7, o=?) [sorted_by=[0, 2, 1]]"));
        assert!(!text.contains("WriteStoreScan"), "no delta, no union node");
    }

    #[test]
    fn explain_annotated_renders_write_store_union_per_property() {
        let p = join(scan_p(7), scan_p(8), 0, 0);
        // Both scans' properties pending: both union, the join hashes.
        let text = p.explain_annotated(&pso().with_pending_inserts([7, 8]));
        assert!(text.contains("Join(left.col0 = right.col0) [unsorted]"));
        assert!(text.contains("∪ WriteStoreScan(pending delta) [unsorted]"));
        assert_eq!(text.matches("WriteStoreScan").count(), 2);

        // Only property 7 pending: scan 8 keeps its claim and prints no
        // union branch; the join still cannot merge (left side unsorted).
        let partial = p.explain_annotated(&pso().with_pending_inserts([7]));
        assert_eq!(partial.matches("WriteStoreScan").count(), 1, "{partial}");
        assert!(partial.contains("ScanTriples(s=?, p=8, o=?) [sorted_by="));

        // A pending insert for an unrelated property leaves the whole
        // tree untouched: merge join survives, no union branch prints.
        let unrelated = p.explain_annotated(&pso().with_pending_inserts([9]));
        assert!(!unrelated.contains("WriteStoreScan"), "{unrelated}");
        assert!(
            unrelated.contains("Join(left.col0 = right.col0) [sorted_by="),
            "{unrelated}"
        );
    }

    #[test]
    fn explain_annotated_renders_tombstone_filter_without_downgrade() {
        let p = join(scan_p(7), scan_p(8), 0, 0);
        let text = p.explain_annotated(&pso().with_pending_tombstones([7, 8]));
        // Tombstones alone preserve order: the join still merge-joins...
        assert!(
            text.contains("Join(left.col0 = right.col0) [sorted_by="),
            "{text}"
        );
        // ...but EXPLAIN still shows that every affected scan runs the
        // filter — and only the affected ones.
        assert_eq!(text.matches("WriteStoreScan(tombstone filter)").count(), 2);
        let partial = p.explain_annotated(&pso().with_pending_tombstones([8]));
        assert_eq!(
            partial.matches("WriteStoreScan(tombstone filter)").count(),
            1,
            "{partial}"
        );
    }

    #[test]
    fn explain_annotated_summarizes_wide_unions() {
        let u = Plan::UnionAll {
            inputs: (0..50)
                .map(|p| Plan::ScanProperty {
                    property: p,
                    s: None,
                    o: None,
                    emit_property: true,
                })
                .collect(),
        };
        let text = u.explain_annotated(&pso());
        assert!(text.contains("UnionAll(50 inputs) [unsorted]"));
        assert!(text.contains("49 more property-table scans"));
        assert!(text.lines().count() < 10);
    }

    #[test]
    fn helper_predicates() {
        let p = PhysProps {
            sorted_by: Some(vec![1, 0]),
            distinct: false,
        };
        assert!(p.sorted_on(1));
        assert!(!p.sorted_on(0));
        assert!(p.sorted_by_prefix(&[1]));
        assert!(p.sorted_by_prefix(&[1, 0]));
        assert!(!p.sorted_by_prefix(&[0]));
        assert!(p.covers_all_columns(2));
        assert!(!p.covers_all_columns(3));
        assert!(!PhysProps::unordered().sorted_on(0));
    }
}
