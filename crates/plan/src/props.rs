//! Physical properties: the ordering knowledge a plan's output carries.
//!
//! The paper's performance argument for vertically-partitioned column
//! layouts rests on per-property `(s, o)` tables being *sorted by
//! subject*, enabling "fast (linear) merge joins" — but an executor can
//! only exploit that if sortedness is threaded from the storage layout
//! through every operator of the plan. [`fn@derive`] does exactly that: given
//! a plan and a [`PropsContext`] describing the physical layout (the
//! triples table's clustering order), it computes for every node whether
//! the output rows are sorted, and by which columns.
//!
//! The column engine consults this derivation at dispatch time: a
//! [`Plan::Join`] whose inputs are both sorted on their join columns runs
//! as a merge join, a [`Plan::GroupCount`] over key-sorted input
//! aggregates runs instead of hashing, and a [`Plan::Distinct`] over fully
//! sorted (or already-distinct) input degenerates to a linear scan (or a
//! no-op). Because both the dispatch decision and the claimed output
//! order come from this one function, the derivation stays consistent
//! with what the executor actually produces — a property pinned by the
//! randomized sortedness tests in `tests/physprops.rs`.

use std::collections::BTreeSet;

use swans_rdf::{Id, SortOrder};

use crate::algebra::Plan;

/// The physical layout context a derivation runs against.
///
/// `Default` (no triples clustering order known) is the conservative
/// setting: triples scans claim no order, property-table scans — whose
/// `(subject, object)` sort is inherent to the vertically-partitioned
/// layout — still do.
///
/// Pending write-store state is tracked **per property**: a pending
/// insert for property X downgrades only the scans X can reach (property
/// X's table, and triples scans whose property bound is X or absent) —
/// scans over untouched properties keep their order claims and their
/// merge-join/run-aggregation dispatch. This is why the context is
/// `Clone` rather than `Copy`: it carries the pending property sets.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropsContext {
    /// Clustering order of the `triples(s, p, o)` table, when one is
    /// loaded.
    pub triple_order: Option<SortOrder>,
    /// Properties with pending (unmerged) write-store *inserts*. A base
    /// scan such an insert could reach unions an *unsorted* tail of
    /// pending rows behind the sorted read-store rows, so that scan must
    /// not claim any order until a merge rebuilds the sorted tables.
    /// Deletes alone do not appear here: tombstone filtering preserves
    /// order.
    pub pending_insert_props: BTreeSet<Id>,
    /// Properties with pending (unmerged) *tombstones*. Purely
    /// informational for [`Plan::explain_annotated`] — affected scans
    /// still execute the write-store union (filter) path, which EXPLAIN
    /// must show, but hiding rows from a sorted stream preserves every
    /// order claim, so [`fn@derive`] ignores this set (it *does* disable
    /// the run-encoding claim: the tombstone filter path materializes
    /// flat).
    pub pending_tombstone_props: BTreeSet<Id>,
    /// Properties whose vertically-partitioned subject column is stored
    /// run-length encoded — their unbounded scans emit the subject as a
    /// run-encoded column (compressed execution) instead of flat values.
    /// Empty when the engine's run-kernel layer is disabled.
    pub rle_props: BTreeSet<Id>,
    /// Whether the triples table's leading clustering column is stored
    /// run-length encoded (e.g. the property column under PSO).
    pub triple_lead_rle: bool,
    /// Per-table statistics the engine collected at load/merge time —
    /// the input of the cost model ([`crate::cost`](mod@crate::cost)) and of the
    /// `est_rows` EXPLAIN annotation. `None` (the default) when the
    /// engine has not collected any: derivation ignores it, the cost
    /// model falls back to fixed defaults, and EXPLAIN prints no
    /// estimates. Shared by `Arc` because every snapshot fork republishes
    /// the same catalog until the next merge recollects.
    pub stats: Option<std::sync::Arc<crate::stats::StatsCatalog>>,
}

impl PropsContext {
    /// A context for a triples table clustered by `order`.
    pub fn with_order(order: SortOrder) -> Self {
        Self {
            triple_order: Some(order),
            ..Self::default()
        }
    }

    /// Adds properties with pending write-store inserts.
    pub fn with_pending_inserts(mut self, props: impl IntoIterator<Item = Id>) -> Self {
        self.pending_insert_props.extend(props);
        self
    }

    /// Adds properties with pending write-store tombstones.
    pub fn with_pending_tombstones(mut self, props: impl IntoIterator<Item = Id>) -> Self {
        self.pending_tombstone_props.extend(props);
        self
    }

    /// Adds properties whose subject column is stored run-length encoded.
    pub fn with_rle_props(mut self, props: impl IntoIterator<Item = Id>) -> Self {
        self.rle_props.extend(props);
        self
    }

    /// Marks the triples table's leading clustering column as stored
    /// run-length encoded.
    pub fn with_triple_lead_rle(mut self) -> Self {
        self.triple_lead_rle = true;
        self
    }

    /// Publishes a statistics catalog for the cost model.
    pub fn with_stats(mut self, stats: crate::stats::StatsCatalog) -> Self {
        self.stats = Some(std::sync::Arc::new(stats));
        self
    }

    /// Whether any write-store insert is pending at all.
    pub fn any_pending_inserts(&self) -> bool {
        !self.pending_insert_props.is_empty()
    }

    /// Whether a pending insert can reach a triples scan bound (or not)
    /// to property `p` — if so, the scan's unioned tail destroys its
    /// order claim.
    pub fn inserts_reach_triple_scan(&self, p: Option<Id>) -> bool {
        match p {
            Some(v) => self.pending_insert_props.contains(&v),
            None => self.any_pending_inserts(),
        }
    }

    /// Whether a pending insert can reach property `p`'s table scan.
    pub fn inserts_reach_property_scan(&self, p: Id) -> bool {
        self.pending_insert_props.contains(&p)
    }

    /// Whether a pending tombstone can reach a triples scan bound (or
    /// not) to property `p` — the scan then runs the (order-preserving)
    /// tombstone filter, which EXPLAIN renders.
    pub fn tombstones_reach_triple_scan(&self, p: Option<Id>) -> bool {
        match p {
            Some(v) => self.pending_tombstone_props.contains(&v),
            None => !self.pending_tombstone_props.is_empty(),
        }
    }

    /// Whether a pending tombstone can reach property `p`'s table scan.
    pub fn tombstones_reach_property_scan(&self, p: Id) -> bool {
        self.pending_tombstone_props.contains(&p)
    }
}

/// Physical properties of one plan node's output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhysProps {
    /// When `Some(key)`, the output rows are non-decreasing under
    /// lexicographic comparison of the listed output columns (leading
    /// column first). `None` claims nothing.
    pub sorted_by: Option<Vec<usize>>,
    /// Whether no two output rows are equal on *all* columns.
    pub distinct: bool,
    /// Output columns that **may** flow through the operator tree
    /// run-length encoded (the compressed-execution currency): the
    /// executor dispatches run-native kernels on them — run-aware
    /// selection, run×block merge joins, aggregation straight off run
    /// lengths — and expands them to flat values only at the result
    /// boundary or for an operator that genuinely needs flat input. The
    /// claim is an upper bound: it survives exactly the operators whose
    /// selection vectors are monotone (selections, filters, merge-join
    /// left sides, distinct) — hash joins and unions materialize flat and
    /// drop it — but the executor additionally applies run-length cost
    /// gates (output-dense work on short-run columns takes the flat
    /// path), so a claimed column can still materialize flat. The
    /// invariant the executor upholds is the converse: a run-encoded
    /// column is only ever *produced* at a claimed position. (A plain
    /// list, not an `Option`: projection can duplicate the one source
    /// run column into several output positions.)
    pub run_encoded: Vec<usize>,
}

impl PhysProps {
    /// Properties claiming nothing (the safe bottom element).
    pub fn unordered() -> Self {
        Self::default()
    }

    /// Whether `col` is globally non-decreasing, i.e. the leading column
    /// of the derived sort key — the requirement for a merge join on
    /// `col`.
    pub fn sorted_on(&self, col: usize) -> bool {
        self.sorted_by
            .as_ref()
            .is_some_and(|k| k.first() == Some(&col))
    }

    /// Whether the sort key starts with exactly `keys` (in order) — the
    /// requirement for run-based aggregation grouped by `keys`.
    pub fn sorted_by_prefix(&self, keys: &[usize]) -> bool {
        self.sorted_by
            .as_ref()
            .is_some_and(|k| k.len() >= keys.len() && k[..keys.len()] == *keys)
    }

    /// Whether the sort key covers every column of an `arity`-wide
    /// relation — the requirement for run-based duplicate elimination
    /// (equal rows are then adjacent).
    pub fn covers_all_columns(&self, arity: usize) -> bool {
        self.sorted_by
            .as_ref()
            .is_some_and(|k| (0..arity).all(|c| k.contains(&c)))
    }
}

/// Derives the physical properties of `plan`'s output under `ctx`.
///
/// The rules mirror the column engine's operators exactly:
///
/// * scans emit rows in clustering order (bound columns are constant and
///   may appear anywhere in the key, so they are listed last),
/// * selections and filters preserve order (ascending selection vectors),
/// * projection keeps the longest key prefix that survives the column
///   list,
/// * a join is order-preserving on the left key only when the executor
///   will merge-join it (both sides sorted on their join columns) —
///   hash joins destroy order,
/// * group-count emits key-sorted, key-distinct rows on every path,
/// * multi-input unions destroy order (concatenation),
/// * distinct preserves order and guarantees distinctness,
/// * run-encoding ([`PhysProps::run_encoded`]) originates at scans of
///   RLE-stored lead columns (per the context's [`PropsContext::rle_props`]
///   / [`PropsContext::triple_lead_rle`]) and survives exactly the
///   operators with monotone selection vectors — selections, filters,
///   projections of the column, merge-join left sides and distinct; a
///   pending write-store delta (inserts *or* tombstones) on a reachable
///   property forces the scan flat.
pub fn derive(plan: &Plan, ctx: &PropsContext) -> PhysProps {
    match plan {
        Plan::ScanTriples { s, p, o } => {
            // Pending write-store inserts append an unsorted tail to every
            // base scan they can reach: the derivation must stop claiming
            // order there or the executor would merge-join rows that are
            // not merge-joinable. Scans bound to an untouched property are
            // unaffected and keep their claims.
            if ctx.inserts_reach_triple_scan(*p) {
                return PhysProps::unordered();
            }
            let Some(order) = ctx.triple_order else {
                return PhysProps::unordered();
            };
            let bound = [s.is_some(), p.is_some(), o.is_some()];
            // Rows come out in clustering order. A bound column is
            // constant, so it can be dropped from its key position and
            // appended at the end without breaking lexicographic order.
            let mut key: Vec<usize> = order
                .permutation()
                .iter()
                .copied()
                .filter(|&c| !bound[c])
                .collect();
            key.extend((0..3).filter(|&c| bound[c]));
            // The leading clustering column flows out run-encoded when it
            // is stored RLE, the scan is range-resolved (no bound column
            // at all — with the lead unbound, any bound column becomes a
            // residual filter, whose selection collapses runs toward
            // length one and therefore materializes flat), and no pending
            // delta forces the flat union path.
            let lead = order.permutation()[0];
            let run_encoded = if ctx.triple_lead_rle
                && bound.iter().all(|b| !b)
                && !ctx.tombstones_reach_triple_scan(*p)
            {
                vec![lead]
            } else {
                Vec::new()
            };
            PhysProps {
                sorted_by: Some(key),
                distinct: false,
                run_encoded,
            }
        }
        Plan::ScanProperty {
            property,
            s,
            o,
            emit_property,
        } => {
            if ctx.inserts_reach_property_scan(*property) {
                return PhysProps::unordered();
            }
            // Property tables are sorted by (subject, object); the
            // re-materialized property column (if any) is constant.
            let o_pos = if *emit_property { 2 } else { 1 };
            let mut key = Vec::new();
            if s.is_none() {
                key.push(0);
            }
            if o.is_none() {
                key.push(o_pos);
            }
            if *emit_property {
                key.push(1);
            }
            if s.is_some() {
                key.push(0);
            }
            if o.is_some() {
                key.push(o_pos);
            }
            // Run-encoded only for range-resolved scans: an object bound
            // with the subject unbound is a residual filter, which
            // materializes flat (see the triples-scan rule).
            let run_encoded = if s.is_none()
                && o.is_none()
                && ctx.rle_props.contains(property)
                && !ctx.tombstones_reach_property_scan(*property)
            {
                vec![0]
            } else {
                Vec::new()
            };
            PhysProps {
                sorted_by: Some(key),
                distinct: false,
                run_encoded,
            }
        }
        Plan::Select { input, .. }
        | Plan::FilterIn { input, .. }
        | Plan::HavingCountGt { input, .. } => derive(input, ctx),
        Plan::Distinct { input } => {
            let ip = derive(input, ctx);
            PhysProps {
                sorted_by: ip.sorted_by,
                distinct: true,
                run_encoded: ip.run_encoded,
            }
        }
        Plan::Project { input, cols } => {
            let ip = derive(input, ctx);
            let sorted_by = ip.sorted_by.and_then(|key| {
                // The output stays sorted by the longest key prefix whose
                // columns all survive the projection.
                let mut out = Vec::new();
                for k in key {
                    match cols.iter().position(|&c| c == k) {
                        Some(pos) => out.push(pos),
                        None => break,
                    }
                }
                (!out.is_empty()).then_some(out)
            });
            // Dropping columns can merge previously distinct rows.
            let distinct = ip.distinct && (0..input.arity()).all(|c| cols.contains(&c));
            // The run column survives at every projected position.
            let run_encoded = cols
                .iter()
                .enumerate()
                .filter(|&(_, c)| ip.run_encoded.contains(c))
                .map(|(i, _)| i)
                .collect();
            PhysProps {
                sorted_by,
                distinct,
                run_encoded,
            }
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let lp = derive(left, ctx);
            let rp = derive(right, ctx);
            // Distinct inputs produce distinct (left row ++ right row)
            // concatenations: equal outputs would need equal rows on both
            // sides, which distinctness rules out.
            let distinct = lp.distinct && rp.distinct;
            if lp.sorted_on(*left_col) && rp.sorted_on(*right_col) {
                // Merge join: the left selection vector is non-decreasing,
                // so every left-side ordering survives — run-encoding of
                // left columns included. The right selection vector is not
                // monotone (it rewinds per matching left row), so right
                // run columns are expanded by the gather.
                PhysProps {
                    sorted_by: lp.sorted_by,
                    distinct,
                    run_encoded: lp.run_encoded,
                }
            } else {
                PhysProps {
                    sorted_by: None,
                    distinct,
                    run_encoded: Vec::new(),
                }
            }
        }
        Plan::LeapfrogJoin { inputs, cols } => {
            let props: Vec<PhysProps> = inputs.iter().map(|i| derive(i, ctx)).collect();
            // As with the binary join: concatenations of distinct rows
            // are distinct.
            let distinct = props.iter().all(|p| p.distinct);
            // The kernel advances the shared key in ascending order, so
            // the output is sorted on the key's position in input 0's
            // schema (offset 0 of the output). It materializes flat on
            // every side — no run claims survive. When any input loses
            // its sort (a pending delta), the executor falls back to the
            // binary hash-join fold, which claims nothing.
            let all_sorted = props.iter().zip(cols).all(|(p, &c)| p.sorted_on(c));
            PhysProps {
                sorted_by: all_sorted.then(|| vec![cols[0]]),
                distinct,
                run_encoded: Vec::new(),
            }
        }
        Plan::GroupCount { keys, .. } => {
            // Every group-count path (hash + sort, and the run-based
            // sorted kernels) emits key-sorted rows with distinct keys;
            // the trailing count column never breaks ties because there
            // are none.
            PhysProps {
                sorted_by: Some((0..=keys.len()).collect()),
                distinct: true,
                run_encoded: Vec::new(),
            }
        }
        Plan::UnionAll { inputs } => {
            if inputs.len() == 1 {
                // A singleton union preserves order and distinctness, but
                // its copy-out still materializes flat values.
                PhysProps {
                    run_encoded: Vec::new(),
                    ..derive(&inputs[0], ctx)
                }
            } else {
                // Concatenation destroys order and can duplicate rows
                // (and materializes flat).
                PhysProps::unordered()
            }
        }
    }
}

impl Plan {
    /// Renders the EXPLAIN tree with the [`PhysProps`] annotation
    /// ([`fn@derive`]d under `ctx`) on every node — the auditable form of
    /// operator selection: a join whose both inputs print `sorted_by=[0,
    /// ...]` on the join columns will run as a merge join, a group-count
    /// over input sorted by exactly its keys will aggregate runs, and so
    /// on.
    ///
    /// While the write store is non-empty, each base scan the pending
    /// state can *reach* (per the context's pending property sets)
    /// additionally prints the write-store union branch it executes — the
    /// unsorted tail of pending inserts and/or the tombstone filter.
    /// Scans over untouched properties print no branch: they run the
    /// plain read-store path. Only pending *inserts* force an affected
    /// scan's own annotation down to `[unsorted]` until a merge; a pure
    /// tombstone filter preserves order, and the rendering reflects that.
    pub fn explain_annotated(&self, ctx: &PropsContext) -> String {
        let mut out = String::new();
        annotate_into(self, ctx, &mut out, 0, &mut |_| None);
        out
    }

    /// [`Plan::explain_annotated`] plus a measured-cardinality column:
    /// every rendered node additionally calls `actual` and prints the
    /// returned row count as `actual_rows=N` next to the cost model's
    /// `est_rows` — the EXPLAIN ANALYZE form, letting estimation error
    /// (q-error) be read off per node. Nodes the closure declines
    /// (`None`) print no measurement; the rendering is otherwise
    /// identical to [`Plan::explain_annotated`].
    pub fn explain_compared(
        &self,
        ctx: &PropsContext,
        actual: &mut dyn FnMut(&Plan) -> Option<u64>,
    ) -> String {
        let mut out = String::new();
        annotate_into(self, ctx, &mut out, 0, actual);
        out
    }
}

fn annotate_into(
    plan: &Plan,
    ctx: &PropsContext,
    out: &mut String,
    depth: usize,
    actual: &mut dyn FnMut(&Plan) -> Option<u64>,
) {
    use std::fmt::Write;
    let pad = "  ".repeat(depth);
    let props = derive(plan, ctx);
    let order = match &props.sorted_by {
        Some(key) => format!("sorted_by={key:?}"),
        None => "unsorted".to_string(),
    };
    let distinct = if props.distinct { ", distinct" } else { "" };
    let runs = if props.run_encoded.is_empty() {
        String::new()
    } else {
        format!(
            ", runs@{}",
            props
                .run_encoded
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    };
    // Cardinality estimates render only when the context carries a
    // statistics catalog, so statistics-free EXPLAIN output is unchanged.
    let est = if ctx.stats.is_some() {
        format!(
            ", est_rows={}",
            crate::cost::estimate_rows(plan, ctx).round()
        )
    } else {
        String::new()
    };
    let measured = match actual(plan) {
        Some(rows) => format!(", actual_rows={rows}"),
        None => String::new(),
    };
    let _ = writeln!(
        out,
        "{pad}{} [{order}{distinct}{runs}{est}{measured}]",
        plan.node_label()
    );
    match plan {
        Plan::ScanTriples { p, .. } => {
            if ctx.inserts_reach_triple_scan(*p) {
                let _ = writeln!(out, "{pad}  ∪ WriteStoreScan(pending delta) [unsorted]");
            } else if ctx.tombstones_reach_triple_scan(*p) {
                let _ = writeln!(out, "{pad}  ∪ WriteStoreScan(tombstone filter) [{order}]");
            }
        }
        Plan::ScanProperty { property, .. } => {
            if ctx.inserts_reach_property_scan(*property) {
                let _ = writeln!(out, "{pad}  ∪ WriteStoreScan(pending delta) [unsorted]");
            } else if ctx.tombstones_reach_property_scan(*property) {
                let _ = writeln!(out, "{pad}  ∪ WriteStoreScan(tombstone filter) [{order}]");
            }
        }
        Plan::Select { input, .. }
        | Plan::FilterIn { input, .. }
        | Plan::Project { input, .. }
        | Plan::GroupCount { input, .. }
        | Plan::HavingCountGt { input, .. }
        | Plan::Distinct { input } => annotate_into(input, ctx, out, depth + 1, actual),
        Plan::Join { left, right, .. } => {
            annotate_into(left, ctx, out, depth + 1, actual);
            annotate_into(right, ctx, out, depth + 1, actual);
        }
        Plan::LeapfrogJoin { inputs, .. } => {
            for i in inputs {
                annotate_into(i, ctx, out, depth + 1, actual);
            }
        }
        Plan::UnionAll { inputs } => {
            if inputs.len() <= 4 {
                for i in inputs {
                    annotate_into(i, ctx, out, depth + 1, actual);
                }
            } else {
                annotate_into(&inputs[0], ctx, out, depth + 1, actual);
                let _ = writeln!(
                    out,
                    "{}... {} more property-table scans ...",
                    "  ".repeat(depth + 1),
                    inputs.len() - 1
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{group_count, join, project, scan_all, scan_p, scan_po};

    fn pso() -> PropsContext {
        PropsContext::with_order(SortOrder::Pso)
    }

    #[test]
    fn scan_orders_follow_clustering() {
        let p = derive(&scan_all(), &pso());
        assert_eq!(p.sorted_by, Some(vec![1, 0, 2]));
        assert!(!p.distinct);
        let spo = derive(&scan_all(), &PropsContext::with_order(SortOrder::Spo));
        assert_eq!(spo.sorted_by, Some(vec![0, 1, 2]));
        // No order known without a clustering context.
        assert_eq!(
            derive(&scan_all(), &PropsContext::default()).sorted_by,
            None
        );
    }

    #[test]
    fn bound_scan_columns_move_to_the_key_tail() {
        // p bound under PSO: rows sorted by (s, o), p constant.
        let p = derive(&scan_p(7), &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 2, 1]));
        assert!(p.sorted_on(0));
        // p and o bound: only s varies.
        let po = derive(&scan_po(7, 9), &pso());
        assert_eq!(po.sorted_by, Some(vec![0, 1, 2]));
    }

    #[test]
    fn property_scans_are_subject_sorted() {
        let scan = Plan::ScanProperty {
            property: 3,
            s: None,
            o: None,
            emit_property: false,
        };
        assert_eq!(derive(&scan, &pso()).sorted_by, Some(vec![0, 1]));
        let emit = Plan::ScanProperty {
            property: 3,
            s: None,
            o: None,
            emit_property: true,
        };
        assert_eq!(derive(&emit, &pso()).sorted_by, Some(vec![0, 2, 1]));
        let bound_o = Plan::ScanProperty {
            property: 3,
            s: None,
            o: Some(5),
            emit_property: false,
        };
        assert_eq!(derive(&bound_o, &pso()).sorted_by, Some(vec![0, 1]));
    }

    #[test]
    fn projection_keeps_surviving_key_prefix() {
        // scan_p under PSO: sorted (s, o, p).
        let keep_s = project(scan_p(7), vec![0]);
        assert_eq!(derive(&keep_s, &pso()).sorted_by, Some(vec![0]));
        // Dropping the leading key column loses the order entirely.
        let keep_o = project(scan_p(7), vec![2]);
        assert_eq!(derive(&keep_o, &pso()).sorted_by, None);
        // Reordering maps key positions through the column list.
        let swap = project(scan_p(7), vec![2, 0]);
        assert_eq!(derive(&swap, &pso()).sorted_by, Some(vec![1, 0]));
    }

    #[test]
    fn merge_joins_preserve_left_order_hash_joins_do_not() {
        let sorted = Plan::ScanProperty {
            property: 1,
            s: None,
            o: None,
            emit_property: false,
        };
        let merged = join(sorted.clone(), sorted.clone(), 0, 0);
        let p = derive(&merged, &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 1]));
        // Joining on the object column (not leading) falls back to hash.
        let hashed = join(sorted.clone(), sorted, 1, 1);
        assert_eq!(derive(&hashed, &pso()).sorted_by, None);
    }

    #[test]
    fn group_count_is_key_sorted_and_distinct() {
        let g = group_count(scan_all(), vec![2, 1]);
        let p = derive(&g, &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 1, 2]));
        assert!(p.distinct);
        assert!(p.sorted_by_prefix(&[0]));
        assert!(p.sorted_by_prefix(&[0, 1]));
        assert!(p.covers_all_columns(3));
    }

    #[test]
    fn unions_destroy_order_unless_singleton() {
        let scan = Plan::ScanProperty {
            property: 1,
            s: None,
            o: None,
            emit_property: false,
        };
        let single = Plan::UnionAll {
            inputs: vec![scan.clone()],
        };
        assert_eq!(derive(&single, &pso()).sorted_by, Some(vec![0, 1]));
        let multi = Plan::UnionAll {
            inputs: vec![scan.clone(), scan],
        };
        assert_eq!(derive(&multi, &pso()), PhysProps::unordered());
    }

    #[test]
    fn distinct_sets_the_flag_and_keeps_order() {
        let d = Plan::Distinct {
            input: Box::new(scan_p(7)),
        };
        let p = derive(&d, &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 2, 1]));
        assert!(p.distinct);
        // Projecting away a column forfeits distinctness...
        let narrowed = project(d.clone(), vec![0]);
        assert!(!derive(&narrowed, &pso()).distinct);
        // ...but a permutation keeps it.
        let permuted = project(d, vec![2, 0, 1]);
        assert!(derive(&permuted, &pso()).distinct);
    }

    #[test]
    fn pending_inserts_downgrade_only_reachable_scans() {
        let ctx = pso().with_pending_inserts([3]);
        // A property-unbound triples scan can see any pending insert.
        assert_eq!(derive(&scan_all(), &ctx), PhysProps::unordered());
        // A triples scan bound to the pending property is reachable...
        assert_eq!(derive(&scan_p(3), &ctx), PhysProps::unordered());
        // ...but one bound to an untouched property keeps its claims.
        assert_eq!(derive(&scan_p(7), &ctx).sorted_by, Some(vec![0, 2, 1]));
        let vp = |p: u64| Plan::ScanProperty {
            property: p,
            s: None,
            o: None,
            emit_property: false,
        };
        assert_eq!(derive(&vp(3), &ctx), PhysProps::unordered());
        assert_eq!(derive(&vp(4), &ctx).sorted_by, Some(vec![0, 1]));
        // Derived (not storage-inherited) orders survive: group-count
        // output is key-sorted regardless of scan order.
        let g = group_count(scan_all(), vec![1]);
        assert_eq!(derive(&g, &ctx).sorted_by, Some(vec![0, 1]));
    }

    #[test]
    fn tombstones_never_downgrade_order_claims() {
        let ctx = pso().with_pending_tombstones([3]);
        assert_eq!(derive(&scan_all(), &ctx).sorted_by, Some(vec![1, 0, 2]));
        assert_eq!(derive(&scan_p(3), &ctx).sorted_by, Some(vec![0, 2, 1]));
        assert!(ctx.tombstones_reach_triple_scan(Some(3)));
        assert!(!ctx.tombstones_reach_triple_scan(Some(4)));
        assert!(ctx.tombstones_reach_triple_scan(None));
    }

    #[test]
    fn explain_annotated_prints_props_per_node() {
        let p = join(scan_p(7), scan_p(8), 0, 0);
        let text = p.explain_annotated(&pso());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "Join(left.col0 = right.col0) [sorted_by=[0, 2, 1]]"
        );
        assert!(lines[1].contains("ScanTriples(s=?, p=7, o=?) [sorted_by=[0, 2, 1]]"));
        assert!(!text.contains("WriteStoreScan"), "no delta, no union node");
    }

    #[test]
    fn explain_annotated_renders_write_store_union_per_property() {
        let p = join(scan_p(7), scan_p(8), 0, 0);
        // Both scans' properties pending: both union, the join hashes.
        let text = p.explain_annotated(&pso().with_pending_inserts([7, 8]));
        assert!(text.contains("Join(left.col0 = right.col0) [unsorted]"));
        assert!(text.contains("∪ WriteStoreScan(pending delta) [unsorted]"));
        assert_eq!(text.matches("WriteStoreScan").count(), 2);

        // Only property 7 pending: scan 8 keeps its claim and prints no
        // union branch; the join still cannot merge (left side unsorted).
        let partial = p.explain_annotated(&pso().with_pending_inserts([7]));
        assert_eq!(partial.matches("WriteStoreScan").count(), 1, "{partial}");
        assert!(partial.contains("ScanTriples(s=?, p=8, o=?) [sorted_by="));

        // A pending insert for an unrelated property leaves the whole
        // tree untouched: merge join survives, no union branch prints.
        let unrelated = p.explain_annotated(&pso().with_pending_inserts([9]));
        assert!(!unrelated.contains("WriteStoreScan"), "{unrelated}");
        assert!(
            unrelated.contains("Join(left.col0 = right.col0) [sorted_by="),
            "{unrelated}"
        );
    }

    #[test]
    fn explain_annotated_renders_tombstone_filter_without_downgrade() {
        let p = join(scan_p(7), scan_p(8), 0, 0);
        let text = p.explain_annotated(&pso().with_pending_tombstones([7, 8]));
        // Tombstones alone preserve order: the join still merge-joins...
        assert!(
            text.contains("Join(left.col0 = right.col0) [sorted_by="),
            "{text}"
        );
        // ...but EXPLAIN still shows that every affected scan runs the
        // filter — and only the affected ones.
        assert_eq!(text.matches("WriteStoreScan(tombstone filter)").count(), 2);
        let partial = p.explain_annotated(&pso().with_pending_tombstones([8]));
        assert_eq!(
            partial.matches("WriteStoreScan(tombstone filter)").count(),
            1,
            "{partial}"
        );
    }

    #[test]
    fn explain_annotated_summarizes_wide_unions() {
        let u = Plan::UnionAll {
            inputs: (0..50)
                .map(|p| Plan::ScanProperty {
                    property: p,
                    s: None,
                    o: None,
                    emit_property: true,
                })
                .collect(),
        };
        let text = u.explain_annotated(&pso());
        assert!(text.contains("UnionAll(50 inputs) [unsorted]"));
        assert!(text.contains("49 more property-table scans"));
        assert!(text.lines().count() < 10);
    }

    #[test]
    fn run_encoding_originates_at_rle_scans_and_survives_monotone_ops() {
        let ctx = pso().with_rle_props([3]).with_triple_lead_rle();
        // VP subject column: run-encoded when the table is RLE and s is
        // unbound.
        let vp = |p: u64| Plan::ScanProperty {
            property: p,
            s: None,
            o: None,
            emit_property: false,
        };
        assert_eq!(derive(&vp(3), &ctx).run_encoded, vec![0]);
        assert_eq!(
            derive(&vp(4), &ctx).run_encoded,
            Vec::<usize>::new(),
            "not an RLE table"
        );
        let bound_s = Plan::ScanProperty {
            property: 3,
            s: Some(7),
            o: None,
            emit_property: false,
        };
        assert_eq!(
            derive(&bound_s, &ctx).run_encoded,
            Vec::<usize>::new(),
            "bound subject"
        );
        // Triples scan: the PSO lead column p is run-encoded only while
        // unbound.
        assert_eq!(derive(&scan_all(), &ctx).run_encoded, vec![1]);
        assert!(derive(&scan_p(3), &ctx).run_encoded.is_empty());
        // Selections and filters preserve the claim; projection remaps it.
        let filtered = Plan::FilterIn {
            input: Box::new(vp(3)),
            col: 1,
            values: vec![9],
        };
        assert_eq!(derive(&filtered, &ctx).run_encoded, vec![0]);
        let projected = project(vp(3), vec![1, 0]);
        assert_eq!(derive(&projected, &ctx).run_encoded, vec![1]);
        let dropped = project(vp(3), vec![1]);
        assert!(derive(&dropped, &ctx).run_encoded.is_empty());
        // Merge joins keep the left run column; hash joins drop it.
        let merged = join(vp(3), vp(3), 0, 0);
        assert_eq!(derive(&merged, &ctx).run_encoded, vec![0]);
        let hashed = join(vp(3), vp(3), 1, 1);
        assert!(derive(&hashed, &ctx).run_encoded.is_empty());
        // Group-count output and unions are flat.
        assert!(derive(&group_count(vp(3), vec![0]), &ctx)
            .run_encoded
            .is_empty());
        let union = Plan::UnionAll {
            inputs: vec![vp(3)],
        };
        assert!(derive(&union, &ctx).run_encoded.is_empty());
        assert_eq!(derive(&union, &ctx).sorted_by, Some(vec![0, 1]));
        // Pending deltas force the scan flat: inserts drop everything,
        // tombstones drop only the run claim.
        let pending = ctx.clone().with_pending_inserts([3]);
        assert_eq!(derive(&vp(3), &pending), PhysProps::unordered());
        let tomb = ctx.with_pending_tombstones([3]);
        let p = derive(&vp(3), &tomb);
        assert_eq!(p.sorted_by, Some(vec![0, 1]), "tombstones keep order");
        assert!(p.run_encoded.is_empty(), "but the union path is flat");
    }

    #[test]
    fn explain_annotated_renders_run_encoding() {
        let ctx = pso().with_rle_props([3]);
        let scan = Plan::ScanProperty {
            property: 3,
            s: None,
            o: None,
            emit_property: false,
        };
        let text = scan.explain_annotated(&ctx);
        assert!(text.contains("runs@0"), "{text}");
        let plain = scan.explain_annotated(&pso());
        assert!(!plain.contains("runs@"), "{plain}");
    }

    #[test]
    fn helper_predicates() {
        let p = PhysProps {
            sorted_by: Some(vec![1, 0]),
            distinct: false,
            run_encoded: Vec::new(),
        };
        assert!(p.sorted_on(1));
        assert!(!p.sorted_on(0));
        assert!(p.sorted_by_prefix(&[1]));
        assert!(p.sorted_by_prefix(&[1, 0]));
        assert!(!p.sorted_by_prefix(&[0]));
        assert!(p.covers_all_columns(2));
        assert!(!p.covers_all_columns(3));
        assert!(!PhysProps::unordered().sorted_on(0));
    }
}
