//! Physical properties: the ordering knowledge a plan's output carries.
//!
//! The paper's performance argument for vertically-partitioned column
//! layouts rests on per-property `(s, o)` tables being *sorted by
//! subject*, enabling "fast (linear) merge joins" — but an executor can
//! only exploit that if sortedness is threaded from the storage layout
//! through every operator of the plan. [`derive`] does exactly that: given
//! a plan and a [`PropsContext`] describing the physical layout (the
//! triples table's clustering order), it computes for every node whether
//! the output rows are sorted, and by which columns.
//!
//! The column engine consults this derivation at dispatch time: a
//! [`Plan::Join`] whose inputs are both sorted on their join columns runs
//! as a merge join, a [`Plan::GroupCount`] over key-sorted input
//! aggregates runs instead of hashing, and a [`Plan::Distinct`] over fully
//! sorted (or already-distinct) input degenerates to a linear scan (or a
//! no-op). Because both the dispatch decision and the claimed output
//! order come from this one function, the derivation stays consistent
//! with what the executor actually produces — a property pinned by the
//! randomized sortedness tests in `tests/physprops.rs`.

use swans_rdf::SortOrder;

use crate::algebra::Plan;

/// The physical layout context a derivation runs against.
///
/// `Default` (no triples clustering order known) is the conservative
/// setting: triples scans claim no order, property-table scans — whose
/// `(subject, object)` sort is inherent to the vertically-partitioned
/// layout — still do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PropsContext {
    /// Clustering order of the `triples(s, p, o)` table, when one is
    /// loaded.
    pub triple_order: Option<SortOrder>,
}

impl PropsContext {
    /// A context for a triples table clustered by `order`.
    pub fn with_order(order: SortOrder) -> Self {
        Self {
            triple_order: Some(order),
        }
    }
}

/// Physical properties of one plan node's output.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhysProps {
    /// When `Some(key)`, the output rows are non-decreasing under
    /// lexicographic comparison of the listed output columns (leading
    /// column first). `None` claims nothing.
    pub sorted_by: Option<Vec<usize>>,
    /// Whether no two output rows are equal on *all* columns.
    pub distinct: bool,
}

impl PhysProps {
    /// Properties claiming nothing (the safe bottom element).
    pub fn unordered() -> Self {
        Self::default()
    }

    /// Whether `col` is globally non-decreasing, i.e. the leading column
    /// of the derived sort key — the requirement for a merge join on
    /// `col`.
    pub fn sorted_on(&self, col: usize) -> bool {
        self.sorted_by
            .as_ref()
            .is_some_and(|k| k.first() == Some(&col))
    }

    /// Whether the sort key starts with exactly `keys` (in order) — the
    /// requirement for run-based aggregation grouped by `keys`.
    pub fn sorted_by_prefix(&self, keys: &[usize]) -> bool {
        self.sorted_by
            .as_ref()
            .is_some_and(|k| k.len() >= keys.len() && k[..keys.len()] == *keys)
    }

    /// Whether the sort key covers every column of an `arity`-wide
    /// relation — the requirement for run-based duplicate elimination
    /// (equal rows are then adjacent).
    pub fn covers_all_columns(&self, arity: usize) -> bool {
        self.sorted_by
            .as_ref()
            .is_some_and(|k| (0..arity).all(|c| k.contains(&c)))
    }
}

/// Derives the physical properties of `plan`'s output under `ctx`.
///
/// The rules mirror the column engine's operators exactly:
///
/// * scans emit rows in clustering order (bound columns are constant and
///   may appear anywhere in the key, so they are listed last),
/// * selections and filters preserve order (ascending selection vectors),
/// * projection keeps the longest key prefix that survives the column
///   list,
/// * a join is order-preserving on the left key only when the executor
///   will merge-join it (both sides sorted on their join columns) —
///   hash joins destroy order,
/// * group-count emits key-sorted, key-distinct rows on every path,
/// * multi-input unions destroy order (concatenation),
/// * distinct preserves order and guarantees distinctness.
pub fn derive(plan: &Plan, ctx: &PropsContext) -> PhysProps {
    match plan {
        Plan::ScanTriples { s, p, o } => {
            let Some(order) = ctx.triple_order else {
                return PhysProps::unordered();
            };
            let bound = [s.is_some(), p.is_some(), o.is_some()];
            // Rows come out in clustering order. A bound column is
            // constant, so it can be dropped from its key position and
            // appended at the end without breaking lexicographic order.
            let mut key: Vec<usize> = order
                .permutation()
                .iter()
                .copied()
                .filter(|&c| !bound[c])
                .collect();
            key.extend((0..3).filter(|&c| bound[c]));
            PhysProps {
                sorted_by: Some(key),
                distinct: false,
            }
        }
        Plan::ScanProperty {
            s,
            o,
            emit_property,
            ..
        } => {
            // Property tables are sorted by (subject, object); the
            // re-materialized property column (if any) is constant.
            let o_pos = if *emit_property { 2 } else { 1 };
            let mut key = Vec::new();
            if s.is_none() {
                key.push(0);
            }
            if o.is_none() {
                key.push(o_pos);
            }
            if *emit_property {
                key.push(1);
            }
            if s.is_some() {
                key.push(0);
            }
            if o.is_some() {
                key.push(o_pos);
            }
            PhysProps {
                sorted_by: Some(key),
                distinct: false,
            }
        }
        Plan::Select { input, .. }
        | Plan::FilterIn { input, .. }
        | Plan::HavingCountGt { input, .. } => derive(input, ctx),
        Plan::Distinct { input } => PhysProps {
            sorted_by: derive(input, ctx).sorted_by,
            distinct: true,
        },
        Plan::Project { input, cols } => {
            let ip = derive(input, ctx);
            let sorted_by = ip.sorted_by.and_then(|key| {
                // The output stays sorted by the longest key prefix whose
                // columns all survive the projection.
                let mut out = Vec::new();
                for k in key {
                    match cols.iter().position(|&c| c == k) {
                        Some(pos) => out.push(pos),
                        None => break,
                    }
                }
                (!out.is_empty()).then_some(out)
            });
            // Dropping columns can merge previously distinct rows.
            let distinct = ip.distinct && (0..input.arity()).all(|c| cols.contains(&c));
            PhysProps {
                sorted_by,
                distinct,
            }
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let lp = derive(left, ctx);
            let rp = derive(right, ctx);
            // Distinct inputs produce distinct (left row ++ right row)
            // concatenations: equal outputs would need equal rows on both
            // sides, which distinctness rules out.
            let distinct = lp.distinct && rp.distinct;
            if lp.sorted_on(*left_col) && rp.sorted_on(*right_col) {
                // Merge join: the left selection vector is non-decreasing,
                // so every left-side ordering survives.
                PhysProps {
                    sorted_by: lp.sorted_by,
                    distinct,
                }
            } else {
                PhysProps {
                    sorted_by: None,
                    distinct,
                }
            }
        }
        Plan::GroupCount { keys, .. } => {
            // Every group-count path (hash + sort, and the run-based
            // sorted kernels) emits key-sorted rows with distinct keys;
            // the trailing count column never breaks ties because there
            // are none.
            PhysProps {
                sorted_by: Some((0..=keys.len()).collect()),
                distinct: true,
            }
        }
        Plan::UnionAll { inputs } => {
            if inputs.len() == 1 {
                derive(&inputs[0], ctx)
            } else {
                // Concatenation destroys order and can duplicate rows.
                PhysProps::unordered()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{group_count, join, project, scan_all, scan_p, scan_po};

    fn pso() -> PropsContext {
        PropsContext::with_order(SortOrder::Pso)
    }

    #[test]
    fn scan_orders_follow_clustering() {
        let p = derive(&scan_all(), &pso());
        assert_eq!(p.sorted_by, Some(vec![1, 0, 2]));
        assert!(!p.distinct);
        let spo = derive(&scan_all(), &PropsContext::with_order(SortOrder::Spo));
        assert_eq!(spo.sorted_by, Some(vec![0, 1, 2]));
        // No order known without a clustering context.
        assert_eq!(
            derive(&scan_all(), &PropsContext::default()).sorted_by,
            None
        );
    }

    #[test]
    fn bound_scan_columns_move_to_the_key_tail() {
        // p bound under PSO: rows sorted by (s, o), p constant.
        let p = derive(&scan_p(7), &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 2, 1]));
        assert!(p.sorted_on(0));
        // p and o bound: only s varies.
        let po = derive(&scan_po(7, 9), &pso());
        assert_eq!(po.sorted_by, Some(vec![0, 1, 2]));
    }

    #[test]
    fn property_scans_are_subject_sorted() {
        let scan = Plan::ScanProperty {
            property: 3,
            s: None,
            o: None,
            emit_property: false,
        };
        assert_eq!(derive(&scan, &pso()).sorted_by, Some(vec![0, 1]));
        let emit = Plan::ScanProperty {
            property: 3,
            s: None,
            o: None,
            emit_property: true,
        };
        assert_eq!(derive(&emit, &pso()).sorted_by, Some(vec![0, 2, 1]));
        let bound_o = Plan::ScanProperty {
            property: 3,
            s: None,
            o: Some(5),
            emit_property: false,
        };
        assert_eq!(derive(&bound_o, &pso()).sorted_by, Some(vec![0, 1]));
    }

    #[test]
    fn projection_keeps_surviving_key_prefix() {
        // scan_p under PSO: sorted (s, o, p).
        let keep_s = project(scan_p(7), vec![0]);
        assert_eq!(derive(&keep_s, &pso()).sorted_by, Some(vec![0]));
        // Dropping the leading key column loses the order entirely.
        let keep_o = project(scan_p(7), vec![2]);
        assert_eq!(derive(&keep_o, &pso()).sorted_by, None);
        // Reordering maps key positions through the column list.
        let swap = project(scan_p(7), vec![2, 0]);
        assert_eq!(derive(&swap, &pso()).sorted_by, Some(vec![1, 0]));
    }

    #[test]
    fn merge_joins_preserve_left_order_hash_joins_do_not() {
        let sorted = Plan::ScanProperty {
            property: 1,
            s: None,
            o: None,
            emit_property: false,
        };
        let merged = join(sorted.clone(), sorted.clone(), 0, 0);
        let p = derive(&merged, &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 1]));
        // Joining on the object column (not leading) falls back to hash.
        let hashed = join(sorted.clone(), sorted, 1, 1);
        assert_eq!(derive(&hashed, &pso()).sorted_by, None);
    }

    #[test]
    fn group_count_is_key_sorted_and_distinct() {
        let g = group_count(scan_all(), vec![2, 1]);
        let p = derive(&g, &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 1, 2]));
        assert!(p.distinct);
        assert!(p.sorted_by_prefix(&[0]));
        assert!(p.sorted_by_prefix(&[0, 1]));
        assert!(p.covers_all_columns(3));
    }

    #[test]
    fn unions_destroy_order_unless_singleton() {
        let scan = Plan::ScanProperty {
            property: 1,
            s: None,
            o: None,
            emit_property: false,
        };
        let single = Plan::UnionAll {
            inputs: vec![scan.clone()],
        };
        assert_eq!(derive(&single, &pso()).sorted_by, Some(vec![0, 1]));
        let multi = Plan::UnionAll {
            inputs: vec![scan.clone(), scan],
        };
        assert_eq!(derive(&multi, &pso()), PhysProps::unordered());
    }

    #[test]
    fn distinct_sets_the_flag_and_keeps_order() {
        let d = Plan::Distinct {
            input: Box::new(scan_p(7)),
        };
        let p = derive(&d, &pso());
        assert_eq!(p.sorted_by, Some(vec![0, 2, 1]));
        assert!(p.distinct);
        // Projecting away a column forfeits distinctness...
        let narrowed = project(d.clone(), vec![0]);
        assert!(!derive(&narrowed, &pso()).distinct);
        // ...but a permutation keeps it.
        let permuted = project(d, vec![2, 0, 1]);
        assert!(derive(&permuted, &pso()).distinct);
    }

    #[test]
    fn helper_predicates() {
        let p = PhysProps {
            sorted_by: Some(vec![1, 0]),
            distinct: false,
        };
        assert!(p.sorted_on(1));
        assert!(!p.sorted_on(0));
        assert!(p.sorted_by_prefix(&[1]));
        assert!(p.sorted_by_prefix(&[1, 0]));
        assert!(!p.sorted_by_prefix(&[0]));
        assert!(p.covers_all_columns(2));
        assert!(!p.covers_all_columns(3));
        assert!(!PhysProps::unordered().sorted_on(0));
    }
}
