//! A miniature SPARQL front-end.
//!
//! The paper frames its query-space analysis in terms of SPARQL-style
//! triple patterns (§2.2, citing the W3C recommendation \[7\]); C-Store's
//! inability to accept *any* new query is one of its criticisms. This
//! module closes that loop: a small but real subset of SPARQL parses and
//! compiles to the same logical [`Plan`]s the benchmark queries use, so a
//! hand-written query runs on every engine/layout combination.
//!
//! Supported:
//!
//! * terms: `?variable`, `<uri>`, `"literal"`;
//! * a basic graph pattern of `.`-separated triple patterns (keywords are
//!   case-insensitive, the trailing `.` is optional);
//! * `SELECT *`, explicit projections, and `DISTINCT`;
//! * `FILTER(?v = <t>)`, `FILTER(?v != <t>)` and
//!   `FILTER(?v IN (<a>, <b>, ...))` — the restriction joins of the
//!   benchmark (q5's `!= '<Text>'`, the 28-interesting-properties list);
//! * `(COUNT(*) AS ?c)` with `GROUP BY` — the aggregation shape of q1–q4
//!   and q6.
//!
//! Each additional pattern must share at least one variable with the
//! patterns before it (a connected BGP); patterns sharing several
//! variables are currently rejected — see [`SparqlError::Unsupported`] for
//! the constructs we reject outright.
//!
//! [`compile_sparql`] is the one-stop entry point: parse → compile →
//! optimize → (lower to the vertically-partitioned scheme if requested),
//! returning the executable plan plus its output column names.

use swans_rdf::{Dataset, Id};

use crate::algebra::{CmpOp, Plan, Predicate};
use crate::queries::Scheme;

/// A parsed SPARQL term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// `?name`
    Var(String),
    /// `<uri>` or `"literal"` — kept verbatim, dictionary-encoded at
    /// compile time.
    Const(String),
}

/// One triple pattern of the basic graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject position.
    pub s: Term,
    /// Property position.
    pub p: Term,
    /// Object position.
    pub o: Term,
}

/// One `FILTER` constraint of the graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Filter {
    /// The constrained variable.
    pub var: String,
    /// The constraint.
    pub op: FilterOp,
}

/// The constraint forms `FILTER` supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterOp {
    /// `FILTER(?v = <term>)`
    Eq(String),
    /// `FILTER(?v != <term>)`
    Ne(String),
    /// `FILTER(?v IN (<a>, <b>, ...))`
    In(Vec<String>),
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlQuery {
    /// Projected variables (empty means `SELECT *` unless [`Self::count`]
    /// is set).
    pub select: Vec<String>,
    /// `(COUNT(*) AS ?alias)` — always the last output column.
    pub count: Option<String>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The basic graph pattern.
    pub patterns: Vec<TriplePattern>,
    /// `FILTER` constraints, applied over the joined pattern.
    pub filters: Vec<Filter>,
    /// `GROUP BY` variables.
    pub group_by: Vec<String>,
}

/// Errors from parsing or compiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical / grammatical problem, with a human-readable message.
    Parse(String),
    /// The query is valid SPARQL but outside the supported subset.
    Unsupported(String),
    /// A constant term does not occur in the data set.
    UnknownTerm(String),
    /// A projected, grouped or filtered variable is not bound by the graph
    /// pattern.
    UnboundVariable(String),
}

impl std::fmt::Display for SparqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparqlError::Parse(m) => write!(f, "parse error: {m}"),
            SparqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SparqlError::UnknownTerm(t) => write!(f, "term not in data set: {t}"),
            SparqlError::UnboundVariable(v) => write!(f, "unbound variable: ?{v}"),
        }
    }
}

impl std::error::Error for SparqlError {}

// ---------------------------------------------------------------------
// Tokenizer + parser
// ---------------------------------------------------------------------

fn tokenize(input: &str) -> Result<Vec<String>, SparqlError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' | '}' | '.' | '(' | ')' | ',' | '=' => {
                tokens.push(c.to_string());
                chars.next();
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push("!=".to_string());
                } else {
                    return Err(SparqlError::Parse("expected '=' after '!'".into()));
                }
            }
            '<' => {
                let mut t = String::new();
                for c in chars.by_ref() {
                    t.push(c);
                    if c == '>' {
                        break;
                    }
                }
                if !t.ends_with('>') {
                    return Err(SparqlError::Parse(format!("unterminated uri: {t}")));
                }
                if t[1..t.len() - 1].contains(['<', '>', ' ', '\t', '\n']) {
                    return Err(SparqlError::Parse(format!("malformed uri: {t}")));
                }
                tokens.push(t);
            }
            '"' => {
                let mut t = String::new();
                t.push(chars.next().expect("peeked"));
                let mut closed = false;
                for c in chars.by_ref() {
                    t.push(c);
                    if c == '"' {
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(SparqlError::Parse(format!("unterminated literal: {t}")));
                }
                tokens.push(t);
            }
            _ => {
                let mut t = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace()
                        || matches!(c, '{' | '}' | '.' | '(' | ')' | ',' | '=' | '!')
                    {
                        break;
                    }
                    t.push(c);
                    chars.next();
                }
                tokens.push(t);
            }
        }
    }
    Ok(tokens)
}

fn parse_term(tok: &str) -> Result<Term, SparqlError> {
    if let Some(name) = tok.strip_prefix('?') {
        if name.is_empty() {
            return Err(SparqlError::Parse("empty variable name".into()));
        }
        Ok(Term::Var(name.to_string()))
    } else if tok.starts_with('<') || tok.starts_with('"') {
        Ok(Term::Const(tok.to_string()))
    } else {
        Err(SparqlError::Parse(format!(
            "expected ?var, <uri> or \"literal\", found {tok:?}"
        )))
    }
}

/// Token cursor with keyword-aware helpers.
struct Cursor<'a> {
    tokens: &'a [String],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<&'a str> {
        self.tokens.get(self.pos).map(String::as_str)
    }

    fn at_keyword(&self, kw: &str) -> bool {
        self.peek().is_some_and(|t| t.eq_ignore_ascii_case(kw))
    }

    fn bump(&mut self) -> Option<&'a str> {
        let t = self.peek();
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &str) -> Result<(), SparqlError> {
        if self.peek() == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SparqlError::Parse(format!(
                "expected {tok:?}, found {:?}",
                self.peek().unwrap_or("end of input")
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        if self.at_keyword(kw) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SparqlError::Parse(format!(
                "expected {kw}, found {:?}",
                self.peek().unwrap_or("end of input")
            )))
        }
    }

    fn expect_var(&mut self) -> Result<String, SparqlError> {
        let tok = self
            .bump()
            .ok_or_else(|| SparqlError::Parse("expected ?variable, found end of input".into()))?;
        match parse_term(tok)? {
            Term::Var(v) => Ok(v),
            Term::Const(c) => Err(SparqlError::Parse(format!("expected ?variable, found {c}"))),
        }
    }

    fn expect_const(&mut self) -> Result<String, SparqlError> {
        let tok = self
            .bump()
            .ok_or_else(|| SparqlError::Parse("expected a term, found end of input".into()))?;
        match parse_term(tok)? {
            Term::Const(c) => Ok(c),
            Term::Var(v) => Err(SparqlError::Parse(format!(
                "expected <uri> or \"literal\", found ?{v}"
            ))),
        }
    }
}

/// `( COUNT ( * ) AS ?alias )` — the opening `(` is already consumed.
fn parse_count(cur: &mut Cursor) -> Result<String, SparqlError> {
    cur.expect_keyword("count")?;
    cur.expect("(")?;
    cur.expect("*")?;
    cur.expect(")")?;
    cur.expect_keyword("as")?;
    let alias = cur.expect_var()?;
    cur.expect(")")?;
    Ok(alias)
}

/// `FILTER ( ?v = t | ?v != t | ?v IN (t, ...) )` — the `FILTER` keyword is
/// already consumed.
fn parse_filter(cur: &mut Cursor) -> Result<Filter, SparqlError> {
    cur.expect("(")?;
    let var = cur.expect_var()?;
    let op = match cur.bump() {
        Some("=") => FilterOp::Eq(cur.expect_const()?),
        Some("!=") => FilterOp::Ne(cur.expect_const()?),
        Some(t) if t.eq_ignore_ascii_case("in") => {
            cur.expect("(")?;
            let mut terms = vec![cur.expect_const()?];
            while cur.peek() == Some(",") {
                cur.pos += 1;
                terms.push(cur.expect_const()?);
            }
            cur.expect(")")?;
            FilterOp::In(terms)
        }
        other => {
            return Err(SparqlError::Parse(format!(
                "expected =, != or IN in FILTER, found {:?}",
                other.unwrap_or("end of input")
            )))
        }
    };
    cur.expect(")")?;
    Ok(Filter { var, op })
}

/// Parses the supported SPARQL subset.
pub fn parse(input: &str) -> Result<SparqlQuery, SparqlError> {
    let tokens = tokenize(input)?;
    let mut cur = Cursor {
        tokens: &tokens,
        pos: 0,
    };

    cur.expect_keyword("select")
        .map_err(|_| SparqlError::Parse("query must start with SELECT".into()))?;

    let distinct = cur.at_keyword("distinct");
    if distinct {
        cur.pos += 1;
    }

    let mut select = Vec::new();
    let mut count: Option<String> = None;
    let mut star = false;
    loop {
        match cur.peek() {
            Some(t) if t.eq_ignore_ascii_case("where") => break,
            Some("*") => {
                star = true;
                cur.pos += 1;
            }
            Some("(") => {
                cur.pos += 1;
                if count.is_some() {
                    return Err(SparqlError::Parse("at most one COUNT(*) per query".into()));
                }
                count = Some(parse_count(&mut cur)?);
            }
            Some(t) => {
                if count.is_some() {
                    return Err(SparqlError::Parse(
                        "COUNT(*) must be the last select item".into(),
                    ));
                }
                match parse_term(t)? {
                    Term::Var(v) => select.push(v),
                    Term::Const(c) => {
                        return Err(SparqlError::Parse(format!("cannot project constant {c}")))
                    }
                }
                cur.pos += 1;
            }
            None => return Err(SparqlError::Parse("expected WHERE".into())),
        }
    }
    if !star && select.is_empty() && count.is_none() {
        return Err(SparqlError::Parse(
            "SELECT needs variables, COUNT(*) or *".into(),
        ));
    }
    if star && (!select.is_empty() || count.is_some()) {
        return Err(SparqlError::Parse(
            "SELECT cannot mix * with variables or COUNT(*)".into(),
        ));
    }

    cur.expect_keyword("where")?;
    cur.expect("{")
        .map_err(|_| SparqlError::Parse("expected '{' after WHERE".into()))?;

    let mut patterns = Vec::new();
    let mut filters = Vec::new();
    loop {
        match cur.peek() {
            Some("}") => {
                cur.pos += 1;
                break;
            }
            Some(t) if t.eq_ignore_ascii_case("filter") => {
                cur.pos += 1;
                filters.push(parse_filter(&mut cur)?);
                if cur.peek() == Some(".") {
                    cur.pos += 1;
                }
            }
            Some(_) => {
                let s = parse_term(cur.bump().expect("peeked"))?;
                let p = cur
                    .bump()
                    .ok_or_else(|| SparqlError::Parse("pattern cut short".into()))
                    .and_then(parse_term)?;
                let o = cur
                    .bump()
                    .ok_or_else(|| SparqlError::Parse("pattern cut short".into()))
                    .and_then(parse_term)?;
                patterns.push(TriplePattern { s, p, o });
                if cur.peek() == Some(".") {
                    cur.pos += 1;
                }
            }
            None => return Err(SparqlError::Parse("missing '}'".into())),
        }
    }

    let mut group_by = Vec::new();
    if cur.at_keyword("group") {
        cur.pos += 1;
        cur.expect_keyword("by")?;
        group_by.push(cur.expect_var()?);
        while cur.peek().is_some_and(|t| t.starts_with('?')) {
            group_by.push(cur.expect_var()?);
        }
    }

    if cur.pos != tokens.len() {
        return Err(SparqlError::Parse(format!(
            "trailing tokens: {:?}",
            &tokens[cur.pos..]
        )));
    }
    if patterns.is_empty() {
        return Err(SparqlError::Parse("empty graph pattern".into()));
    }
    Ok(SparqlQuery {
        select,
        count,
        distinct,
        patterns,
        filters,
        group_by,
    })
}

// ---------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------

/// A compiled query: the executable plan plus its output schema.
#[derive(Debug, Clone)]
pub struct CompiledQuery {
    /// The logical plan (triple-store space unless lowered).
    pub plan: Plan,
    /// One name per output column: the projected variables, with the
    /// `COUNT(*)` alias last when aggregating.
    pub columns: Vec<String>,
}

/// Variable → output-column bindings of a partially built plan.
#[derive(Debug, Default, Clone)]
struct Bindings(Vec<(String, usize)>);

impl Bindings {
    fn col(&self, var: &str) -> Option<usize> {
        self.0.iter().find(|(v, _)| v == var).map(|&(_, c)| c)
    }
    fn bind(&mut self, var: &str, col: usize) {
        if self.col(var).is_none() {
            self.0.push((var.to_string(), col));
        }
    }
}

fn resolve(ds: &Dataset, term: &Term) -> Result<Option<Id>, SparqlError> {
    match term {
        Term::Var(_) => Ok(None),
        Term::Const(c) => resolve_const(ds, c).map(Some),
    }
}

fn resolve_const(ds: &Dataset, c: &str) -> Result<Id, SparqlError> {
    ds.dict
        .id_of(c)
        .ok_or_else(|| SparqlError::UnknownTerm(c.to_string()))
}

/// Compiles a parsed query to a triple-store logical plan over `ds`,
/// discarding the output schema. See [`compile_query`] for the full form.
pub fn compile(query: &SparqlQuery, ds: &Dataset) -> Result<Plan, SparqlError> {
    compile_query(query, ds).map(|c| c.plan)
}

/// Compiles a parsed query to a triple-store logical plan over `ds`,
/// returning the plan together with its output column names.
///
/// The BGP must be *connected*: each pattern after the first shares at
/// least one variable with the preceding ones; one shared variable becomes
/// the join condition, additional shared variables are currently rejected
/// (see [`SparqlError::Unsupported`]).
pub fn compile_query(query: &SparqlQuery, ds: &Dataset) -> Result<CompiledQuery, SparqlError> {
    let mut plan: Option<Plan> = None;
    let mut bindings = Bindings::default();

    for pat in &query.patterns {
        let s = resolve(ds, &pat.s)?;
        let p = resolve(ds, &pat.p)?;
        let o = resolve(ds, &pat.o)?;
        let scan = Plan::ScanTriples { s, p, o };

        // Variables of this pattern at their scan-local columns.
        let local: Vec<(&str, usize)> = [(&pat.s, 0usize), (&pat.p, 1), (&pat.o, 2)]
            .into_iter()
            .filter_map(|(t, c)| match t {
                Term::Var(v) => Some((v.as_str(), c)),
                Term::Const(_) => None,
            })
            .collect();
        // Repeated variable within one pattern (e.g. ?x <p> ?x) is rare
        // and unsupported.
        for i in 0..local.len() {
            for j in i + 1..local.len() {
                if local[i].0 == local[j].0 {
                    return Err(SparqlError::Unsupported(format!(
                        "variable ?{} repeats within one pattern",
                        local[i].0
                    )));
                }
            }
        }

        match plan.take() {
            None => {
                for (v, c) in &local {
                    bindings.bind(v, *c);
                }
                plan = Some(scan);
            }
            Some(acc) => {
                let shared: Vec<(&str, usize, usize)> = local
                    .iter()
                    .filter_map(|&(v, c)| bindings.col(v).map(|bc| (v, bc, c)))
                    .collect();
                match shared.len() {
                    0 => {
                        return Err(SparqlError::Unsupported(
                            "disconnected graph pattern (cartesian product)".into(),
                        ))
                    }
                    1 => {}
                    _ => {
                        return Err(SparqlError::Unsupported(
                            "patterns sharing more than one variable".into(),
                        ))
                    }
                }
                let (_, left_col, right_col) = shared[0];
                let offset = acc.arity();
                let joined = Plan::Join {
                    left: Box::new(acc),
                    right: Box::new(scan),
                    left_col,
                    right_col,
                };
                for (v, c) in &local {
                    bindings.bind(v, offset + *c);
                }
                plan = Some(joined);
            }
        }
    }
    let mut plan = plan.expect("patterns checked non-empty");

    // FILTER constraints over the joined pattern.
    for f in &query.filters {
        let col = bindings
            .col(&f.var)
            .ok_or_else(|| SparqlError::UnboundVariable(f.var.clone()))?;
        plan = match &f.op {
            FilterOp::Eq(t) => Plan::Select {
                input: Box::new(plan),
                pred: Predicate {
                    col,
                    op: CmpOp::Eq,
                    value: resolve_const(ds, t)?,
                },
            },
            FilterOp::Ne(t) => Plan::Select {
                input: Box::new(plan),
                pred: Predicate {
                    col,
                    op: CmpOp::Ne,
                    value: resolve_const(ds, t)?,
                },
            },
            FilterOp::In(terms) => Plan::FilterIn {
                input: Box::new(plan),
                col,
                values: terms
                    .iter()
                    .map(|t| resolve_const(ds, t))
                    .collect::<Result<_, _>>()?,
            },
        };
    }

    // Aggregation or plain projection.
    let (mut out, columns) = if query.count.is_some() || !query.group_by.is_empty() {
        compile_aggregate(query, plan, &bindings)?
    } else {
        let (cols, names): (Vec<usize>, Vec<String>) = if query.select.is_empty() {
            // SELECT *: every bound variable, in first-mention order.
            bindings.0.iter().map(|(v, c)| (*c, v.clone())).unzip()
        } else {
            query
                .select
                .iter()
                .map(|v| {
                    bindings
                        .col(v)
                        .map(|c| (c, v.clone()))
                        .ok_or_else(|| SparqlError::UnboundVariable(v.clone()))
                })
                .collect::<Result<Vec<_>, _>>()?
                .into_iter()
                .unzip()
        };
        (
            Plan::Project {
                input: Box::new(plan),
                cols,
            },
            names,
        )
    };

    if query.distinct {
        out = Plan::Distinct {
            input: Box::new(out),
        };
    }
    debug_assert_eq!(out.validate(), Ok(()));
    Ok(CompiledQuery { plan: out, columns })
}

/// The `GROUP BY` / `COUNT(*)` tail: group the pattern output by the
/// grouping variables and append the count, then project the selected
/// subset.
fn compile_aggregate(
    query: &SparqlQuery,
    plan: Plan,
    bindings: &Bindings,
) -> Result<(Plan, Vec<String>), SparqlError> {
    let Some(count_alias) = &query.count else {
        return Err(SparqlError::Unsupported(
            "GROUP BY without COUNT(*) — use SELECT DISTINCT".into(),
        ));
    };
    if query.group_by.is_empty() {
        return Err(SparqlError::Unsupported(
            "COUNT(*) requires GROUP BY".into(),
        ));
    }
    // Group keys in GROUP BY order.
    let key_cols: Vec<usize> = query
        .group_by
        .iter()
        .map(|v| {
            bindings
                .col(v)
                .ok_or_else(|| SparqlError::UnboundVariable(v.clone()))
        })
        .collect::<Result<_, _>>()?;
    let n = key_cols.len();
    let grouped = Plan::GroupCount {
        input: Box::new(Plan::Project {
            input: Box::new(plan),
            cols: key_cols,
        }),
        keys: (0..n).collect(),
    };
    // Schema is now: group_by vars ++ count. Project the SELECT subset
    // (every selected variable must be grouped).
    let mut out_cols: Vec<usize> = query
        .select
        .iter()
        .map(|v| {
            query.group_by.iter().position(|g| g == v).ok_or_else(|| {
                SparqlError::Unsupported(format!("?{v} is selected but not in GROUP BY"))
            })
        })
        .collect::<Result<_, _>>()?;
    out_cols.push(n); // the count
    let mut columns: Vec<String> = query.select.clone();
    columns.push(count_alias.clone());

    let identity = out_cols.len() == n + 1 && out_cols.iter().enumerate().all(|(i, &c)| i == c);
    let plan = if identity {
        grouped
    } else {
        Plan::Project {
            input: Box::new(grouped),
            cols: out_cols,
        }
    };
    Ok((plan, columns))
}

/// Parse + compile in one step (triple-store plan, no optimization).
pub fn plan_for(input: &str, ds: &Dataset) -> Result<Plan, SparqlError> {
    compile(&parse(input)?, ds)
}

/// The public compile entry point: parse, compile, optimize and — for the
/// vertically-partitioned scheme — lower the plan onto per-property tables
/// (expanding property-unbound scans over every property of `ds`).
///
/// The returned plan executes on any engine loaded with the corresponding
/// layout and carries its output column names for result decoding.
pub fn compile_sparql(
    input: &str,
    ds: &Dataset,
    scheme: Scheme,
) -> Result<CompiledQuery, SparqlError> {
    let compiled = compile_query(&parse(input)?, ds)?;
    let plan = crate::optimize::optimize(compiled.plan);
    let plan = match scheme {
        Scheme::TripleStore => plan,
        Scheme::VerticallyPartitioned => {
            let props: Vec<Id> = ds
                .properties_by_frequency()
                .into_iter()
                .map(|(p, _)| p)
                .collect();
            // Re-optimize after lowering so bound positions fuse into the
            // per-property scans too.
            crate::optimize::optimize(crate::lower::lower_to_vertical(&plan, &props))
        }
    };
    Ok(CompiledQuery {
        plan,
        columns: compiled.columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.add("<s1>", "<type>", "<Text>");
        ds.add("<s2>", "<type>", "<Text>");
        ds.add("<s3>", "<type>", "<Date>");
        ds.add("<s1>", "<lang>", "\"fre\"");
        ds.add("<s2>", "<lang>", "\"eng\"");
        ds.add("<s3>", "<lang>", "\"fre\"");
        ds
    }

    #[test]
    fn parses_select_where() {
        let q = parse("SELECT ?s WHERE { ?s <type> <Text> }").unwrap();
        assert_eq!(q.select, vec!["s"]);
        assert!(!q.distinct);
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.patterns[0].p, Term::Const("<type>".into()));
    }

    #[test]
    fn parses_distinct_star_and_multiple_patterns() {
        let q = parse("select distinct * where { ?s <type> <Text> . ?s <lang> ?l . }").unwrap();
        assert!(q.distinct);
        assert!(q.select.is_empty());
        assert_eq!(q.patterns.len(), 2);
    }

    /// Keywords are case-insensitive in every position.
    #[test]
    fn keywords_are_case_insensitive() {
        for q in [
            "select ?s where { ?s <type> <Text> }",
            "SELECT ?s WHERE { ?s <type> <Text> }",
            "SeLeCt ?s wHeRe { ?s <type> <Text> }",
            "select DISTINCT ?s where { ?s <type> <Text> }",
            "select distinct ?s WhErE { ?s <type> <Text> }",
        ] {
            let parsed = parse(q).unwrap_or_else(|e| panic!("{q:?}: {e}"));
            assert_eq!(parsed.select, vec!["s"], "{q:?}");
        }
        let agg = parse("select ?t (count(*) as ?c) where { ?s <type> ?t } group by ?t").unwrap();
        assert_eq!(agg.count.as_deref(), Some("c"));
        assert_eq!(agg.group_by, vec!["t"]);
        let filt =
            parse("select ?s where { ?s <type> ?t . filter(?t in (<Text>, <Date>)) }").unwrap();
        assert_eq!(filt.filters.len(), 1);
    }

    /// The `.` after the last triple pattern is optional — both spellings
    /// parse to the same query.
    #[test]
    fn trailing_dot_is_optional() {
        let without = parse("SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }").unwrap();
        let with = parse("SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l . }").unwrap();
        assert_eq!(without, with);
        // Single pattern, with and without the dot.
        assert_eq!(
            parse("SELECT ?s WHERE { ?s <type> <Text> . }").unwrap(),
            parse("SELECT ?s WHERE { ?s <type> <Text> }").unwrap(),
        );
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!(matches!(
            parse("FROB ?x WHERE { }"),
            Err(SparqlError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT ?x WHERE { ?x <p> }"),
            Err(SparqlError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT <c> WHERE { ?x <p> ?y }"),
            Err(SparqlError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT ?x WHERE { ?x <p <q> ?y }"),
            Err(SparqlError::Parse(_))
        ));
        // COUNT(*) must come last in the select list.
        assert!(matches!(
            parse("SELECT (COUNT(*) AS ?c) ?x WHERE { ?x <p> ?y } GROUP BY ?x"),
            Err(SparqlError::Parse(_))
        ));
        // FILTER needs a recognized operator.
        assert!(matches!(
            parse("SELECT ?x WHERE { ?x <p> ?y . FILTER(?y < <z>) }"),
            Err(SparqlError::Parse(_))
        ));
    }

    #[test]
    fn single_pattern_query_runs() {
        let ds = dataset();
        let plan = plan_for("SELECT ?s WHERE { ?s <type> <Text> }", &ds).unwrap();
        let rows = naive::normalize(naive::execute(&plan, &ds.triples));
        let s1 = ds.expect_id("<s1>");
        let s2 = ds.expect_id("<s2>");
        assert_eq!(rows, vec![vec![s1.min(s2)], vec![s1.max(s2)]]);
    }

    #[test]
    fn join_query_runs() {
        let ds = dataset();
        let plan = plan_for(
            "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }",
            &ds,
        )
        .unwrap();
        let rows = naive::normalize(naive::execute(&plan, &ds.triples));
        assert_eq!(rows.len(), 2); // s1/fre, s2/eng
        let fre = ds.expect_id("\"fre\"");
        assert!(rows.iter().any(|r| r[1] == fre));
    }

    #[test]
    fn select_star_projects_all_variables() {
        let ds = dataset();
        let q = compile_query(&parse("SELECT * WHERE { ?s <lang> ?l }").unwrap(), &ds).unwrap();
        assert_eq!(q.plan.arity(), 2);
        assert_eq!(q.columns, vec!["s", "l"]);
    }

    #[test]
    fn distinct_dedups() {
        let ds = dataset();
        let plan = plan_for("SELECT DISTINCT ?t WHERE { ?s <type> ?t }", &ds).unwrap();
        let rows = naive::execute(&plan, &ds.triples);
        assert_eq!(rows.len(), 2); // Text, Date
    }

    #[test]
    fn filter_ne_restricts() {
        let ds = dataset();
        let plan = plan_for(
            "SELECT ?s ?t WHERE { ?s <type> ?t . FILTER(?t != <Text>) }",
            &ds,
        )
        .unwrap();
        let rows = naive::execute(&plan, &ds.triples);
        let date = ds.expect_id("<Date>");
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], date);
    }

    #[test]
    fn filter_eq_and_in_restrict() {
        let ds = dataset();
        let eq = plan_for(
            "SELECT ?s WHERE { ?s <lang> ?l . FILTER(?l = \"fre\") }",
            &ds,
        )
        .unwrap();
        assert_eq!(naive::execute(&eq, &ds.triples).len(), 2);
        let inq = plan_for(
            "SELECT ?s WHERE { ?s <lang> ?l . FILTER(?l IN (\"fre\", \"eng\")) }",
            &ds,
        )
        .unwrap();
        assert_eq!(naive::execute(&inq, &ds.triples).len(), 3);
    }

    #[test]
    fn count_group_by_aggregates() {
        let ds = dataset();
        let q = compile_query(
            &parse("SELECT ?t (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t").unwrap(),
            &ds,
        )
        .unwrap();
        assert_eq!(q.columns, vec!["t", "n"]);
        use crate::algebra::ColumnKind;
        assert_eq!(
            q.plan.output_kinds(),
            vec![ColumnKind::Term, ColumnKind::Count]
        );
        let mut rows = naive::execute(&q.plan, &ds.triples);
        rows.sort_unstable();
        let text = ds.expect_id("<Text>");
        let date = ds.expect_id("<Date>");
        let mut want = vec![vec![text, 2], vec![date, 1]];
        want.sort_unstable();
        assert_eq!(rows, want);
    }

    #[test]
    fn count_only_projection_drops_keys() {
        let ds = dataset();
        let q = compile_query(
            &parse("SELECT (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t").unwrap(),
            &ds,
        )
        .unwrap();
        assert_eq!(q.columns, vec!["n"]);
        assert_eq!(q.plan.arity(), 1);
        let mut counts: Vec<u64> = naive::execute(&q.plan, &ds.triples)
            .into_iter()
            .map(|r| r[0])
            .collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![1, 2]);
    }

    #[test]
    fn aggregate_misuse_is_rejected() {
        let ds = dataset();
        // COUNT without GROUP BY.
        assert!(matches!(
            compile(
                &parse("SELECT (COUNT(*) AS ?n) WHERE { ?s <type> ?t }").unwrap(),
                &ds
            ),
            Err(SparqlError::Unsupported(_))
        ));
        // GROUP BY without COUNT.
        assert!(matches!(
            compile(
                &parse("SELECT ?t WHERE { ?s <type> ?t } GROUP BY ?t").unwrap(),
                &ds
            ),
            Err(SparqlError::Unsupported(_))
        ));
        // Selected variable not grouped.
        assert!(matches!(
            compile(
                &parse("SELECT ?s (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t").unwrap(),
                &ds
            ),
            Err(SparqlError::Unsupported(_))
        ));
    }

    #[test]
    fn unknown_constant_is_reported() {
        let ds = dataset();
        assert_eq!(
            plan_for("SELECT ?s WHERE { ?s <nope> ?o }", &ds),
            Err(SparqlError::UnknownTerm("<nope>".into()))
        );
        assert_eq!(
            plan_for(
                "SELECT ?s WHERE { ?s <type> ?t . FILTER(?t != <nope>) }",
                &ds
            ),
            Err(SparqlError::UnknownTerm("<nope>".into()))
        );
    }

    #[test]
    fn unbound_projection_is_reported() {
        let ds = dataset();
        assert_eq!(
            plan_for("SELECT ?zzz WHERE { ?s <type> ?t }", &ds),
            Err(SparqlError::UnboundVariable("zzz".into()))
        );
        assert_eq!(
            plan_for(
                "SELECT ?s WHERE { ?s <type> ?t . FILTER(?zzz != <Text>) }",
                &ds
            ),
            Err(SparqlError::UnboundVariable("zzz".into()))
        );
    }

    #[test]
    fn disconnected_patterns_rejected() {
        let ds = dataset();
        assert!(matches!(
            plan_for(
                "SELECT ?a ?b WHERE { ?a <type> <Text> . ?b <lang> \"eng\" }",
                &ds
            ),
            Err(SparqlError::Unsupported(_))
        ));
    }

    #[test]
    fn multi_shared_variable_rejected() {
        let ds = dataset();
        assert!(matches!(
            plan_for("SELECT ?s WHERE { ?s <type> ?t . ?s <lang> ?t }", &ds),
            Err(SparqlError::Unsupported(_))
        ));
    }

    #[test]
    fn compile_sparql_lowers_for_the_vertical_scheme() {
        let ds = dataset();
        let q = "SELECT ?s ?p WHERE { ?s ?p \"fre\" }";
        let tri = compile_sparql(q, &ds, Scheme::TripleStore).unwrap();
        let vp = compile_sparql(q, &ds, Scheme::VerticallyPartitioned).unwrap();
        assert_eq!(tri.columns, vec!["s", "p"]);
        assert_eq!(vp.columns, vec!["s", "p"]);
        // Lowering expands the property-unbound scan into per-table scans.
        fn has_property_scan(p: &Plan) -> bool {
            match p {
                Plan::ScanProperty { .. } => true,
                Plan::ScanTriples { .. } => false,
                Plan::Select { input, .. }
                | Plan::FilterIn { input, .. }
                | Plan::Project { input, .. }
                | Plan::GroupCount { input, .. }
                | Plan::HavingCountGt { input, .. }
                | Plan::Distinct { input } => has_property_scan(input),
                Plan::Join { left, right, .. } => {
                    has_property_scan(left) || has_property_scan(right)
                }
                Plan::UnionAll { inputs } | Plan::LeapfrogJoin { inputs, .. } => {
                    inputs.iter().any(has_property_scan)
                }
            }
        }
        assert!(!has_property_scan(&tri.plan));
        assert!(has_property_scan(&vp.plan));
        // Both answer identically.
        assert_eq!(
            naive::normalize(naive::execute(&tri.plan, &ds.triples)),
            naive::normalize(naive::execute(&vp.plan, &ds.triples)),
        );
    }

    /// The q1-analogue written in SPARQL matches pattern p7 coverage.
    #[test]
    fn coverage_of_sparql_plans() {
        let ds = dataset();
        let plan = plan_for("SELECT ?o WHERE { ?s <type> ?o }", &ds).unwrap();
        let cov = crate::coverage::analyze(&plan);
        assert!(cov.simple.contains(&crate::pattern::SimplePattern::P7));
    }
}
