//! A miniature SPARQL front-end.
//!
//! The paper frames its query-space analysis in terms of SPARQL-style
//! triple patterns (§2.2, citing the W3C recommendation \[7\]); C-Store's
//! inability to accept *any* new query is one of its criticisms. This
//! module closes that loop: a small but real subset of SPARQL —
//! `SELECT [DISTINCT] ?vars WHERE { basic graph pattern }` — parses and
//! compiles to the same logical [`Plan`]s the benchmark queries use, so a
//! hand-written query runs on every engine/layout combination.
//!
//! Supported:
//!
//! * terms: `?variable`, `<uri>`, `"literal"`;
//! * a basic graph pattern of `.`-separated triple patterns;
//! * `SELECT *`, explicit projections, and `DISTINCT`.
//!
//! Each additional pattern must share at least one variable with the
//! patterns before it (a connected BGP); patterns sharing several
//! variables apply the extra equalities as residual filters via
//! [`Plan::Select`]-on-join-output... which the algebra expresses as a
//! post-join [`crate::algebra::Predicate`]-style equality — see
//! [`SparqlError::Unsupported`] for the constructs we reject outright.

use swans_rdf::{Dataset, Id};

use crate::algebra::Plan;

/// A parsed SPARQL term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// `?name`
    Var(String),
    /// `<uri>` or `"literal"` — kept verbatim, dictionary-encoded at
    /// compile time.
    Const(String),
}

/// One triple pattern of the basic graph pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject position.
    pub s: Term,
    /// Property position.
    pub p: Term,
    /// Object position.
    pub o: Term,
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparqlQuery {
    /// Projected variables (empty means `SELECT *`).
    pub select: Vec<String>,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The basic graph pattern.
    pub patterns: Vec<TriplePattern>,
}

/// Errors from parsing or compiling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparqlError {
    /// Lexical / grammatical problem, with a human-readable message.
    Parse(String),
    /// The query is valid SPARQL but outside the supported subset.
    Unsupported(String),
    /// A constant term does not occur in the data set.
    UnknownTerm(String),
    /// A projected variable is not bound by the graph pattern.
    UnboundVariable(String),
}

impl std::fmt::Display for SparqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparqlError::Parse(m) => write!(f, "parse error: {m}"),
            SparqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SparqlError::UnknownTerm(t) => write!(f, "term not in data set: {t}"),
            SparqlError::UnboundVariable(v) => write!(f, "unbound variable: ?{v}"),
        }
    }
}

impl std::error::Error for SparqlError {}

// ---------------------------------------------------------------------
// Tokenizer + parser
// ---------------------------------------------------------------------

fn tokenize(input: &str) -> Result<Vec<String>, SparqlError> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '{' | '}' | '.' => {
                tokens.push(c.to_string());
                chars.next();
            }
            '<' => {
                let mut t = String::new();
                for c in chars.by_ref() {
                    t.push(c);
                    if c == '>' {
                        break;
                    }
                }
                if !t.ends_with('>') {
                    return Err(SparqlError::Parse(format!("unterminated uri: {t}")));
                }
                if t[1..t.len() - 1].contains(['<', '>', ' ', '\t', '\n']) {
                    return Err(SparqlError::Parse(format!("malformed uri: {t}")));
                }
                tokens.push(t);
            }
            '"' => {
                let mut t = String::new();
                t.push(chars.next().expect("peeked"));
                let mut closed = false;
                for c in chars.by_ref() {
                    t.push(c);
                    if c == '"' {
                        closed = true;
                        break;
                    }
                }
                if !closed {
                    return Err(SparqlError::Parse(format!("unterminated literal: {t}")));
                }
                tokens.push(t);
            }
            _ => {
                let mut t = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() || matches!(c, '{' | '}' | '.') {
                        break;
                    }
                    t.push(c);
                    chars.next();
                }
                tokens.push(t);
            }
        }
    }
    Ok(tokens)
}

fn parse_term(tok: &str) -> Result<Term, SparqlError> {
    if let Some(name) = tok.strip_prefix('?') {
        if name.is_empty() {
            return Err(SparqlError::Parse("empty variable name".into()));
        }
        Ok(Term::Var(name.to_string()))
    } else if tok.starts_with('<') || tok.starts_with('"') {
        Ok(Term::Const(tok.to_string()))
    } else {
        Err(SparqlError::Parse(format!(
            "expected ?var, <uri> or \"literal\", found {tok:?}"
        )))
    }
}

/// Parses the supported SPARQL subset.
pub fn parse(input: &str) -> Result<SparqlQuery, SparqlError> {
    let tokens = tokenize(input)?;
    let mut pos = 0usize;
    let peek = |pos: usize| tokens.get(pos).map(String::as_str);

    if !peek(pos).is_some_and(|t| t.eq_ignore_ascii_case("select")) {
        return Err(SparqlError::Parse("query must start with SELECT".into()));
    }
    pos += 1;

    let distinct = peek(pos).is_some_and(|t| t.eq_ignore_ascii_case("distinct"));
    if distinct {
        pos += 1;
    }

    let mut select = Vec::new();
    let mut star = false;
    while let Some(t) = peek(pos) {
        if t.eq_ignore_ascii_case("where") {
            break;
        }
        if t == "*" {
            star = true;
            pos += 1;
            continue;
        }
        match parse_term(t)? {
            Term::Var(v) => select.push(v),
            Term::Const(c) => {
                return Err(SparqlError::Parse(format!(
                    "cannot project constant {c}"
                )))
            }
        }
        pos += 1;
    }
    if !star && select.is_empty() {
        return Err(SparqlError::Parse(
            "SELECT needs variables or *".into(),
        ));
    }
    if star && !select.is_empty() {
        return Err(SparqlError::Parse(
            "SELECT cannot mix * with variables".into(),
        ));
    }

    if !peek(pos).is_some_and(|t| t.eq_ignore_ascii_case("where")) {
        return Err(SparqlError::Parse("expected WHERE".into()));
    }
    pos += 1;
    if peek(pos) != Some("{") {
        return Err(SparqlError::Parse("expected '{' after WHERE".into()));
    }
    pos += 1;

    let mut patterns = Vec::new();
    loop {
        match peek(pos) {
            Some("}") => {
                pos += 1;
                break;
            }
            Some(_) => {
                let s = parse_term(peek(pos).expect("checked"))?;
                let p = peek(pos + 1)
                    .ok_or_else(|| SparqlError::Parse("pattern cut short".into()))
                    .and_then(parse_term)?;
                let o = peek(pos + 2)
                    .ok_or_else(|| SparqlError::Parse("pattern cut short".into()))
                    .and_then(parse_term)?;
                pos += 3;
                patterns.push(TriplePattern { s, p, o });
                if peek(pos) == Some(".") {
                    pos += 1;
                }
            }
            None => return Err(SparqlError::Parse("missing '}'".into())),
        }
    }
    if pos != tokens.len() {
        return Err(SparqlError::Parse(format!(
            "trailing tokens after '}}': {:?}",
            &tokens[pos..]
        )));
    }
    if patterns.is_empty() {
        return Err(SparqlError::Parse("empty graph pattern".into()));
    }
    Ok(SparqlQuery {
        select,
        distinct,
        patterns,
    })
}

// ---------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------

/// Variable → output-column bindings of a partially built plan.
#[derive(Debug, Default, Clone)]
struct Bindings(Vec<(String, usize)>);

impl Bindings {
    fn col(&self, var: &str) -> Option<usize> {
        self.0.iter().find(|(v, _)| v == var).map(|&(_, c)| c)
    }
    fn bind(&mut self, var: &str, col: usize) {
        if self.col(var).is_none() {
            self.0.push((var.to_string(), col));
        }
    }
}

fn resolve(ds: &Dataset, term: &Term) -> Result<Option<Id>, SparqlError> {
    match term {
        Term::Var(_) => Ok(None),
        Term::Const(c) => ds
            .dict
            .id_of(c)
            .map(Some)
            .ok_or_else(|| SparqlError::UnknownTerm(c.clone())),
    }
}

/// Compiles a parsed query to a triple-store logical plan over `ds`.
///
/// The BGP must be *connected*: each pattern after the first shares at
/// least one variable with the preceding ones; one shared variable becomes
/// the join condition, additional shared variables are currently rejected
/// (see [`SparqlError::Unsupported`]).
pub fn compile(query: &SparqlQuery, ds: &Dataset) -> Result<Plan, SparqlError> {
    let mut plan: Option<Plan> = None;
    let mut bindings = Bindings::default();

    for pat in &query.patterns {
        let s = resolve(ds, &pat.s)?;
        let p = resolve(ds, &pat.p)?;
        let o = resolve(ds, &pat.o)?;
        let scan = Plan::ScanTriples { s, p, o };

        // Variables of this pattern at their scan-local columns.
        let local: Vec<(&str, usize)> = [(&pat.s, 0usize), (&pat.p, 1), (&pat.o, 2)]
            .into_iter()
            .filter_map(|(t, c)| match t {
                Term::Var(v) => Some((v.as_str(), c)),
                Term::Const(_) => None,
            })
            .collect();
        // Repeated variable within one pattern (e.g. ?x <p> ?x) is rare
        // and unsupported.
        for i in 0..local.len() {
            for j in i + 1..local.len() {
                if local[i].0 == local[j].0 {
                    return Err(SparqlError::Unsupported(format!(
                        "variable ?{} repeats within one pattern",
                        local[i].0
                    )));
                }
            }
        }

        match plan.take() {
            None => {
                for (v, c) in &local {
                    bindings.bind(v, *c);
                }
                plan = Some(scan);
            }
            Some(acc) => {
                let shared: Vec<(&str, usize, usize)> = local
                    .iter()
                    .filter_map(|&(v, c)| bindings.col(v).map(|bc| (v, bc, c)))
                    .collect();
                match shared.len() {
                    0 => {
                        return Err(SparqlError::Unsupported(
                            "disconnected graph pattern (cartesian product)".into(),
                        ))
                    }
                    1 => {}
                    _ => {
                        return Err(SparqlError::Unsupported(
                            "patterns sharing more than one variable".into(),
                        ))
                    }
                }
                let (_, left_col, right_col) = shared[0];
                let offset = acc.arity();
                let joined = Plan::Join {
                    left: Box::new(acc),
                    right: Box::new(scan),
                    left_col,
                    right_col,
                };
                for (v, c) in &local {
                    bindings.bind(v, offset + *c);
                }
                plan = Some(joined);
            }
        }
    }
    let plan = plan.expect("patterns checked non-empty");

    // Projection.
    let cols: Vec<usize> = if query.select.is_empty() {
        // SELECT *: every bound variable, in first-mention order.
        bindings.0.iter().map(|&(_, c)| c).collect()
    } else {
        query
            .select
            .iter()
            .map(|v| {
                bindings
                    .col(v)
                    .ok_or_else(|| SparqlError::UnboundVariable(v.clone()))
            })
            .collect::<Result<_, _>>()?
    };
    let mut out = Plan::Project {
        input: Box::new(plan),
        cols,
    };
    if query.distinct {
        out = Plan::Distinct {
            input: Box::new(out),
        };
    }
    debug_assert_eq!(out.validate(), Ok(()));
    Ok(out)
}

/// Parse + compile in one step.
pub fn plan_for(input: &str, ds: &Dataset) -> Result<Plan, SparqlError> {
    compile(&parse(input)?, ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.add("<s1>", "<type>", "<Text>");
        ds.add("<s2>", "<type>", "<Text>");
        ds.add("<s3>", "<type>", "<Date>");
        ds.add("<s1>", "<lang>", "\"fre\"");
        ds.add("<s2>", "<lang>", "\"eng\"");
        ds.add("<s3>", "<lang>", "\"fre\"");
        ds
    }

    #[test]
    fn parses_select_where() {
        let q = parse("SELECT ?s WHERE { ?s <type> <Text> }").unwrap();
        assert_eq!(q.select, vec!["s"]);
        assert!(!q.distinct);
        assert_eq!(q.patterns.len(), 1);
        assert_eq!(q.patterns[0].p, Term::Const("<type>".into()));
    }

    #[test]
    fn parses_distinct_star_and_multiple_patterns() {
        let q = parse(
            "select distinct * where { ?s <type> <Text> . ?s <lang> ?l . }",
        )
        .unwrap();
        assert!(q.distinct);
        assert!(q.select.is_empty());
        assert_eq!(q.patterns.len(), 2);
    }

    #[test]
    fn parse_errors_are_informative() {
        assert!(matches!(
            parse("FROB ?x WHERE { }"),
            Err(SparqlError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT ?x WHERE { ?x <p> }"),
            Err(SparqlError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT <c> WHERE { ?x <p> ?y }"),
            Err(SparqlError::Parse(_))
        ));
        assert!(matches!(
            parse("SELECT ?x WHERE { ?x <p <q> ?y }"),
            Err(SparqlError::Parse(_))
        ));
    }

    #[test]
    fn single_pattern_query_runs() {
        let ds = dataset();
        let plan = plan_for("SELECT ?s WHERE { ?s <type> <Text> }", &ds).unwrap();
        let rows = naive::normalize(naive::execute(&plan, &ds.triples));
        let s1 = ds.expect_id("<s1>");
        let s2 = ds.expect_id("<s2>");
        assert_eq!(rows, vec![vec![s1.min(s2)], vec![s1.max(s2)]]);
    }

    #[test]
    fn join_query_runs() {
        let ds = dataset();
        let plan = plan_for(
            "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }",
            &ds,
        )
        .unwrap();
        let rows = naive::normalize(naive::execute(&plan, &ds.triples));
        assert_eq!(rows.len(), 2); // s1/fre, s2/eng
        let fre = ds.expect_id("\"fre\"");
        assert!(rows.iter().any(|r| r[1] == fre));
    }

    #[test]
    fn select_star_projects_all_variables() {
        let ds = dataset();
        let plan = plan_for("SELECT * WHERE { ?s <lang> ?l }", &ds).unwrap();
        assert_eq!(plan.arity(), 2);
    }

    #[test]
    fn distinct_dedups() {
        let ds = dataset();
        let plan = plan_for("SELECT DISTINCT ?t WHERE { ?s <type> ?t }", &ds).unwrap();
        let rows = naive::execute(&plan, &ds.triples);
        assert_eq!(rows.len(), 2); // Text, Date
    }

    #[test]
    fn unknown_constant_is_reported() {
        let ds = dataset();
        assert_eq!(
            plan_for("SELECT ?s WHERE { ?s <nope> ?o }", &ds),
            Err(SparqlError::UnknownTerm("<nope>".into()))
        );
    }

    #[test]
    fn unbound_projection_is_reported() {
        let ds = dataset();
        assert_eq!(
            plan_for("SELECT ?zzz WHERE { ?s <type> ?t }", &ds),
            Err(SparqlError::UnboundVariable("zzz".into()))
        );
    }

    #[test]
    fn disconnected_patterns_rejected() {
        let ds = dataset();
        assert!(matches!(
            plan_for(
                "SELECT ?a ?b WHERE { ?a <type> <Text> . ?b <lang> \"eng\" }",
                &ds
            ),
            Err(SparqlError::Unsupported(_))
        ));
    }

    #[test]
    fn multi_shared_variable_rejected() {
        let ds = dataset();
        assert!(matches!(
            plan_for(
                "SELECT ?s WHERE { ?s <type> ?t . ?s <lang> ?t }",
                &ds
            ),
            Err(SparqlError::Unsupported(_))
        ));
    }

    /// The q1-analogue written in SPARQL matches pattern p7 coverage.
    #[test]
    fn coverage_of_sparql_plans() {
        let ds = dataset();
        let plan = plan_for("SELECT ?o WHERE { ?s <type> ?o }", &ds).unwrap();
        let cov = crate::coverage::analyze(&plan);
        assert!(cov.simple.contains(&crate::pattern::SimplePattern::P7));
    }
}
