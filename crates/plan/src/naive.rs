//! A naive reference executor.
//!
//! Evaluates a [`Plan`] directly over a triple slice with the simplest
//! possible algorithms (filters, nested-loop joins, hash aggregation).
//! It has no storage model and no performance ambitions — it exists as an
//! executable *semantics specification*: both the row and the column engine
//! must produce exactly the same multiset of rows.

use std::collections::HashMap;

use swans_rdf::Triple;

use crate::algebra::Plan;

/// A materialized relation: a bag of rows.
pub type Rows = Vec<Vec<u64>>;

/// Evaluates `plan` over `triples`.
pub fn execute(plan: &Plan, triples: &[Triple]) -> Rows {
    match plan {
        Plan::ScanTriples { s, p, o } => triples
            .iter()
            .filter(|t| {
                s.is_none_or(|v| t.s == v)
                    && p.is_none_or(|v| t.p == v)
                    && o.is_none_or(|v| t.o == v)
            })
            .map(|t| vec![t.s, t.p, t.o])
            .collect(),
        Plan::ScanProperty {
            property,
            s,
            o,
            emit_property,
        } => triples
            .iter()
            .filter(|t| {
                t.p == *property && s.is_none_or(|v| t.s == v) && o.is_none_or(|v| t.o == v)
            })
            .map(|t| {
                if *emit_property {
                    vec![t.s, t.p, t.o]
                } else {
                    vec![t.s, t.o]
                }
            })
            .collect(),
        Plan::Select { input, pred } => {
            let mut rows = execute(input, triples);
            rows.retain(|r| pred.eval(r));
            rows
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let l = execute(left, triples);
            let r = execute(right, triples);
            let mut out = Vec::new();
            for lr in &l {
                for rr in &r {
                    if lr[*left_col] == rr[*right_col] {
                        let mut row = lr.clone();
                        row.extend_from_slice(rr);
                        out.push(row);
                    }
                }
            }
            out
        }
        Plan::LeapfrogJoin { inputs, cols } => {
            execute(&crate::algebra::leapfrog_fold(inputs, cols), triples)
        }
        Plan::FilterIn { input, col, values } => {
            let set: std::collections::HashSet<u64> = values.iter().copied().collect();
            let mut rows = execute(input, triples);
            rows.retain(|r| set.contains(&r[*col]));
            rows
        }
        Plan::Project { input, cols } => execute(input, triples)
            .into_iter()
            .map(|r| cols.iter().map(|&c| r[c]).collect())
            .collect(),
        Plan::GroupCount { input, keys } => {
            let rows = execute(input, triples);
            let mut groups: HashMap<Vec<u64>, u64> = HashMap::new();
            for r in rows {
                let key: Vec<u64> = keys.iter().map(|&k| r[k]).collect();
                *groups.entry(key).or_insert(0) += 1;
            }
            groups
                .into_iter()
                .map(|(mut k, c)| {
                    k.push(c);
                    k
                })
                .collect()
        }
        Plan::HavingCountGt { input, min } => {
            let mut rows = execute(input, triples);
            rows.retain(|r| *r.last().expect("non-empty row") > *min);
            rows
        }
        Plan::UnionAll { inputs } => {
            let mut out = Vec::new();
            for i in inputs {
                out.extend(execute(i, triples));
            }
            out
        }
        Plan::Distinct { input } => {
            let mut rows = execute(input, triples);
            rows.sort_unstable();
            rows.dedup();
            rows
        }
    }
}

/// Sorts a bag of rows for order-insensitive comparison.
pub fn normalize(mut rows: Rows) -> Rows {
    rows.sort_unstable();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{group_count, join, project, scan_all, scan_po};
    use crate::queries::{build_plan, QueryContext, QueryId, Scheme};

    /// A small hand-checkable data set.
    ///
    /// ids: type=0 Text=1 lang=2 fre=3 s10..s13=10..13
    fn triples() -> Vec<Triple> {
        vec![
            Triple::new(10, 0, 1), // s10 type Text
            Triple::new(11, 0, 1), // s11 type Text
            Triple::new(12, 0, 4), // s12 type Date(4)
            Triple::new(10, 2, 3), // s10 lang fre
            Triple::new(11, 2, 5), // s11 lang eng(5)
            Triple::new(13, 2, 3), // s13 lang fre
        ]
    }

    #[test]
    fn scan_filters_bound_positions() {
        let rows = execute(&scan_po(0, 1), &triples());
        assert_eq!(normalize(rows), vec![vec![10, 0, 1], vec![11, 0, 1]]);
    }

    #[test]
    fn join_on_subject() {
        let p = join(scan_po(0, 1), scan_po(2, 3), 0, 0);
        let rows = execute(&p, &triples());
        // Only s10 is both type=Text and lang=fre.
        assert_eq!(rows, vec![vec![10, 0, 1, 10, 2, 3]]);
    }

    #[test]
    fn group_count_counts() {
        let p = group_count(project(scan_all(), vec![1]), vec![0]);
        let rows = normalize(execute(&p, &triples()));
        assert_eq!(rows, vec![vec![0, 3], vec![2, 3]]);
    }

    #[test]
    fn distinct_dedups() {
        let p = Plan::Distinct {
            input: Box::new(project(scan_all(), vec![1])),
        };
        let rows = normalize(execute(&p, &triples()));
        assert_eq!(rows, vec![vec![0], vec![2]]);
    }

    #[test]
    fn having_filters_on_last_column() {
        let p = Plan::HavingCountGt {
            input: Box::new(group_count(project(scan_all(), vec![2]), vec![0])),
            min: 1,
        };
        let rows = normalize(execute(&p, &triples()));
        // Objects appearing more than once: Text (2x), fre (2x).
        assert_eq!(rows, vec![vec![1, 2], vec![3, 2]]);
    }

    /// Scheme equivalence at the semantics level: for every query, the
    /// triple-store plan and the vertically-partitioned plan produce the
    /// same rows (q8 compared as a set — the paper's VP formulation stores
    /// *distinct* qualifying objects in its temporary table).
    #[test]
    fn schemes_agree_on_reference_dataset() {
        // Build a richer dataset that exercises every query.
        let mut ds = swans_rdf::Dataset::new();
        use crate::queries::vocab;
        let subj = |i: usize| format!("<s{i}>");
        for i in 0..40 {
            ds.add(
                &subj(i),
                vocab::TYPE,
                if i % 3 == 0 { vocab::TEXT } else { vocab::DATE },
            );
            if i % 2 == 0 {
                ds.add(&subj(i), vocab::LANGUAGE, vocab::FRENCH);
            }
            if i % 5 == 0 {
                ds.add(&subj(i), vocab::ORIGIN, vocab::DLC);
            }
            if i % 4 == 0 {
                ds.add(&subj(i), vocab::RECORDS, &subj((i + 1) % 40));
            }
            if i % 7 == 0 {
                ds.add(&subj(i), vocab::POINT, vocab::END);
                ds.add(&subj(i), vocab::ENCODING, "\"enc\"");
            }
            ds.add(&subj(i), "<title>", &format!("\"t{}\"", i % 6));
        }
        ds.add(vocab::CONFERENCES, "<title>", "\"t1\"");
        ds.add(vocab::CONFERENCES, vocab::TYPE, vocab::TEXT);

        let ctx = QueryContext::from_dataset(&ds, 4);
        for q in QueryId::ALL {
            let tp = build_plan(q, Scheme::TripleStore, &ctx);
            let vp = build_plan(q, Scheme::VerticallyPartitioned, &ctx);
            let mut a = normalize(execute(&tp, &ds.triples));
            let mut b = normalize(execute(&vp, &ds.triples));
            if q == QueryId::Q8 {
                a.dedup();
                b.dedup();
            }
            assert_eq!(a, b, "query {q} differs across schemes");
        }
    }
}
