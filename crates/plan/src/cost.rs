//! The cost model: cardinality estimation and plan pricing.
//!
//! [`estimate_rows`] turns the statistics catalog the engine publishes
//! through [`PropsContext::stats`] into per-node output cardinalities
//! (classic System R style: independent selectivities, containment-of-
//! value-sets joins). [`cost`] prices a whole plan in abstract row-touch
//! units: scans by the bytes they actually read (compressed run headers
//! when a column is RLE-stored — the paper's compression argument turned
//! into a cost term), joins by the kernel the engine would dispatch
//! (merge joins linear, hash joins with build/probe constants, leapfrog
//! by its galloping bound). Because the dispatch prediction comes from
//! the same [`derive`](crate::props::derive()) the executor consults,
//! orders that preserve physical properties price lower exactly when the
//! engine can exploit them.
//!
//! Without a catalog every table defaults to [`DEFAULT_TABLE_ROWS`] rows:
//! estimation degrades to shape-based heuristics but stays total, so
//! enumeration works against any context.

use crate::algebra::{CmpOp, Plan};
use crate::props::{derive, PropsContext};
use crate::stats::StatsCatalog;

/// Fallback row count for a table the catalog does not describe.
pub const DEFAULT_TABLE_ROWS: f64 = 1024.0;
/// Fallback distinct count for a column the catalog does not describe.
pub const DEFAULT_DISTINCT: f64 = 64.0;
/// Selectivity of an equality predicate with unknown column statistics.
const EQ_SELECTIVITY: f64 = 0.1;
/// Per-row cost factor of building a hash table.
const HASH_BUILD: f64 = 4.0;
/// Per-row cost factor of probing a hash table.
const HASH_PROBE: f64 = 2.0;

fn catalog(ctx: &PropsContext) -> Option<&StatsCatalog> {
    ctx.stats.as_deref()
}

/// Estimated number of output rows of `plan` under `ctx`.
pub fn estimate_rows(plan: &Plan, ctx: &PropsContext) -> f64 {
    match plan {
        Plan::ScanTriples { s, p, o } => {
            // A property-bound scan estimates against that property's own
            // statistics whenever the catalog carries them — conditioning
            // on the property sidesteps the independence assumption,
            // which collapses on correlated (p, o) pairs like
            // (type, Text) where the object set is property-specific.
            // The catalog's property map is authoritative: engines
            // publish an entry for every property with sorted rows, so a
            // missing property contributes at most a pending tail, which
            // estimation ignores.
            if let (Some(c), Some(p)) = (catalog(ctx), p) {
                if !c.props.is_empty() {
                    let ps = c.props.get(p);
                    let rows = ps.map_or(0.0, |ps| ps.rows as f64);
                    let ds = ps.map_or(1.0, |ps| (ps.distinct_subjects as f64).max(1.0));
                    let dobj = ps.map_or(1.0, |ps| (ps.distinct_objects as f64).max(1.0));
                    // The property bound is already folded into `rows`.
                    let mut sel = 1.0;
                    if s.is_some() {
                        sel /= ds;
                    }
                    if o.is_some() {
                        sel /= dobj;
                    }
                    return rows * sel;
                }
            }
            let (rows, distinct) = match catalog(ctx).and_then(|c| c.triple.as_ref()) {
                Some(t) => (t.rows as f64, t.distinct.map(|d| (d as f64).max(1.0))),
                // A context without triple-table statistics may still
                // know the property tables (a vertically-partitioned-only
                // engine estimating a logical triples scan).
                None => match (catalog(ctx), p) {
                    (Some(c), None) if !c.props.is_empty() => (
                        c.vp_rows() as f64,
                        [
                            DEFAULT_DISTINCT,
                            (c.props.len() as f64).max(1.0),
                            DEFAULT_DISTINCT,
                        ],
                    ),
                    _ => (
                        DEFAULT_TABLE_ROWS,
                        [DEFAULT_DISTINCT, DEFAULT_DISTINCT, DEFAULT_DISTINCT],
                    ),
                },
            };
            let mut sel = 1.0;
            for (bound, d) in [s, p, o].iter().zip(distinct) {
                if bound.is_some() {
                    sel /= d;
                }
            }
            rows * sel
        }
        Plan::ScanProperty { property, s, o, .. } => {
            let (rows, ds, dobj) = match catalog(ctx) {
                Some(c) => match c.props.get(property) {
                    Some(ps) => (
                        ps.rows as f64,
                        (ps.distinct_subjects as f64).max(1.0),
                        (ps.distinct_objects as f64).max(1.0),
                    ),
                    // The catalog is authoritative: a property it does
                    // not list has no sorted rows (at most a pending
                    // tail, which estimation ignores).
                    None => (0.0, 1.0, 1.0),
                },
                None => (DEFAULT_TABLE_ROWS, DEFAULT_DISTINCT, DEFAULT_DISTINCT),
            };
            let mut sel = 1.0;
            if s.is_some() {
                sel /= ds;
            }
            if o.is_some() {
                sel /= dobj;
            }
            rows * sel
        }
        Plan::Select { input, pred } => {
            let child = estimate_rows(input, ctx);
            match pred.op {
                CmpOp::Eq => child * (1.0 / distinct_estimate(input, pred.col, ctx)).min(1.0),
                CmpOp::Ne => child * (1.0 - EQ_SELECTIVITY),
            }
        }
        Plan::FilterIn { input, col, values } => {
            let child = estimate_rows(input, ctx);
            let sel = (values.len() as f64 / distinct_estimate(input, *col, ctx)).min(1.0);
            child * sel
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let el = estimate_rows(left, ctx);
            let er = estimate_rows(right, ctx);
            let dl = distinct_estimate(left, *left_col, ctx);
            let dr = distinct_estimate(right, *right_col, ctx);
            el * er / dl.max(dr).max(1.0)
        }
        Plan::LeapfrogJoin { inputs, cols } => {
            // Fold the binary formula over the shared key: each further
            // input divides by the larger key cardinality, and the
            // surviving key set shrinks to the smaller side.
            let mut est = estimate_rows(&inputs[0], ctx);
            let mut d_acc = distinct_estimate(&inputs[0], cols[0], ctx);
            for (input, &c) in inputs[1..].iter().zip(&cols[1..]) {
                let ei = estimate_rows(input, ctx);
                let di = distinct_estimate(input, c, ctx);
                est = est * ei / d_acc.max(di).max(1.0);
                d_acc = d_acc.min(di);
            }
            est
        }
        Plan::Project { input, .. } => estimate_rows(input, ctx),
        Plan::GroupCount { input, keys } => {
            let child = estimate_rows(input, ctx);
            let groups: f64 = keys
                .iter()
                .map(|&k| distinct_estimate(input, k, ctx))
                .product();
            groups.min(child)
        }
        Plan::HavingCountGt { input, .. } => estimate_rows(input, ctx) * 0.5,
        Plan::UnionAll { inputs } => inputs.iter().map(|i| estimate_rows(i, ctx)).sum(),
        Plan::Distinct { input } => estimate_rows(input, ctx),
    }
}

/// Estimated number of distinct values in output column `col` of `plan`.
/// Always at least 1 and at most the estimated row count.
pub fn distinct_estimate(plan: &Plan, col: usize, ctx: &PropsContext) -> f64 {
    let rows = estimate_rows(plan, ctx).max(1.0);
    let raw = match plan {
        Plan::ScanTriples { p: Some(p), .. }
            if catalog(ctx).is_some_and(|c| !c.props.is_empty()) =>
        {
            // Condition on the bound property, mirroring estimate_rows:
            // the property's own subject/object sets, and a constant
            // property column.
            let ps = catalog(ctx).and_then(|c| c.props.get(p));
            match col {
                0 => ps.map_or(1.0, |p| p.distinct_subjects as f64),
                2 => ps.map_or(1.0, |p| p.distinct_objects as f64),
                _ => 1.0,
            }
        }
        Plan::ScanTriples { .. } => match catalog(ctx).and_then(|c| c.triple.as_ref()) {
            Some(t) => t.distinct[col] as f64,
            None => DEFAULT_DISTINCT,
        },
        Plan::ScanProperty {
            property,
            emit_property,
            ..
        } => {
            let o_pos = if *emit_property { 2 } else { 1 };
            match catalog(ctx) {
                Some(c) => {
                    let ps = c.props.get(property);
                    if col == 0 {
                        ps.map_or(1.0, |p| p.distinct_subjects as f64)
                    } else if col == o_pos {
                        ps.map_or(1.0, |p| p.distinct_objects as f64)
                    } else {
                        1.0 // the re-materialized constant property column
                    }
                }
                None => {
                    if *emit_property && col == 1 {
                        1.0
                    } else {
                        DEFAULT_DISTINCT
                    }
                }
            }
        }
        Plan::Select { input, .. } | Plan::FilterIn { input, .. } => {
            distinct_estimate(input, col, ctx)
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let la = left.arity();
            if col < la {
                let d = distinct_estimate(left, col, ctx);
                // The join column keeps only the keys both sides carry.
                if col == *left_col {
                    d.min(distinct_estimate(right, *right_col, ctx))
                } else {
                    d
                }
            } else {
                let d = distinct_estimate(right, col - la, ctx);
                if col - la == *right_col {
                    d.min(distinct_estimate(left, *left_col, ctx))
                } else {
                    d
                }
            }
        }
        Plan::LeapfrogJoin { inputs, cols } => {
            let mut offset = 0;
            let mut out = DEFAULT_DISTINCT;
            for (input, &jc) in inputs.iter().zip(cols) {
                let a = input.arity();
                if col < offset + a {
                    let local = col - offset;
                    let d = distinct_estimate(input, local, ctx);
                    out = if local == jc {
                        // Shared key: bounded by every input's key set.
                        inputs
                            .iter()
                            .zip(cols)
                            .map(|(i, &c)| distinct_estimate(i, c, ctx))
                            .fold(d, f64::min)
                    } else {
                        d
                    };
                    break;
                }
                offset += a;
            }
            out
        }
        Plan::Project { input, cols } => distinct_estimate(input, cols[col], ctx),
        Plan::GroupCount { input, keys } => {
            if col < keys.len() {
                distinct_estimate(input, keys[col], ctx)
            } else {
                DEFAULT_DISTINCT // the count column
            }
        }
        Plan::HavingCountGt { input, .. } | Plan::Distinct { input } => {
            distinct_estimate(input, col, ctx)
        }
        Plan::UnionAll { inputs } => inputs.iter().map(|i| distinct_estimate(i, col, ctx)).sum(),
    };
    raw.clamp(1.0, rows)
}

/// Total estimated execution cost of `plan` under `ctx`, in abstract
/// row-touch units. Lower is better; only the ordering matters.
pub fn cost(plan: &Plan, ctx: &PropsContext) -> f64 {
    let out = estimate_rows(plan, ctx);
    match plan {
        Plan::ScanTriples { s, p, o } => {
            if s.is_none() && p.is_none() && o.is_none() {
                scan_bytes_triples(ctx)
            } else {
                // Bound scans resolve by binary search (or RLE headers)
                // and touch roughly the matching rows.
                out + scan_bytes_triples(ctx).max(1.0).ln()
            }
        }
        Plan::ScanProperty { property, s, o, .. } => {
            if s.is_none() && o.is_none() {
                scan_bytes_property(*property, ctx)
            } else {
                out + scan_bytes_property(*property, ctx).max(1.0).ln()
            }
        }
        Plan::Select { input, .. } | Plan::HavingCountGt { input, .. } => {
            cost(input, ctx) + estimate_rows(input, ctx)
        }
        Plan::FilterIn { input, .. } => cost(input, ctx) + estimate_rows(input, ctx),
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            let el = estimate_rows(left, ctx);
            let er = estimate_rows(right, ctx);
            let merge =
                derive(left, ctx).sorted_on(*left_col) && derive(right, ctx).sorted_on(*right_col);
            let join = if merge {
                el + er
            } else {
                HASH_BUILD * el + HASH_PROBE * er
            };
            cost(left, ctx) + cost(right, ctx) + join + out
        }
        Plan::LeapfrogJoin { inputs, cols } => {
            let all_sorted = inputs
                .iter()
                .zip(cols)
                .all(|(i, &c)| derive(i, ctx).sorted_on(c));
            if !all_sorted {
                // The executor falls back to the binary hash-join fold;
                // price that plan.
                return cost(&crate::algebra::leapfrog_fold(inputs, cols), ctx);
            }
            let ests: Vec<f64> = inputs.iter().map(|i| estimate_rows(i, ctx)).collect();
            let driver = ests.iter().copied().fold(f64::INFINITY, f64::min);
            // Galloping bound: each input advances at most once per
            // driver key, by binary search — never worse than its own
            // linear scan.
            let seek: f64 = ests.iter().map(|&e| e.min(driver * (e + 2.0).log2())).sum();
            inputs.iter().map(|i| cost(i, ctx)).sum::<f64>() + seek + out
        }
        Plan::Project { input, .. } => cost(input, ctx),
        Plan::GroupCount { input, keys } => {
            let el = estimate_rows(input, ctx);
            let agg = if derive(input, ctx).sorted_by_prefix(keys) {
                el
            } else {
                HASH_BUILD * el
            };
            cost(input, ctx) + agg + out
        }
        Plan::UnionAll { inputs } => {
            inputs.iter().map(|i| cost(i, ctx)).sum::<f64>()
                + inputs.iter().map(|i| estimate_rows(i, ctx)).sum::<f64>()
        }
        Plan::Distinct { input } => {
            let el = estimate_rows(input, ctx);
            let ip = derive(input, ctx);
            let dedup = if ip.distinct {
                0.0
            } else if ip.covers_all_columns(input.arity()) {
                el
            } else {
                HASH_BUILD * el
            };
            cost(input, ctx) + dedup
        }
    }
}

fn scan_bytes_triples(ctx: &PropsContext) -> f64 {
    match catalog(ctx).and_then(|c| c.triple.as_ref()) {
        Some(t) => t.scan_bytes as f64 / 8.0,
        None => DEFAULT_TABLE_ROWS * 3.0,
    }
}

fn scan_bytes_property(property: swans_rdf::Id, ctx: &PropsContext) -> f64 {
    match catalog(ctx) {
        Some(c) => c
            .props
            .get(&property)
            .map_or(1.0, |p| p.scan_bytes as f64 / 8.0),
        None => DEFAULT_TABLE_ROWS * 2.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{join, leapfrog, project, scan_all, scan_p, scan_po};
    use crate::stats::{PropStats, StatsCatalog, TripleStats};
    use swans_rdf::SortOrder;

    fn ctx_with_stats() -> PropsContext {
        let mut cat = StatsCatalog {
            triple: Some(TripleStats {
                rows: 10_000,
                distinct: [2_000, 10, 500],
                scan_bytes: 10_000 * 24,
            }),
            props: Default::default(),
        };
        cat.props.insert(
            3,
            PropStats {
                rows: 4_000,
                distinct_subjects: 1_000,
                distinct_objects: 50,
                scan_bytes: 1_000 * 16 + 4_000 * 8,
            },
        );
        cat.props.insert(
            4,
            PropStats {
                rows: 100,
                distinct_subjects: 100,
                distinct_objects: 100,
                scan_bytes: 100 * 16,
            },
        );
        PropsContext::with_order(SortOrder::Pso).with_stats(cat)
    }

    fn vp(p: u64) -> Plan {
        Plan::ScanProperty {
            property: p,
            s: None,
            o: None,
            emit_property: false,
        }
    }

    #[test]
    fn scan_estimates_follow_the_catalog() {
        let ctx = ctx_with_stats();
        assert_eq!(estimate_rows(&scan_all(), &ctx), 10_000.0);
        // A property-bound triples scan conditions on the per-property
        // stats, not whole-table independence.
        assert_eq!(estimate_rows(&scan_p(3), &ctx), 4_000.0);
        assert_eq!(estimate_rows(&vp(3), &ctx), 4_000.0);
        // An unknown property has no sorted rows — the property map is
        // authoritative for either scan shape.
        assert_eq!(estimate_rows(&scan_p(7), &ctx), 0.0);
        assert_eq!(estimate_rows(&vp(99), &ctx), 0.0);
        // Bound positions divide by the column's distinct count.
        assert_eq!(
            estimate_rows(
                &Plan::ScanProperty {
                    property: 3,
                    s: Some(1),
                    o: None,
                    emit_property: false,
                },
                &ctx
            ),
            4.0
        );
    }

    #[test]
    fn join_estimate_uses_key_cardinalities() {
        let ctx = ctx_with_stats();
        // 4000 × 100 / max(1000, 100) = 400.
        let j = join(vp(3), vp(4), 0, 0);
        assert_eq!(estimate_rows(&j, &ctx), 400.0);
        // The leapfrog estimate of the 2-way case matches the binary one.
        let l = leapfrog(vec![vp(3), vp(4)], vec![0, 0]);
        assert_eq!(estimate_rows(&l, &ctx), 400.0);
    }

    #[test]
    fn defaults_keep_estimation_total_without_a_catalog() {
        let ctx = PropsContext::with_order(SortOrder::Pso);
        assert_eq!(estimate_rows(&scan_all(), &ctx), DEFAULT_TABLE_ROWS);
        assert!(estimate_rows(&scan_po(1, 2), &ctx) > 0.0);
        assert!(cost(&join(vp(1), vp(2), 0, 0), &ctx).is_finite());
    }

    #[test]
    fn merge_joins_price_below_hash_joins() {
        let ctx = ctx_with_stats();
        // Same inputs, same output; only the dispatch differs: joining on
        // subjects merges (both sorted on col 0), on objects hashes.
        let merge = join(vp(3), vp(3), 0, 0);
        let hash = join(vp(3), vp(3), 1, 1);
        let merge_op = cost(&merge, &ctx) - estimate_rows(&merge, &ctx);
        let hash_op = cost(&hash, &ctx) - estimate_rows(&hash, &ctx);
        assert!(
            merge_op < hash_op,
            "merge {merge_op} should price below hash {hash_op}"
        );
    }

    #[test]
    fn leapfrog_prices_below_the_binary_fold_on_a_selective_star() {
        let ctx = ctx_with_stats();
        // Two large inputs and one tiny driver: the fold materializes the
        // large pairwise intermediate, leapfrog gallops past it.
        let star = vec![vp(3), vp(3), vp(4)];
        let cols = vec![0, 0, 0];
        let lf = leapfrog(star.clone(), cols.clone());
        let fold = crate::algebra::leapfrog_fold(&star, &cols);
        assert!(cost(&lf, &ctx) < cost(&fold, &ctx));
    }

    #[test]
    fn distinct_estimates_clamp_to_rows() {
        let ctx = ctx_with_stats();
        let bound = Plan::ScanProperty {
            property: 3,
            s: Some(1),
            o: None,
            emit_property: false,
        };
        // 4 estimated rows cap the 50-object distinct count.
        assert!(distinct_estimate(&bound, 1, &ctx) <= 4.0);
        assert!(distinct_estimate(&project(vp(3), vec![1, 0]), 1, &ctx) >= 1.0);
    }
}
