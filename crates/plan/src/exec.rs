//! Execution errors and per-query resource budgets shared by every plan
//! executor.
//!
//! Both storage engines (and the naive reference executor's callers)
//! report failures through [`EngineError`] instead of panicking — the
//! paper's core criticism of C-Store is that a query outside the
//! hard-wired set aborts the system; a production front door must instead
//! return a typed error the caller can handle. The type lives in
//! `swans_plan` because it is the lowest layer both engines depend on;
//! `swans_core::engine` re-exports it next to the `Engine` trait.
//!
//! [`QueryBudget`] is the cooperative-cancellation token of the same
//! seam: the front door builds one per query (deadline, memory limit,
//! external cancel flag) and the engines check it per operator and per
//! morsel, surfacing exhaustion as [`EngineError::Cancelled`] — never a
//! panic, never a poisoned lock.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a plan could not be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The plan scans the `triples(s, p, o)` relation but the engine has no
    /// triple-store layout loaded.
    MissingTripleStore,
    /// The plan scans a property table but the engine has no
    /// vertically-partitioned layout loaded.
    MissingVerticalLayout,
    /// The plan is structurally invalid (bad column references, arity
    /// mismatches, empty unions, ...). Carries [`crate::Plan::validate`]'s
    /// description of the first problem.
    InvalidPlan(String),
    /// The plan failed the static verifier ([`crate::verify`](mod@crate::verify)) before
    /// execution — flow typing, physical-property soundness or executor
    /// legality. The error names the offending operator by plan path
    /// (e.g. `$.0.1`), so EXPLAIN output and engine errors point at the
    /// exact node instead of just describing the problem.
    Verify(crate::verify::VerifyError),
    /// The plan is valid but uses a construct this engine cannot run.
    Unsupported(String),
    /// A durable-storage operation failed underneath the engine — a
    /// write-ahead append, a snapshot publication, or recovery. Carries
    /// the underlying I/O error's message.
    Io(String),
    /// The query was cancelled cooperatively before it finished: its
    /// [`QueryBudget`] expired (deadline passed, memory limit exceeded)
    /// or an external caller pulled the cancel flag. The partial stats
    /// say how far it got — a governed front door turns this into a
    /// clean 503, not a crash.
    Cancelled {
        /// What exhausted the budget.
        reason: CancelReason,
        /// How much the query had consumed when it was stopped.
        partial: PartialStats,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::MissingTripleStore => {
                write!(f, "no triple-store layout loaded in this engine")
            }
            EngineError::MissingVerticalLayout => {
                write!(f, "no vertically-partitioned layout loaded in this engine")
            }
            EngineError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            EngineError::Verify(e) => write!(f, "plan verification failed: {e}"),
            EngineError::Unsupported(m) => write!(f, "unsupported plan: {m}"),
            EngineError::Io(m) => write!(f, "I/O error: {m}"),
            EngineError::Cancelled { reason, partial } => write!(
                f,
                "query cancelled ({reason}) after {}ms, peak memory {} bytes",
                partial.elapsed_ms, partial.peak_mem_bytes
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Why a [`QueryBudget`] stopped a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The per-query deadline passed.
    Timeout,
    /// The per-query memory budget was exceeded.
    MemoryLimit,
    /// An external caller pulled the cancel flag (client disconnect,
    /// server shutdown, explicit kill).
    Shutdown,
}

impl std::fmt::Display for CancelReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CancelReason::Timeout => write!(f, "deadline exceeded"),
            CancelReason::MemoryLimit => write!(f, "memory limit exceeded"),
            CancelReason::Shutdown => write!(f, "cancelled by caller"),
        }
    }
}

/// What a cancelled query had consumed when it was stopped — attached to
/// [`EngineError::Cancelled`] so overload is observable per query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartialStats {
    /// Wall-clock milliseconds between budget creation and cancellation.
    pub elapsed_ms: u64,
    /// Peak tracked memory in bytes charged against the budget.
    pub peak_mem_bytes: u64,
}

/// Internal reason codes latched into [`QueryBudget::reason`].
const REASON_NONE: u8 = 0;
const REASON_TIMEOUT: u8 = 1;
const REASON_MEMORY: u8 = 2;
const REASON_SHUTDOWN: u8 = 3;

/// A per-query resource budget: deadline, memory limit, and a shared
/// cancel flag, checked cooperatively by the engines (per operator, per
/// morsel, per N rows).
///
/// The budget is *self-latching*: the first failed check (deadline
/// passed, memory exceeded, external cancel) stores its reason and sets
/// the cancel flag, so every other worker observing the token stops at
/// its next morsel with the same typed reason. Clones share all state —
/// hand a clone to a watchdog thread and [`QueryBudget::cancel`] stops
/// the query mid-execution.
///
/// ```
/// use swans_plan::exec::{CancelReason, EngineError, QueryBudget};
/// let budget = QueryBudget::unlimited().with_mem_limit(1024);
/// assert!(budget.check().is_ok());
/// budget.charge(4096).unwrap_err();
/// assert!(matches!(
///     budget.check(),
///     Err(EngineError::Cancelled { reason: CancelReason::MemoryLimit, .. })
/// ));
/// ```
#[derive(Debug, Clone)]
pub struct QueryBudget {
    deadline: Option<Instant>,
    mem_limit: Option<u64>,
    started: Instant,
    cancel: Arc<AtomicBool>,
    reason: Arc<AtomicU8>,
    mem_used: Arc<AtomicU64>,
    mem_peak: Arc<AtomicU64>,
}

impl Default for QueryBudget {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl QueryBudget {
    /// A budget that never expires on its own — it can still be stopped
    /// through [`QueryBudget::cancel`], and it still tracks peak memory.
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            mem_limit: None,
            started: Instant::now(),
            cancel: Arc::new(AtomicBool::new(false)),
            reason: Arc::new(AtomicU8::new(REASON_NONE)),
            mem_used: Arc::new(AtomicU64::new(0)),
            mem_peak: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Sets the deadline to `timeout` from now.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.deadline = Some(Instant::now() + timeout);
        self
    }

    /// Sets an absolute deadline (e.g. inherited from admission time, so
    /// queue wait counts against the request).
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the tracked-memory limit in bytes.
    #[must_use]
    pub fn with_mem_limit(mut self, bytes: u64) -> Self {
        self.mem_limit = Some(bytes);
        self
    }

    /// Latches `code` as the cancellation reason (first writer wins) and
    /// raises the shared cancel flag.
    fn latch(&self, code: u8) {
        let _ =
            self.reason
                .compare_exchange(REASON_NONE, code, Ordering::Relaxed, Ordering::Relaxed);
        self.cancel.store(true, Ordering::Release);
    }

    /// Cancels the query from outside (watchdog, disconnect, shutdown):
    /// every worker observing this budget stops at its next check with
    /// [`CancelReason::Shutdown`].
    pub fn cancel(&self) {
        self.latch(REASON_SHUTDOWN);
    }

    /// Whether the budget has latched — the cheapest possible probe (one
    /// atomic load, no clock read), for per-morsel fast paths.
    pub fn latched(&self) -> bool {
        self.cancel.load(Ordering::Acquire)
    }

    /// The shared cancel flag itself, for callers that want to watch or
    /// pull it without holding the whole budget.
    pub fn cancel_flag(&self) -> &Arc<AtomicBool> {
        &self.cancel
    }

    /// Checks the flag and the deadline without building an error:
    /// returns `true` (after latching) if the query should stop. Cheap
    /// enough to call per morsel; reads the clock only when a deadline
    /// is set and the flag is not already latched.
    pub fn expired(&self) -> bool {
        if self.latched() {
            return true;
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.latch(REASON_TIMEOUT);
                return true;
            }
        }
        false
    }

    /// The per-operator checkpoint: returns the typed
    /// [`EngineError::Cancelled`] if the budget has latched or the
    /// deadline has passed.
    pub fn check(&self) -> Result<(), EngineError> {
        if self.expired() {
            Err(self.error())
        } else {
            Ok(())
        }
    }

    /// Charges `bytes` of tracked memory against the budget, updating the
    /// peak; errors (and latches) when the limit is exceeded.
    pub fn charge(&self, bytes: u64) -> Result<(), EngineError> {
        let used = self.mem_used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.mem_peak.fetch_max(used, Ordering::Relaxed);
        if let Some(limit) = self.mem_limit {
            if used > limit {
                self.latch(REASON_MEMORY);
                return Err(self.error());
            }
        }
        Ok(())
    }

    /// Returns `bytes` of tracked memory to the budget (an operator's
    /// scratch was dropped).
    pub fn release(&self, bytes: u64) {
        self.mem_used.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Peak tracked memory in bytes so far.
    pub fn peak_mem_bytes(&self) -> u64 {
        self.mem_peak.load(Ordering::Relaxed)
    }

    /// The reason the budget latched, if it has.
    pub fn cancel_reason(&self) -> Option<CancelReason> {
        match self.reason.load(Ordering::Relaxed) {
            REASON_TIMEOUT => Some(CancelReason::Timeout),
            REASON_MEMORY => Some(CancelReason::MemoryLimit),
            REASON_SHUTDOWN => Some(CancelReason::Shutdown),
            _ => {
                // The flag can be pulled directly through `cancel_flag`
                // without a latched reason; report that as Shutdown.
                self.latched().then_some(CancelReason::Shutdown)
            }
        }
    }

    /// What the query had consumed so far.
    pub fn partial_stats(&self) -> PartialStats {
        PartialStats {
            elapsed_ms: u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX),
            peak_mem_bytes: self.peak_mem_bytes(),
        }
    }

    /// The typed error for this budget's latched state.
    pub fn error(&self) -> EngineError {
        EngineError::Cancelled {
            reason: self.cancel_reason().unwrap_or(CancelReason::Shutdown),
            partial: self.partial_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(EngineError::MissingTripleStore
            .to_string()
            .contains("triple-store"));
        assert!(EngineError::MissingVerticalLayout
            .to_string()
            .contains("vertically-partitioned"));
        assert!(EngineError::InvalidPlan("col 7".into())
            .to_string()
            .contains("col 7"));
        assert!(EngineError::Unsupported("frob".into())
            .to_string()
            .contains("frob"));
        assert!(EngineError::Io("disk on fire".into())
            .to_string()
            .contains("disk on fire"));
    }

    #[test]
    fn timeout_budget_latches_and_reports() {
        let b = QueryBudget::unlimited().with_timeout(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        let e = b.check().unwrap_err();
        assert!(matches!(
            e,
            EngineError::Cancelled {
                reason: CancelReason::Timeout,
                ..
            }
        ));
        // Latched: every subsequent check agrees without re-reading the clock.
        assert!(b.latched());
        assert_eq!(b.cancel_reason(), Some(CancelReason::Timeout));
        assert!(e.to_string().contains("deadline exceeded"), "{e}");
    }

    #[test]
    fn memory_budget_charges_and_releases() {
        let b = QueryBudget::unlimited().with_mem_limit(1000);
        b.charge(600).expect("within budget");
        b.release(600);
        b.charge(900).expect("released memory is reusable");
        assert_eq!(b.peak_mem_bytes(), 900);
        let e = b.charge(200).unwrap_err();
        match e {
            EngineError::Cancelled { reason, partial } => {
                assert_eq!(reason, CancelReason::MemoryLimit);
                assert_eq!(partial.peak_mem_bytes, 1100);
            }
            other => panic!("expected Cancelled, got {other:?}"),
        }
        assert!(b.expired());
    }

    #[test]
    fn external_cancel_is_shared_across_clones() {
        let b = QueryBudget::unlimited();
        let watchdog = b.clone();
        assert!(b.check().is_ok());
        watchdog.cancel();
        assert!(matches!(
            b.check(),
            Err(EngineError::Cancelled {
                reason: CancelReason::Shutdown,
                ..
            })
        ));
    }

    #[test]
    fn first_latched_reason_wins() {
        let b = QueryBudget::unlimited().with_mem_limit(10);
        b.charge(100).unwrap_err();
        b.cancel(); // later Shutdown does not overwrite MemoryLimit
        assert_eq!(b.cancel_reason(), Some(CancelReason::MemoryLimit));
    }

    #[test]
    fn raw_flag_pull_reports_shutdown() {
        use std::sync::atomic::Ordering;
        let b = QueryBudget::unlimited();
        b.cancel_flag().store(true, Ordering::Release);
        assert_eq!(b.cancel_reason(), Some(CancelReason::Shutdown));
        assert!(b.check().is_err());
    }

    #[test]
    fn verify_errors_render_the_plan_path() {
        use crate::algebra::{join, scan_all};
        use crate::Plan;
        let bad = Plan::Distinct {
            input: Box::new(join(scan_all(), scan_all(), 0, 9)),
        };
        let e = crate::verify::verify(&bad, &crate::PropsContext::default()).unwrap_err();
        let rendered = EngineError::Verify(e).to_string();
        assert!(rendered.contains("plan verification failed"), "{rendered}");
        assert!(rendered.contains("$.0"), "{rendered}");
        assert!(rendered.contains("Join"), "{rendered}");
    }
}
