//! Execution errors shared by every plan executor.
//!
//! Both storage engines (and the naive reference executor's callers)
//! report failures through [`EngineError`] instead of panicking — the
//! paper's core criticism of C-Store is that a query outside the
//! hard-wired set aborts the system; a production front door must instead
//! return a typed error the caller can handle. The type lives in
//! `swans_plan` because it is the lowest layer both engines depend on;
//! `swans_core::engine` re-exports it next to the `Engine` trait.

/// Why a plan could not be executed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The plan scans the `triples(s, p, o)` relation but the engine has no
    /// triple-store layout loaded.
    MissingTripleStore,
    /// The plan scans a property table but the engine has no
    /// vertically-partitioned layout loaded.
    MissingVerticalLayout,
    /// The plan is structurally invalid (bad column references, arity
    /// mismatches, empty unions, ...). Carries [`crate::Plan::validate`]'s
    /// description of the first problem.
    InvalidPlan(String),
    /// The plan failed the static verifier ([`crate::verify`](mod@crate::verify)) before
    /// execution — flow typing, physical-property soundness or executor
    /// legality. The error names the offending operator by plan path
    /// (e.g. `$.0.1`), so EXPLAIN output and engine errors point at the
    /// exact node instead of just describing the problem.
    Verify(crate::verify::VerifyError),
    /// The plan is valid but uses a construct this engine cannot run.
    Unsupported(String),
    /// A durable-storage operation failed underneath the engine — a
    /// write-ahead append, a snapshot publication, or recovery. Carries
    /// the underlying I/O error's message.
    Io(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::MissingTripleStore => {
                write!(f, "no triple-store layout loaded in this engine")
            }
            EngineError::MissingVerticalLayout => {
                write!(f, "no vertically-partitioned layout loaded in this engine")
            }
            EngineError::InvalidPlan(m) => write!(f, "invalid plan: {m}"),
            EngineError::Verify(e) => write!(f, "plan verification failed: {e}"),
            EngineError::Unsupported(m) => write!(f, "unsupported plan: {m}"),
            EngineError::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(EngineError::MissingTripleStore
            .to_string()
            .contains("triple-store"));
        assert!(EngineError::MissingVerticalLayout
            .to_string()
            .contains("vertically-partitioned"));
        assert!(EngineError::InvalidPlan("col 7".into())
            .to_string()
            .contains("col 7"));
        assert!(EngineError::Unsupported("frob".into())
            .to_string()
            .contains("frob"));
        assert!(EngineError::Io("disk on fire".into())
            .to_string()
            .contains("disk on fire"));
    }

    #[test]
    fn verify_errors_render_the_plan_path() {
        use crate::algebra::{join, scan_all};
        use crate::Plan;
        let bad = Plan::Distinct {
            input: Box::new(join(scan_all(), scan_all(), 0, 9)),
        };
        let e = crate::verify::verify(&bad, &crate::PropsContext::default()).unwrap_err();
        let rendered = EngineError::Verify(e).to_string();
        assert!(rendered.contains("plan verification failed"), "{rendered}");
        assert!(rendered.contains("$.0"), "{rendered}");
        assert!(rendered.contains("Join"), "{rendered}");
    }
}
