//! Static plan verification: flow typing, property soundness and
//! executor legality, checked *before* a plan runs.
//!
//! The physical-property machinery of [`crate::props`] is what makes the
//! column engine fast — and what makes it fragile: a `sorted_by` claim
//! the layout cannot justify silently turns a merge join into a wrong
//! answer, not an error. This module makes plan well-formedness a
//! checkable artifact, the way MonetDB-style systems survive plan-shape
//! explosions. [`verify`] walks a plan once and checks three layers:
//!
//! 1. **Flow typing** — every column reference (select predicates, join
//!    keys, projections, grouping keys) is in range for its input's
//!    arity, unions are non-empty and input-compatible in both arity and
//!    [`ColumnKind`]s, and `HavingCountGt` never runs over an empty
//!    schema. These are [`Plan::validate`]'s rules, re-reported as typed
//!    errors that name the offending operator by plan path.
//! 2. **Property soundness** — every [`PhysProps`] claim (`sorted_by`,
//!    `distinct`, `run_encoded`) attached to a node must be *justified*
//!    by the node's inputs, the storage layout and the [`PropsContext`]
//!    (pending-delta downgrades, per-property RLE flags). The checker
//!    recomputes what each operator can truthfully promise — crucially,
//!    using the *claimed* child properties for dispatch decisions, the
//!    way the executor does — and rejects any claim that exceeds it: a
//!    sort key must be a prefix of the justified key, `distinct` needs a
//!    distinct-preserving derivation, and a run-encoding position must
//!    trace back to an RLE-stored scan through monotone operators only.
//! 3. **Executor legality** — a merge join is only claimed where both
//!    inputs are compatibly sorted on their join columns (otherwise the
//!    engine hashes and the output order claim must drop), and run
//!    columns never flow into flat-materializing consumers (group-count,
//!    unions, hash joins) still claimed. Join key-drop legality — output
//!    arity staying `left + right` with pruned columns only at
//!    unreferenced positions — is a runtime-mask property and is checked
//!    by the column engine's debug shadow validator instead.
//!
//! [`verify`] derives the claims itself (via [`Claims::derive_tree`]) and
//! therefore accepts every plan whose derivation is internally
//! consistent; [`verify_claims`] checks an *externally supplied* claim
//! tree, which is what the plan-mutation fuzzer in `tests/random_plans.rs`
//! uses to prove the checker rejects corrupted claims.
//!
//! Wiring: `Database::explain`/`explain_text` always verify,
//! `ColumnEngine::execute` verifies in debug builds and under the opt-in
//! `StoreConfig::with_verify(true)`, and verification failures surface as
//! [`crate::EngineError::Verify`] carrying the rendered plan path.

use crate::algebra::{ColumnKind, Plan};
use crate::props::{derive, PhysProps, PropsContext};

/// A path from the plan root to one node: the child index taken at every
/// step (`Join` children are `0` = left, `1` = right; unary operators
/// have the single child `0`; `UnionAll` children are input positions).
///
/// Renders as `$` for the root and `$.1.0` for "root's child 1's child
/// 0" — the form [`VerifyError`] embeds so EXPLAIN output and engine
/// errors point at the exact operator.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanPath(Vec<usize>);

impl PlanPath {
    /// The path naming the plan root.
    pub fn root() -> Self {
        Self::default()
    }

    /// The path built from explicit child indices (root → node).
    pub fn from_segments(segments: Vec<usize>) -> Self {
        Self(segments)
    }

    /// The child indices from the root down to the node.
    pub fn segments(&self) -> &[usize] {
        &self.0
    }

    /// Whether this path names the root itself.
    pub fn is_root(&self) -> bool {
        self.0.is_empty()
    }
}

impl std::fmt::Display for PlanPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "$")?;
        for seg in &self.0 {
            write!(f, ".{seg}")?;
        }
        Ok(())
    }
}

/// The immediate children of a plan node, in [`PlanPath`] index order.
fn children(plan: &Plan) -> Vec<&Plan> {
    match plan {
        Plan::ScanTriples { .. } | Plan::ScanProperty { .. } => Vec::new(),
        Plan::Select { input, .. }
        | Plan::FilterIn { input, .. }
        | Plan::Project { input, .. }
        | Plan::GroupCount { input, .. }
        | Plan::HavingCountGt { input, .. }
        | Plan::Distinct { input } => vec![input],
        Plan::Join { left, right, .. } => vec![left, right],
        Plan::UnionAll { inputs } | Plan::LeapfrogJoin { inputs, .. } => inputs.iter().collect(),
    }
}

/// Resolves a [`PlanPath`] against a plan, returning the node it names
/// (or `None` if the path walks off the tree).
pub fn locate<'a>(plan: &'a Plan, path: &PlanPath) -> Option<&'a Plan> {
    let mut node = plan;
    for &seg in path.segments() {
        node = children(node).get(seg).copied()?;
    }
    Some(node)
}

/// A tree of [`PhysProps`] claims parallel to a plan: one entry per
/// node, children in [`PlanPath`] index order.
///
/// [`verify`] builds this with [`Claims::derive_tree`]; the mutation
/// fuzzer corrupts individual entries and feeds the result to
/// [`verify_claims`] to prove the checker notices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Claims {
    /// The claimed output properties of this node.
    pub props: PhysProps,
    /// Claims for the node's children, in child-index order.
    pub children: Vec<Claims>,
}

impl Claims {
    /// The claim tree the optimizer itself derives: [`fn@derive`] applied
    /// to every node under `ctx`.
    pub fn derive_tree(plan: &Plan, ctx: &PropsContext) -> Self {
        Self {
            props: derive(plan, ctx),
            children: children(plan)
                .into_iter()
                .map(|c| Self::derive_tree(c, ctx))
                .collect(),
        }
    }

    /// A mutable reference to the claim entry at `path`, if the path is
    /// on the tree.
    pub fn at_mut(&mut self, path: &PlanPath) -> Option<&mut Claims> {
        let mut node = self;
        for &seg in path.segments() {
            node = node.children.get_mut(seg)?;
        }
        Some(node)
    }
}

/// What a [`VerifyError`] found wrong at its node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyErrorKind {
    /// A column reference (join key, predicate, projection or grouping
    /// column) is out of range for the node's input arity.
    ColumnOutOfRange {
        /// Which reference is broken ("Select predicate", "Join left
        /// key", ...).
        role: &'static str,
        /// The referenced column.
        col: usize,
        /// The input arity it must be below.
        arity: usize,
    },
    /// A `UnionAll` with no inputs (its arity and kinds are undefined).
    EmptyUnion,
    /// A `UnionAll` input whose arity differs from input 0's.
    UnionArityMismatch {
        /// The offending input position.
        input: usize,
        /// Its arity.
        got: usize,
        /// Input 0's arity.
        want: usize,
    },
    /// A `UnionAll` input whose [`ColumnKind`]s differ from input 0's —
    /// a count column unioned under a term column would decode wrongly.
    UnionKindMismatch {
        /// The offending input position.
        input: usize,
    },
    /// A `HavingCountGt` over an arity-0 input (there is no last column
    /// to read the count from).
    EmptySchema,
    /// The claim tree does not fit the plan, or a claim is internally
    /// malformed (key/run positions out of range or duplicated).
    ClaimShape {
        /// What exactly is malformed.
        detail: String,
    },
    /// A `sorted_by` claim that is not a prefix of the order the node
    /// can justify — executing it would merge-join (or binary-search,
    /// or run-aggregate) rows that are not actually sorted.
    UnsoundSortClaim {
        /// The claimed key.
        claimed: Vec<usize>,
        /// The longest key the checker can justify (`None` = unsorted).
        justified: Option<Vec<usize>>,
    },
    /// A `distinct` claim with no distinct-preserving justification —
    /// a downstream `Distinct` would skip deduplication and emit
    /// duplicate rows.
    UnsoundDistinctClaim,
    /// A `run_encoded` position that does not trace back to an
    /// RLE-stored scan through monotone operators.
    UnsoundRunClaim {
        /// The claimed run position.
        col: usize,
        /// The positions the checker can justify.
        justified: Vec<usize>,
    },
    /// A `run_encoded` claim on the output of a flat-materializing
    /// operator (group-count, multi-input union, hash join) — run
    /// columns never survive these, claimed or not.
    RunClaimAtFlatOperator {
        /// The claimed run position.
        col: usize,
    },
}

/// A typed plan-verification failure: what is wrong, and at exactly
/// which operator (by [`PlanPath`] and rendered label).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Path from the root to the offending node.
    pub path: PlanPath,
    /// The offending node's rendered label (e.g. `Join(left.col0 =
    /// right.col0)`).
    pub node: String,
    /// What is wrong there.
    pub kind: VerifyErrorKind,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "at {} [{}]: ", self.path, self.node)?;
        match &self.kind {
            VerifyErrorKind::ColumnOutOfRange { role, col, arity } => {
                write!(f, "{role} references column {col} of an arity-{arity} input")
            }
            VerifyErrorKind::EmptyUnion => write!(f, "UnionAll with no inputs"),
            VerifyErrorKind::UnionArityMismatch { input, got, want } => {
                write!(f, "union input {input} has arity {got} but input 0 has {want}")
            }
            VerifyErrorKind::UnionKindMismatch { input } => {
                write!(f, "union input {input} has different column kinds than input 0")
            }
            VerifyErrorKind::EmptySchema => write!(f, "HavingCountGt over an empty schema"),
            VerifyErrorKind::ClaimShape { detail } => write!(f, "malformed claim: {detail}"),
            VerifyErrorKind::UnsoundSortClaim { claimed, justified } => {
                write!(f, "claimed sorted_by={claimed:?} cannot be justified (")?;
                match justified {
                    Some(k) => write!(f, "justified: sorted_by={k:?})"),
                    None => write!(f, "justified: unsorted)"),
                }
            }
            VerifyErrorKind::UnsoundDistinctClaim => {
                write!(f, "claimed distinct cannot be justified")
            }
            VerifyErrorKind::UnsoundRunClaim { col, justified } => write!(
                f,
                "claimed run-encoding at column {col} cannot be justified (justified: {justified:?})"
            ),
            VerifyErrorKind::RunClaimAtFlatOperator { col } => write!(
                f,
                "claimed run-encoding at column {col} on a flat-materializing operator"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

/// What a successful verification covered — rendered by
/// `Database::explain_text` as the plan's verification footer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Operator nodes checked.
    pub nodes: usize,
    /// Joins whose claims dispatch them as merge joins.
    pub merge_joins: usize,
    /// Nodes claiming at least one run-encoded output column.
    pub run_claims: usize,
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "verified: {} nodes, {} merge joins, {} run-encoded claims",
            self.nodes, self.merge_joins, self.run_claims
        )
    }
}

/// Verifies `plan` under `ctx` using the claims the optimizer itself
/// derives — the pre-execution check the engines and `Database::explain`
/// run. See the module docs for the three layers checked.
pub fn verify(plan: &Plan, ctx: &PropsContext) -> Result<VerifyReport, VerifyError> {
    let claims = Claims::derive_tree(plan, ctx);
    verify_claims(plan, &claims, ctx)
}

/// Verifies `plan` against an *externally supplied* claim tree — the
/// entry point the mutation fuzzer uses to prove corrupted claims are
/// rejected. [`verify`] is `verify_claims` over [`Claims::derive_tree`].
pub fn verify_claims(
    plan: &Plan,
    claims: &Claims,
    ctx: &PropsContext,
) -> Result<VerifyReport, VerifyError> {
    let mut report = VerifyReport::default();
    let mut path = Vec::new();
    check(plan, claims, ctx, &mut path, &mut report)?;
    Ok(report)
}

/// One verification error at the current path.
fn err(kind: VerifyErrorKind, path: &[usize], plan: &Plan) -> VerifyError {
    VerifyError {
        path: PlanPath(path.to_vec()),
        node: plan.node_label(),
        kind,
    }
}

/// Recursive checker. Returns the properties the node's output is
/// *justified* to have — computed from the children's justified
/// properties, but with dispatch decisions (merge vs. hash join) driven
/// by the *claimed* child properties, exactly as the executor decides.
fn check(
    plan: &Plan,
    claims: &Claims,
    ctx: &PropsContext,
    path: &mut Vec<usize>,
    report: &mut VerifyReport,
) -> Result<PhysProps, VerifyError> {
    report.nodes += 1;
    let kids = children(plan);
    if claims.children.len() != kids.len() {
        return Err(err(
            VerifyErrorKind::ClaimShape {
                detail: format!(
                    "claim tree has {} children but the node has {}",
                    claims.children.len(),
                    kids.len()
                ),
            },
            path,
            plan,
        ));
    }

    // Children first: the deepest unjustifiable claim is reported.
    let mut kid_justified = Vec::with_capacity(kids.len());
    for (i, (kid, kid_claims)) in kids.iter().zip(&claims.children).enumerate() {
        path.push(i);
        kid_justified.push(check(kid, kid_claims, ctx, path, report)?);
        path.pop();
    }

    // ---- 1. flow typing ---------------------------------------------------
    check_structure(plan, path)?;

    // ---- 2+3. property soundness under claimed dispatch -------------------
    let justified = justify(plan, claims, &kid_justified, ctx, report);
    check_claims_shape(plan, &claims.props, path)?;
    check_soundness(plan, claims, &justified, path)?;
    if !claims.props.run_encoded.is_empty() {
        report.run_claims += 1;
    }
    Ok(justified)
}

/// The flow-typing layer: every column reference in range, unions
/// compatible. Mirrors [`Plan::validate`]'s rules with typed, located
/// errors.
fn check_structure(plan: &Plan, path: &[usize]) -> Result<(), VerifyError> {
    let out_of_range = |role, col, arity| {
        err(
            VerifyErrorKind::ColumnOutOfRange { role, col, arity },
            path,
            plan,
        )
    };
    match plan {
        Plan::ScanTriples { .. } | Plan::ScanProperty { .. } | Plan::Distinct { .. } => {}
        Plan::Select { input, pred } => {
            if pred.col >= input.arity() {
                return Err(out_of_range("Select predicate", pred.col, input.arity()));
            }
        }
        Plan::Join {
            left,
            right,
            left_col,
            right_col,
        } => {
            if *left_col >= left.arity() {
                return Err(out_of_range("Join left key", *left_col, left.arity()));
            }
            if *right_col >= right.arity() {
                return Err(out_of_range("Join right key", *right_col, right.arity()));
            }
        }
        Plan::FilterIn { input, col, .. } => {
            if *col >= input.arity() {
                return Err(out_of_range("FilterIn column", *col, input.arity()));
            }
        }
        Plan::Project { input, cols } => {
            for &c in cols {
                if c >= input.arity() {
                    return Err(out_of_range("Project column", c, input.arity()));
                }
            }
        }
        Plan::GroupCount { input, keys } => {
            for &k in keys {
                if k >= input.arity() {
                    return Err(out_of_range("GroupCount key", k, input.arity()));
                }
            }
        }
        Plan::HavingCountGt { input, .. } => {
            if input.arity() == 0 {
                return Err(err(VerifyErrorKind::EmptySchema, path, plan));
            }
        }
        Plan::LeapfrogJoin { inputs, cols } => {
            // Shape (≥2 inputs, one key column per input) is
            // `Plan::validate`'s rule; re-report with located errors.
            if inputs.len() < 2 || cols.len() != inputs.len() {
                return Err(err(
                    VerifyErrorKind::ClaimShape {
                        detail: format!(
                            "LeapfrogJoin over {} inputs with {} key columns",
                            inputs.len(),
                            cols.len()
                        ),
                    },
                    path,
                    plan,
                ));
            }
            for (input, &c) in inputs.iter().zip(cols) {
                if c >= input.arity() {
                    return Err(out_of_range("LeapfrogJoin key", c, input.arity()));
                }
            }
        }
        Plan::UnionAll { inputs } => {
            if inputs.is_empty() {
                return Err(err(VerifyErrorKind::EmptyUnion, path, plan));
            }
            let want_arity = inputs[0].arity();
            let want_kinds: Vec<ColumnKind> = inputs[0].output_kinds();
            for (i, p) in inputs.iter().enumerate().skip(1) {
                if p.arity() != want_arity {
                    return Err(err(
                        VerifyErrorKind::UnionArityMismatch {
                            input: i,
                            got: p.arity(),
                            want: want_arity,
                        },
                        path,
                        plan,
                    ));
                }
                if p.output_kinds() != want_kinds {
                    return Err(err(
                        VerifyErrorKind::UnionKindMismatch { input: i },
                        path,
                        plan,
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Internal claim well-formedness: key and run positions in range for
/// the node's own arity, no duplicates.
fn check_claims_shape(plan: &Plan, props: &PhysProps, path: &[usize]) -> Result<(), VerifyError> {
    let arity = plan.arity();
    let shape = |detail: String| err(VerifyErrorKind::ClaimShape { detail }, path, plan);
    if let Some(key) = &props.sorted_by {
        let mut seen = vec![false; arity];
        for &k in key {
            if k >= arity {
                return Err(shape(format!(
                    "sort key column {k} out of range for arity {arity}"
                )));
            }
            if seen[k] {
                return Err(shape(format!("sort key column {k} appears twice")));
            }
            seen[k] = true;
        }
    }
    let mut seen = vec![false; arity];
    for &r in &props.run_encoded {
        if r >= arity {
            return Err(shape(format!(
                "run-encoded column {r} out of range for arity {arity}"
            )));
        }
        if seen[r] {
            return Err(shape(format!("run-encoded column {r} claimed twice")));
        }
        seen[r] = true;
    }
    Ok(())
}

/// Computes the properties this node's output truthfully has, given the
/// children's *justified* properties — with dispatch decisions taken
/// from the *claimed* child properties, because that is what the
/// executor consults. (A weakened child claim therefore weakens the
/// parent's justification too: the engine would hash-join instead of
/// merge-joining, destroying order.)
fn justify(
    plan: &Plan,
    claims: &Claims,
    kid_justified: &[PhysProps],
    ctx: &PropsContext,
    report: &mut VerifyReport,
) -> PhysProps {
    match plan {
        // Leaves: justified directly by the layout and the delta state.
        Plan::ScanTriples { .. } | Plan::ScanProperty { .. } => derive(plan, ctx),
        // Monotone selection vectors preserve every property.
        Plan::Select { .. } | Plan::FilterIn { .. } | Plan::HavingCountGt { .. } => {
            kid_justified[0].clone()
        }
        // Deduplication preserves order and runs and guarantees
        // distinctness on every dispatch path (hash, sorted, passthrough).
        Plan::Distinct { .. } => PhysProps {
            sorted_by: kid_justified[0].sorted_by.clone(),
            distinct: true,
            run_encoded: kid_justified[0].run_encoded.clone(),
        },
        Plan::Project { input, cols } => {
            let ip = &kid_justified[0];
            let sorted_by = ip.sorted_by.as_ref().and_then(|key| {
                let mut out = Vec::new();
                for &k in key {
                    match cols.iter().position(|&c| c == k) {
                        Some(pos) => out.push(pos),
                        None => break,
                    }
                }
                (!out.is_empty()).then_some(out)
            });
            let distinct = ip.distinct && (0..input.arity()).all(|c| cols.contains(&c));
            let run_encoded = cols
                .iter()
                .enumerate()
                .filter(|&(_, c)| ip.run_encoded.contains(c))
                .map(|(i, _)| i)
                .collect();
            PhysProps {
                sorted_by,
                distinct,
                run_encoded,
            }
        }
        Plan::Join {
            left_col,
            right_col,
            ..
        } => {
            let (lj, rj) = (&kid_justified[0], &kid_justified[1]);
            let distinct = lj.distinct && rj.distinct;
            // Dispatch follows the *claims*: the engine merge-joins iff
            // both claimed inputs are sorted on their join columns.
            let merge = claims.children[0].props.sorted_on(*left_col)
                && claims.children[1].props.sorted_on(*right_col);
            if merge {
                report.merge_joins += 1;
                // Merge join: the left selection vector is monotone, so
                // left order and left run-encoding survive.
                PhysProps {
                    sorted_by: lj.sorted_by.clone(),
                    distinct,
                    run_encoded: lj.run_encoded.clone(),
                }
            } else {
                // Hash join: materializes flat in probe order.
                PhysProps {
                    sorted_by: None,
                    distinct,
                    run_encoded: Vec::new(),
                }
            }
        }
        Plan::LeapfrogJoin { cols, .. } => {
            let distinct = kid_justified.iter().all(|p| p.distinct);
            // The kernel only runs when every *claimed* input is sorted
            // on its key column — otherwise the engine falls back to the
            // binary hash-join fold, which materializes unordered.
            let dispatch = claims
                .children
                .iter()
                .zip(cols)
                .all(|(c, &k)| c.props.sorted_on(k));
            let sound = kid_justified.iter().zip(cols).all(|(p, &k)| p.sorted_on(k));
            PhysProps {
                sorted_by: (dispatch && sound).then(|| vec![cols[0]]),
                distinct,
                run_encoded: Vec::new(),
            }
        }
        // Key-sorted, key-distinct on every aggregation path.
        Plan::GroupCount { keys, .. } => PhysProps {
            sorted_by: Some((0..=keys.len()).collect()),
            distinct: true,
            run_encoded: Vec::new(),
        },
        Plan::UnionAll { inputs } => {
            if inputs.len() == 1 {
                // Singleton: pass-through, but the copy-out is flat.
                PhysProps {
                    run_encoded: Vec::new(),
                    ..kid_justified[0].clone()
                }
            } else {
                PhysProps::unordered()
            }
        }
    }
}

/// Whether the operator materializes its output flat (no run column can
/// survive it, claimed or not) — used to pick the legality-flavoured
/// error kind for run claims.
fn materializes_flat(plan: &Plan, claims: &Claims) -> bool {
    match plan {
        Plan::GroupCount { .. } => true,
        Plan::UnionAll { .. } => true,
        // Both the intersection kernel and its hash-fold fallback
        // materialize flat output.
        Plan::LeapfrogJoin { .. } => true,
        Plan::Join {
            left_col,
            right_col,
            ..
        } => {
            // Hash joins (by claimed dispatch) gather both sides flat.
            !(claims.children[0].props.sorted_on(*left_col)
                && claims.children[1].props.sorted_on(*right_col))
        }
        _ => false,
    }
}

/// The soundness layer: each claim must be within what [`justify`]
/// established. Run-claim violations at flat-materializing operators
/// are reported with the legality-specific
/// [`VerifyErrorKind::RunClaimAtFlatOperator`].
fn check_soundness(
    plan: &Plan,
    claims: &Claims,
    justified: &PhysProps,
    path: &[usize],
) -> Result<(), VerifyError> {
    let claimed = &claims.props;
    if let Some(key) = &claimed.sorted_by {
        // A claimed key is sound iff it is a prefix of the justified key
        // (claiming a weaker order than the truth is fine; a longer or
        // reordered key is not implied by lexicographic sortedness).
        let ok = justified
            .sorted_by
            .as_ref()
            .is_some_and(|jk| jk.len() >= key.len() && jk[..key.len()] == **key);
        if !ok {
            return Err(err(
                VerifyErrorKind::UnsoundSortClaim {
                    claimed: key.clone(),
                    justified: justified.sorted_by.clone(),
                },
                path,
                plan,
            ));
        }
    }
    if claimed.distinct && !justified.distinct {
        return Err(err(VerifyErrorKind::UnsoundDistinctClaim, path, plan));
    }
    for &r in &claimed.run_encoded {
        if !justified.run_encoded.contains(&r) {
            let kind = if materializes_flat(plan, claims) {
                VerifyErrorKind::RunClaimAtFlatOperator { col: r }
            } else {
                VerifyErrorKind::UnsoundRunClaim {
                    col: r,
                    justified: justified.run_encoded.clone(),
                }
            };
            return Err(err(kind, path, plan));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{group_count, join, project, scan_all, scan_p};
    use swans_rdf::SortOrder;

    fn pso() -> PropsContext {
        PropsContext::with_order(SortOrder::Pso)
    }

    fn vp(p: u64) -> Plan {
        Plan::ScanProperty {
            property: p,
            s: None,
            o: None,
            emit_property: false,
        }
    }

    #[test]
    fn derived_claims_always_verify() {
        let plans = [
            scan_all(),
            join(vp(1), vp(2), 0, 0),
            join(vp(1), vp(2), 1, 1),
            project(join(scan_p(3), scan_all(), 0, 0), vec![0, 4]),
            group_count(scan_all(), vec![1]),
            Plan::Distinct {
                input: Box::new(vp(4)),
            },
            Plan::UnionAll {
                inputs: vec![vp(1), vp(2), vp(3)],
            },
        ];
        for ctx in [
            PropsContext::default(),
            pso(),
            pso().with_pending_inserts([1]),
            pso().with_pending_tombstones([2]),
            pso().with_rle_props([1, 2]).with_triple_lead_rle(),
        ] {
            for plan in &plans {
                verify(plan, &ctx).unwrap_or_else(|e| panic!("{e} on {plan:?}"));
            }
        }
    }

    #[test]
    fn report_counts_nodes_and_merge_joins() {
        let plan = join(vp(1), vp(2), 0, 0);
        let report = verify(&plan, &pso()).unwrap();
        assert_eq!(report.nodes, 3);
        assert_eq!(report.merge_joins, 1);
        let hashed = join(vp(1), vp(2), 1, 1);
        assert_eq!(verify(&hashed, &pso()).unwrap().merge_joins, 0);
        let rle = pso().with_rle_props([1, 2]);
        assert_eq!(verify(&plan, &rle).unwrap().run_claims, 3);
    }

    #[test]
    fn structural_errors_carry_the_path() {
        // Join right key out of range, two levels deep.
        let bad = Plan::Distinct {
            input: Box::new(join(vp(1), vp(2), 0, 7)),
        };
        let e = verify(&bad, &pso()).unwrap_err();
        assert_eq!(e.path.segments(), &[0]);
        assert!(matches!(
            e.kind,
            VerifyErrorKind::ColumnOutOfRange {
                col: 7,
                arity: 2,
                ..
            }
        ));
        assert!(e.to_string().contains("$.0"), "{e}");
        assert!(e.to_string().contains("Join"), "{e}");
        assert_eq!(
            locate(&bad, &e.path).map(Plan::arity),
            Some(4),
            "path resolves to the join"
        );
    }

    #[test]
    fn union_mismatches_are_typed() {
        let empty = Plan::UnionAll { inputs: vec![] };
        assert!(matches!(
            verify(&empty, &pso()).unwrap_err().kind,
            VerifyErrorKind::EmptyUnion
        ));
        let arity = Plan::UnionAll {
            inputs: vec![scan_all(), vp(1)],
        };
        assert!(matches!(
            verify(&arity, &pso()).unwrap_err().kind,
            VerifyErrorKind::UnionArityMismatch {
                input: 1,
                got: 2,
                want: 3
            }
        ));
        let kinds = Plan::UnionAll {
            inputs: vec![vp(1), group_count(scan_all(), vec![0])],
        };
        assert!(matches!(
            verify(&kinds, &pso()).unwrap_err().kind,
            VerifyErrorKind::UnionKindMismatch { input: 1 }
        ));
    }

    #[test]
    fn strengthened_sort_claim_is_rejected() {
        // A hash join's output claims the left order anyway.
        let plan = join(vp(1), vp(2), 1, 1);
        let mut claims = Claims::derive_tree(&plan, &pso());
        claims.props.sorted_by = Some(vec![0, 1]);
        let e = verify_claims(&plan, &claims, &pso()).unwrap_err();
        assert!(e.path.is_root());
        assert!(matches!(
            e.kind,
            VerifyErrorKind::UnsoundSortClaim {
                justified: None,
                ..
            }
        ));
    }

    #[test]
    fn weakened_child_claim_invalidates_the_parents_merge_order() {
        // Claiming *less* at a child is individually sound, but the
        // parent join then hashes — its derived (still-sorted) claim
        // must be caught.
        let plan = join(vp(1), vp(2), 0, 0);
        let mut claims = Claims::derive_tree(&plan, &pso());
        claims.children[1].props.sorted_by = None;
        let e = verify_claims(&plan, &claims, &pso()).unwrap_err();
        assert!(e.path.is_root(), "the join's claim is the unsound one");
        assert!(matches!(e.kind, VerifyErrorKind::UnsoundSortClaim { .. }));
    }

    #[test]
    fn strengthened_distinct_claim_is_rejected() {
        let plan = vp(3);
        let mut claims = Claims::derive_tree(&plan, &pso());
        claims.props.distinct = true;
        let e = verify_claims(&plan, &claims, &pso()).unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::UnsoundDistinctClaim));
    }

    #[test]
    fn invented_run_claim_is_rejected() {
        // No RLE context: nothing justifies a run column.
        let plan = vp(3);
        let mut claims = Claims::derive_tree(&plan, &pso());
        claims.props.run_encoded = vec![0];
        let e = verify_claims(&plan, &claims, &pso()).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::UnsoundRunClaim { col: 0, .. }
        ));
    }

    #[test]
    fn malformed_claim_shapes_are_rejected() {
        let plan = vp(3);
        let ctx = pso();
        let mut claims = Claims::derive_tree(&plan, &ctx);
        claims.props.sorted_by = Some(vec![0, 5]);
        assert!(matches!(
            verify_claims(&plan, &claims, &ctx).unwrap_err().kind,
            VerifyErrorKind::ClaimShape { .. }
        ));
        let mut dup = Claims::derive_tree(&plan, &ctx);
        dup.props.sorted_by = Some(vec![0, 0]);
        assert!(matches!(
            verify_claims(&plan, &dup, &ctx).unwrap_err().kind,
            VerifyErrorKind::ClaimShape { .. }
        ));
        let mut chopped = Claims::derive_tree(&plan, &ctx);
        chopped.children.push(Claims {
            props: PhysProps::unordered(),
            children: Vec::new(),
        });
        assert!(matches!(
            verify_claims(&plan, &chopped, &ctx).unwrap_err().kind,
            VerifyErrorKind::ClaimShape { .. }
        ));
    }

    #[test]
    fn pending_inserts_invalidate_scan_order_claims() {
        // The claim tree derived on a *clean* store is no longer sound
        // once inserts are pending for the scanned property.
        let plan = vp(3);
        let clean = Claims::derive_tree(&plan, &pso());
        assert!(clean.props.sorted_by.is_some());
        let pending = pso().with_pending_inserts([3]);
        let e = verify_claims(&plan, &clean, &pending).unwrap_err();
        assert!(matches!(e.kind, VerifyErrorKind::UnsoundSortClaim { .. }));
        // ...while an insert on an unrelated property changes nothing.
        let unrelated = pso().with_pending_inserts([9]);
        assert!(verify_claims(&plan, &clean, &unrelated).is_ok());
    }

    #[test]
    fn run_claims_at_flat_operators_use_the_legality_kind() {
        let ctx = pso().with_rle_props([1, 2]);
        // A group-count can never emit run columns; claiming one is the
        // legality violation, not just an unsound derivation.
        let plan = group_count(vp(1), vec![0]);
        let mut claims = Claims::derive_tree(&plan, &ctx);
        claims.props.run_encoded = vec![0];
        let e = verify_claims(&plan, &claims, &ctx).unwrap_err();
        assert!(matches!(
            e.kind,
            VerifyErrorKind::RunClaimAtFlatOperator { col: 0 }
        ));
        // A hash join (by claimed dispatch) is flat-materializing too.
        let hashed = join(vp(1), vp(2), 1, 1);
        let mut hc = Claims::derive_tree(&hashed, &ctx);
        hc.props.run_encoded = vec![0];
        let he = verify_claims(&hashed, &hc, &ctx).unwrap_err();
        assert!(matches!(
            he.kind,
            VerifyErrorKind::RunClaimAtFlatOperator { col: 0 }
        ));
        // On a monotone operator the generic unsound-run kind fires.
        let select = Plan::FilterIn {
            input: Box::new(vp(9)),
            col: 1,
            values: vec![5],
        };
        let mut sc = Claims::derive_tree(&select, &ctx);
        sc.props.run_encoded = vec![0];
        let se = verify_claims(&select, &sc, &ctx).unwrap_err();
        assert!(matches!(se.kind, VerifyErrorKind::UnsoundRunClaim { .. }));
    }

    #[test]
    fn path_display_and_locate_agree() {
        let plan = join(project(vp(1), vec![0]), vp(2), 0, 0);
        let path = PlanPath::from_segments(vec![0, 0]);
        assert_eq!(path.to_string(), "$.0.0");
        assert_eq!(locate(&plan, &path), Some(&vp(1)));
        assert_eq!(locate(&plan, &PlanPath::from_segments(vec![2])), None);
        assert_eq!(PlanPath::root().to_string(), "$");
    }

    #[test]
    fn claims_at_mut_resolves_paths() {
        let plan = join(vp(1), vp(2), 0, 0);
        let mut claims = Claims::derive_tree(&plan, &pso());
        let leaf = claims
            .at_mut(&PlanPath::from_segments(vec![1]))
            .expect("path on tree");
        leaf.props.distinct = true;
        assert!(verify_claims(&plan, &claims, &pso()).is_err());
        assert!(claims.at_mut(&PlanPath::from_segments(vec![5])).is_none());
    }
}
