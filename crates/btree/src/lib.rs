//! # swans-btree
//!
//! A read-optimized, bulk-loaded B+tree over rows of `u64` columns, backed
//! by the [`swans_storage`] buffer pool for I/O accounting.
//!
//! This is the index substrate of the row-store engine (the paper's "DBX"
//! stand-in). The paper's benchmark keeps loading and index construction
//! outside the measured window ("the database loading, clustering and index
//! construction are all kept outside the scope of the benchmark", §2.3), so
//! the tree is *bulk-load-first*: built once, then probed and scanned — but
//! since the write path opened the update workload it also supports in-place
//! maintenance ([`BTree::insert_row`], [`BTree::remove_prefix`]), charging
//! each mutation a descent plus a leaf write and resizing its segments as
//! leaves split or empty.
//!
//! Design notes:
//!
//! * Rows are stored sorted in a flat arena; leaves are the arena split
//!   into page-sized runs, so leaf `i` *is* page `i` of the leaf segment.
//!   Interior nodes are not materialized — only their page *count* and
//!   shape matter for I/O accounting, so probes charge the node pages a
//!   real tree of the same fanout would touch.
//! * [`BTreeOptions::prefix_compressed`] models key-prefix compression of
//!   the leading key column (§4.1: *"mature B+tree implementations support
//!   key-prefix compression, thus in practice not storing the entire
//!   property column"*). It increases leaf capacity, which is exactly the
//!   benefit PSO clustering gets in the paper.
//! * A probe binary-searches the arena (CPU) and charges one page touch per
//!   interior level plus the touched leaves during the scan.

use std::ops::Range;

use swans_storage::{SegmentId, StorageManager, PAGE_SIZE};

/// Tuning options for a [`BTree`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BTreeOptions {
    /// Model key-prefix compression of the leading (clustering) column.
    ///
    /// The effect is *adaptive*: the leading column's storage cost is
    /// `min(8 bytes per entry, 16 bytes per distinct run)`, so a
    /// low-cardinality leading column (property under PSO: a few hundred
    /// runs) nearly vanishes, while a high-cardinality one (subject under
    /// SPO: almost all runs length 1) gains nothing. This mirrors how real
    /// key-prefix compression behaves on the two clusterings the paper
    /// compares.
    pub prefix_compressed: bool,
}

/// A static, bulk-loaded B+tree over fixed-arity `u64` rows, sorted
/// lexicographically.
#[derive(Debug, Clone)]
pub struct BTree {
    arity: usize,
    /// Row-major sorted data, `n_rows * arity` words.
    data: Vec<u64>,
    n_rows: usize,
    entries_per_leaf: usize,
    fanout: usize,
    leaf_segment: SegmentId,
    node_segment: SegmentId,
    /// Interior levels, top-down: (first page in node segment, page count).
    levels: Vec<(u32, u32)>,
    storage: StorageManager,
}

impl BTree {
    /// Bulk-loads `rows` (a flat, row-major buffer of `n * arity` words)
    /// into a new tree registered with `storage` under `name`.
    ///
    /// # Panics
    /// Panics if `rows.len()` is not a multiple of `arity`, or `arity == 0`.
    pub fn bulk_load(
        storage: &StorageManager,
        name: &str,
        arity: usize,
        mut rows: Vec<u64>,
        opts: BTreeOptions,
    ) -> Self {
        assert!(arity > 0, "arity must be positive");
        assert_eq!(rows.len() % arity, 0, "rows buffer must be row-aligned");
        let n_rows = rows.len() / arity;

        sort_rows(&mut rows, arity);

        let row_bytes = if opts.prefix_compressed && n_rows > 0 {
            // Adaptive: charge the leading column 16 bytes per run
            // (value + count), capped at its uncompressed cost.
            let mut runs = 1u64;
            for i in 1..n_rows {
                if rows[i * arity] != rows[(i - 1) * arity] {
                    runs += 1;
                }
            }
            let lead_bytes = (16 * runs).min(8 * n_rows as u64);
            ((arity - 1) * 8) + (lead_bytes.div_ceil(n_rows as u64) as usize).max(1)
        } else {
            arity * 8
        };
        let entries_per_leaf = (PAGE_SIZE / row_bytes).max(1);
        // Interior entry: separator key (compressed like the leaves) + child
        // pointer.
        let fanout = (PAGE_SIZE / (row_bytes + 8)).max(2);

        let (n_leaves, levels, total_node_pages) = tree_shape(n_rows, entries_per_leaf, fanout);
        let leaf_segment =
            storage.create_segment(format!("{name}/leaf"), n_leaves as u64 * PAGE_SIZE as u64);
        let node_segment = storage.create_segment(
            format!("{name}/nodes"),
            total_node_pages.max(1) as u64 * PAGE_SIZE as u64,
        );

        Self {
            arity,
            data: rows,
            n_rows,
            entries_per_leaf,
            fanout,
            leaf_segment,
            node_segment,
            levels,
            storage: storage.clone(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n_rows
    }

    /// True when the tree holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Number of key columns per row.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of leaf pages.
    pub fn leaf_pages(&self) -> u32 {
        self.storage.segment_pages(self.leaf_segment)
    }

    /// Tree height in interior levels (0 when a single leaf).
    pub fn interior_levels(&self) -> usize {
        self.levels.len()
    }

    /// The row at `idx`, **without** I/O accounting (internal/test use).
    #[inline]
    pub fn row(&self, idx: usize) -> &[u64] {
        &self.data[idx * self.arity..(idx + 1) * self.arity]
    }

    /// The row at `idx`, touching its leaf page (a scattered fetch, as done
    /// when resolving a secondary-index locator).
    pub fn fetch_row(&self, idx: usize) -> &[u64] {
        let page = (idx / self.entries_per_leaf) as u32;
        self.storage.touch_page(self.leaf_segment, page);
        self.row(idx)
    }

    /// First row index whose key-prefix is `>= prefix` (binary search).
    fn lower_bound(&self, prefix: &[u64]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.n_rows;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if compare_prefix(self.row(mid), prefix).is_lt() {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// First row index whose key-prefix is `> prefix`.
    fn upper_bound(&self, prefix: &[u64]) -> usize {
        let mut lo = 0usize;
        let mut hi = self.n_rows;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if compare_prefix(self.row(mid), prefix).is_gt() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Charges the interior node pages a root-to-leaf descent to
    /// `leaf_of(row_idx)` would touch.
    fn charge_descent(&self, row_idx: usize) {
        if self.levels.is_empty() {
            return;
        }
        let leaf = (row_idx.min(self.n_rows.saturating_sub(1)) / self.entries_per_leaf) as u32;
        // At the level directly above the leaves, `fanout` leaves share a
        // page; one more level up, `fanout^2` share a page, and so on.
        let mut divisor = 1u64;
        // levels is top-down; walk bottom-up for the divisor arithmetic.
        for (offset, pages) in self.levels.iter().rev() {
            divisor *= self.fanout as u64;
            let page = (leaf as u64 / divisor).min(*pages as u64 - 1) as u32;
            self.storage.touch_page(self.node_segment, offset + page);
        }
    }

    /// Looks up the contiguous row range whose leading columns equal
    /// `prefix`, charging one interior descent. Iterating the returned
    /// range via [`BTree::scan`] charges the leaf pages.
    pub fn probe(&self, prefix: &[u64]) -> Range<usize> {
        debug_assert!(prefix.len() <= self.arity);
        let start = self.lower_bound(prefix);
        let end = self.upper_bound(prefix);
        self.charge_descent(start);
        start..end
    }

    /// The full row range (a clustered full-table scan target).
    pub fn full_range(&self) -> Range<usize> {
        0..self.n_rows
    }

    /// Streams rows in `range`, touching each leaf page as it is entered.
    pub fn scan(&self, range: Range<usize>) -> Scan<'_> {
        Scan {
            tree: self,
            next: range.start,
            end: range.end.min(self.n_rows),
            current_page: u32::MAX,
        }
    }

    /// Convenience: probe + scan.
    pub fn scan_prefix(&self, prefix: &[u64]) -> Scan<'_> {
        let r = self.probe(prefix);
        self.scan(r)
    }

    /// Inserts `row` at its sorted position (after any equal rows) and
    /// returns that position.
    ///
    /// Charges one interior descent plus one leaf-page write; when the
    /// insertion grows the leaf count, the segments are resized (a page
    /// split). This is the write path the bulk-load-only seed lacked — the
    /// per-index maintenance cost every mutation pays on a row store.
    ///
    /// # Panics
    /// Panics if `row.len() != arity`.
    pub fn insert_row(&mut self, row: &[u64]) -> usize {
        assert_eq!(row.len(), self.arity, "row arity mismatch");
        let pos = self.upper_bound(row);
        self.data
            .splice(pos * self.arity..pos * self.arity, row.iter().copied());
        self.n_rows += 1;
        self.charge_descent(pos);
        self.sync_footprint();
        let leaf = ((pos / self.entries_per_leaf) as u32).min(self.leaf_pages() - 1);
        self.storage.write_page(self.leaf_segment, leaf);
        pos
    }

    /// Removes every row whose leading columns equal `prefix` (the whole
    /// row for a full-arity prefix), returning the range of positions the
    /// rows occupied before removal.
    ///
    /// Charges one interior descent plus one leaf-page write when rows
    /// were removed; shrinking segments are resized.
    pub fn remove_prefix(&mut self, prefix: &[u64]) -> Range<usize> {
        let range = self.probe(prefix);
        if range.is_empty() {
            return range;
        }
        self.data
            .drain(range.start * self.arity..range.end * self.arity);
        self.n_rows -= range.len();
        self.sync_footprint();
        if self.leaf_pages() > 0 {
            let leaf = ((range.start / self.entries_per_leaf) as u32).min(self.leaf_pages() - 1);
            self.storage.write_page(self.leaf_segment, leaf);
        }
        range
    }

    /// Adjusts every value of column `col` that is `>= from` by `delta` —
    /// the TID fixup a secondary index needs after the clustered tree
    /// shifted row positions underneath its locators. Pure in-memory
    /// bookkeeping; the touched leaves are charged by the caller's
    /// insert/remove, not here.
    pub fn shift_column_tail(&mut self, col: usize, from: u64, delta: i64) {
        debug_assert!(col < self.arity);
        for r in 0..self.n_rows {
            let v = &mut self.data[r * self.arity + col];
            if *v >= from {
                *v = v.wrapping_add_signed(delta);
            }
        }
    }

    /// Re-derives leaf and interior page counts from the current row count
    /// after an insert or remove, resizing the backing segments when the
    /// shape changed.
    fn sync_footprint(&mut self) {
        let (n_leaves, levels, total_node_pages) =
            tree_shape(self.n_rows, self.entries_per_leaf, self.fanout);
        if n_leaves != self.storage.segment_pages(self.leaf_segment) {
            self.storage
                .resize_segment(self.leaf_segment, n_leaves as u64 * PAGE_SIZE as u64);
        }
        if total_node_pages.max(1) != self.storage.segment_pages(self.node_segment) {
            self.storage.resize_segment(
                self.node_segment,
                total_node_pages.max(1) as u64 * PAGE_SIZE as u64,
            );
        }
        self.levels = levels;
    }
}

/// The page shape of a tree holding `n_rows` rows: leaf-page count,
/// interior levels top-down as `(first page offset, page count)`, and the
/// total interior page count. Shared by [`BTree::bulk_load`] and the
/// insert/remove resize path so probes always charge the same tree shape
/// the segments hold.
fn tree_shape(
    n_rows: usize,
    entries_per_leaf: usize,
    fanout: usize,
) -> (u32, Vec<(u32, u32)>, u32) {
    let n_leaves = n_rows.div_ceil(entries_per_leaf).max(1) as u32;
    let mut levels_bottom_up: Vec<u32> = Vec::new();
    let mut count = n_leaves;
    while count > 1 {
        count = count.div_ceil(fanout as u32);
        levels_bottom_up.push(count);
    }
    let total_node_pages: u32 = levels_bottom_up.iter().sum();
    let mut levels = Vec::with_capacity(levels_bottom_up.len());
    let mut offset = 0u32;
    for &pages in levels_bottom_up.iter().rev() {
        levels.push((offset, pages));
        offset += pages;
    }
    (n_leaves, levels, total_node_pages)
}

/// Streaming row iterator over a [`BTree`] range.
pub struct Scan<'a> {
    tree: &'a BTree,
    next: usize,
    end: usize,
    current_page: u32,
}

impl<'a> Iterator for Scan<'a> {
    type Item = &'a [u64];

    #[inline]
    fn next(&mut self) -> Option<&'a [u64]> {
        if self.next >= self.end {
            return None;
        }
        let page = (self.next / self.tree.entries_per_leaf) as u32;
        if page != self.current_page {
            self.tree.storage.touch_page(self.tree.leaf_segment, page);
            self.current_page = page;
        }
        let row = self.tree.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Scan<'_> {}

/// Lexicographic comparison of a row against a (possibly shorter) prefix.
#[inline]
fn compare_prefix(row: &[u64], prefix: &[u64]) -> std::cmp::Ordering {
    for (a, b) in row.iter().zip(prefix.iter()) {
        match a.cmp(b) {
            std::cmp::Ordering::Equal => continue,
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// Sorts a flat row-major buffer lexicographically by row.
fn sort_rows(rows: &mut Vec<u64>, arity: usize) {
    let n = rows.len() / arity;
    if n <= 1 {
        return;
    }
    // Sort an index permutation, then gather. Avoids unstable slice tricks
    // and keeps the sort allocation transient.
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        let ra = &rows[a as usize * arity..(a as usize + 1) * arity];
        let rb = &rows[b as usize * arity..(b as usize + 1) * arity];
        ra.cmp(rb)
    });
    let mut out = Vec::with_capacity(rows.len());
    for i in idx {
        out.extend_from_slice(&rows[i as usize * arity..(i as usize + 1) * arity]);
    }
    *rows = out;
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_storage::MachineProfile;

    fn mgr() -> StorageManager {
        StorageManager::new(MachineProfile::B)
    }

    fn flat(rows: &[[u64; 3]]) -> Vec<u64> {
        rows.iter().flatten().copied().collect()
    }

    #[test]
    fn bulk_load_sorts_rows() {
        let m = mgr();
        let t = BTree::bulk_load(
            &m,
            "t",
            3,
            flat(&[[3, 0, 0], [1, 2, 3], [1, 1, 9], [2, 5, 5]]),
            BTreeOptions::default(),
        );
        let rows: Vec<&[u64]> = t.scan(t.full_range()).collect();
        assert_eq!(
            rows,
            vec![&[1, 1, 9][..], &[1, 2, 3], &[2, 5, 5], &[3, 0, 0]]
        );
    }

    #[test]
    fn probe_finds_prefix_ranges() {
        let m = mgr();
        let t = BTree::bulk_load(
            &m,
            "t",
            3,
            flat(&[[1, 1, 1], [1, 2, 1], [1, 2, 2], [2, 1, 1], [3, 3, 3]]),
            BTreeOptions::default(),
        );
        assert_eq!(t.probe(&[1]), 0..3);
        assert_eq!(t.probe(&[1, 2]), 1..3);
        assert_eq!(t.probe(&[1, 2, 2]), 2..3);
        assert_eq!(t.probe(&[9]), 5..5);
        assert_eq!(t.probe(&[0]), 0..0);
    }

    #[test]
    fn scan_touches_each_leaf_page_once() {
        let m = mgr();
        // 8192/24 = 341 rows per (uncompressed) leaf; 1000 rows = 3 leaves.
        let rows: Vec<u64> = (0..1000u64).flat_map(|i| [i, i, i]).collect();
        let t = BTree::bulk_load(&m, "t", 3, rows, BTreeOptions::default());
        assert_eq!(t.leaf_pages(), 3);
        m.reset_stats();
        m.clear_pool();
        let n = t.scan(t.full_range()).count();
        assert_eq!(n, 1000);
        assert_eq!(m.stats().bytes_read, 3 * PAGE_SIZE as u64);
    }

    #[test]
    fn prefix_compression_increases_leaf_capacity() {
        let m = mgr();
        let rows: Vec<u64> = (0..10_000u64).flat_map(|i| [5, i, i]).collect();
        let plain = BTree::bulk_load(&m, "p", 3, rows.clone(), BTreeOptions::default());
        let comp = BTree::bulk_load(
            &m,
            "c",
            3,
            rows,
            BTreeOptions {
                prefix_compressed: true,
            },
        );
        assert!(comp.leaf_pages() < plain.leaf_pages());
    }

    /// Compression is adaptive: a unique leading column (SPO-style) gains
    /// nothing, while a low-cardinality one (PSO-style) shrinks.
    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn prefix_compression_is_adaptive() {
        let m = mgr();
        let opts = BTreeOptions {
            prefix_compressed: true,
        };
        // Leading column all-distinct: every entry is its own run.
        let unique: Vec<u64> = (0..10_000u64).flat_map(|i| [i, 0, 0]).collect();
        let u_plain = BTree::bulk_load(&m, "u0", 3, unique.clone(), BTreeOptions::default());
        let u_comp = BTree::bulk_load(&m, "u1", 3, unique, opts);
        assert_eq!(u_comp.leaf_pages(), u_plain.leaf_pages());

        // Leading column with 10 runs: close to dropping a whole column.
        let runs: Vec<u64> = (0..10_000u64).flat_map(|i| [i / 1000, i, 0]).collect();
        let r_plain = BTree::bulk_load(&m, "r0", 3, runs.clone(), BTreeOptions::default());
        let r_comp = BTree::bulk_load(&m, "r1", 3, runs, opts);
        assert!(r_comp.leaf_pages() < r_plain.leaf_pages());
    }

    #[test]
    #[cfg_attr(miri, ignore = "large input: minutes under the interpreter")]
    fn probe_charges_interior_descent() {
        let m = mgr();
        let rows: Vec<u64> = (0..200_000u64).flat_map(|i| [i % 7, i, i]).collect();
        let t = BTree::bulk_load(&m, "t", 3, rows, BTreeOptions::default());
        assert!(t.interior_levels() >= 1);
        m.reset_stats();
        m.clear_pool();
        let _ = t.probe(&[3]);
        let s = m.stats();
        assert_eq!(
            s.bytes_read,
            t.interior_levels() as u64 * PAGE_SIZE as u64,
            "a probe reads one interior page per level and no leaves"
        );
    }

    #[test]
    fn fetch_row_touches_single_leaf() {
        let m = mgr();
        let rows: Vec<u64> = (0..1000u64).flat_map(|i| [i, i, i]).collect();
        let t = BTree::bulk_load(&m, "t", 3, rows, BTreeOptions::default());
        m.reset_stats();
        m.clear_pool();
        assert_eq!(t.fetch_row(999), &[999, 999, 999]);
        assert_eq!(m.stats().bytes_read, PAGE_SIZE as u64);
    }

    #[test]
    fn empty_tree_behaves() {
        let m = mgr();
        let t = BTree::bulk_load(&m, "e", 3, vec![], BTreeOptions::default());
        assert!(t.is_empty());
        assert_eq!(t.probe(&[1]), 0..0);
        assert_eq!(t.scan(t.full_range()).count(), 0);
    }

    #[test]
    fn insert_keeps_sort_order_and_grows_segments() {
        let m = mgr();
        let rows: Vec<u64> = (0..1000u64).flat_map(|i| [i * 2, i, i]).collect();
        let mut t = BTree::bulk_load(&m, "t", 3, rows, BTreeOptions::default());
        let pages_before = t.leaf_pages();
        m.reset_stats();
        let pos = t.insert_row(&[5, 9, 9]);
        assert_eq!(pos, 3, "5 lands after 0,2,4");
        assert_eq!(t.len(), 1001);
        let got: Vec<Vec<u64>> = t.scan(t.full_range()).map(|r| r.to_vec()).collect();
        assert!(got.windows(2).all(|w| w[0] <= w[1]), "still sorted");
        assert!(
            m.stats().bytes_written >= PAGE_SIZE as u64,
            "leaf write charged"
        );
        // Enough inserts force a leaf split (segment growth).
        for i in 0..400u64 {
            t.insert_row(&[i, 0, 0]);
        }
        assert!(t.leaf_pages() > pages_before);
    }

    #[test]
    fn remove_prefix_removes_all_matches() {
        let m = mgr();
        let mut t = BTree::bulk_load(
            &m,
            "d",
            2,
            vec![7, 1, 7, 2, 7, 2, 8, 1],
            BTreeOptions::default(),
        );
        // Full-row prefix removes every copy of exactly that row.
        let r = t.remove_prefix(&[7, 2]);
        assert_eq!(r, 1..3);
        assert_eq!(t.len(), 2);
        // Missing row: empty range, nothing changes.
        assert!(t.remove_prefix(&[9, 9]).is_empty());
        let got: Vec<Vec<u64>> = t.scan(t.full_range()).map(|r| r.to_vec()).collect();
        assert_eq!(got, vec![vec![7, 1], vec![8, 1]]);
    }

    #[test]
    fn shift_column_tail_adjusts_locators() {
        let m = mgr();
        let mut t = BTree::bulk_load(
            &m,
            "s",
            2,
            vec![10, 0, 20, 1, 30, 2],
            BTreeOptions::default(),
        );
        t.shift_column_tail(1, 1, 5);
        let got: Vec<Vec<u64>> = t.scan(t.full_range()).map(|r| r.to_vec()).collect();
        assert_eq!(got, vec![vec![10, 0], vec![20, 6], vec![30, 7]]);
        t.shift_column_tail(1, 6, -1);
        let got: Vec<Vec<u64>> = t.scan(t.full_range()).map(|r| r.to_vec()).collect();
        assert_eq!(got, vec![vec![10, 0], vec![20, 5], vec![30, 6]]);
    }

    #[test]
    fn insert_into_empty_tree() {
        let m = mgr();
        let mut t = BTree::bulk_load(&m, "e", 2, vec![], BTreeOptions::default());
        assert_eq!(t.insert_row(&[4, 2]), 0);
        assert_eq!(t.len(), 1);
        assert_eq!(t.probe(&[4]), 0..1);
    }

    #[test]
    fn duplicate_keys_all_returned() {
        let m = mgr();
        let t = BTree::bulk_load(
            &m,
            "d",
            2,
            vec![7, 1, 7, 2, 7, 3, 8, 1],
            BTreeOptions::default(),
        );
        let hits: Vec<&[u64]> = t.scan_prefix(&[7]).collect();
        assert_eq!(hits.len(), 3);
    }
}

#[cfg(all(test, feature = "proptests"))]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;
    use swans_storage::MachineProfile;

    proptest! {
        /// Probe ranges agree with a sorted-model reference for arbitrary
        /// data and probe prefixes.
        #[test]
        fn probe_matches_reference(
            mut rows in proptest::collection::vec((0u64..20, 0u64..20, 0u64..20), 0..300),
            probes in proptest::collection::vec((0u64..22, proptest::option::of(0u64..22)), 0..32),
        ) {
            let m = StorageManager::new(MachineProfile::A);
            let flat: Vec<u64> = rows.iter().flat_map(|&(a, b, c)| [a, b, c]).collect();
            let t = BTree::bulk_load(&m, "t", 3, flat, BTreeOptions::default());

            rows.sort_unstable();
            // Keep a sorted multiset as the reference model.
            let mut model: BTreeMap<(u64, u64, u64), u64> = BTreeMap::new();
            for &r in &rows {
                *model.entry(r).or_insert(0) += 1;
            }
            prop_assert_eq!(t.len(), rows.len());

            for (k0, k1) in probes {
                let prefix: Vec<u64> = match k1 {
                    None => vec![k0],
                    Some(k1) => vec![k0, k1],
                };
                let got: Vec<Vec<u64>> =
                    t.scan_prefix(&prefix).map(|r| r.to_vec()).collect();
                let want: Vec<Vec<u64>> = rows
                    .iter()
                    .filter(|&&(a, b, _)| {
                        a == prefix[0] && prefix.get(1).is_none_or(|&x| b == x)
                    })
                    .map(|&(a, b, c)| vec![a, b, c])
                    .collect();
                prop_assert_eq!(got, want);
            }
        }

        /// Scanning the full range returns exactly the multiset of inputs,
        /// sorted.
        #[test]
        fn full_scan_is_sorted_multiset(
            rows in proptest::collection::vec((0u64..50, 0u64..50), 0..400),
        ) {
            let m = StorageManager::new(MachineProfile::A);
            let flat: Vec<u64> = rows.iter().flat_map(|&(a, b)| [a, b]).collect();
            let t = BTree::bulk_load(&m, "t", 2, flat, BTreeOptions::default());
            let got: Vec<(u64, u64)> = t
                .scan(t.full_range())
                .map(|r| (r[0], r[1]))
                .collect();
            let mut want = rows.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }
}
