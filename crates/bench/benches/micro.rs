//! Criterion micro-benchmarks for the substrate hot paths — the ablation
//! benches for the design choices DESIGN.md calls out: clustering order,
//! prefix compression, join algorithm, tuple-at-a-time vs vectorized
//! execution, and the dictionary/hash substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use swans_btree::{BTree, BTreeOptions};
use swans_colstore::ops;
use swans_rdf::{Dictionary, SortOrder, Triple};
use swans_storage::{MachineProfile, StorageManager};

fn storage() -> StorageManager {
    StorageManager::new(MachineProfile::B)
}

/// B+tree point probes and prefix range scans.
fn bench_btree(c: &mut Criterion) {
    let m = storage();
    let n = 200_000u64;
    let rows: Vec<u64> = (0..n).flat_map(|i| [i % 222, i, i * 7 % 1000]).collect();
    let tree = BTree::bulk_load(&m, "bench", 3, rows, BTreeOptions::default());

    let mut g = c.benchmark_group("btree");
    g.bench_function("probe_point", |b| {
        let mut k = 0u64;
        b.iter(|| {
            k = (k + 17) % 222;
            black_box(tree.probe(&[k]))
        })
    });
    g.bench_function("scan_prefix_1k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for row in tree.scan_prefix(&[black_box(7u64)]).take(1000) {
                acc ^= row[1];
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Ablation: bulk-load cost with and without adaptive prefix compression,
/// for PSO-style (low-cardinality lead) vs SPO-style (distinct lead) keys.
fn bench_btree_compression(c: &mut Criterion) {
    let n = 100_000u64;
    let pso_rows: Vec<u64> = (0..n).flat_map(|i| [i % 222, i, i]).collect();
    let spo_rows: Vec<u64> = (0..n).flat_map(|i| [i, i % 222, i]).collect();

    let mut g = c.benchmark_group("btree_bulk_load");
    g.throughput(Throughput::Elements(n));
    for (label, rows) in [("pso_keys", &pso_rows), ("spo_keys", &spo_rows)] {
        for compressed in [false, true] {
            g.bench_with_input(
                BenchmarkId::new(label.to_string(), compressed),
                rows,
                |b, rows| {
                    b.iter(|| {
                        let m = storage();
                        black_box(BTree::bulk_load(
                            &m,
                            "t",
                            3,
                            rows.to_vec(),
                            BTreeOptions {
                                prefix_compressed: compressed,
                            },
                        ))
                    })
                },
            );
        }
    }
    g.finish();
}

/// Ablation: merge join vs hash join on sorted inputs (the VP claim of
/// "fast (linear) merge joins" vs what a hash join actually costs).
fn bench_joins(c: &mut Criterion) {
    let n = 100_000usize;
    let left: Vec<u64> = (0..n as u64).map(|i| i / 2).collect(); // sorted, dup pairs
    let right: Vec<u64> = (0..n as u64).map(|i| i / 3).collect();

    let mut g = c.benchmark_group("join");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("merge_sorted", |b| {
        b.iter(|| black_box(ops::merge_join(&left, &right)))
    });
    g.bench_function("hash", |b| {
        b.iter(|| black_box(ops::hash_join(&left, &right)))
    });
    g.finish();
}

/// Vectorized kernels: selection and grouping.
fn bench_kernels(c: &mut Criterion) {
    let n = 1_000_000usize;
    let col: Vec<u64> = (0..n as u64).map(|i| i % 500).collect();

    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("select_eq", |b| {
        b.iter(|| black_box(ops::select_cmp(&col, black_box(42), false)))
    });
    g.bench_function("group_count_1", |b| {
        b.iter(|| black_box(ops::group_count_1(&col)))
    });
    g.finish();
}

/// Dictionary interning throughput.
fn bench_dictionary(c: &mut Criterion) {
    let terms: Vec<String> = (0..50_000).map(|i| format!("<sub{i:07}>")).collect();
    let mut g = c.benchmark_group("dictionary");
    g.throughput(Throughput::Elements(terms.len() as u64));
    g.bench_function("intern_fresh", |b| {
        b.iter(|| {
            let mut d = Dictionary::with_capacity(terms.len());
            for t in &terms {
                black_box(d.intern(t));
            }
            black_box(d.len())
        })
    });
    g.bench_function("lookup_hot", |b| {
        let mut d = Dictionary::with_capacity(terms.len());
        for t in &terms {
            d.intern(t);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for t in &terms {
                acc ^= d.id_of(t).unwrap();
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// Ablation: the architectural gap — tuple-at-a-time Volcano scan vs a
/// vectorized column scan over the same selection.
fn bench_execution_styles(c: &mut Criterion) {
    use swans_colstore::ColumnEngine;
    use swans_plan::algebra::{group_count, project, scan_p};
    use swans_rowstore::engine::{RowEngine, TripleIndexConfig};

    let n = 200_000u64;
    let triples: Vec<Triple> = (0..n)
        .map(|i| Triple::new(i % 50_000, i % 222, i % 4000))
        .collect();

    let m = storage();
    let mut row = RowEngine::new();
    row.load_triple_store(&m, &triples, &TripleIndexConfig::pso());
    let mut col = ColumnEngine::new();
    col.load_triple_store(&m, &triples, SortOrder::Pso, true);

    // q1-shaped plan: select on property, group objects.
    let plan = group_count(project(scan_p(7), vec![2]), vec![0]);
    // Warm the pool so only CPU is compared.
    let _ = row.execute(&plan);
    let _ = col.execute(&plan);

    let mut g = c.benchmark_group("execution_style_q1");
    g.bench_function("row_volcano", |b| b.iter(|| black_box(row.execute(&plan))));
    g.bench_function("column_vectorized", |b| {
        b.iter(|| black_box(col.execute(&plan)))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets =
    bench_btree,
    bench_btree_compression,
    bench_joins,
    bench_kernels,
    bench_dictionary,
    bench_execution_styles
);
criterion_main!(benches);
