//! Micro-benchmark of the order-exploiting kernels against their hash /
//! sort counterparts, using a plain `std::time` harness so it builds in
//! the fully-offline workspace (`harness = false`; the criterion benches
//! in this directory stay disabled until crates.io is reachable —
//! see `autobenches` in Cargo.toml).
//!
//! Run with `cargo bench -p swans-bench --bench sorted_vs_hash`;
//! `cargo bench --no-run` (CI) only compiles it.

use std::hint::black_box;
use std::time::Instant;

use swans_colstore::ops;
use swans_datagen::rng::StdRng;

const N: usize = 400_000;
const ROUNDS: u32 = 5;

fn timed<F: FnMut() -> u64>(label: &str, mut f: F) -> f64 {
    // One warm-up, then best-of-ROUNDS.
    black_box(f());
    let mut best = f64::INFINITY;
    for _ in 0..ROUNDS {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    println!("{label:<44} {:>10.3} ms", best * 1e3);
    best
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    // Two subject-sorted columns with duplicates — the VP join shape.
    let mut left: Vec<u64> = (0..N).map(|_| rng.next_u64() % (N as u64 / 4)).collect();
    let mut right: Vec<u64> = (0..N).map(|_| rng.next_u64() % (N as u64 / 4)).collect();
    left.sort_unstable();
    right.sort_unstable();

    println!("kernel                                        best-of-{ROUNDS}");
    println!("{}", "-".repeat(60));

    let merge = timed("merge_join (sorted inputs)", || {
        ops::merge_join(&left, &right).0.len() as u64
    });
    let hash = timed("hash_join (same inputs)", || {
        ops::hash_join(&left, &right).0.len() as u64
    });
    println!("  -> merge join speedup: {:.2}x", hash / merge.max(1e-12));

    let sorted_group = timed("group_count_sorted_1 (sorted keys)", || {
        ops::group_count_sorted_1(&left).0.len() as u64
    });
    let hash_group = timed("group_count_1 (same keys)", || {
        ops::group_count_1(&left).0.len() as u64
    });
    println!(
        "  -> run aggregation speedup: {:.2}x",
        hash_group / sorted_group.max(1e-12)
    );

    let pair: Vec<u64> = left.iter().map(|&v| v % 16).collect();
    let sorted_d = timed("distinct_sorted (sorted rows)", || {
        ops::distinct_sorted(&[&left, &pair], N).len() as u64
    });
    let sort_d = timed("distinct_rows (same rows)", || {
        ops::distinct_rows(&[&left, &pair], N).len() as u64
    });
    println!(
        "  -> linear distinct speedup: {:.2}x",
        sort_d / sorted_d.max(1e-12)
    );

    let probe: Vec<u64> = (0..N).map(|_| rng.next_u64() % 64).collect();
    let small = [3u64, 9, 12, 40];
    timed("select_in (4-value list, linear path)", || {
        ops::select_in(&probe, &small).len() as u64
    });
    let big: Vec<u64> = (0..64).collect();
    timed("select_in (64-value list, hash path)", || {
        ops::select_in(&probe, &big).len() as u64
    });
}
