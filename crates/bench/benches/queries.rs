//! Criterion benchmarks over the benchmark queries themselves: hot-run
//! CPU time per (engine × layout) for representative queries, on a small
//! calibrated data set. These are the per-query ablations behind Tables 6
//! and 7 (absolute simulated-I/O effects are covered by the harness
//! binaries; criterion measures the compute path).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use swans_core::{Layout, RdfStore, StoreConfig};
use swans_datagen::{generate, BartonConfig};
use swans_plan::queries::{QueryContext, QueryId};
use swans_rdf::SortOrder;

fn bench_queries(c: &mut Criterion) {
    let dataset = generate(&BartonConfig {
        scale: 0.002, // ~100k triples
        seed: 42,
        n_properties: 222,
    });
    let ctx = QueryContext::from_dataset(&dataset, 28);

    let configs = [
        ("row_triple_pso", StoreConfig::row(Layout::TripleStore(SortOrder::Pso))),
        ("row_vert", StoreConfig::row(Layout::VerticallyPartitioned)),
        (
            "col_triple_pso",
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        ),
        ("col_vert", StoreConfig::column(Layout::VerticallyPartitioned)),
    ];
    let stores: Vec<(&str, RdfStore)> = configs
        .into_iter()
        .map(|(label, c)| (label, RdfStore::load(&dataset, c)))
        .collect();

    for q in [QueryId::Q1, QueryId::Q2, QueryId::Q2Star, QueryId::Q5, QueryId::Q8] {
        let mut g = c.benchmark_group(format!("query_{}", q.name().replace('*', "_star")));
        for (label, store) in &stores {
            // Warm up (hot-run protocol).
            let _ = store.run_query(q, &ctx);
            g.bench_with_input(BenchmarkId::from_parameter(label), store, |b, store| {
                b.iter(|| black_box(store.run_query(q, &ctx).rows.len()))
            });
        }
        g.finish();
    }
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_queries
);
criterion_main!(benches);
