//! The overload experiment (`bench_pr10`, `BENCH_PR10.json`): goodput,
//! latency, and shed rate as offered load climbs past the server's
//! capacity.
//!
//! ## What "graceful degradation" means, measurably
//!
//! An ungoverned thread-per-connection server answers overload by
//! accepting everything: memory grows with the backlog, every request's
//! latency grows with the queue, and goodput *collapses* as the machine
//! thrashes. The governed server bounds its worker pool and admission
//! queue instead, and **sheds** the excess instantly with `503` +
//! `Retry-After`. The measurable claims this benchmark pins:
//!
//! * **Goodput holds**: successful requests per second at 2× and 4×
//!   offered load stay within ~10% of the saturated single-load
//!   capacity — the server does capacity-worth of work no matter how
//!   hard it is hammered.
//! * **Latency stays bounded**: p99 of *successful* requests is capped
//!   by the queue depth × service time, not by the offered backlog.
//! * **Shedding is cheap and honest**: refused requests answer in
//!   microseconds and carry `Retry-After`, so well-behaved clients back
//!   off instead of timing out blind.
//!
//! The served queries pay real wall-clock time for their simulated I/O
//! (as in the `bench_serve` experiment), so "capacity" is a genuine
//! requests-per-second wall, even on a single-core runner.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use swans_core::{Database, Layout, StoreConfig};
use swans_serve::{http_request_full, percent_encode, serve_with, ServeConfig, Server};

use crate::HarnessConfig;

/// The scan-heavy request: aggregates the largest property table
/// through a pool too small to cache it, so every request pays
/// simulated-I/O wall time and the worker pool has a real capacity.
const SCAN_Q: &str = "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t";

/// Pool pages for the served database — thrashes on the scan, as in
/// the serving benchmark.
const POOL_PAGES: usize = 4;
/// Wall-clock seconds slept per simulated I/O second.
const REALTIME_SCALE: f64 = 1.0;
/// Worker threads — the server's deliberate capacity.
const WORKERS: usize = 2;
/// Admission-queue depth: what may wait beyond the workers.
const QUEUE_DEPTH: usize = 2;

/// One measured phase at a fixed offered load.
#[derive(Debug, Clone)]
pub struct OverloadPhase {
    /// Phase label, e.g. `overload/4x`.
    pub name: String,
    /// Offered load as a multiple of the worker count.
    pub load_multiple: usize,
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Requests attempted across all clients.
    pub offered: usize,
    /// `200` responses — the goodput numerator.
    pub ok: usize,
    /// `503` shed responses (every one carried `Retry-After`).
    pub shed: usize,
    /// Anything else: transport errors, missing `Retry-After`, other
    /// statuses. Must be 0.
    pub errors: usize,
    /// Wall-clock seconds for the phase.
    pub seconds: f64,
    /// Successful requests per second.
    pub goodput_rps: f64,
    /// Median latency of successful requests, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile latency of successful requests, milliseconds.
    pub p99_ms: f64,
    /// 99th-percentile latency of shed responses, milliseconds —
    /// refusal must be orders of magnitude cheaper than service.
    pub shed_p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Runs `clients` closed-loop threads for a fixed wall-clock window
/// (steady state, no end-of-phase tail where finished clients leave the
/// server idle), sorting responses into ok / shed / error. A shed
/// client backs off one millisecond — a token nod to the `Retry-After`
/// it was handed — so the phase measures the server's shedding, not
/// loopback connect spin starving a single-core runner.
fn phase(server: &Server, name: &str, load_multiple: usize, window: Duration) -> OverloadPhase {
    let clients = WORKERS * load_multiple;
    let addr = server.addr();
    let target = format!("/query?q={}", percent_encode(SCAN_Q));
    let errors = AtomicUsize::new(0);
    let started = Instant::now();
    let end = started + window;
    let (mut ok_ms, mut shed_ms): (Vec<f64>, Vec<f64>) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|_| {
                let errors = &errors;
                let target = &target;
                scope.spawn(move || {
                    let mut ok = Vec::new();
                    let mut shed = Vec::new();
                    while Instant::now() < end {
                        let t0 = Instant::now();
                        match http_request_full(addr, "GET", target, "", Duration::from_secs(60)) {
                            Ok((200, _, _)) => ok.push(t0.elapsed().as_secs_f64() * 1000.0),
                            Ok((503, headers, _))
                                if headers.iter().any(|(n, _)| n == "retry-after") =>
                            {
                                shed.push(t0.elapsed().as_secs_f64() * 1000.0);
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client")).fold(
            (Vec::new(), Vec::new()),
            |(mut ok, mut shed), (o, s)| {
                ok.extend(o);
                shed.extend(s);
                (ok, shed)
            },
        )
    });
    let seconds = started.elapsed().as_secs_f64();
    ok_ms.sort_by(|a, b| a.total_cmp(b));
    shed_ms.sort_by(|a, b| a.total_cmp(b));
    OverloadPhase {
        name: name.to_string(),
        load_multiple,
        clients,
        offered: ok_ms.len() + shed_ms.len() + errors.load(Ordering::Relaxed),
        ok: ok_ms.len(),
        shed: shed_ms.len(),
        errors: errors.load(Ordering::Relaxed),
        seconds,
        goodput_rps: ok_ms.len() as f64 / seconds,
        p50_ms: percentile(&ok_ms, 50.0),
        p99_ms: percentile(&ok_ms, 99.0),
        shed_p99_ms: percentile(&shed_ms, 99.0),
    }
}

/// The full experiment: a capacity phase at 1× load (clients ==
/// workers, nothing queues long, nothing sheds), then overload at 2×
/// and 4×. Returns the phases and the worst goodput-to-capacity ratio
/// across the overload phases — the acceptance number.
pub fn run(cfg: &HarnessConfig, quick: bool) -> (Vec<OverloadPhase>, f64) {
    let ds = cfg.dataset();
    let triples = ds.len();
    let config = StoreConfig::column(Layout::VerticallyPartitioned)
        .on_machine(swans_storage::MachineProfile::B)
        .with_pool_pages(POOL_PAGES);
    let db = Arc::new(Database::open(ds, config).expect("opens"));
    db.storage().set_realtime_io(REALTIME_SCALE);
    let server = serve_with(
        db,
        "127.0.0.1:0",
        ServeConfig {
            workers: WORKERS,
            queue_depth: QUEUE_DEPTH,
            // Generous per-request deadline: this experiment isolates
            // admission control; deadline kills are exercised by the
            // governance test suite.
            request_timeout: Duration::from_secs(60),
            ..ServeConfig::default()
        },
    )
    .expect("binds");
    eprintln!(
        "[bench_pr10] {triples} triples, {WORKERS} workers, queue {QUEUE_DEPTH}, pool={POOL_PAGES} pages, realtime io ×{REALTIME_SCALE}, http://{}",
        server.addr()
    );

    let window = if quick {
        Duration::from_millis(500)
    } else {
        Duration::from_millis(2500)
    };
    // Warm the plan/dictionary paths (the pool stays too small to warm).
    phase(&server, "warmup", 1, Duration::from_millis(100));

    let mut phases = Vec::new();
    for load in [1usize, 2, 4] {
        let p = phase(&server, &format!("overload/{load}x"), load, window);
        eprintln!(
            "[bench_pr10] {}: {} clients, goodput {:.1} req/s, shed {}/{} ({:.0}%), p50 {:.1} ms p99 {:.1} ms, shed p99 {:.2} ms",
            p.name,
            p.clients,
            p.goodput_rps,
            p.shed,
            p.offered,
            100.0 * p.shed as f64 / p.offered as f64,
            p.p50_ms,
            p.p99_ms,
            p.shed_p99_ms
        );
        phases.push(p);
    }

    let capacity = phases[0].goodput_rps;
    let worst_ratio = phases[1..]
        .iter()
        .map(|p| p.goodput_rps / capacity)
        .fold(f64::INFINITY, f64::min);
    server.shutdown();
    (phases, worst_ratio)
}

/// Serializes the results as the `BENCH_PR10.json` document.
pub fn to_json(
    cfg: &HarnessConfig,
    quick: bool,
    phases: &[OverloadPhase],
    worst_ratio: f64,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"overload_governance\",\n");
    out.push_str(&format!("  \"scale\": {},\n", cfg.scale));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"workers\": {WORKERS},\n"));
    out.push_str(&format!("  \"queue_depth\": {QUEUE_DEPTH},\n"));
    out.push_str(&format!("  \"pool_pages\": {POOL_PAGES},\n"));
    out.push_str(&format!("  \"realtime_io_scale\": {REALTIME_SCALE},\n"));
    out.push_str(&format!(
        "  \"cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!(
        "  \"worst_goodput_ratio_vs_capacity\": {worst_ratio:.3},\n"
    ));
    out.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"load_multiple\": {}, \"clients\": {}, \"offered\": {}, \
             \"ok\": {}, \"shed\": {}, \"errors\": {}, \"seconds\": {:.3}, \
             \"goodput_rps\": {:.2}, \"p50_ms\": {:.2}, \"p99_ms\": {:.2}, \
             \"shed_p99_ms\": {:.3}}}{}\n",
            p.name,
            p.load_multiple,
            p.clients,
            p.offered,
            p.ok,
            p.shed,
            p.errors,
            p.seconds,
            p.goodput_rps,
            p.p50_ms,
            p.p99_ms,
            p.shed_p99_ms,
            if i + 1 == phases.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable table.
pub fn render(phases: &[OverloadPhase], worst_ratio: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>7} {:>8} {:>6} {:>6} {:>11} {:>8} {:>8} {:>10}\n",
        "phase", "clients", "offered", "ok", "shed", "goodput r/s", "p50 ms", "p99 ms", "shed p99"
    ));
    for p in phases {
        out.push_str(&format!(
            "{:<12} {:>7} {:>8} {:>6} {:>6} {:>11.1} {:>8.1} {:>8.1} {:>10.2}\n",
            p.name,
            p.clients,
            p.offered,
            p.ok,
            p.shed,
            p.goodput_rps,
            p.p50_ms,
            p.p99_ms,
            p.shed_p99_ms
        ));
    }
    out.push_str(&format!(
        "\nworst goodput vs capacity under overload: {:.1}% (shedding keeps the server at capacity)\n",
        worst_ratio * 100.0
    ));
    out
}
