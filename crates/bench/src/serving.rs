//! The concurrent-serving experiment (`bench_serve`, `BENCH_PR8.json`):
//! N HTTP clients of mixed read/write traffic against the `swans-serve`
//! front door, measuring throughput and latency percentiles as the
//! client count grows.
//!
//! ## What makes the scaling real on one core
//!
//! Query *compute* cannot scale beyond the machine's cores — on a 1-CPU
//! runner, never. What does scale is **waiting**: the paper's cost model
//! charges every cold scan simulated I/O seconds, and
//! [`swans_storage::StorageManager::set_realtime_io`] turns those charges
//! into real wall-clock sleeps taken *outside* the storage lock. With a
//! buffer pool small enough that the scan-heavy query misses on every
//! request, each request spends most of its life in simulated disk wait —
//! and concurrent snapshot-isolated sessions overlap those waits exactly
//! like a real server overlaps real disks. Read throughput then scales
//! with the client count until the (single) CPU saturates, which is the
//! effect this benchmark pins: ≥2× from 1 → 4 clients on the scan-heavy
//! read mix.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use swans_core::{Database, Layout, StoreConfig};
use swans_serve::{http_request, percent_encode, serve, Server};

use crate::HarnessConfig;

/// The scan-heavy read: aggregates the `<type>` table — the largest
/// property table in the data set — so every request reads (and, with
/// the bounded pool, re-waits for) the most pages per byte of response.
/// Returning the grouped counts instead of raw rows keeps the request's
/// CPU share small, which is what makes the wait-overlap scaling visible
/// on a single-core runner.
const SCAN_Q: &str = "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t";
/// The cheap point-ish read mixed into the read/write phase.
const POINT_Q: &str = "SELECT ?s WHERE { ?s <type> <Date> }";

/// Buffer-pool pages for the served database — smaller than one column
/// segment of the scanned table, so the scan-heavy query cold-misses on
/// every request (LRU thrashes on a sequential scan larger than the
/// pool).
const POOL_PAGES: usize = 4;
/// Wall-clock seconds slept per simulated I/O second.
const REALTIME_SCALE: f64 = 1.0;

/// One measured phase: a fixed request mix at a fixed client count.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// Phase label, e.g. `scan/4c`.
    pub name: String,
    /// Concurrent clients.
    pub clients: usize,
    /// Total requests completed (across all clients).
    pub requests: usize,
    /// Non-200 responses (must be 0).
    pub errors: usize,
    /// Wall-clock seconds for the whole phase.
    pub seconds: f64,
    /// Requests per second.
    pub throughput_rps: f64,
    /// Latency percentiles, milliseconds.
    pub p50_ms: f64,
    /// 95th percentile latency.
    pub p95_ms: f64,
    /// 99th percentile latency.
    pub p99_ms: f64,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// Runs `clients` threads, each issuing `per_client` requests produced by
/// `request(client, i) -> (method, target, body)`; returns the measured
/// phase.
fn phase(
    server: &Server,
    name: &str,
    clients: usize,
    per_client: usize,
    request: impl Fn(usize, usize) -> (&'static str, String, String) + Sync,
) -> PhaseResult {
    let addr = server.addr();
    let errors = AtomicUsize::new(0);
    let started = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        (0..clients)
            .map(|c| {
                let errors = &errors;
                let request = &request;
                scope.spawn(move || {
                    let mut mine = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let (method, target, body) = request(c, i);
                        let t0 = Instant::now();
                        let (status, _) =
                            http_request(addr, method, &target, &body).expect("request");
                        mine.push(t0.elapsed().as_secs_f64() * 1000.0);
                        if status != 200 {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    mine
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .flat_map(|h| h.join().expect("client"))
            .collect()
    });
    let seconds = started.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests = latencies.len();
    PhaseResult {
        name: name.to_string(),
        clients,
        requests,
        errors: errors.load(Ordering::Relaxed),
        seconds,
        throughput_rps: requests as f64 / seconds,
        p50_ms: percentile(&latencies, 50.0),
        p95_ms: percentile(&latencies, 95.0),
        p99_ms: percentile(&latencies, 99.0),
    }
}

/// The full experiment: a scan-read scaling ladder (1 → 8 clients) and a
/// mixed read/write phase. Returns the phases and the 1 → 4 client read
/// throughput ratio (the acceptance criterion).
pub fn run(cfg: &HarnessConfig, quick: bool) -> (Vec<PhaseResult>, f64) {
    let ds = cfg.dataset();
    let triples = ds.len();
    // The UNSCALED machine B: serving measures wait overlap, so requests
    // must pay full-size seeks (the scaled profile's microsecond seeks
    // would make every request compute-bound and the ladder flat).
    let config = StoreConfig::column(Layout::VerticallyPartitioned)
        .on_machine(swans_storage::MachineProfile::B)
        .with_pool_pages(POOL_PAGES);
    let db = Arc::new(Database::open(ds, config).expect("opens"));
    db.storage().set_realtime_io(REALTIME_SCALE);
    let server = serve(db, "127.0.0.1:0").expect("binds");
    eprintln!(
        "[bench_serve] {triples} triples, pool={POOL_PAGES} pages, realtime io ×{REALTIME_SCALE}, http://{}",
        server.addr()
    );

    let per_client = if quick { 6 } else { 24 };
    let scan = |_c: usize, _i: usize| {
        (
            "GET",
            format!("/query?q={}", percent_encode(SCAN_Q)),
            String::new(),
        )
    };

    // Warm the plan/dictionary paths (the pool stays too small to warm).
    phase(&server, "warmup", 1, 2, scan);

    let mut phases = Vec::new();
    for clients in [1usize, 2, 4, 8] {
        let p = phase(
            &server,
            &format!("scan/{clients}c"),
            clients,
            per_client,
            scan,
        );
        eprintln!(
            "[bench_serve] {}: {:.1} req/s p50 {:.1} ms p99 {:.1} ms",
            p.name, p.throughput_rps, p.p50_ms, p.p99_ms
        );
        phases.push(p);
    }
    let scaling = {
        let one = phases.iter().find(|p| p.clients == 1).expect("1-client");
        let four = phases.iter().find(|p| p.clients == 4).expect("4-client");
        four.throughput_rps / one.throughput_rps
    };

    // Mixed traffic: client 0 writes (insert batches of fresh terms),
    // the rest alternate the scan and the point read.
    let mixed = phase(&server, "mixed/4c", 4, per_client, |c, i| {
        if c == 0 {
            let mut body = String::new();
            for j in 0..4 {
                body.push_str(&format!("+ <bench-s{i}-{j}> <bench-p> \"v{j}\"\n"));
            }
            ("POST", "/update".to_string(), body)
        } else if i % 2 == 0 {
            (
                "GET",
                format!("/query?q={}", percent_encode(SCAN_Q)),
                String::new(),
            )
        } else {
            (
                "GET",
                format!("/query?q={}", percent_encode(POINT_Q)),
                String::new(),
            )
        }
    });
    eprintln!(
        "[bench_serve] {}: {:.1} req/s p50 {:.1} ms p99 {:.1} ms",
        mixed.name, mixed.throughput_rps, mixed.p50_ms, mixed.p99_ms
    );
    phases.push(mixed);

    server.shutdown();
    (phases, scaling)
}

/// Serializes the results as the `BENCH_PR8.json` document.
pub fn to_json(cfg: &HarnessConfig, quick: bool, phases: &[PhaseResult], scaling: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"concurrent_serving\",\n");
    out.push_str(&format!("  \"scale\": {},\n", cfg.scale));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"pool_pages\": {POOL_PAGES},\n"));
    out.push_str(&format!("  \"realtime_io_scale\": {REALTIME_SCALE},\n"));
    out.push_str(&format!(
        "  \"cpus\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str(&format!(
        "  \"read_scaling_1_to_4_clients\": {scaling:.3},\n"
    ));
    out.push_str("  \"phases\": [\n");
    for (i, p) in phases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"clients\": {}, \"requests\": {}, \"errors\": {}, \
             \"seconds\": {:.3}, \"throughput_rps\": {:.2}, \"p50_ms\": {:.2}, \
             \"p95_ms\": {:.2}, \"p99_ms\": {:.2}}}{}\n",
            p.name,
            p.clients,
            p.requests,
            p.errors,
            p.seconds,
            p.throughput_rps,
            p.p50_ms,
            p.p95_ms,
            p.p99_ms,
            if i + 1 == phases.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the human-readable table.
pub fn render(phases: &[PhaseResult], scaling: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>7} {:>9} {:>10} {:>9} {:>9} {:>9}\n",
        "phase", "clients", "requests", "req/s", "p50 ms", "p95 ms", "p99 ms"
    ));
    for p in phases {
        out.push_str(&format!(
            "{:<10} {:>7} {:>9} {:>10.1} {:>9.1} {:>9.1} {:>9.1}\n",
            p.name, p.clients, p.requests, p.throughput_rps, p.p50_ms, p.p95_ms, p.p99_ms
        ));
    }
    out.push_str(&format!(
        "\nread throughput scaling 1 -> 4 clients: {scaling:.2}x (wait overlap, not CPU)\n"
    ));
    out
}
