//! # swans-bench
//!
//! The benchmark harness: one binary per table/figure of the paper (run
//! `cargo run -p swans-bench --release --bin <target>`), plus criterion
//! micro-benchmarks (`cargo bench -p swans-bench`).
//!
//! | target | regenerates |
//! |---|---|
//! | `table1` | Table 1 — data set details |
//! | `fig1`   | Figure 1 — cumulative frequency distributions |
//! | `table2` | Table 2 — query-space coverage |
//! | `table3` | Table 3 — machine configurations |
//! | `table4` | Table 4 — repetition of the C-Store experiment |
//! | `table5` | Table 5 — data relevant to a query |
//! | `fig5`   | Figure 5 — I/O read history for q3 and q5 |
//! | `table6` | Table 6 — cold runs, full configuration matrix |
//! | `table7` | Table 7 — hot runs, full configuration matrix |
//! | `fig6`   | Figure 6 — execution time vs number of properties |
//! | `fig7`   | Figure 7 — splitting scalability experiment |
//! | `all_experiments` | everything above, writing EXPERIMENTS.md |
//! | `bench_pr2` | sorted-vs-hash A/B trajectory (`BENCH_PR2.json`) |
//! | `bench_updates` | update cost per engine × layout (write path) |
//! | `bench_pr4` | morsel-parallel scaling curve (`BENCH_PR4.json`) |
//! | `bench_pr5` | compressed-execution A/B (`BENCH_PR5.json`) |
//! | `bench_pr7` | durability: recovery time + WAL/snapshot sizes (`BENCH_PR7.json`) |
//! | `bench_serve` | concurrent serving over HTTP: throughput/latency vs clients (`BENCH_PR8.json`) |
//! | `bench_pr9` | plan quality: heuristic vs cost-based enumeration + q-error (`BENCH_PR9.json`) |
//! | `bench_pr10` | overload governance: goodput/p99/shed rate at 1×/2×/4× load (`BENCH_PR10.json`) |
//!
//! Environment knobs: `SWANS_SCALE` (fraction of the 50.3M-triple Barton
//! data set to synthesize, default 0.02), `SWANS_REPEATS` (averaging, the
//! paper uses 3; default 3), `SWANS_SEED`.

pub mod compressed;
pub mod durability;
pub mod experiments;
pub mod governance;
pub mod paper;
pub mod parallel;
pub mod planquality;
pub mod serving;
pub mod sorted;
pub mod updates;

use swans_datagen::{generate, BartonConfig};
use swans_rdf::Dataset;

/// Harness configuration, read from the environment.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Data-set scale (fraction of full Barton).
    pub scale: f64,
    /// Measured repetitions per cell.
    pub repeats: usize,
    /// Generator seed.
    pub seed: u64,
}

impl HarnessConfig {
    /// Reads `SWANS_SCALE`, `SWANS_REPEATS`, `SWANS_SEED`.
    pub fn from_env() -> Self {
        fn parse<T: std::str::FromStr>(k: &str) -> Option<T> {
            std::env::var(k).ok().and_then(|v| v.parse().ok())
        }
        Self {
            scale: parse("SWANS_SCALE").unwrap_or(0.02),
            repeats: parse("SWANS_REPEATS").unwrap_or(3),
            seed: parse("SWANS_SEED").unwrap_or(42),
        }
    }

    /// Generates the benchmark data set for this configuration.
    pub fn dataset(&self) -> Dataset {
        generate(&BartonConfig {
            scale: self.scale,
            seed: self.seed,
            n_properties: 222,
        })
    }

    /// The simulated machine-B profile with the seek penalty scaled to the
    /// data-set scale (see [`swans_core::scaled_profile`]).
    pub fn machine_b(&self) -> swans_storage::MachineProfile {
        swans_core::scaled_profile(swans_storage::MachineProfile::B, self.scale)
    }

    /// Scaled machine A.
    pub fn machine_a(&self) -> swans_storage::MachineProfile {
        swans_core::scaled_profile(swans_storage::MachineProfile::A, self.scale)
    }
}

/// Restricts a data set to the triples of the given properties (the
/// C-Store load of footnote 2: "C-Store is loaded with data associated
/// with 28 properties").
pub fn restrict_to_properties(ds: &Dataset, props: &[swans_rdf::Id]) -> Dataset {
    let set: std::collections::HashSet<_> = props.iter().copied().collect();
    let mut out = ds.clone();
    out.triples.retain(|t| set.contains(&t.p));
    out
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", c, width = widths[i]));
            }
        }
        line
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats seconds with 3 decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a ratio with 2 decimals.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].starts_with("a "));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    fn restrict_keeps_only_listed_properties() {
        let mut ds = Dataset::new();
        ds.add("a", "p1", "x");
        ds.add("b", "p2", "y");
        let p1 = ds.expect_id("p1");
        let r = restrict_to_properties(&ds, &[p1]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.triples[0].p, p1);
    }

    #[test]
    fn env_defaults() {
        // No env vars set in the test runner → defaults.
        let cfg = HarnessConfig::from_env();
        assert!(cfg.scale > 0.0);
        assert!(cfg.repeats >= 1);
    }
}
