//! The morsel-parallel scaling experiment behind `BENCH_PR4.json`.
//!
//! For every column layout and benchmark query it records a 1/2/4/8-thread
//! scaling curve in two forms:
//!
//! * **measured** — best-of-N hot wall time with the engine's worker pool
//!   actually set to that width. Faithful to the host it ran on, which
//!   means it only shows scaling when the host has that many cores
//!   (`meta.host_cores` says how many there were).
//! * **modeled** — the list-scheduled makespan of the query's recorded
//!   morsel tasks on an ideal n-wide pool: the engine times every morsel
//!   task uncontended (pool width 1, inline execution), and the model
//!   replays each barrier-delimited batch onto n workers (earliest-free
//!   worker pulls the next morsel — exactly the pool's own discipline),
//!   plus the measured non-partitioned residue as a sequential term. This
//!   is the same simulation philosophy as the repo's simulated disk: the
//!   per-task costs are measured, only the schedule is modeled, and
//!   Amdahl's law is applied honestly via the measured sequential residue.
//!
//! The two agree on a host with enough idle cores; on a single-core CI
//! runner the measured curve is flat (and slightly negative from pool
//! overhead) while the modeled curve still characterizes the executor's
//! parallel fraction.

use std::fmt::Write as _;
use std::time::Instant;

use swans_colstore::ColumnEngine;
use swans_core::Layout;
use swans_plan::queries::{build_plan, QueryContext, QueryId};
use swans_rdf::Dataset;
use swans_storage::StorageManager;

use crate::HarnessConfig;

/// The thread widths of the scaling curve.
pub const WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// The scaling measurements for one (layout, query) cell.
#[derive(Debug, Clone)]
pub struct ScalingCell {
    /// Layout label.
    pub layout: String,
    /// Query name.
    pub query: &'static str,
    /// Whether the plan contains a join, and whether any executed join
    /// hashed (vs merged) — the basis of the verdict's query classes.
    pub has_join: bool,
    /// Hash joins dispatched by one execution.
    pub hash_joins: u64,
    /// Merge joins dispatched by one execution.
    pub merge_joins: u64,
    /// Partitioned batches in one execution.
    pub parallel_tasks: u64,
    /// Morsels executed in one execution.
    pub morsels: u64,
    /// Best-of-N hot wall seconds at each width of [`WIDTHS`].
    pub measured_hot_s: Vec<f64>,
    /// Modeled makespan seconds at each width of [`WIDTHS`].
    pub modeled_s: Vec<f64>,
    /// Sequential (non-partitioned) residue of the timing run, seconds.
    pub sequential_s: f64,
}

impl ScalingCell {
    /// Modeled speedup at `width` relative to the modeled 1-thread time.
    pub fn modeled_speedup(&self, width_idx: usize) -> f64 {
        self.modeled_s[0] / self.modeled_s[width_idx].max(1e-12)
    }

    /// Measured speedup at `width` relative to the measured 1-thread time.
    pub fn measured_speedup(&self, width_idx: usize) -> f64 {
        self.measured_hot_s[0] / self.measured_hot_s[width_idx].max(1e-12)
    }
}

/// The three column layouts of the scaling matrix.
pub fn layouts() -> [Layout; 3] {
    [
        Layout::TripleStore(swans_rdf::SortOrder::Spo),
        Layout::TripleStore(swans_rdf::SortOrder::Pso),
        Layout::VerticallyPartitioned,
    ]
}

/// Greedy list-scheduling makespan of one batch of task durations on
/// `workers` workers: the earliest-free worker pulls the next morsel, the
/// batch ends when the last worker finishes — the worker pool's own
/// discipline, replayed on uncontended timings.
fn makespan(tasks: &[f64], workers: usize) -> f64 {
    let mut loads = vec![0.0f64; workers.max(1)];
    for &t in tasks {
        let min = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("durations are finite"))
            .map(|(i, _)| i)
            .expect("at least one worker");
        loads[min] += t;
    }
    loads.into_iter().fold(0.0, f64::max)
}

/// Modeled wall time at `workers` width: sequential residue plus the sum
/// of per-batch makespans (batches are barriers — they cannot overlap).
fn modeled_time(sequential: f64, batches: &[Vec<f64>], workers: usize) -> f64 {
    sequential + batches.iter().map(|b| makespan(b, workers)).sum::<f64>()
}

/// Runs the scaling matrix for one data set.
pub fn run_matrix(cfg: &HarnessConfig, ds: &Dataset) -> Vec<ScalingCell> {
    let ctx = QueryContext::from_dataset(ds, 28);
    let mut out = Vec::new();
    for layout in layouts() {
        eprintln!("[bench_pr4] column {} ...", layout.name());
        let storage = StorageManager::new(cfg.machine_b());
        let mut engine = ColumnEngine::new();
        match layout {
            Layout::TripleStore(order) => {
                engine.load_triple_store(&storage, &ds.triples, order, true);
            }
            Layout::VerticallyPartitioned => engine.load_vertical(&storage, &ds.triples, true),
        }
        for q in QueryId::ALL {
            let plan = build_plan(q, layout.scheme(), &ctx);

            // Warm up (also the cold run: columns become resident) and
            // capture one execution's dispatch census.
            engine.set_threads(1);
            engine.reset_exec_stats();
            let _ = engine.execute(&plan).expect("query runs");
            let stats = engine.exec_stats();

            // Timing run: width 1, every morsel task timed inline
            // (uncontended) — the raw material of the model.
            engine.set_task_timing(true);
            let t0 = Instant::now();
            let _ = engine.execute(&plan).expect("query runs");
            let total = t0.elapsed().as_secs_f64();
            engine.set_task_timing(false);
            let batches = engine.take_task_log();
            let task_sum: f64 = batches.iter().flatten().sum();
            let sequential = (total - task_sum).max(0.0);
            let modeled_s: Vec<f64> = WIDTHS
                .iter()
                .map(|&w| modeled_time(sequential, &batches, w))
                .collect();

            // Measured runs: the pool really runs at each width.
            let mut measured_hot_s = Vec::with_capacity(WIDTHS.len());
            for &w in &WIDTHS {
                engine.set_threads(w);
                let mut best = f64::INFINITY;
                for _ in 0..cfg.repeats.max(1) {
                    let t0 = Instant::now();
                    let _ = engine.execute(&plan).expect("query runs");
                    best = best.min(t0.elapsed().as_secs_f64());
                }
                measured_hot_s.push(best);
            }

            out.push(ScalingCell {
                layout: layout.name(),
                query: q.name(),
                has_join: swans_plan::optimize::has_join(&plan),
                hash_joins: stats.hash_joins,
                merge_joins: stats.merge_joins,
                parallel_tasks: stats.parallel_tasks,
                morsels: stats.morsels,
                measured_hot_s,
                modeled_s,
                sequential_s: sequential,
            });
        }
    }
    out
}

fn fmt_f(x: f64) -> String {
    format!("{x:.6}")
}

fn fmt_list(xs: impl IntoIterator<Item = f64>) -> String {
    let v: Vec<String> = xs.into_iter().map(fmt_f).collect();
    format!("[{}]", v.join(", "))
}

/// Best modeled speedup at 4 threads across layouts for each query in
/// `queries`, returning `(worst_of_those_bests, all ≥ 1.5)`.
fn class_verdict(cells: &[ScalingCell], queries: &[&str]) -> (f64, bool) {
    let idx4 = WIDTHS.iter().position(|&w| w == 4).expect("4 is a width");
    let mut worst = f64::INFINITY;
    for q in queries {
        let best = cells
            .iter()
            .filter(|c| c.query == *q)
            .map(|c| c.modeled_speedup(idx4))
            .fold(0.0f64, f64::max);
        worst = worst.min(best);
    }
    if !worst.is_finite() {
        return (0.0, false);
    }
    (worst, worst >= 1.5)
}

/// Renders the experiment as the machine-readable `BENCH_PR4.json`
/// document (hand-rolled writer — the workspace builds fully offline).
pub fn to_json(cfg: &HarnessConfig, quick: bool, cells: &[ScalingCell]) -> String {
    let host_cores = std::thread::available_parallelism().map_or(0, usize::from);
    let idx4 = WIDTHS.iter().position(|&w| w == 4).expect("4 is a width");

    // Query classes: scan-heavy = join-free plans; hash-join = at least
    // one execution on some layout dispatched a hash join.
    let mut scan_heavy: Vec<&str> = Vec::new();
    let mut hash_join: Vec<&str> = Vec::new();
    for c in cells {
        if !c.has_join && !scan_heavy.contains(&c.query) {
            scan_heavy.push(c.query);
        }
        if c.hash_joins > 0 && !hash_join.contains(&c.query) {
            hash_join.push(c.query);
        }
    }
    let (scan_worst, scan_ok) = class_verdict(cells, &scan_heavy);
    let (hj_worst, hj_ok) = class_verdict(cells, &hash_join);

    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"meta\": {{\"experiment\": \"morsel-parallel-scaling\", \"pr\": 4, \
         \"scale\": {}, \"repeats\": {}, \"seed\": {}, \"quick\": {quick}, \
         \"host_cores\": {host_cores}, \"threads\": [1, 2, 4, 8],",
        cfg.scale, cfg.repeats, cfg.seed
    );
    let _ = writeln!(
        s,
        "    \"note\": \"modeled_s replays each query's uncontended per-morsel task \
         timings (recorded at pool width 1) through the pool's own earliest-free-worker \
         schedule at width n, plus the measured non-partitioned residue as a sequential \
         term; measured_hot_s is real wall time on this host and only scales with \
         available cores (host_cores above)\"}},"
    );

    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"layout\": \"{}\", \"query\": \"{}\", \"has_join\": {}, \
             \"hash_joins\": {}, \"merge_joins\": {}, \"parallel_tasks\": {}, \
             \"morsels\": {},",
            c.layout, c.query, c.has_join, c.hash_joins, c.merge_joins, c.parallel_tasks, c.morsels
        );
        let _ = writeln!(
            s,
            "     \"sequential_s\": {}, \"modeled_s\": {}, \"modeled_speedup\": {}, \
             \"measured_hot_s\": {}, \"measured_speedup\": {}}}{}",
            fmt_f(c.sequential_s),
            fmt_list(c.modeled_s.iter().copied()),
            fmt_list((0..WIDTHS.len()).map(|w| c.modeled_speedup(w))),
            fmt_list(c.measured_hot_s.iter().copied()),
            fmt_list((0..WIDTHS.len()).map(|w| c.measured_speedup(w))),
            if i + 1 < cells.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ],");

    let quote = |qs: &[&str]| {
        let v: Vec<String> = qs.iter().map(|q| format!("\"{q}\"")).collect();
        format!("[{}]", v.join(", "))
    };
    let _ = writeln!(s, "  \"verdict\": {{");
    let _ = writeln!(
        s,
        "    \"scan_heavy\": {{\"queries\": {}, \
         \"worst_best_layout_modeled_speedup_at_4\": {}, \"ge_1_5x_at_4_threads\": {scan_ok}}},",
        quote(&scan_heavy),
        fmt_f(scan_worst)
    );
    let _ = writeln!(
        s,
        "    \"hash_join\": {{\"queries\": {}, \
         \"worst_best_layout_modeled_speedup_at_4\": {}, \"ge_1_5x_at_4_threads\": {hj_ok}}},",
        quote(&hash_join),
        fmt_f(hj_worst)
    );
    let _ = writeln!(
        s,
        "    \"note\": \"speedup at 4 threads, per query class: every query in the class \
         reaches the stated modeled speedup on its best layout (worst such value shown). \
         Cell {idx4} of each speedup list is the 4-thread point.\""
    );
    let _ = writeln!(s, "  }}");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_datagen::{generate, BartonConfig};

    #[test]
    fn makespan_schedules_greedily() {
        // One worker: the sum. Many workers: bounded by the longest task.
        let tasks = [3.0, 1.0, 1.0, 1.0];
        assert_eq!(makespan(&tasks, 1), 6.0);
        assert_eq!(makespan(&tasks, 2), 3.0);
        assert_eq!(makespan(&tasks, 8), 3.0);
        assert_eq!(makespan(&[], 4), 0.0);
        // Modeled time adds the sequential residue once.
        let batches = vec![vec![1.0, 1.0], vec![2.0]];
        assert_eq!(modeled_time(0.5, &batches, 1), 0.5 + 2.0 + 2.0);
        assert_eq!(modeled_time(0.5, &batches, 2), 0.5 + 1.0 + 2.0);
    }

    /// A miniature end-to-end run produces structurally sound JSON with
    /// monotone modeled curves and both query classes present.
    #[test]
    fn tiny_experiment_produces_json() {
        let cfg = HarnessConfig {
            scale: 0.0004,
            repeats: 1,
            seed: 11,
        };
        let ds = generate(&BartonConfig {
            scale: cfg.scale,
            seed: cfg.seed,
            n_properties: 40,
        });
        let cells = run_matrix(&cfg, &ds);
        assert_eq!(cells.len(), 36); // 3 layouts × 12 queries
        for c in &cells {
            assert_eq!(c.modeled_s.len(), WIDTHS.len());
            assert_eq!(c.measured_hot_s.len(), WIDTHS.len());
            // Modeled time never increases with more workers.
            for w in 1..WIDTHS.len() {
                assert!(
                    c.modeled_s[w] <= c.modeled_s[w - 1] + 1e-12,
                    "{}/{} modeled curve not monotone: {:?}",
                    c.layout,
                    c.query,
                    c.modeled_s
                );
            }
        }
        let json = to_json(&cfg, true, &cells);
        for key in [
            "\"cells\"",
            "\"modeled_speedup\"",
            "\"measured_hot_s\"",
            "\"verdict\"",
            "\"scan_heavy\"",
            "\"hash_join\"",
            "\"host_cores\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
