//! The sorted-vs-hash experiment behind `BENCH_PR2.json` — the first
//! entry of the repo's recorded performance trajectory.
//!
//! For every engine × layout configuration of Tables 6/7 it measures all
//! twelve benchmark queries (cold real time, best-of-N hot user time, and
//! `StorageManager` bytes read); the three column-engine configurations
//! run twice — once with the sortedness-aware execution layer active
//! (merge joins, run-based aggregation, RLE run-header selection) and
//! once with it disabled (the hash baseline) — plus a kernel-dispatch
//! census so the JSON records *which* queries actually took the sorted
//! paths.

use std::fmt::Write as _;

use swans_colstore::ColumnEngine;
use swans_core::{Layout, RdfStore, StoreConfig};
use swans_plan::queries::{build_plan, QueryContext, QueryId};
use swans_rdf::{Dataset, SortOrder};
use swans_storage::StorageManager;

use crate::HarnessConfig;

/// One (query, configuration) measurement.
#[derive(Debug, Clone)]
pub struct QueryMeasure {
    /// Query name (`q1` … `q8`).
    pub query: &'static str,
    /// Cold wall time: compute + simulated I/O, pool emptied first.
    pub cold_real_s: f64,
    /// Best hot compute time over the configured repeats.
    pub hot_user_s: f64,
    /// Bytes the cold run read through the storage manager.
    pub bytes_read: u64,
    /// Result cardinality.
    pub rows: usize,
}

/// All twelve queries measured against one store.
#[derive(Debug, Clone)]
pub struct Series {
    /// Engine label (`row` / `column`).
    pub engine: &'static str,
    /// Layout label (`triple/SPO`, `triple/PSO`, `vert/SO`).
    pub layout: String,
    /// Execution mode: `default` for the row engine, `sorted` / `hash`
    /// for the column engine A/B pair.
    pub mode: &'static str,
    /// Per-query cells in [`QueryId::ALL`] order.
    pub cells: Vec<QueryMeasure>,
}

/// The three physical layouts of the experiment matrix.
pub fn layouts() -> [Layout; 3] {
    [
        Layout::TripleStore(SortOrder::Spo),
        Layout::TripleStore(SortOrder::Pso),
        Layout::VerticallyPartitioned,
    ]
}

/// Cold-runs `q` (pool emptied first — the run doubles as the hot
/// warm-up) and returns its cell with `hot_user_s` still unset; callers
/// fill it from their own best-of-N hot loops.
fn cold_cell(store: &RdfStore, q: QueryId, ctx: &QueryContext) -> QueryMeasure {
    store.make_cold();
    let cold = store.run_query(q, ctx);
    QueryMeasure {
        query: q.name(),
        cold_real_s: cold.real_seconds,
        hot_user_s: f64::INFINITY,
        bytes_read: cold.io.bytes_read,
        rows: cold.rows.len(),
    }
}

fn measure_store(store: &RdfStore, ctx: &QueryContext, repeats: usize) -> Vec<QueryMeasure> {
    QueryId::ALL
        .iter()
        .map(|&q| {
            let mut cell = cold_cell(store, q, ctx);
            for _ in 0..repeats.max(1) {
                cell.hot_user_s = cell.hot_user_s.min(store.run_query(q, ctx).user_seconds);
            }
            cell
        })
        .collect()
}

/// Measures an A/B store pair with interleaved hot repetitions, so clock
/// drift and cache state affect both sides equally — the fair protocol
/// for the sorted-vs-hash comparison.
fn measure_pair(
    a: &RdfStore,
    b: &RdfStore,
    ctx: &QueryContext,
    repeats: usize,
) -> (Vec<QueryMeasure>, Vec<QueryMeasure>) {
    let mut cells_a = Vec::new();
    let mut cells_b = Vec::new();
    for &q in QueryId::ALL.iter() {
        let mut cell_a = cold_cell(a, q, ctx);
        let mut cell_b = cold_cell(b, q, ctx);
        for _ in 0..repeats.max(1) {
            cell_a.hot_user_s = cell_a.hot_user_s.min(a.run_query(q, ctx).user_seconds);
            cell_b.hot_user_s = cell_b.hot_user_s.min(b.run_query(q, ctx).user_seconds);
        }
        cells_a.push(cell_a);
        cells_b.push(cell_b);
    }
    (cells_a, cells_b)
}

/// Runs the full matrix: row engine (3 layouts) + column engine
/// (3 layouts × {sorted, hash}).
pub fn run_matrix(cfg: &HarnessConfig, ds: &Dataset) -> Vec<Series> {
    let ctx = QueryContext::from_dataset(ds, 28);
    let mut out = Vec::new();
    for layout in layouts() {
        eprintln!("[bench_pr2] row {} ...", layout.name());
        let store = RdfStore::load(ds, StoreConfig::row(layout).on_machine(cfg.machine_b()));
        out.push(Series {
            engine: "row",
            layout: layout.name(),
            mode: "default",
            cells: measure_store(&store, &ctx, cfg.repeats),
        });
    }
    for layout in layouts() {
        eprintln!("[bench_pr2] column {} [sorted vs hash] ...", layout.name());
        let load = |sorted: bool| {
            let mut engine = ColumnEngine::new();
            engine.set_sorted_paths(sorted);
            RdfStore::with_engine(
                ds,
                StoreConfig::column(layout).on_machine(cfg.machine_b()),
                Box::new(engine),
            )
            .expect("column store loads")
        };
        let sorted_store = load(true);
        let hash_store = load(false);
        let (sorted_cells, hash_cells) =
            measure_pair(&sorted_store, &hash_store, &ctx, cfg.repeats);
        out.push(Series {
            engine: "column",
            layout: layout.name(),
            mode: "sorted",
            cells: sorted_cells,
        });
        out.push(Series {
            engine: "column",
            layout: layout.name(),
            mode: "hash",
            cells: hash_cells,
        });
    }
    out
}

/// Per-query kernel-dispatch counts for one column layout.
#[derive(Debug, Clone)]
pub struct DispatchRow {
    /// Layout label.
    pub layout: String,
    /// Query name.
    pub query: &'static str,
    /// Counter snapshot for this single execution.
    pub stats: swans_colstore::ExecStatsSnapshot,
}

/// Executes each query once per column layout on a bare [`ColumnEngine`]
/// and records which kernels dispatched.
pub fn dispatch_census(cfg: &HarnessConfig, ds: &Dataset) -> Vec<DispatchRow> {
    let ctx = QueryContext::from_dataset(ds, 28);
    let mut out = Vec::new();
    for layout in layouts() {
        let storage = StorageManager::new(cfg.machine_b());
        let mut engine = ColumnEngine::new();
        match layout {
            Layout::TripleStore(order) => {
                engine.load_triple_store(&storage, &ds.triples, order, true);
            }
            Layout::VerticallyPartitioned => engine.load_vertical(&storage, &ds.triples, true),
        }
        for q in QueryId::ALL {
            let plan = build_plan(q, layout.scheme(), &ctx);
            engine.reset_exec_stats();
            let _ = engine.execute(&plan).expect("census query runs");
            out.push(DispatchRow {
                layout: layout.name(),
                query: q.name(),
                stats: engine.exec_stats(),
            });
        }
    }
    out
}

fn fmt_f(x: f64) -> String {
    format!("{x:.6}")
}

/// Renders the full experiment as the machine-readable `BENCH_PR2.json`
/// document (hand-rolled writer — the workspace builds fully offline).
pub fn to_json(
    cfg: &HarnessConfig,
    quick: bool,
    series: &[Series],
    census: &[DispatchRow],
) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"meta\": {{\"experiment\": \"sorted-vs-hash\", \"pr\": 2, \
         \"scale\": {}, \"repeats\": {}, \"seed\": {}, \"quick\": {quick}}},",
        cfg.scale, cfg.repeats, cfg.seed
    );

    let _ = writeln!(s, "  \"configs\": [");
    for (i, ser) in series.iter().enumerate() {
        let _ = writeln!(
            s,
            "    {{\"engine\": \"{}\", \"layout\": \"{}\", \"mode\": \"{}\", \"queries\": [",
            ser.engine, ser.layout, ser.mode
        );
        for (j, c) in ser.cells.iter().enumerate() {
            let _ = writeln!(
                s,
                "      {{\"query\": \"{}\", \"cold_real_s\": {}, \"hot_user_s\": {}, \
                 \"bytes_read\": {}, \"rows\": {}}}{}",
                c.query,
                fmt_f(c.cold_real_s),
                fmt_f(c.hot_user_s),
                c.bytes_read,
                c.rows,
                if j + 1 < ser.cells.len() { "," } else { "" }
            );
        }
        let _ = writeln!(s, "    ]}}{}", if i + 1 < series.len() { "," } else { "" });
    }
    let _ = writeln!(s, "  ],");

    // Whether the sorted layer changed any kernel choice for a
    // (layout, query) cell — cells where it did not run identical code in
    // both modes, so their time ratio is pure measurement noise.
    let differs = |layout: &str, query: &str| -> bool {
        census
            .iter()
            .find(|r| r.layout == layout && r.query == query)
            .is_some_and(|r| {
                let st = &r.stats;
                st.merge_joins
                    + st.sorted_group_counts
                    + st.sorted_distincts
                    + st.distinct_passthroughs
                    + st.sorted_selects
                    + st.rle_selects
                    > 0
            })
    };

    // The A/B summary: per column layout and query, sorted vs hash.
    let _ = writeln!(s, "  \"sorted_vs_hash\": [");
    let mut pairs: Vec<String> = Vec::new();
    let mut no_slower = true;
    let mut vp_subject_join_wins = true;
    for layout in layouts() {
        let find = |mode: &str| {
            series
                .iter()
                .find(|r| r.engine == "column" && r.layout == layout.name() && r.mode == mode)
        };
        let (Some(sorted), Some(hash)) = (find("sorted"), find("hash")) else {
            continue;
        };
        for (a, b) in sorted.cells.iter().zip(&hash.cells) {
            let speedup = b.hot_user_s / a.hot_user_s.max(1e-12);
            let d = differs(&layout.name(), a.query);
            // "No slower" within the 10% noise floor of same-path cells.
            if speedup < 0.90 {
                no_slower = false;
            }
            if layout == Layout::VerticallyPartitioned
                && matches!(a.query, "q4" | "q4*" | "q5" | "q7")
                && speedup <= 1.0
            {
                vp_subject_join_wins = false;
            }
            pairs.push(format!(
                "    {{\"layout\": \"{}\", \"query\": \"{}\", \"sorted_hot_user_s\": {}, \
                 \"hash_hot_user_s\": {}, \"speedup\": {}, \"dispatch_differs\": {d}, \
                 \"sorted_cold_real_s\": {}, \"hash_cold_real_s\": {}}}",
                layout.name(),
                a.query,
                fmt_f(a.hot_user_s),
                fmt_f(b.hot_user_s),
                fmt_f(speedup),
                fmt_f(a.cold_real_s),
                fmt_f(b.cold_real_s),
            ));
        }
    }
    let _ = writeln!(s, "{}", pairs.join(",\n"));
    let _ = writeln!(s, "  ],");

    let _ = writeln!(
        s,
        "  \"verdict\": {{\"sorted_no_slower_on_every_query\": {no_slower}, \
         \"faster_on_vp_subject_joins\": {vp_subject_join_wins}, \
         \"noise_tolerance\": 0.10, \
         \"note\": \"cells with dispatch_differs=false execute identical code in both \
         modes; their ratios are measurement noise around 1.0\"}},"
    );

    let _ = writeln!(s, "  \"dispatch\": [");
    for (i, row) in census.iter().enumerate() {
        let st = &row.stats;
        let _ = writeln!(
            s,
            "    {{\"layout\": \"{}\", \"query\": \"{}\", \"merge_joins\": {}, \
             \"hash_joins\": {}, \"sorted_group_counts\": {}, \"hash_group_counts\": {}, \
             \"sorted_distincts\": {}, \"sort_distincts\": {}, \
             \"distinct_passthroughs\": {}, \
             \"sorted_selects\": {}, \"rle_selects\": {}}}{}",
            row.layout,
            row.query,
            st.merge_joins,
            st.hash_joins,
            st.sorted_group_counts,
            st.hash_group_counts,
            st.sorted_distincts,
            st.sort_distincts,
            st.distinct_passthroughs,
            st.sorted_selects,
            st.rle_selects,
            if i + 1 < census.len() { "," } else { "" }
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_datagen::{generate, BartonConfig};

    /// A miniature end-to-end run produces structurally sound JSON with
    /// every expected section, and the census shows merge joins on the
    /// vertically-partitioned subject joins.
    #[test]
    fn tiny_experiment_produces_json_and_merge_dispatches() {
        let cfg = HarnessConfig {
            scale: 0.0002,
            repeats: 1,
            seed: 7,
        };
        let ds = generate(&BartonConfig {
            scale: cfg.scale,
            seed: cfg.seed,
            n_properties: 40,
        });
        let series = run_matrix(&cfg, &ds);
        assert_eq!(series.len(), 9); // 3 row + 3×2 column
        let census = dispatch_census(&cfg, &ds);
        assert_eq!(census.len(), 36);
        let vp_merges: u64 = census
            .iter()
            .filter(|r| r.layout == "vert/SO")
            .map(|r| r.stats.merge_joins)
            .sum();
        assert!(vp_merges > 0, "VP queries must dispatch merge joins");

        let json = to_json(&cfg, true, &series, &census);
        for key in [
            "\"configs\"",
            "\"sorted_vs_hash\"",
            "\"dispatch\"",
            "\"merge_joins\"",
            "\"speedup\"",
            "\"verdict\"",
            "\"dispatch_differs\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
