//! The compressed-execution experiment behind `BENCH_PR5.json` — the
//! run-encoded-vs-flat A/B of the recorded performance trajectory.
//!
//! Two workloads run against the three column layouts:
//!
//! * **barton** — the standard generator output. Its properties are
//!   mostly single-valued (one object per subject and property, faithful
//!   to the real Barton dump), so the compression story lives in the
//!   *triple-store* lead columns: under PSO the property column collapses
//!   to a handful of runs (the paper's "column compression subsumes
//!   key-prefix compression"), under SPO the subject column compresses by
//!   the statements-per-subject factor.
//! * **barton-mv** — a multi-valued derivative (every statement carries
//!   extra objects, the shape of real multi-valued RDF properties like
//!   Barton's `<type>`). Here the vertically-partitioned *subject*
//!   columns compress too, so the RLE-friendly VP cells exist.
//!
//! Per (workload, layout, query) the JSON records: cold bytes read with
//! compression off vs on (the I/O side of the trade), hot wall time with
//! run kernels on vs off at 1 and 4 threads (the execution side), and the
//! engine's run-dispatch census (run scans, run-kernel dispatches,
//! expansions, compressed-vs-logical scan bytes) proving which path ran.

use std::fmt::Write as _;

use swans_colstore::{ColumnEngine, ExecStatsSnapshot};
use swans_core::{Layout, RdfStore, StoreConfig};
use swans_plan::algebra::{group_count, project, scan_all, Plan};
use swans_plan::queries::{build_plan, QueryContext, QueryId};
use swans_rdf::{Dataset, SortOrder};
use swans_storage::StorageManager;

use crate::HarnessConfig;

/// Extra objects per statement in the multi-valued derivative.
pub const MV_EXTRA: u64 = 4;

/// Derives the multi-valued workload: each `(s, p, o)` statement gains
/// [`MV_EXTRA`] sibling objects, so every property's average multiplicity
/// rises to `1 + MV_EXTRA` — the shape that makes vertically-partitioned
/// subject columns run-compressible.
pub fn multi_valued(ds: &Dataset) -> Dataset {
    let mut out = ds.clone();
    let base: Vec<swans_rdf::Triple> = out.triples.clone();
    for t in &base {
        for k in 1..=MV_EXTRA {
            let o = out.dict.intern(&format!("<mv{k}-{}>", t.o));
            out.triples.push(swans_rdf::Triple::new(t.s, t.p, o));
        }
    }
    out
}

/// One (query, layout, workload) measurement.
#[derive(Debug, Clone)]
pub struct CompressedCell {
    /// Query name (`q1` … `q8*`, plus the lead-column aggregation `qrun`).
    pub query: String,
    /// Result cardinality.
    pub rows: usize,
    /// Cold bytes read with compression off.
    pub bytes_plain: u64,
    /// Cold bytes read with compression on.
    pub bytes_compressed: u64,
    /// Best hot wall seconds, run kernels off, 1 thread.
    pub flat_1t_s: f64,
    /// Best hot wall seconds, run kernels on, 1 thread.
    pub run_1t_s: f64,
    /// Best hot wall seconds, run kernels off, 4 threads.
    pub flat_4t_s: f64,
    /// Best hot wall seconds, run kernels on, 4 threads.
    pub run_4t_s: f64,
    /// Dispatch census for one run-kernel execution of this query.
    pub stats: ExecStatsSnapshot,
}

/// All queries measured against one (workload, layout) cell.
#[derive(Debug, Clone)]
pub struct CompressedSeries {
    /// Workload label (`barton` / `barton-mv`).
    pub dataset: &'static str,
    /// Layout label.
    pub layout: String,
    /// Total on-disk footprint with compression off.
    pub disk_plain: u64,
    /// Total on-disk footprint with compression on.
    pub disk_compressed: u64,
    /// Per-query cells.
    pub cells: Vec<CompressedCell>,
}

/// The measured plans: the twelve benchmark queries plus `qrun`, the
/// lead-column aggregation that reads *only* the run-compressed column —
/// the query class compressed vertical partitioning serves directly
/// (count statements per subject / per property).
fn plans(layout: Layout, ctx: &QueryContext) -> Vec<(String, Plan)> {
    let mut out: Vec<(String, Plan)> = QueryId::ALL
        .iter()
        .map(|&q| (q.name().to_string(), build_plan(q, layout.scheme(), ctx)))
        .collect();
    let qrun = match layout {
        Layout::TripleStore(order) => {
            let lead = order.permutation()[0];
            group_count(project(scan_all(), vec![lead]), vec![0])
        }
        Layout::VerticallyPartitioned => group_count(
            Plan::ScanProperty {
                property: ctx.type_p,
                s: None,
                o: None,
                emit_property: false,
            },
            vec![0],
        ),
    };
    out.push(("qrun".to_string(), qrun));
    out
}

/// The three column layouts of the experiment.
pub fn layouts() -> [Layout; 3] {
    [
        Layout::TripleStore(SortOrder::Spo),
        Layout::TripleStore(SortOrder::Pso),
        Layout::VerticallyPartitioned,
    ]
}

fn load(
    ds: &Dataset,
    cfg: &HarnessConfig,
    layout: Layout,
    compression: bool,
    threads: usize,
    run_kernels: bool,
) -> RdfStore {
    let mut config = StoreConfig::column(layout)
        .on_machine(cfg.machine_b())
        .with_threads(threads);
    config.compression = compression;
    let mut engine = ColumnEngine::new();
    engine.set_run_kernels(run_kernels);
    RdfStore::with_engine(ds, config, Box::new(engine)).expect("column store loads")
}

/// Measures one (workload, layout) cell.
fn measure_cell(
    cfg: &HarnessConfig,
    dataset: &'static str,
    ds: &Dataset,
    layout: Layout,
    ctx: &QueryContext,
) -> CompressedSeries {
    eprintln!("[bench_pr5] {dataset} {} ...", layout.name());
    let plain = load(ds, cfg, layout, false, 1, false);
    let run_1t = load(ds, cfg, layout, true, 1, true);
    let flat_1t = load(ds, cfg, layout, true, 1, false);
    let run_4t = load(ds, cfg, layout, true, 4, true);
    let flat_4t = load(ds, cfg, layout, true, 4, false);

    // The dispatch census runs on a bare engine (trait objects hide the
    // counters).
    let census_storage = StorageManager::new(cfg.machine_b());
    let mut census = ColumnEngine::new();
    match layout {
        Layout::TripleStore(order) => {
            census.load_triple_store(&census_storage, &ds.triples, order, true);
        }
        Layout::VerticallyPartitioned => census.load_vertical(&census_storage, &ds.triples, true),
    }

    let mut cells = Vec::new();
    for (name, plan) in plans(layout, ctx) {
        // Cold bytes: compression off vs on.
        plain.make_cold();
        let p = plain.run_plan(&plan).expect("plain run");
        run_1t.make_cold();
        let c = run_1t.run_plan(&plan).expect("compressed run");
        // Hot A/B, interleaved (clock drift hits both sides equally).
        let mut best = [f64::INFINITY; 4];
        let stores = [&run_1t, &flat_1t, &run_4t, &flat_4t];
        for _ in 0..cfg.repeats.max(1) {
            for (slot, store) in best.iter_mut().zip(stores) {
                *slot = slot.min(store.run_plan(&plan).expect("hot run").user_seconds);
            }
        }
        census.reset_exec_stats();
        let _ = census.execute(&plan).expect("census run");
        cells.push(CompressedCell {
            query: name,
            rows: c.rows.len(),
            bytes_plain: p.io.bytes_read,
            bytes_compressed: c.io.bytes_read,
            run_1t_s: best[0],
            flat_1t_s: best[1],
            run_4t_s: best[2],
            flat_4t_s: best[3],
            stats: census.exec_stats(),
        });
    }
    CompressedSeries {
        dataset,
        layout: layout.name(),
        disk_plain: plain.disk_bytes(),
        disk_compressed: run_1t.disk_bytes(),
        cells,
    }
}

/// Runs the full experiment matrix: two workloads × three layouts.
pub fn run_matrix(cfg: &HarnessConfig, ds: &Dataset) -> Vec<CompressedSeries> {
    let mv = multi_valued(ds);
    eprintln!(
        "[bench_pr5] workloads: barton {} triples, barton-mv {} triples",
        ds.len(),
        mv.len()
    );
    let ctx = QueryContext::from_dataset(ds, 28);
    let mv_ctx = QueryContext::from_dataset(&mv, 28);
    let mut out = Vec::new();
    for layout in layouts() {
        out.push(measure_cell(cfg, "barton", ds, layout, &ctx));
    }
    for layout in layouts() {
        out.push(measure_cell(cfg, "barton-mv", &mv, layout, &mv_ctx));
    }
    out
}

fn fmt_f(x: f64) -> String {
    format!("{x:.6}")
}

fn fmt_ratio(x: f64) -> String {
    format!("{x:.3}")
}

/// Renders `BENCH_PR5.json` (hand-rolled writer — the workspace builds
/// fully offline).
pub fn to_json(cfg: &HarnessConfig, quick: bool, series: &[CompressedSeries]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"meta\": {{\"experiment\": \"compressed-execution\", \"pr\": 5, \
         \"scale\": {}, \"repeats\": {}, \"seed\": {}, \"mv_extra\": {MV_EXTRA}, \
         \"quick\": {quick}}},",
        cfg.scale, cfg.repeats, cfg.seed
    );

    let _ = writeln!(s, "  \"cells\": [");
    let mut rows: Vec<String> = Vec::new();
    // Verdict accumulators.
    let mut best_bytes_reduction_per_rle_layout: Vec<(String, f64)> = Vec::new();
    let mut run_kernel_wins: Vec<String> = Vec::new();
    let mut run_kernel_losses: Vec<String> = Vec::new();
    let mut slower_beyond_noise: Vec<String> = Vec::new();
    for ser in series {
        let compression_engaged = ser.disk_compressed < ser.disk_plain;
        let mut best_reduction = 0.0f64;
        for c in &ser.cells {
            let reduction = c.bytes_plain as f64 / (c.bytes_compressed.max(1)) as f64;
            best_reduction = best_reduction.max(reduction);
            let speed_1t = c.flat_1t_s / c.run_1t_s.max(1e-12);
            let speed_4t = c.flat_4t_s / c.run_4t_s.max(1e-12);
            // Any run scan changes the executed code (the downstream
            // consumers see a different representation), not just the
            // counted kernel dispatches.
            let differs = c.stats.run_scans > 0 || c.stats.run_kernel_dispatches > 0;
            let cell_id = format!("{}/{}/{}", ser.dataset, ser.layout, c.query);
            if differs {
                // Aggregation/merge-join cells whose lead column
                // compresses: the class the run kernels target.
                let kernel_class = c.stats.sorted_group_counts > 0 || c.stats.merge_joins > 0;
                if kernel_class && speed_1t >= 1.2 {
                    run_kernel_wins.push(cell_id.clone());
                } else if kernel_class {
                    run_kernel_losses.push(format!("{cell_id} ({:.2}x)", speed_1t));
                }
            }
            // Only cells whose dispatch actually differs can regress:
            // the rest execute identical code with run kernels on and
            // off, so their ratios are measurement noise by construction.
            if differs && (speed_1t < 0.90 || speed_4t < 0.90) {
                slower_beyond_noise.push(format!(
                    "{cell_id} (1t {:.2}x, 4t {:.2}x)",
                    speed_1t, speed_4t
                ));
            }
            rows.push(format!(
                "    {{\"dataset\": \"{}\", \"layout\": \"{}\", \"query\": \"{}\", \
                 \"rows\": {}, \"bytes_plain\": {}, \"bytes_compressed\": {}, \
                 \"bytes_reduction\": {}, \
                 \"flat_1t_s\": {}, \"run_1t_s\": {}, \"speedup_1t\": {}, \
                 \"flat_4t_s\": {}, \"run_4t_s\": {}, \"speedup_4t\": {}, \
                 \"run_scans\": {}, \"run_kernel_dispatches\": {}, \"runs_expanded\": {}, \
                 \"scan_bytes_compressed\": {}, \"scan_bytes_logical\": {}, \
                 \"dispatch_differs\": {differs}}}",
                ser.dataset,
                ser.layout,
                c.query,
                c.rows,
                c.bytes_plain,
                c.bytes_compressed,
                fmt_ratio(reduction),
                fmt_f(c.flat_1t_s),
                fmt_f(c.run_1t_s),
                fmt_ratio(speed_1t),
                fmt_f(c.flat_4t_s),
                fmt_f(c.run_4t_s),
                fmt_ratio(speed_4t),
                c.stats.run_scans,
                c.stats.run_kernel_dispatches,
                c.stats.runs_expanded,
                c.stats.scan_bytes_compressed,
                c.stats.scan_bytes_logical,
            ));
        }
        if compression_engaged {
            best_bytes_reduction_per_rle_layout
                .push((format!("{}/{}", ser.dataset, ser.layout), best_reduction));
        }
    }
    let _ = writeln!(s, "{}", rows.join(",\n"));
    let _ = writeln!(s, "  ],");

    let _ = writeln!(s, "  \"layouts\": [");
    let mut lay_rows: Vec<String> = Vec::new();
    for ser in series {
        lay_rows.push(format!(
            "    {{\"dataset\": \"{}\", \"layout\": \"{}\", \"disk_plain\": {}, \
             \"disk_compressed\": {}, \"compression_ratio\": {}}}",
            ser.dataset,
            ser.layout,
            ser.disk_plain,
            ser.disk_compressed,
            fmt_ratio(ser.disk_plain as f64 / ser.disk_compressed.max(1) as f64),
        ));
    }
    let _ = writeln!(s, "{}", lay_rows.join(",\n"));
    let _ = writeln!(s, "  ],");

    let two_x = best_bytes_reduction_per_rle_layout
        .iter()
        .filter(|(_, r)| *r >= 2.0)
        .count();
    let _ = writeln!(
        s,
        "  \"verdict\": {{\"rle_layouts\": {}, \"rle_layouts_with_2x_bytes_reduction\": {two_x}, \
         \"best_bytes_reduction_per_rle_layout\": [{}], \
         \"run_kernel_wins_1_2x\": {}, \"run_kernel_cells_below_1_2x\": [{}], \
         \"cells_slower_beyond_noise\": [{}], \"noise_tolerance\": 0.10, \
         \"note\": \"cells with dispatch_differs=false execute identical code with run \
         kernels on and off; their time ratios are measurement noise around 1.0\"}}",
        best_bytes_reduction_per_rle_layout.len(),
        best_bytes_reduction_per_rle_layout
            .iter()
            .map(|(l, r)| format!("{{\"layout\": \"{l}\", \"reduction\": {}}}", fmt_ratio(*r)))
            .collect::<Vec<_>>()
            .join(", "),
        run_kernel_wins.len(),
        run_kernel_losses
            .iter()
            .map(|l| format!("\"{l}\""))
            .collect::<Vec<_>>()
            .join(", "),
        slower_beyond_noise
            .iter()
            .map(|l| format!("\"{l}\""))
            .collect::<Vec<_>>()
            .join(", "),
    );
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_datagen::{generate, BartonConfig};

    /// A miniature end-to-end run: the multi-valued derivative multiplies
    /// the statement count, the JSON is structurally sound, and the run
    /// layer demonstrably fires — including on the multi-valued VP cells.
    #[test]
    fn tiny_experiment_produces_json_and_run_dispatches() {
        let cfg = HarnessConfig {
            scale: 0.0002,
            repeats: 1,
            seed: 7,
        };
        let ds = generate(&BartonConfig {
            scale: cfg.scale,
            seed: cfg.seed,
            n_properties: 30,
        });
        let mv = multi_valued(&ds);
        assert_eq!(mv.len(), ds.len() * (1 + MV_EXTRA as usize));

        let series = run_matrix(&cfg, &ds);
        assert_eq!(series.len(), 6); // 2 workloads × 3 layouts
        let vp_mv = series
            .iter()
            .find(|s| s.dataset == "barton-mv" && s.layout == "vert/SO")
            .expect("vp cell exists");
        assert!(
            vp_mv.disk_compressed < vp_mv.disk_plain,
            "multi-valued VP subject columns must compress: {} vs {}",
            vp_mv.disk_compressed,
            vp_mv.disk_plain
        );
        assert!(
            vp_mv.cells.iter().any(|c| c.stats.run_scans > 0),
            "run scans must fire on the multi-valued VP workload"
        );
        // qrun reads only the compressed column: ≥2x cold-byte reduction.
        let qrun = vp_mv.cells.iter().find(|c| c.query == "qrun").unwrap();
        assert!(
            qrun.bytes_plain as f64 / qrun.bytes_compressed.max(1) as f64 >= 2.0,
            "qrun: {} vs {}",
            qrun.bytes_plain,
            qrun.bytes_compressed
        );

        let json = to_json(&cfg, true, &series);
        for key in [
            "\"cells\"",
            "\"layouts\"",
            "\"verdict\"",
            "\"bytes_reduction\"",
            "\"speedup_1t\"",
            "\"run_kernel_dispatches\"",
            "\"compression_ratio\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
