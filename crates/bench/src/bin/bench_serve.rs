//! Regenerates `BENCH_PR8.json`: the concurrent-serving experiment — N
//! HTTP clients against the `swans-serve` front door, snapshot-isolated
//! reads overlapping their (real-time) simulated I/O waits, throughput
//! and latency percentiles per client count, plus a mixed read/write
//! phase.
//!
//! Usage: `cargo run -p swans-bench --release --bin bench_serve [-- --quick]`
//! `--quick` shrinks the data set and request counts for CI smoke runs.
//! Env knobs: `SWANS_SCALE`, `SWANS_SEED` (see the crate docs).

use swans_bench::{serving, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = HarnessConfig::from_env();
    if std::env::var("SWANS_SCALE").is_err() {
        // Serving wants a mid-size table: big enough that the scan query
        // pays for real pages, small enough that a phase is seconds.
        cfg.scale = if quick { 0.0008 } else { 0.003 };
    }
    eprintln!(
        "[bench_serve] scale={} seed={} quick={quick}",
        cfg.scale, cfg.seed
    );
    let (phases, scaling) = serving::run(&cfg, quick);
    let json = serving::to_json(&cfg, quick, &phases, scaling);
    std::fs::write("BENCH_PR8.json", &json).expect("write BENCH_PR8.json");
    eprintln!("[bench_serve] wrote BENCH_PR8.json");

    println!("{}", serving::render(&phases, scaling));
    assert!(
        phases.iter().all(|p| p.errors == 0),
        "every request must answer 200"
    );
}
