//! Regenerates `BENCH_PR4.json`: the morsel-parallel scaling experiment —
//! for every column layout and benchmark query, measured hot wall time at
//! pool widths 1/2/4/8 plus the modeled makespan curve replayed from
//! uncontended per-morsel task timings (see `swans_bench::parallel`).
//!
//! Usage: `cargo run -p swans-bench --release --bin bench_pr4 [-- --quick]`
//! `--quick` shrinks the data set and repeat count for CI smoke runs.
//! Env knobs: `SWANS_SCALE`, `SWANS_REPEATS`, `SWANS_SEED`.

use swans_bench::{parallel, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = HarnessConfig::from_env();
    if quick {
        cfg.scale = cfg.scale.min(0.002);
        cfg.repeats = cfg.repeats.min(2);
    } else if std::env::var("SWANS_SCALE").is_err() {
        // Large enough that every hot query splits into many morsels,
        // small enough to regenerate in minutes.
        cfg.scale = 0.01;
    }
    if std::env::var("SWANS_REPEATS").is_err() && !quick {
        cfg.repeats = 5; // best-of-5 hot runs per width
    }
    eprintln!(
        "[bench_pr4] scale={} repeats={} seed={} quick={quick} host_cores={}",
        cfg.scale,
        cfg.repeats,
        cfg.seed,
        std::thread::available_parallelism().map_or(0, usize::from)
    );
    let ds = cfg.dataset();
    eprintln!("[bench_pr4] dataset: {} triples", ds.len());
    let cells = parallel::run_matrix(&cfg, &ds);
    let json = parallel::to_json(&cfg, quick, &cells);
    std::fs::write("BENCH_PR4.json", &json).expect("write BENCH_PR4.json");
    eprintln!("[bench_pr4] wrote BENCH_PR4.json");

    // Console summary: modeled (and measured) speedup at 4 threads.
    let idx4 = parallel::WIDTHS
        .iter()
        .position(|&w| w == 4)
        .expect("4 is a width");
    for c in &cells {
        eprintln!(
            "[bench_pr4] {:12} {:4}  1T {:>9.6}s  modeled@4 {:>5.2}x  measured@4 {:>5.2}x  \
             ({} batches / {} morsels)",
            c.layout,
            c.query,
            c.modeled_s[0],
            c.modeled_speedup(idx4),
            c.measured_speedup(idx4),
            c.parallel_tasks,
            c.morsels,
        );
    }
}
