//! Regenerates `BENCH_PR9.json`: the plan-quality experiment — rotation
//! heuristic vs cost-based enumeration on the same submitted plans, per
//! column layout × query (the twelve benchmark queries plus two
//! star-shaped queries submitted in their worst join order), with
//! per-cell q-error and the CBO engine's leapfrog-dispatch census.
//!
//! Usage: `cargo run -p swans-bench --release --bin bench_pr9 [-- --quick]`
//! `--quick` shrinks the data set and star overlay for CI smoke runs.
//! Env knobs: `SWANS_SCALE`, `SWANS_SEED`, `SWANS_REPEATS` (see the
//! crate docs).

use swans_bench::{planquality, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = HarnessConfig::from_env();
    let (mut star, fan) = (120_000u64, 4u64);
    if quick {
        cfg.scale = cfg.scale.min(0.0005);
        star = 2_000;
    }
    eprintln!(
        "[bench_pr9] scale={} seed={} star={star} quick={quick}",
        cfg.scale, cfg.seed
    );
    let ds = cfg.dataset();
    let cells = planquality::run(&cfg, &ds, star, fan);
    let json = planquality::to_json(&cfg, quick, star, &cells);
    std::fs::write("BENCH_PR9.json", &json).expect("write BENCH_PR9.json");
    eprintln!("[bench_pr9] wrote BENCH_PR9.json");

    println!("{}", planquality::render(&cells));
    println!(
        "Both columns execute the same submitted plans; only the optimizer\n\
         differs. `lf` counts leapfrog star-kernel dispatches in the CBO\n\
         run — the star queries are submitted dense-arms-first, so any win\n\
         there is the enumerator finding the order the heuristic cannot."
    );
}
