//! Regenerates the paper's Figure 1 (cumulative frequency distributions).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    print!("{}", swans_bench::experiments::fig1(&ds));
}
