//! Regenerates the paper's Table 1 (data set details).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    print!("{}", swans_bench::experiments::table1(&cfg, &ds));
}
