//! Regenerates the paper's Table 3 (machine configurations).
fn main() {
    print!("{}", swans_bench::experiments::table3());
}
