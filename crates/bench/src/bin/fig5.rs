//! Regenerates the paper's Figure 5 (I/O read history for q3 and q5).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    print!("{}", swans_bench::experiments::fig5(&cfg, &ds));
}
