//! Regenerates `BENCH_PR5.json`: the compressed-execution experiment —
//! per workload × column layout × query, cold bytes read with compression
//! off vs on, hot wall time with run kernels on vs off at 1 and 4
//! threads, and the run-dispatch census proving which path ran.
//!
//! Usage: `cargo run -p swans-bench --release --bin bench_pr5 [-- --quick]`
//! `--quick` shrinks the data set and repeat count for CI smoke runs.
//! Env knobs: `SWANS_SCALE`, `SWANS_REPEATS`, `SWANS_SEED` (see the crate
//! docs).

use swans_bench::{compressed, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = HarnessConfig::from_env();
    if quick {
        cfg.scale = cfg.scale.min(0.001);
        cfg.repeats = cfg.repeats.min(2);
    } else if std::env::var("SWANS_SCALE").is_err() {
        // The trajectory default: the multi-valued workload quadruples the
        // statement count, so the base scale sits below bench_pr2's.
        cfg.scale = 0.004;
    }
    if std::env::var("SWANS_REPEATS").is_err() && !quick {
        cfg.repeats = 7; // best-of-7 interleaved hot runs
    }
    eprintln!(
        "[bench_pr5] scale={} repeats={} seed={} quick={quick}",
        cfg.scale, cfg.repeats, cfg.seed
    );
    let ds = cfg.dataset();
    let series = compressed::run_matrix(&cfg, &ds);
    let json = compressed::to_json(&cfg, quick, &series);
    std::fs::write("BENCH_PR5.json", &json).expect("write BENCH_PR5.json");
    eprintln!("[bench_pr5] wrote BENCH_PR5.json");

    // Console summary: bytes and run-kernel verdicts per cell.
    for ser in &series {
        eprintln!(
            "[bench_pr5] {} {}: disk {:.2}x smaller compressed",
            ser.dataset,
            ser.layout,
            ser.disk_plain as f64 / ser.disk_compressed.max(1) as f64
        );
        for c in &ser.cells {
            if c.stats.run_kernel_dispatches == 0 {
                continue;
            }
            eprintln!(
                "  {:5} bytes {:.2}x  1t {:.2}x  4t {:.2}x  (run kernels: {})",
                c.query,
                c.bytes_plain as f64 / c.bytes_compressed.max(1) as f64,
                c.flat_1t_s / c.run_1t_s.max(1e-12),
                c.flat_4t_s / c.run_4t_s.max(1e-12),
                c.stats.run_kernel_dispatches,
            );
        }
    }
}
