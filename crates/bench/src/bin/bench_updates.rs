//! Update-cost experiment: `cargo run -p swans-bench --release --bin
//! bench_updates [-- --quick]`.
//!
//! Applies an insert/delete workload to every engine × layout
//! configuration and reports where each architecture pays: the row engine
//! at apply time (in-place B+tree maintenance across all its indexes), the
//! column engine at merge time (write-store merge rebuilding the affected
//! sorted tables). `SWANS_SCALE` / `SWANS_SEED` tune the data set as for
//! the other experiment binaries; `--quick` shrinks both the data set and
//! the workload for smoke runs.

use swans_bench::{updates, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = HarnessConfig::from_env();
    let mut ops = 2_000;
    if quick {
        cfg.scale = cfg.scale.min(0.0005);
        ops = 200;
    } else if std::env::var("SWANS_SCALE").is_err() {
        // The in-place row path is O(table size) per operation; default to
        // a smaller data set than the read-only experiments use.
        cfg.scale = 0.004;
    }
    println!(
        "update-cost experiment: scale={} seed={} ops={ops}\n",
        cfg.scale, cfg.seed
    );
    let rows = updates::run(&cfg, ops);
    println!("{}", updates::render(&rows));
    println!(
        "MBw = decimal megabytes written through the storage layer.\n\
         The row engine pays per-operation index maintenance at apply time;\n\
         the column engine logs applies and pays sorted-table rebuilds at merge."
    );
}
