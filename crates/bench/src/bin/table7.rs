//! Regenerates the paper's Table 7 (hot runs, full configuration matrix).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    let (_, t7) = swans_bench::experiments::tables_6_and_7(&cfg, &ds);
    print!("{t7}");
}
