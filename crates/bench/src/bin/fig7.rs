//! Regenerates the paper's Figure 7 (splitting scalability experiment).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    print!("{}", swans_bench::experiments::fig7(&cfg, &ds));
}
