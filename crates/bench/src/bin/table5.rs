//! Regenerates the paper's Table 5 (data relevant to a query).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    print!("{}", swans_bench::experiments::table5(&cfg, &ds));
}
