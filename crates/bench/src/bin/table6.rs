//! Regenerates the paper's Table 6 (cold runs, full configuration matrix).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    let (t6, _) = swans_bench::experiments::tables_6_and_7(&cfg, &ds);
    print!("{t6}");
}
