//! Regenerates the paper's Table 2 (query-space coverage).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    print!("{}", swans_bench::experiments::table2(&ds));
}
