//! Regenerates `BENCH_PR2.json`: the sorted-vs-hash execution experiment
//! over all six engine × layout configurations (per-query wall time and
//! bytes read), the column engine measured both with and without its
//! sortedness-aware dispatch layer, plus a kernel-dispatch census.
//!
//! Usage: `cargo run -p swans-bench --release --bin bench_pr2 [-- --quick]`
//! `--quick` shrinks the data set and repeat count for CI smoke runs.
//! Env knobs: `SWANS_SCALE`, `SWANS_REPEATS`, `SWANS_SEED` (see the crate
//! docs).

use swans_bench::{sorted, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = HarnessConfig::from_env();
    if quick {
        cfg.scale = cfg.scale.min(0.002);
        cfg.repeats = cfg.repeats.min(2);
    } else if std::env::var("SWANS_SCALE").is_err() {
        // The trajectory default: large enough that kernel choice shows,
        // small enough to regenerate in minutes.
        cfg.scale = 0.01;
    }
    if std::env::var("SWANS_REPEATS").is_err() && !quick {
        cfg.repeats = 9; // best-of-9 interleaved hot runs
    }
    eprintln!(
        "[bench_pr2] scale={} repeats={} seed={} quick={quick}",
        cfg.scale, cfg.repeats, cfg.seed
    );
    let ds = cfg.dataset();
    eprintln!("[bench_pr2] dataset: {} triples", ds.len());
    let series = sorted::run_matrix(&cfg, &ds);
    let census = sorted::dispatch_census(&cfg, &ds);
    let json = sorted::to_json(&cfg, quick, &series, &census);
    std::fs::write("BENCH_PR2.json", &json).expect("write BENCH_PR2.json");
    eprintln!("[bench_pr2] wrote BENCH_PR2.json");

    // Console summary: the A/B verdict per column layout.
    for layout in sorted::layouts() {
        let find = |mode: &str| {
            series
                .iter()
                .find(|r| r.engine == "column" && r.layout == layout.name() && r.mode == mode)
        };
        let (Some(s), Some(h)) = (find("sorted"), find("hash")) else {
            continue;
        };
        eprintln!(
            "[bench_pr2] column {}: hot user, sorted vs hash",
            layout.name()
        );
        for (a, b) in s.cells.iter().zip(&h.cells) {
            eprintln!(
                "  {:4}  {:>10.6}s vs {:>10.6}s  ({:.2}x)",
                a.query,
                a.hot_user_s,
                b.hot_user_s,
                b.hot_user_s / a.hot_user_s.max(1e-12)
            );
        }
    }
}
