//! Regenerates the paper's Table 4 (repetition of the C-Store experiment).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    print!("{}", swans_bench::experiments::table4(&cfg, &ds));
}
