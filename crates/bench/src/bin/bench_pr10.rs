//! Regenerates `BENCH_PR10.json`: the overload-governance experiment —
//! closed-loop clients at 1×/2×/4× the server's worker capacity against
//! a bounded pool + bounded admission queue, measuring goodput, success
//! latency, and the `503`+`Retry-After` shed rate. The acceptance
//! criterion: goodput under 4× overload stays within ~10% of capacity
//! instead of collapsing.
//!
//! Usage: `cargo run -p swans-bench --release --bin bench_pr10 [-- --quick]`
//! `--quick` shrinks the data set and request counts for CI smoke runs.
//! Env knobs: `SWANS_SCALE`, `SWANS_SEED` (see the crate docs).

use swans_bench::{governance, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = HarnessConfig::from_env();
    if std::env::var("SWANS_SCALE").is_err() {
        // Same sizing logic as bench_serve: requests must pay for real
        // pages, phases must stay seconds.
        cfg.scale = if quick { 0.0008 } else { 0.003 };
    }
    eprintln!(
        "[bench_pr10] scale={} seed={} quick={quick}",
        cfg.scale, cfg.seed
    );
    let (phases, worst_ratio) = governance::run(&cfg, quick);
    let json = governance::to_json(&cfg, quick, &phases, worst_ratio);
    std::fs::write("BENCH_PR10.json", &json).expect("write BENCH_PR10.json");
    eprintln!("[bench_pr10] wrote BENCH_PR10.json");

    println!("{}", governance::render(&phases, worst_ratio));
    assert!(
        phases.iter().all(|p| p.errors == 0),
        "every response must be a 200 or a Retry-After-bearing 503"
    );
    let four_x = phases
        .iter()
        .find(|p| p.load_multiple == 4)
        .expect("4x phase");
    assert!(
        four_x.shed > 0,
        "4x overload must shed: offered {} all served?",
        four_x.offered
    );
    // Goodput must hold near capacity under overload; quick CI runs on
    // noisy shared runners get a looser floor.
    let floor = if quick { 0.6 } else { 0.9 };
    assert!(
        worst_ratio >= floor,
        "goodput collapsed under overload: worst ratio {worst_ratio:.3} < {floor}"
    );
}
