//! Regenerates `BENCH_PR7.json`: the durability experiment — per engine ×
//! layout configuration, the real-I/O cost of a crash-safe workload
//! (fsyncs, bytes synced, WAL growth) and the recovery path a restart
//! pays (snapshot load + WAL replay + engine load), plus the checkpoint
//! cost that bounds WAL accumulation.
//!
//! Usage: `cargo run -p swans-bench --release --bin bench_pr7 [-- --quick]`
//! `--quick` shrinks the data set and workload for CI smoke runs.
//! Env knobs: `SWANS_SCALE`, `SWANS_SEED` (see the crate docs).

use swans_bench::{durability, HarnessConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut cfg = HarnessConfig::from_env();
    let mut ops = 2_000;
    if quick {
        cfg.scale = cfg.scale.min(0.0005);
        ops = 200;
    } else if std::env::var("SWANS_SCALE").is_err() {
        // Match bench_updates: the row engine's in-place path is
        // O(table size) per operation.
        cfg.scale = 0.004;
    }
    eprintln!(
        "[bench_pr7] scale={} seed={} ops={ops} quick={quick}",
        cfg.scale, cfg.seed
    );
    let rows = durability::run(&cfg, ops);
    let json = durability::to_json(&cfg, quick, &rows);
    std::fs::write("BENCH_PR7.json", &json).expect("write BENCH_PR7.json");
    eprintln!("[bench_pr7] wrote BENCH_PR7.json");

    println!("{}", durability::render(&rows));
    println!(
        "Every configuration recovers from the same directory format: the\n\
         snapshot carries the checkpointed state (RLE-compressed, CRC-sealed),\n\
         the WAL carries every acknowledged batch since. `recover s` is the\n\
         full restart path: snapshot load + WAL replay + engine load."
    );
}
