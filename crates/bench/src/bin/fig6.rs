//! Regenerates the paper's Figure 6 (time vs number of properties).
fn main() {
    let cfg = swans_bench::HarnessConfig::from_env();
    let ds = cfg.dataset();
    print!("{}", swans_bench::experiments::fig6(&cfg, &ds));
}
