//! Reference numbers transcribed from the paper, for side-by-side
//! comparison in the harness output and EXPERIMENTS.md.

/// Table 1 — data set details of the real Barton dump.
pub mod table1 {
    /// Total triples.
    pub const TOTAL_TRIPLES: u64 = 50_255_599;
    /// Distinct properties.
    pub const DISTINCT_PROPERTIES: u64 = 222;
    /// Distinct subjects.
    pub const DISTINCT_SUBJECTS: u64 = 12_304_739;
    /// Distinct objects.
    pub const DISTINCT_OBJECTS: u64 = 15_817_921;
    /// Subjects also appearing as objects.
    pub const SUBJECT_OBJECT_OVERLAP: u64 = 9_654_007;
    /// Strings in the dictionary.
    pub const DICTIONARY_STRINGS: u64 = 18_468_875;
    /// Data set size in megabytes.
    pub const DATASET_MB: u64 = 1253;
    /// Most frequent property (`#type`) triple count.
    pub const TOP_PROPERTY: u64 = 12_327_859;
    /// Most frequent object (`#Date`) triple count.
    pub const TOP_OBJECT: u64 = 4_035_522;
    /// Most frequent subject triple count.
    pub const TOP_SUBJECT: u64 = 3_794;
}

/// Table 4 — repetition of the C-Store experiment (q1–q7, seconds).
/// Rows: (label, [q1..q7], geometric mean).
pub const TABLE4: [(&str, [f64; 7], f64); 9] = [
    (
        "A cold real",
        [1.01, 2.21, 10.33, 2.47, 18.46, 11.42, 1.94],
        4.2,
    ),
    (
        "A cold user",
        [0.47, 1.14, 3.06, 1.37, 9.28, 8.91, 0.34],
        1.8,
    ),
    (
        "A hot real",
        [0.59, 1.33, 3.63, 1.62, 10.42, 10.36, 0.83],
        2.3,
    ),
    (
        "A hot user",
        [0.49, 1.14, 3.01, 1.37, 9.13, 8.91, 0.30],
        1.7,
    ),
    (
        "B cold real",
        [0.79, 1.79, 10.13, 2.80, 21.13, 12.71, 1.09],
        3.8,
    ),
    (
        "B cold user",
        [0.49, 1.18, 3.44, 1.30, 11.64, 10.56, 0.37],
        1.9,
    ),
    (
        "B hot real",
        [0.59, 1.35, 4.08, 1.52, 12.95, 12.04, 0.77],
        2.4,
    ),
    (
        "B hot user",
        [0.49, 1.17, 3.45, 1.28, 11.67, 10.49, 0.34],
        1.9,
    ),
    (
        "[1] (orig.)",
        [0.66, 1.64, 9.28, 2.24, 15.88, 10.81, 1.44],
        3.4,
    ),
];

/// Table 5 — data relevant to a query on C-Store: (query, MB read, rows).
pub const TABLE5: [(&str, f64, u64); 7] = [
    ("q1", 100.0, 30),
    ("q2", 135.0, 9),
    ("q3", 175.0, 3336),
    ("q4", 142.0, 297),
    ("q5", 250.0, 12916),
    ("q6", 220.0, 14),
    ("q7", 135.0, 74866),
];

/// One configuration row of Tables 6/7: real-time seconds for the 12
/// queries (q2*/q3*/q4*/q6* interleaved as in the paper), then G, G*, G*/G.
/// `None` marks cells C-Store cannot run.
pub struct PaperRow {
    /// Configuration label.
    pub label: &'static str,
    /// Real seconds for q1, q2, q2*, q3, q3*, q4, q4*, q5, q6, q6*, q7, q8.
    pub real: [Option<f64>; 12],
    /// Geometric mean over q1–q7.
    pub g: f64,
    /// Geometric mean over all 12 queries (None for C-Store).
    pub g_star: Option<f64>,
}

const fn s(x: f64) -> Option<f64> {
    Some(x)
}

/// Table 6 — cold runs (real time).
pub const TABLE6: [PaperRow; 7] = [
    PaperRow {
        label: "DBX triple/SPO",
        real: [
            s(12.59),
            s(53.65),
            s(108.76),
            s(50.35),
            s(144.81),
            s(16.08),
            s(13.82),
            s(45.06),
            s(127.45),
            s(170.99),
            s(9.62),
            s(19.45),
        ],
        g: 31.4,
        g_star: Some(40.8),
    },
    PaperRow {
        label: "DBX triple/PSO",
        real: [
            s(2.35),
            s(34.08),
            s(37.93),
            s(39.73),
            s(72.72),
            s(10.64),
            s(9.84),
            s(14.01),
            s(54.66),
            s(60.66),
            s(8.62),
            s(19.61),
        ],
        g: 15.5,
        g_star: Some(20.9),
    },
    PaperRow {
        label: "DBX vert/SO",
        real: [
            s(1.92),
            s(44.29),
            s(99.46),
            s(49.88),
            s(121.08),
            s(10.11),
            s(84.03),
            s(6.32),
            s(51.23),
            s(173.49),
            s(2.70),
            s(39.75),
        ],
        g: 12.0,
        g_star: Some(28.2),
    },
    PaperRow {
        label: "MonetDB triple/SPO",
        real: [
            s(3.06),
            s(12.16),
            s(12.30),
            s(14.04),
            s(27.32),
            s(11.10),
            s(11.00),
            s(32.86),
            s(25.79),
            s(26.08),
            s(29.03),
            s(6.65),
        ],
        g: 14.6,
        g_star: Some(14.5),
    },
    PaperRow {
        label: "MonetDB triple/PSO",
        real: [
            s(2.66),
            s(6.48),
            s(6.62),
            s(8.59),
            s(16.92),
            s(14.85),
            s(20.67),
            s(4.11),
            s(9.60),
            s(8.96),
            s(3.46),
            s(8.43),
        ],
        g: 6.0,
        g_star: Some(7.8),
    },
    PaperRow {
        label: "MonetDB vert/SO",
        real: [
            s(1.20),
            s(3.50),
            s(9.16),
            s(5.22),
            s(19.34),
            s(2.28),
            s(6.22),
            s(2.00),
            s(7.20),
            s(16.58),
            s(0.61),
            s(7.99),
        ],
        g: 2.3,
        g_star: Some(4.4),
    },
    PaperRow {
        label: "C-Store vert/SO",
        real: [
            s(0.79),
            s(1.79),
            None,
            s(10.13),
            None,
            s(2.80),
            None,
            s(21.13),
            s(12.71),
            None,
            s(1.09),
            None,
        ],
        g: 3.8,
        g_star: None,
    },
];

/// Table 7 — hot runs (real time).
pub const TABLE7: [PaperRow; 7] = [
    PaperRow {
        label: "DBX triple/SPO",
        real: [
            s(4.29),
            s(42.61),
            s(93.11),
            s(34.86),
            s(97.92),
            s(8.02),
            s(6.12),
            s(11.70),
            s(89.11),
            s(142.10),
            s(1.34),
            s(14.47),
        ],
        g: 13.2,
        g_star: Some(21.1),
    },
    PaperRow {
        label: "DBX triple/PSO",
        real: [
            s(1.72),
            s(40.18),
            s(38.35),
            s(45.65),
            s(67.32),
            s(3.22),
            s(2.49),
            s(10.61),
            s(57.52),
            s(63.04),
            s(1.42),
            s(12.14),
        ],
        g: 9.8,
        g_star: Some(13.6),
    },
    PaperRow {
        label: "DBX vert/SO",
        real: [
            s(1.55),
            s(39.62),
            s(74.85),
            s(45.17),
            s(94.59),
            s(6.12),
            s(14.18),
            s(5.69),
            s(45.57),
            s(154.81),
            s(1.25),
            s(11.55),
        ],
        g: 9.1,
        g_star: Some(17.7),
    },
    PaperRow {
        label: "MonetDB triple/SPO",
        real: [
            s(1.53),
            s(3.50),
            s(3.63),
            s(5.28),
            s(17.54),
            s(1.68),
            s(1.98),
            s(2.77),
            s(8.37),
            s(7.33),
            s(1.82),
            s(4.76),
        ],
        g: 2.9,
        g_star: Some(3.7),
    },
    PaperRow {
        label: "MonetDB triple/PSO",
        real: [
            s(0.78),
            s(2.80),
            s(2.83),
            s(4.36),
            s(12.59),
            s(1.70),
            s(1.97),
            s(1.44),
            s(5.67),
            s(4.59),
            s(0.18),
            s(5.23),
        ],
        g: 1.5,
        g_star: Some(2.4),
    },
    PaperRow {
        label: "MonetDB vert/SO",
        real: [
            s(0.79),
            s(1.50),
            s(5.50),
            s(2.64),
            s(14.01),
            s(0.50),
            s(2.57),
            s(1.29),
            s(4.65),
            s(11.51),
            s(0.06),
            s(5.05),
        ],
        g: 0.9,
        g_star: Some(2.0),
    },
    PaperRow {
        label: "C-Store vert/SO",
        real: [
            s(0.59),
            s(1.35),
            None,
            s(4.08),
            None,
            s(1.52),
            None,
            s(12.95),
            s(12.04),
            None,
            s(0.77),
            None,
        ],
        g: 2.4,
        g_star: None,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    /// The transcribed rows must be internally consistent: recomputing the
    /// geometric means from the per-query numbers reproduces the paper's G
    /// and G* columns (±0.1 for rounding).
    #[test]
    fn paper_tables_are_internally_consistent() {
        // In paper order, the BASE7 positions within the 12-query row.
        const BASE7_POS: [usize; 7] = [0, 1, 3, 5, 7, 8, 10];
        for row in TABLE6.iter().chain(TABLE7.iter()) {
            let base: Vec<f64> = BASE7_POS.iter().filter_map(|&i| row.real[i]).collect();
            let g = swans_core::geometric_mean(&base);
            assert!(
                (g - row.g).abs() < 0.11,
                "{}: recomputed G {:.2} vs paper {:.2}",
                row.label,
                g,
                row.g
            );
            if let Some(gs) = row.g_star {
                let all: Vec<f64> = row.real.iter().filter_map(|&x| x).collect();
                assert_eq!(all.len(), 12);
                let g_star = swans_core::geometric_mean(&all);
                assert!(
                    (g_star - gs).abs() < 0.11,
                    "{}: recomputed G* {:.2} vs paper {:.2}",
                    row.label,
                    g_star,
                    gs
                );
            }
        }
    }

    #[test]
    fn table4_geometric_means_consistent() {
        for (label, qs, g) in TABLE4 {
            let got = swans_core::geometric_mean(&qs);
            assert!(
                (got - g).abs() < 0.1,
                "{label}: recomputed {got:.2} vs paper {g:.2}"
            );
        }
    }
}
