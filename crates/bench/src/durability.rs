//! The durability experiment behind `BENCH_PR7.json`: what crash safety
//! costs and how fast recovery is, per engine × layout configuration.
//!
//! Per configuration the harness imports the data set into a durable
//! directory, applies a batched insert/delete workload (every batch
//! WAL-logged and fsynced before acknowledgement), kills the database
//! without a checkpoint, and measures the recovery path a real restart
//! would take: snapshot load + WAL replay + engine load. It then measures
//! a checkpoint from the recovered state — the snapshot-publication cost
//! that bounds how much WAL a deployment lets accumulate.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

use swans_core::{Database, DurabilityOptions};
use swans_plan::queries::vocab;
use swans_rdf::Dataset;

use crate::{render_table, updates, HarnessConfig};

/// A scratch directory under the system temp dir, unique per call.
pub(crate) fn scratch_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU32, Ordering};
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "swans-bench-{}-{}-{}",
        tag,
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Durability measurements for one engine × layout configuration.
#[derive(Debug, Clone)]
pub struct DurabilityMeasure {
    /// Configuration label (engine + layout).
    pub config: String,
    /// Operations applied (inserts + deletes), across `batches` commits.
    pub ops: usize,
    /// WAL-logged commit batches the workload acknowledged.
    pub batches: usize,
    /// WAL size at kill time (bytes) — what recovery must replay.
    pub wal_bytes: u64,
    /// Snapshot size on disk (bytes) — what recovery must load.
    pub snapshot_bytes: u64,
    /// Real fsyncs issued while applying the workload.
    pub syncs: u64,
    /// Bytes made durable by those fsyncs (decimal MB).
    pub synced_mb: f64,
    /// Wall seconds for `Database::open_at`: snapshot load + WAL replay +
    /// engine load.
    pub recover_s: f64,
    /// Batches the recovery replayed from the WAL (must equal `batches`).
    pub replayed_batches: u64,
    /// Triples restored from the snapshot.
    pub snapshot_triples: u64,
    /// Wall seconds to checkpoint the recovered state (publish a new
    /// snapshot, truncate the WAL).
    pub checkpoint_s: f64,
}

/// An owned (subject, predicate, object) triple.
type Term3 = (String, String, String);

/// The batched workload: `ops/2` deletes of existing triples and `ops/2`
/// inserts of new subjects, committed in `2 × batches_per_kind` WAL
/// batches.
fn workload(ds: &Dataset, ops: usize) -> (Vec<Term3>, Vec<Term3>) {
    let half = (ops / 2).max(1);
    let deletes: Vec<Term3> = ds
        .triples
        .iter()
        .step_by((ds.len() / half).max(1))
        .take(half)
        .map(|t| {
            (
                ds.dict.term(t.s).to_string(),
                ds.dict.term(t.p).to_string(),
                ds.dict.term(t.o).to_string(),
            )
        })
        .collect();
    let inserts: Vec<Term3> = (0..half)
        .map(|i| {
            let s = format!("<dur-s{i}>");
            match i % 3 {
                0 => (s, vocab::TYPE.to_string(), vocab::TEXT.to_string()),
                1 => (s, vocab::ORIGIN.to_string(), vocab::DLC.to_string()),
                _ => (s, "<updated-by>".to_string(), "\"writer\"".to_string()),
            }
        })
        .collect();
    (deletes, inserts)
}

/// Runs the experiment on every configuration of the update matrix.
pub fn run(cfg: &HarnessConfig, ops: usize) -> Vec<DurabilityMeasure> {
    let ds = cfg.dataset();
    let (deletes, inserts) = workload(&ds, ops);
    const CHUNKS: usize = 4; // commits per kind → 8 WAL batches total

    updates::configs()
        .into_iter()
        .map(|config| {
            let config = config.on_machine(cfg.machine_b());
            let label = config.label();
            let dir = scratch_dir("pr7");

            // Import (initial snapshot), then the batched workload — no
            // checkpoint, so the WAL alone carries every batch.
            let (batches, wal_bytes, snapshot_bytes, syncs, synced_mb) = {
                let db = Database::import_at(
                    &dir,
                    ds.clone(),
                    config.clone(),
                    DurabilityOptions::default(),
                )
                .expect("import succeeds");
                let before = db.storage().stats();
                let mut batches = 0usize;
                let chunk = |v: &[(String, String, String)]| v.len().div_ceil(CHUNKS).max(1);
                for c in deletes.chunks(chunk(&deletes)) {
                    db.delete(
                        c.iter()
                            .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
                    )
                    .expect("deletes apply");
                    batches += 1;
                }
                for c in inserts.chunks(chunk(&inserts)) {
                    db.insert(
                        c.iter()
                            .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
                    )
                    .expect("inserts apply");
                    batches += 1;
                }
                let io = db.storage().stats().since(&before);
                (
                    batches,
                    db.wal_bytes().expect("durable"),
                    db.snapshot_bytes().expect("durable"),
                    io.syncs,
                    io.bytes_synced as f64 / 1e6,
                )
                // `db` dropped here without a checkpoint: the kill.
            };

            // Recovery: what a restart pays.
            let start = Instant::now();
            let db = Database::open_at(&dir, config).expect("recovery succeeds");
            let recover_s = start.elapsed().as_secs_f64();
            let report = db.recovery_report().expect("durable reopen reports");

            let start = Instant::now();
            db.checkpoint().expect("checkpoint succeeds");
            let checkpoint_s = start.elapsed().as_secs_f64();

            let _ = std::fs::remove_dir_all(&dir);
            DurabilityMeasure {
                config: label,
                ops: deletes.len() + inserts.len(),
                batches,
                wal_bytes,
                snapshot_bytes,
                syncs,
                synced_mb,
                recover_s,
                replayed_batches: report.replayed_batches,
                snapshot_triples: report.snapshot_triples,
                checkpoint_s,
            }
        })
        .collect()
}

/// Renders the measurement matrix as an aligned text table.
pub fn render(rows: &[DurabilityMeasure]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.batches.to_string(),
                format!("{:.3}", r.wal_bytes as f64 / 1e6),
                format!("{:.3}", r.snapshot_bytes as f64 / 1e6),
                r.syncs.to_string(),
                format!("{:.2}", r.synced_mb),
                format!("{:.4}", r.recover_s),
                r.replayed_batches.to_string(),
                format!("{:.4}", r.checkpoint_s),
            ]
        })
        .collect();
    render_table(
        &[
            "configuration",
            "batches",
            "WAL MB",
            "snap MB",
            "fsyncs",
            "sync MBw",
            "recover s",
            "replayed",
            "checkpoint s",
        ],
        &table,
    )
}

/// Renders `BENCH_PR7.json` (hand-rolled writer — the workspace builds
/// fully offline).
pub fn to_json(cfg: &HarnessConfig, quick: bool, rows: &[DurabilityMeasure]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"meta\": {{\"experiment\": \"durability\", \"pr\": 7, \
         \"scale\": {}, \"seed\": {}, \"quick\": {quick}}},",
        cfg.scale, cfg.seed
    );
    let _ = writeln!(s, "  \"configs\": [");
    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"config\": \"{}\", \"ops\": {}, \"batches\": {}, \
                 \"wal_bytes\": {}, \"snapshot_bytes\": {}, \
                 \"syncs\": {}, \"synced_mb\": {:.3}, \
                 \"recover_s\": {:.6}, \"replayed_batches\": {}, \
                 \"snapshot_triples\": {}, \"checkpoint_s\": {:.6}}}",
                r.config,
                r.ops,
                r.batches,
                r.wal_bytes,
                r.snapshot_bytes,
                r.syncs,
                r.synced_mb,
                r.recover_s,
                r.replayed_batches,
                r.snapshot_triples,
                r.checkpoint_s,
            )
        })
        .collect();
    let _ = writeln!(s, "{}", body.join(",\n"));
    let _ = writeln!(s, "  ],");
    let all_replayed = rows.iter().all(|r| r.replayed_batches == r.batches as u64);
    let _ = writeln!(
        s,
        "  \"verdicts\": {{\"every_batch_replayed_on_every_config\": {all_replayed}}}"
    );
    let _ = writeln!(s, "}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiment runs end to end on a tiny data set: every
    /// configuration logs, recovers every batch, and reports non-trivial
    /// sizes and sync counts.
    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn tiny_run_recovers_every_batch_on_every_config() {
        let cfg = HarnessConfig {
            scale: 0.0001,
            repeats: 1,
            seed: 7,
        };
        let rows = run(&cfg, 40);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.replayed_batches, r.batches as u64, "{}", r.config);
            assert!(r.wal_bytes > 0, "{}: WAL must carry the batches", r.config);
            assert!(r.snapshot_bytes > 0, "{}: import snapshots", r.config);
            assert!(
                r.syncs >= r.batches as u64,
                "{}: one fsync per commit",
                r.config
            );
            assert!(r.snapshot_triples > 0, "{}", r.config);
            assert!(r.recover_s >= 0.0 && r.checkpoint_s >= 0.0);
        }
        let text = render(&rows);
        assert!(text.contains("recover s"));
        let json = to_json(&cfg, true, &rows);
        assert!(json.contains("\"every_batch_replayed_on_every_config\": true"));
        assert!(json.contains("\"recover_s\""));
    }
}
