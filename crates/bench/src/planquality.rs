//! The plan-quality experiment behind `BENCH_PR9.json` — the rotation
//! heuristic vs cost-based enumeration A/B of PR 9.
//!
//! Per column layout × query, both engines execute the *same submitted
//! plan*; the only difference is the `set_cbo` switch, i.e. whether the
//! join order is picked by the statistics-driven enumerator (with the
//! leapfrog star kernel among its candidates) or by the legacy rotation
//! heuristic. The workload is the twelve benchmark queries plus two
//! star-shaped queries over a synthetic star overlay: subject-sharing
//! property chains submitted in their worst order, with one highly
//! selective arm — the shape where the binary fold grinds through a
//! large intermediate while the leapfrog gallop skips it.
//!
//! Each cell records: best-of-N hot wall seconds per side (interleaved,
//! so clock drift hits both equally; optimization time is inside the
//! measurement — the enumerator pays for itself), the estimated vs
//! actual root cardinality and their q-error, and the CBO engine's
//! leapfrog-dispatch count proving which physical plan ran.

use std::fmt::Write as _;
use std::time::Instant;

use swans_colstore::ColumnEngine;
use swans_core::Layout;
use swans_plan::algebra::{join, Plan};
use swans_plan::queries::{build_plan, QueryContext, QueryId};
use swans_plan::{estimate_rows, optimize_cbo, reorder_joins};
use swans_rdf::{Dataset, Id, Triple};
use swans_storage::StorageManager;

use crate::HarnessConfig;

/// Speedups below this are treated as measurement noise by the verdict
/// (the PR's acceptance bar: CBO never slower beyond 10%).
pub const NOISE_FLOOR: f64 = 0.90;
/// A star cell counts as a leapfrog win at or above this speedup.
pub const STAR_WIN: f64 = 1.3;

/// The star overlay's property roles, in chain order.
struct StarProps {
    /// Dense: `fan` objects per subject.
    a: Id,
    /// Dense: `fan` objects per subject (disjoint object pool).
    b: Id,
    /// Sparse: one object on every 64th subject — the selective arm.
    c: Id,
    /// Half-dense: two objects on every other subject.
    d: Id,
}

/// Interns the star overlay into `ds`: `n` fresh subjects sharing four
/// fresh properties with the densities above. Star subjects are disjoint
/// from the generator's, so the benchmark queries' *answers* are
/// untouched (their property-unbound scans merely read more rows — the
/// same extra work on both sides of the A/B).
fn add_star_overlay(ds: &mut Dataset, n: u64, fan: u64) -> StarProps {
    let props = StarProps {
        a: ds.dict.intern("<star-pa>"),
        b: ds.dict.intern("<star-pb>"),
        c: ds.dict.intern("<star-pc>"),
        d: ds.dict.intern("<star-pd>"),
    };
    for i in 0..n {
        let s = ds.dict.intern(&format!("<star-s{i}>"));
        for j in 0..fan {
            let oa = ds.dict.intern(&format!("<star-oa{}>", (i * fan + j) % 997));
            ds.triples.push(Triple::new(s, props.a, oa));
            let ob = ds.dict.intern(&format!("<star-ob{}>", (i + j * 31) % 761));
            ds.triples.push(Triple::new(s, props.b, ob));
        }
        if i % 64 == 0 {
            let oc = ds.dict.intern(&format!("<star-oc{}>", i % 7));
            ds.triples.push(Triple::new(s, props.c, oc));
        }
        if i % 2 == 0 {
            for j in 0..2 {
                let od = ds.dict.intern(&format!("<star-od{}>", (i + j) % 13));
                ds.triples.push(Triple::new(s, props.d, od));
            }
        }
    }
    props
}

/// A property leaf in `layout`'s scheme.
fn leaf(layout: Layout, p: Id) -> Plan {
    match layout {
        Layout::TripleStore(_) => Plan::ScanTriples {
            s: None,
            p: Some(p),
            o: None,
        },
        Layout::VerticallyPartitioned => Plan::ScanProperty {
            property: p,
            s: None,
            o: None,
            emit_property: false,
        },
    }
}

/// The star queries, submitted in their worst order: the two dense arms
/// joined first, the selective arm last. The rotation heuristic sees a
/// chain; the enumerator sees a subject star and may collapse it into
/// one leapfrog node.
fn star_plans(layout: Layout, p: &StarProps) -> Vec<(String, Plan)> {
    let l = |id| leaf(layout, id);
    vec![
        (
            "qstar3".into(),
            join(join(l(p.a), l(p.b), 0, 0), l(p.c), 0, 0),
        ),
        (
            "qstar4".into(),
            join(join(join(l(p.a), l(p.b), 0, 0), l(p.d), 0, 0), l(p.c), 0, 0),
        ),
    ]
}

/// One (layout, query) measurement.
#[derive(Debug, Clone)]
pub struct PlanQualityCell {
    /// Layout label.
    pub layout: String,
    /// Query name (`q1` … `q8*`, `qstar3`, `qstar4`).
    pub query: String,
    /// Result cardinality.
    pub rows: usize,
    /// The cost model's root-cardinality estimate.
    pub est_rows: f64,
    /// `max(est/actual, actual/est)`, both floored at one row.
    pub q_error: f64,
    /// Best hot wall seconds with the rotation heuristic.
    pub heuristic_s: f64,
    /// Best hot wall seconds with cost-based enumeration.
    pub cbo_s: f64,
    /// Leapfrog kernel dispatches in one CBO execution.
    pub leapfrog_dispatches: u64,
    /// Whether enumeration and rotation produced different plans. Equal
    /// plans execute identical code on both sides, so their wall-clock
    /// ratio is measurement noise by construction — the verdict only
    /// judges cells that actually differ.
    pub plans_differ: bool,
}

impl PlanQualityCell {
    /// Heuristic time over CBO time: above one, enumeration won.
    pub fn speedup(&self) -> f64 {
        self.heuristic_s / self.cbo_s.max(1e-12)
    }
}

fn load(cfg: &HarnessConfig, ds: &Dataset, layout: Layout, cbo: bool) -> ColumnEngine {
    let storage = StorageManager::new(cfg.machine_b());
    let mut e = ColumnEngine::new();
    e.set_cbo(cbo);
    match layout {
        Layout::TripleStore(order) => e.load_triple_store(&storage, &ds.triples, order, true),
        Layout::VerticallyPartitioned => e.load_vertical(&storage, &ds.triples, true),
    }
    e
}

/// Best wall seconds of `plan` on `e` over one timed batch.
fn timed(e: &ColumnEngine, plan: &Plan, inner: usize) -> f64 {
    let start = Instant::now();
    for _ in 0..inner {
        let _ = e.execute(plan).expect("bench run");
    }
    start.elapsed().as_secs_f64() / inner as f64
}

/// Runs the full experiment: three column layouts × (benchmark + star)
/// queries, heuristic vs CBO interleaved.
pub fn run(cfg: &HarnessConfig, ds: &Dataset, star: u64, fan: u64) -> Vec<PlanQualityCell> {
    let mut ds = ds.clone();
    let props = add_star_overlay(&mut ds, star, fan);
    let qctx = QueryContext::from_dataset(&ds, 28);
    eprintln!(
        "[bench_pr9] {} triples ({} star overlay subjects), repeats={}",
        ds.len(),
        star,
        cfg.repeats
    );
    let mut out = Vec::new();
    for layout in crate::compressed::layouts() {
        eprintln!("[bench_pr9] {} ...", layout.name());
        let cbo = load(cfg, &ds, layout, true);
        let heur = load(cfg, &ds, layout, false);
        let ctx = cbo.props_ctx();
        let mut plans: Vec<(String, Plan)> = QueryId::ALL
            .iter()
            .map(|&q| (q.name().to_string(), build_plan(q, layout.scheme(), &qctx)))
            .collect();
        plans.extend(star_plans(layout, &props));
        for (name, plan) in plans {
            let plans_differ =
                optimize_cbo(plan.clone(), &ctx) != reorder_joins(plan.clone(), &ctx);
            // Warm both sides, grab cardinality + dispatch census.
            cbo.reset_exec_stats();
            let rows = cbo.execute(&plan).expect("cbo run").to_rows().len();
            let leapfrog_dispatches = cbo.exec_stats().leapfrog_dispatches;
            let _ = heur.execute(&plan).expect("heuristic run");
            // Sub-millisecond cells batch enough iterations to resolve.
            let probe = timed(&cbo, &plan, 1);
            let inner = ((0.005 / probe.max(1e-9)) as usize).clamp(1, 50);
            let (mut best_c, mut best_h) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..cfg.repeats.max(2) {
                best_c = best_c.min(timed(&cbo, &plan, inner));
                best_h = best_h.min(timed(&heur, &plan, inner));
            }
            let est = estimate_rows(&plan, &ctx).max(1.0);
            let actual = rows.max(1) as f64;
            out.push(PlanQualityCell {
                layout: layout.name(),
                query: name,
                rows,
                est_rows: est,
                q_error: (est / actual).max(actual / est),
                heuristic_s: best_h,
                cbo_s: best_c,
                leapfrog_dispatches,
                plans_differ,
            });
        }
    }
    out
}

/// Renders `BENCH_PR9.json` (hand-rolled writer — the workspace builds
/// fully offline).
pub fn to_json(cfg: &HarnessConfig, quick: bool, star: u64, cells: &[PlanQualityCell]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(
        s,
        "  \"meta\": {{\"experiment\": \"plan-quality\", \"pr\": 9, \
         \"scale\": {}, \"repeats\": {}, \"seed\": {}, \"star_subjects\": {star}, \
         \"quick\": {quick}}},",
        cfg.scale, cfg.repeats, cfg.seed
    );
    let _ = writeln!(s, "  \"cells\": [");
    let rows: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"layout\": \"{}\", \"query\": \"{}\", \"rows\": {}, \
                 \"est_rows\": {:.1}, \"q_error\": {:.3}, \
                 \"heuristic_s\": {:.6}, \"cbo_s\": {:.6}, \"speedup\": {:.3}, \
                 \"leapfrog_dispatches\": {}, \"plans_differ\": {}}}",
                c.layout,
                c.query,
                c.rows,
                c.est_rows,
                c.q_error,
                c.heuristic_s,
                c.cbo_s,
                c.speedup(),
                c.leapfrog_dispatches,
                c.plans_differ
            )
        })
        .collect();
    let _ = writeln!(s, "{}", rows.join(",\n"));
    let _ = writeln!(s, "  ],");

    let slower: Vec<String> = cells
        .iter()
        .filter(|c| c.plans_differ && c.speedup() < NOISE_FLOOR)
        .map(|c| format!("\"{}/{} ({:.2}x)\"", c.layout, c.query, c.speedup()))
        .collect();
    let wins: Vec<String> = cells
        .iter()
        .filter(|c| {
            c.query.starts_with("qstar") && c.leapfrog_dispatches > 0 && c.speedup() >= STAR_WIN
        })
        .map(|c| format!("\"{}/{} ({:.2}x)\"", c.layout, c.query, c.speedup()))
        .collect();
    let max_q = cells.iter().map(|c| c.q_error).fold(0.0, f64::max);
    let _ = writeln!(
        s,
        "  \"verdict\": {{\"cbo_slower_beyond_noise\": [{}], \
         \"leapfrog_star_wins\": [{}], \"max_q_error\": {:.3}}}",
        slower.join(", "),
        wins.join(", "),
        max_q
    );
    let _ = writeln!(s, "}}");
    s
}

/// Renders the human-readable table.
pub fn render(cells: &[PlanQualityCell]) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<14} {:<8} {:>9} {:>11} {:>8} {:>12} {:>12} {:>8} {:>4}",
        "layout", "query", "rows", "est", "q-err", "heuristic s", "cbo s", "speedup", "lf"
    );
    for c in cells {
        let _ = writeln!(
            s,
            "{:<14} {:<8} {:>9} {:>11.1} {:>8.2} {:>12.6} {:>12.6} {:>7.2}x {:>4}",
            c.layout,
            c.query,
            c.rows,
            c.est_rows,
            c.q_error,
            c.heuristic_s,
            c.cbo_s,
            c.speedup(),
            c.leapfrog_dispatches
        );
    }
    s
}
