//! The update-cost experiment: what one insert/delete workload costs on
//! every engine × layout configuration, and where each architecture pays.
//!
//! The paper benchmarks a read-only workload; its "black swan" argument
//! against vertically-partitioned column stores extends to updates, where
//! the C-Store-style design must either maintain many sorted per-property
//! tables in place (the row engine's B+tree path — cost paid at *apply*
//! time, once per index) or buffer mutations in a write store and
//! periodically merge (the column engine's path — applies are cheap
//! appends, cost paid at *merge* time as whole-table rewrites). This
//! experiment makes that trade visible: per configuration it reports apply
//! time and bytes written, query time while the delta is pending, and
//! merge time and bytes written.

use std::time::Instant;

use swans_core::{Database, Layout, StoreConfig};
use swans_plan::queries::{QueryContext, QueryId};
use swans_rdf::SortOrder;

use crate::{render_table, HarnessConfig};

/// Update-cost measurements for one engine × layout configuration.
#[derive(Debug, Clone)]
pub struct UpdateMeasure {
    /// Configuration label (engine + layout).
    pub config: String,
    /// Operations applied (inserts + deletes).
    pub ops: usize,
    /// Wall seconds to apply the whole workload.
    pub apply_s: f64,
    /// Bytes the storage layer wrote during the applies (row engine:
    /// B+tree leaf maintenance; column engine: write-ahead log).
    pub apply_mb_written: f64,
    /// Hot q5 compute seconds while the delta is still buffered.
    pub q5_pending_s: f64,
    /// Wall seconds for the explicit merge (zero-cost on engines that
    /// apply in place).
    pub merge_s: f64,
    /// Bytes written by the merge (the column engine's sorted-table
    /// rebuilds).
    pub merge_mb_written: f64,
    /// Hot q5 compute seconds after the merge.
    pub q5_merged_s: f64,
    /// Real fsyncs a durable twin of this configuration issued while
    /// applying the same workload (one per acknowledged commit, plus any
    /// checkpoint the engine's merge policy triggered).
    pub syncs: u64,
    /// Bytes the durable twin made durable with those fsyncs (decimal MB).
    pub synced_mb: f64,
    /// The durable twin's WAL size after the applies (decimal MB) — what
    /// an un-checkpointed crash at the end of the workload would replay.
    pub wal_mb: f64,
}

/// The six configuration cells of the experiment.
pub fn configs() -> Vec<StoreConfig> {
    vec![
        StoreConfig::row(Layout::TripleStore(SortOrder::Spo)),
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
        StoreConfig::row(Layout::VerticallyPartitioned),
        StoreConfig::column(Layout::TripleStore(SortOrder::Spo)),
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        StoreConfig::column(Layout::VerticallyPartitioned),
    ]
}

/// Runs the experiment: `ops/2` deletes of existing triples and `ops/2`
/// inserts of new subjects carrying the q5 join properties, applied in
/// batches, against every configuration of the matrix.
pub fn run(cfg: &HarnessConfig, ops: usize) -> Vec<UpdateMeasure> {
    let ds = cfg.dataset();
    let half = (ops / 2).max(1);
    let deletes: Vec<(String, String, String)> = ds
        .triples
        .iter()
        .step_by((ds.len() / half).max(1))
        .take(half)
        .map(|t| {
            (
                ds.dict.term(t.s).to_string(),
                ds.dict.term(t.p).to_string(),
                ds.dict.term(t.o).to_string(),
            )
        })
        .collect();
    use swans_plan::queries::vocab;
    let inserts: Vec<(String, String, String)> = (0..half)
        .map(|i| {
            let s = format!("<upd-s{i}>");
            match i % 3 {
                0 => (s, vocab::TYPE.to_string(), vocab::TEXT.to_string()),
                1 => (s, vocab::ORIGIN.to_string(), vocab::DLC.to_string()),
                _ => (s, "<updated-by>".to_string(), "\"writer\"".to_string()),
            }
        })
        .collect();

    configs()
        .into_iter()
        .map(|config| {
            let label = config.label();
            let db = Database::open(ds.clone(), config.on_machine(cfg.machine_b()))
                .expect("store loads");
            let before = db.storage().stats();
            let start = Instant::now();
            db.delete(
                deletes
                    .iter()
                    .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
            )
            .expect("deletes apply");
            db.insert(
                inserts
                    .iter()
                    .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
            )
            .expect("inserts apply");
            let apply_s = start.elapsed().as_secs_f64();
            let apply_io = db.storage().stats().since(&before);

            let ctx = QueryContext::from_dataset(&db.dataset(), 28);
            let q5_pending_s = hot_q5(&db, &ctx);

            let before = db.storage().stats();
            let start = Instant::now();
            db.merge().expect("merge succeeds");
            let merge_s = start.elapsed().as_secs_f64();
            let merge_io = db.storage().stats().since(&before);
            let q5_merged_s = hot_q5(&db, &ctx);

            // The durable twin: same configuration, same applies, but
            // through a crash-safe directory — its WAL appends and fsyncs
            // are the real-I/O price of making this workload durable.
            let dir = crate::durability::scratch_dir("upd");
            let (syncs, synced_mb, wal_mb) = {
                let twin = Database::import_at(
                    &dir,
                    ds.clone(),
                    db.config().clone(),
                    swans_core::DurabilityOptions::default(),
                )
                .expect("durable twin imports");
                let before = twin.storage().stats();
                twin.delete(
                    deletes
                        .iter()
                        .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
                )
                .expect("twin deletes apply");
                twin.insert(
                    inserts
                        .iter()
                        .map(|(s, p, o)| (s.as_str(), p.as_str(), o.as_str())),
                )
                .expect("twin inserts apply");
                let io = twin.storage().stats().since(&before);
                (
                    io.syncs,
                    io.bytes_synced as f64 / 1e6,
                    twin.wal_bytes().expect("durable") as f64 / 1e6,
                )
            };
            let _ = std::fs::remove_dir_all(&dir);

            UpdateMeasure {
                config: label,
                ops: deletes.len() + inserts.len(),
                apply_s,
                apply_mb_written: apply_io.bytes_written as f64 / 1e6,
                q5_pending_s,
                merge_s,
                merge_mb_written: merge_io.bytes_written as f64 / 1e6,
                q5_merged_s,
                syncs,
                synced_mb,
                wal_mb,
            }
        })
        .collect()
}

/// Best-of-2 hot q5 compute time.
fn hot_q5(db: &Database, ctx: &QueryContext) -> f64 {
    let _ = db.run_benchmark(QueryId::Q5, ctx); // warm
    (0..2)
        .map(|_| db.run_benchmark(QueryId::Q5, ctx).user_seconds)
        .fold(f64::INFINITY, f64::min)
}

/// Renders the measurement matrix as an aligned text table.
pub fn render(rows: &[UpdateMeasure]) -> String {
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.config.clone(),
                r.ops.to_string(),
                format!("{:.3}", r.apply_s),
                format!("{:.2}", r.apply_mb_written),
                format!("{:.4}", r.q5_pending_s),
                format!("{:.3}", r.merge_s),
                format!("{:.2}", r.merge_mb_written),
                format!("{:.4}", r.q5_merged_s),
                r.syncs.to_string(),
                format!("{:.2}", r.synced_mb),
                format!("{:.3}", r.wal_mb),
            ]
        })
        .collect();
    render_table(
        &[
            "configuration",
            "ops",
            "apply s",
            "apply MBw",
            "q5 pending s",
            "merge s",
            "merge MBw",
            "q5 merged s",
            "fsyncs",
            "sync MBw",
            "WAL MB",
        ],
        &table,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The experiment runs end-to-end on a tiny data set, and the cost
    /// split lands where the architectures put it: the row engine pays
    /// writes at apply time and nothing at merge, the column engine pays
    /// its table rebuilds at merge time.
    #[test]
    #[cfg_attr(miri, ignore)] // the durable twin does real file I/O
    fn tiny_run_reports_the_cost_split() {
        let cfg = HarnessConfig {
            scale: 0.0001,
            repeats: 1,
            seed: 7,
        };
        let rows = run(&cfg, 50);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.ops > 0);
            assert!(r.apply_mb_written > 0.0, "{}: applies must write", r.config);
            if r.config.starts_with("DBX") {
                assert_eq!(r.merge_mb_written, 0.0, "{}: in-place path", r.config);
            } else {
                assert!(r.merge_mb_written > 0.0, "{}: merge rebuilds", r.config);
            }
            // The durable twin: one delete batch + one insert batch, each
            // fsynced before acknowledgement, both waiting in the WAL.
            assert!(r.syncs >= 2, "{}: twin fsyncs its commits", r.config);
            assert!(r.synced_mb > 0.0, "{}: fsyncs carry bytes", r.config);
            assert!(r.wal_mb > 0.0, "{}: the WAL holds the batches", r.config);
        }
        let text = render(&rows);
        assert!(text.contains("configuration"));
    }
}
