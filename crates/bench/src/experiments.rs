//! Experiment drivers: each function regenerates one table or figure of
//! the paper and returns a report section.

use std::fmt::Write as _;

use swans_core::runner::{self, run_all_queries, ConfigRow, Measurement};
use swans_core::sweep::{property_sweep, splitting_sweep, SweepSeries};
use swans_core::{cstore_profile, Layout, RdfStore, StoreConfig};
use swans_plan::queries::{build_plan, QueryContext, QueryId, Scheme};
use swans_rdf::stats::{cfd, DatasetStats};
use swans_rdf::{Dataset, SortOrder};

use crate::{paper, ratio, render_table, restrict_to_properties, secs, HarnessConfig};

fn eprint_progress(msg: &str) {
    eprintln!("[swans-bench] {msg}");
}

// ----------------------------------------------------------------------
// Table 1
// ----------------------------------------------------------------------

/// Table 1: data set details — measured vs scale-adjusted paper values.
pub fn table1(cfg: &HarnessConfig, ds: &Dataset) -> String {
    let st = DatasetStats::compute(ds);
    let sc = cfg.scale;
    let paper_scaled = |full: u64| -> String { format!("{:.0}", full as f64 * sc) };
    let rows = vec![
        vec![
            "total triples".to_string(),
            st.total_triples.to_string(),
            paper_scaled(paper::table1::TOTAL_TRIPLES),
            paper::table1::TOTAL_TRIPLES.to_string(),
        ],
        vec![
            "distinct properties".to_string(),
            st.distinct_properties.to_string(),
            paper::table1::DISTINCT_PROPERTIES.to_string(),
            paper::table1::DISTINCT_PROPERTIES.to_string(),
        ],
        vec![
            "distinct subjects".to_string(),
            st.distinct_subjects.to_string(),
            paper_scaled(paper::table1::DISTINCT_SUBJECTS),
            paper::table1::DISTINCT_SUBJECTS.to_string(),
        ],
        vec![
            "distinct objects".to_string(),
            st.distinct_objects.to_string(),
            paper_scaled(paper::table1::DISTINCT_OBJECTS),
            paper::table1::DISTINCT_OBJECTS.to_string(),
        ],
        vec![
            "subject/object overlap".to_string(),
            st.subject_object_overlap.to_string(),
            paper_scaled(paper::table1::SUBJECT_OBJECT_OVERLAP),
            paper::table1::SUBJECT_OBJECT_OVERLAP.to_string(),
        ],
        vec![
            "strings in dictionary".to_string(),
            st.dictionary_strings.to_string(),
            paper_scaled(paper::table1::DICTIONARY_STRINGS),
            paper::table1::DICTIONARY_STRINGS.to_string(),
        ],
        vec![
            "data set size (MB)".to_string(),
            format!("{:.0}", st.raw_bytes as f64 / 1e6),
            format!("{:.0}", paper::table1::DATASET_MB as f64 * sc),
            paper::table1::DATASET_MB.to_string(),
        ],
        vec![
            "top property count".to_string(),
            st.top_property_count.to_string(),
            paper_scaled(paper::table1::TOP_PROPERTY),
            paper::table1::TOP_PROPERTY.to_string(),
        ],
        vec![
            "top object count".to_string(),
            st.top_object_count.to_string(),
            paper_scaled(paper::table1::TOP_OBJECT),
            paper::table1::TOP_OBJECT.to_string(),
        ],
    ];
    format!(
        "## Table 1 — data set details (scale {sc})\n\n```\n{}```\n",
        render_table(
            &["statistic", "measured", "paper (scaled)", "paper (full)"],
            &rows
        )
    )
}

// ----------------------------------------------------------------------
// Figure 1
// ----------------------------------------------------------------------

/// Figure 1: cumulative frequency distributions.
pub fn fig1(ds: &Dataset) -> String {
    let series = cfd(ds);
    let marks = [
        0.5, 1.0, 2.0, 5.0, 10.0, 13.0, 20.0, 40.0, 60.0, 80.0, 100.0,
    ];
    let rows: Vec<Vec<String>> = marks
        .iter()
        .map(|&m| {
            let mut row = vec![format!("{m}%")];
            for s in &series {
                row.push(format!("{:.1}%", s.coverage_at(m)));
            }
            row
        })
        .collect();
    format!(
        "## Figure 1 — cumulative frequency distributions\n\n\
         `% of total triples` covered by the top `% of total *`:\n\n```\n{}```\n\
         Paper: the top 13% of properties cover 99% of all triples; subjects\n\
         are near-uniform; objects sit in between.\n",
        render_table(&["top-% items", "properties", "subjects", "objects"], &rows)
    )
}

// ----------------------------------------------------------------------
// Table 2
// ----------------------------------------------------------------------

/// Table 2: coverage of the query space.
pub fn table2(ds: &Dataset) -> String {
    let ctx = QueryContext::from_dataset(ds, 28);
    let queries = [
        QueryId::Q1,
        QueryId::Q2,
        QueryId::Q3,
        QueryId::Q4,
        QueryId::Q5,
        QueryId::Q6,
        QueryId::Q7,
        QueryId::Q8,
    ];
    let rows: Vec<Vec<String>> = queries
        .iter()
        .map(|&q| {
            let cov = swans_plan::analyze(&build_plan(q, Scheme::TripleStore, &ctx));
            let simple: Vec<&str> = cov.simple.iter().map(|p| p.name()).collect();
            let joins: Vec<&str> = cov.joins.iter().map(|j| j.name()).collect();
            vec![
                q.name().to_string(),
                simple.join(","),
                if joins.is_empty() {
                    "–".into()
                } else {
                    joins.join(", ")
                },
            ]
        })
        .collect();
    format!(
        "## Table 2 — coverage of the query space\n\n```\n{}```\n\
         Derived from the generated plans; matches the paper exactly\n\
         (q8 adds pattern p6 and join pattern B).\n",
        render_table(&["query", "triple patterns", "join patterns"], &rows)
    )
}

// ----------------------------------------------------------------------
// Table 3
// ----------------------------------------------------------------------

/// Table 3: machine configurations.
pub fn table3() -> String {
    let rows: Vec<Vec<String>> = swans_storage::MachineProfile::ALL
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.num_cpus.to_string(),
                m.cpu.to_string(),
                format!("{} GHz", m.cpu_ghz),
                format!("{} KB", m.cache_kb),
                format!("{} GB", m.ram_gb),
                format!("{} MB/s", m.io_read_mb_s),
                format!("{}x RAID-{}", m.raid_disks, m.raid_level),
                m.os.to_string(),
            ]
        })
        .collect();
    format!(
        "## Table 3 — machine configurations (simulated I/O profiles)\n\n```\n{}```\n",
        render_table(
            &["machine", "CPUs", "CPU", "clock", "cache", "RAM", "I/O read", "RAID", "OS"],
            &rows
        )
    )
}

// ----------------------------------------------------------------------
// The C-Store stand-in
// ----------------------------------------------------------------------

/// Loads the C-Store stand-in: column engine, vertically partitioned,
/// restricted to the 28 benchmark properties (footnote 2), effective
/// bandwidth capped machine-independently (C-Store's synchronous small
/// reads are the bottleneck, not the disk — §3). The pool is unbounded:
/// the paper notes the data fits in memory during hot runs.
pub fn load_cstore(
    cfg: &HarnessConfig,
    ds: &Dataset,
    machine: swans_storage::MachineProfile,
) -> (RdfStore, QueryContext) {
    let ctx = QueryContext::from_dataset(ds, 28);
    let restricted = restrict_to_properties(ds, &ctx.interesting);
    let store = RdfStore::load(
        &restricted,
        StoreConfig::column(Layout::VerticallyPartitioned).on_machine(cstore_profile(machine)),
    );
    let rctx = QueryContext::from_dataset(&restricted, 28);
    let _ = cfg;
    (store, rctx)
}

// ----------------------------------------------------------------------
// Table 4
// ----------------------------------------------------------------------

/// Table 4: the repetition experiment on machines A and B.
pub fn table4(cfg: &HarnessConfig, ds: &Dataset) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (mname, machine) in [("A", cfg.machine_a()), ("B", cfg.machine_b())] {
        eprint_progress(&format!("table4: machine {mname} (C-Store stand-in)"));
        let (store, rctx) = load_cstore(cfg, ds, machine);
        let mut cold: Vec<Measurement> = Vec::new();
        let mut hot: Vec<Measurement> = Vec::new();
        for &q in &QueryId::BASE7 {
            cold.push(runner::measure_cold(&store, q, &rctx, cfg.repeats));
            hot.push(runner::measure_hot(&store, q, &rctx, cfg.repeats));
        }
        for (label, series, time) in [
            ("cold real", &cold, runner::real as fn(&Measurement) -> f64),
            ("cold user", &cold, runner::user),
            ("hot real", &hot, runner::real),
            ("hot user", &hot, runner::user),
        ] {
            let times: Vec<f64> = series.iter().map(time).collect();
            let mut row = vec![format!("{mname} {label}")];
            row.extend(times.iter().map(|&t| secs(t)));
            row.push(secs(swans_core::geometric_mean(&times)));
            rows.push(row);
        }
    }
    // Paper reference rows.
    rows.push(vec!["—".into(); 9]);
    for (label, qs, g) in paper::TABLE4 {
        let mut row = vec![format!("paper {label}")];
        row.extend(qs.iter().map(|&t| secs(t)));
        row.push(secs(g));
        rows.push(row);
    }
    format!(
        "## Table 4 — repetition of the C-Store experiment\n\n\
         C-Store stand-in: column engine, vertically partitioned, 28\n\
         properties, effective bandwidth capped machine-independently\n\
         (engine-bound I/O). Absolute numbers are scale-dependent; the\n\
         shapes to check: machine B's 4x disk bandwidth barely improves\n\
         real time, user times are machine-independent, hot user ≈ cold\n\
         user.\n\n```\n{}```\n",
        render_table(
            &["run", "q1", "q2", "q3", "q4", "q5", "q6", "q7", "G"],
            &rows
        )
    )
}

// ----------------------------------------------------------------------
// Table 5
// ----------------------------------------------------------------------

/// Table 5: data read from disk and rows returned per query.
pub fn table5(cfg: &HarnessConfig, ds: &Dataset) -> String {
    eprint_progress("table5: C-Store stand-in, cold runs");
    let (store, rctx) = load_cstore(cfg, ds, cfg.machine_b());
    let db_bytes = store.disk_bytes() as f64;
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, &q) in QueryId::BASE7.iter().enumerate() {
        let m = runner::measure_cold(&store, q, &rctx, 1);
        let (pq, pmb, prows) = paper::TABLE5[i];
        debug_assert_eq!(pq, q.name());
        rows.push(vec![
            q.name().to_string(),
            format!("{:.1}", m.bytes_read as f64 / 1e6),
            format!("{:.0}%", 100.0 * m.bytes_read as f64 / db_bytes),
            m.rows.to_string(),
            format!("{pmb:.0}"),
            format!("{:.0}%", 100.0 * pmb / 270.0),
            prows.to_string(),
        ]);
    }
    format!(
        "## Table 5 — data relevant to a query (C-Store stand-in)\n\n\
         DB size here: {:.1} MB (paper: ~270 MB for the 28-property load).\n\
         The scale-free comparison is the %-of-DB column.\n\n```\n{}```\n",
        db_bytes / 1e6,
        render_table(
            &[
                "query",
                "MB read",
                "% of DB",
                "rows",
                "paper MB",
                "paper %",
                "paper rows"
            ],
            &rows
        )
    )
}

// ----------------------------------------------------------------------
// Figure 5
// ----------------------------------------------------------------------

/// Figure 5: I/O read history for q3 and q5 on machines A and B.
pub fn fig5(cfg: &HarnessConfig, ds: &Dataset) -> String {
    let mut out = String::from("## Figure 5 — I/O read history (C-Store stand-in)\n\n");
    for q in [QueryId::Q3, QueryId::Q5] {
        let _ = writeln!(out, "### Query {q}\n");
        let mut rows: Vec<Vec<String>> = Vec::new();
        for (mname, machine) in [("A", cfg.machine_a()), ("B", cfg.machine_b())] {
            eprint_progress(&format!("fig5: {q} on machine {mname}"));
            let (store, rctx) = load_cstore(cfg, ds, machine);
            store.make_cold();
            store.storage().begin_trace();
            let _ = store.run_query(q, &rctx);
            let trace = store.storage().take_trace();
            // Downsample to ~10 points.
            let step = (trace.len() / 10).max(1);
            for p in trace.iter().step_by(step) {
                rows.push(vec![
                    mname.to_string(),
                    format!("{:.4}", p.at_seconds),
                    format!("{:.2}", p.cumulative_bytes as f64 / 1e6),
                ]);
            }
            if let Some(last) = trace.last() {
                rows.push(vec![
                    format!("{mname} (end)"),
                    format!("{:.4}", last.at_seconds),
                    format!("{:.2}", last.cumulative_bytes as f64 / 1e6),
                ]);
            }
        }
        let _ = writeln!(
            out,
            "```\n{}```",
            render_table(&["machine", "time (s)", "MB read (cum.)"], &rows)
        );
    }
    out.push_str(
        "\nPaper shape: both machines read the same volume at nearly the same\n\
         pace — C-Store's own I/O management, not the disk, is the bottleneck.\n",
    );
    out
}

// ----------------------------------------------------------------------
// Tables 6 & 7
// ----------------------------------------------------------------------

/// The six main store configurations of Tables 6/7.
pub fn matrix_configs(machine: swans_storage::MachineProfile) -> Vec<StoreConfig> {
    vec![
        StoreConfig::row(Layout::TripleStore(SortOrder::Spo)).on_machine(machine),
        StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
        StoreConfig::row(Layout::VerticallyPartitioned).on_machine(machine),
        StoreConfig::column(Layout::TripleStore(SortOrder::Spo)).on_machine(machine),
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
        StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine),
    ]
}

/// Runs the full cold+hot matrix once and renders both tables.
pub fn tables_6_and_7(cfg: &HarnessConfig, ds: &Dataset) -> (String, String) {
    let ctx = QueryContext::from_dataset(ds, 28);
    let mut cold_rows: Vec<ConfigRow> = Vec::new();
    let mut hot_rows: Vec<ConfigRow> = Vec::new();
    for config in matrix_configs(cfg.machine_b()) {
        eprint_progress(&format!("table6/7: loading {}", config.label()));
        let store = RdfStore::load(ds, config);
        eprint_progress("  cold runs...");
        cold_rows.push(run_all_queries(&store, &ctx, true, cfg.repeats));
        eprint_progress("  hot runs...");
        hot_rows.push(run_all_queries(&store, &ctx, false, cfg.repeats));
    }
    // The C-Store stand-in runs the base-7 queries only.
    eprint_progress("table6/7: C-Store stand-in");
    let (cstore, rctx) = load_cstore(cfg, ds, cfg.machine_b());
    let cs_cold: Vec<Measurement> = QueryId::BASE7
        .iter()
        .map(|&q| runner::measure_cold(&cstore, q, &rctx, cfg.repeats))
        .collect();
    let cs_hot: Vec<Measurement> = QueryId::BASE7
        .iter()
        .map(|&q| runner::measure_hot(&cstore, q, &rctx, cfg.repeats))
        .collect();

    (
        render_matrix("Table 6 — cold runs", &cold_rows, &cs_cold, &paper::TABLE6),
        render_matrix("Table 7 — hot runs", &hot_rows, &cs_hot, &paper::TABLE7),
    )
}

fn render_matrix(
    title: &str,
    rows: &[ConfigRow],
    cstore: &[Measurement],
    paper_rows: &[paper::PaperRow; 7],
) -> String {
    let headers = [
        "configuration",
        "q1",
        "q2",
        "q2*",
        "q3",
        "q3*",
        "q4",
        "q4*",
        "q5",
        "q6",
        "q6*",
        "q7",
        "q8",
        "G",
        "G*",
        "G*/G",
    ];
    let mut table: Vec<Vec<String>> = Vec::new();
    for (which, time) in [
        ("real", runner::real as fn(&Measurement) -> f64),
        ("user", runner::user),
    ] {
        for row in rows {
            let mut r = vec![format!("{} [{which}]", row.label)];
            r.extend(row.cells.iter().map(|m| secs(time(m))));
            r.push(secs(row.g(time)));
            r.push(secs(row.g_star(time)));
            r.push(ratio(row.g_ratio(time)));
            table.push(r);
        }
        // C-Store stand-in row: base-7 cells at their paper positions.
        let mut r = vec![format!("C-Store-sim vert/SO [{which}]")];
        let mut by_pos: Vec<String> = vec!["–".to_string(); 12];
        const BASE7_POS: [usize; 7] = [0, 1, 3, 5, 7, 8, 10];
        let times: Vec<f64> = cstore.iter().map(time).collect();
        for (i, &pos) in BASE7_POS.iter().enumerate() {
            by_pos[pos] = secs(times[i]);
        }
        r.extend(by_pos);
        r.push(secs(swans_core::geometric_mean(&times)));
        r.push("–".into());
        r.push("–".into());
        table.push(r);
    }
    table.push(vec!["—".into(); headers.len()]);
    for p in paper_rows {
        let mut r = vec![format!("paper {} [real]", p.label)];
        r.extend(p.real.iter().map(|c| c.map_or("–".to_string(), secs)));
        r.push(secs(p.g));
        r.push(p.g_star.map_or("–".to_string(), secs));
        r.push(p.g_star.map_or("–".to_string(), |gs| ratio(gs / p.g)));
        table.push(r);
    }
    format!("## {title}\n\n```\n{}```\n", render_table(&headers, &table))
}

// ----------------------------------------------------------------------
// Figures 6 & 7
// ----------------------------------------------------------------------

/// Figure 6: execution time vs number of considered properties.
pub fn fig6(cfg: &HarnessConfig, ds: &Dataset) -> String {
    eprint_progress("fig6: property sweep 28 -> 222 (column engine, cold)");
    let steps = [28, 56, 84, 112, 140, 168, 196, 222];
    let series = property_sweep(
        ds,
        &[QueryId::Q2, QueryId::Q3, QueryId::Q4, QueryId::Q6],
        &steps,
        cfg.repeats,
        cfg.machine_b(),
    );
    render_sweep(
        "Figure 6 — query time vs number of properties (28→222)",
        &series,
        "Paper shape: vertically-partitioned times increase with the\n\
         property count; triple-store (PSO) is flat/non-increasing and drops\n\
         at 222 when the restriction join disappears.",
    )
}

/// Figure 7: splitting scalability experiment.
pub fn fig7(cfg: &HarnessConfig, ds: &Dataset) -> String {
    eprint_progress("fig7: splitting sweep 222 -> 1000 (column engine, cold)");
    let targets = [222, 300, 400, 500, 600, 700, 800, 900, 1000];
    let series = splitting_sweep(
        ds,
        &[
            QueryId::Q2Star,
            QueryId::Q3Star,
            QueryId::Q4Star,
            QueryId::Q6Star,
        ],
        &targets,
        cfg.repeats,
        cfg.seed,
        cfg.machine_b(),
    );
    render_sweep(
        "Figure 7 — splitting scalability (222→1000 properties)",
        &series,
        "Paper shape: vertically-partitioned times increase steadily with\n\
         splits; triple-store decreases (smaller intermediate results) and\n\
         overtakes it — the paper's scalability verdict.",
    )
}

/// The hand-checked reproduction verdict appended to the generated report.
pub fn verdict() -> String {
    "## Reproduction verdict\n\n\
     Shapes reproduced (each is also pinned by a regression test in\n\
     `tests/paper_shapes.rs`):\n\n\
     1. **Row store, clustering order**: PSO beats SPO decisively cold\n\
        (paper: q1 5x, most queries 2–3x) — driven by clustered range scans\n\
        vs full scans, visible in both seconds and bytes read.\n\
     2. **Row store, schemes**: with PSO clustering, the triple-store beats\n\
        vertical partitioning on the full-workload geometric mean G* —\n\
        the paper's first \"black swan\" against [Abadi et al. 2007].\n\
     3. **Column store, schemes**: vertical partitioning wins the original\n\
        7-query benchmark (G), but q2*, q3*, q6* and q8 go to the\n\
        triple-store — the paper's black swans, reproduced cold and hot.\n\
     4. **Engines**: the column engine uses several times less CPU than the\n\
        row engine on every configuration (vectorized column-at-a-time vs\n\
        tuple-at-a-time Volcano), the paper's overall conclusion that\n\
        \"column-stores are better suited for RDF data management\".\n\
     5. **G*/G**: extending the workload from 7 to 12 queries penalizes\n\
        vertical partitioning more than the triple-store on both engines\n\
        (paper: 1.9–2.4 vs 1.0–1.6).\n\
     6. **Figure 6**: widening the considered-property list erodes and then\n\
        inverts VP's advantage; the triple-store line is flat and dips at\n\
        222 when the restriction join disappears.\n\
     7. **Figure 7**: splitting properties 222→1000 steadily degrades VP\n\
        (per-table I/O and union overhead grow) while the triple-store is\n\
        flat — the paper's scalability verdict against VP.\n\
     8. **Table 4 / Figure 5**: the C-Store stand-in shows machine B's 4x\n\
        bandwidth producing near-zero improvement (the engine, not the\n\
        disk, is the bottleneck) and hot ≈ user time.\n\n\
     Known deviations:\n\n\
     * The paper's DBX optimizer collapses on the >200-way generated SQL\n\
       (q4* cold 8.5x worse than q4 on VP). Our row engine executes the\n\
       same 222-way plans without an optimizer cliff, so the row-side star\n\
       penalty is directionally right but smaller.\n\
     * MonetDB's cold q4/q4* anomaly (triple-store slower than VP because\n\
       of \"large intermediate results\") is plan-specific to MonetDB's\n\
       optimizer and is not reproduced; our q4 behaves like q3.\n\
     * The C-Store stand-in's user time is a smaller fraction of its real\n\
       time than in the paper: our column engine is a faster CPU path than\n\
       2008 C-Store, while its capped I/O is modeled at the paper's\n\
       effective rate.\n\
     * Hot row-store runs show SPO occasionally beating PSO on individual\n\
       queries — the paper's own Table 7 shows the same mix (e.g. q3:\n\
       34.86s SPO vs 45.65s PSO); PSO still wins the geometric means.\n"
        .to_string()
}

fn render_sweep(title: &str, series: &[SweepSeries], note: &str) -> String {
    let mut out = format!("## {title}\n\n");
    for s in series {
        let rows: Vec<Vec<String>> = s
            .points
            .iter()
            .map(|p| {
                vec![
                    p.n_properties.to_string(),
                    secs(p.triple.real_seconds),
                    secs(p.vertical.real_seconds),
                    ratio(p.vertical.real_seconds / p.triple.real_seconds.max(1e-9)),
                ]
            })
            .collect();
        let _ = writeln!(
            out,
            "### Query {}\n\n```\n{}```",
            s.query,
            render_table(
                &["#properties", "triple (s)", "vert (s)", "vert/triple"],
                &rows
            )
        );
    }
    out.push_str(note);
    out.push('\n');
    out
}
