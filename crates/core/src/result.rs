//! [`ResultSet`]: decoded, lazily iterable query results.
//!
//! Engines compute in dictionary-encoded `u64` space; a result set carries
//! those raw ids together with the output schema (column names and
//! [`ColumnKind`]s) and — once the [`Database`](crate::Database) attaches
//! its data set — decodes ids back to term strings *per row, on demand*
//! during iteration, instead of leaking `Vec<Vec<u64>>` to the caller.

use std::sync::Arc;

use swans_plan::algebra::ColumnKind;
use swans_rdf::Dataset;

/// The result of one query execution: raw encoded rows plus the schema
/// needed to decode them.
#[derive(Debug, Clone)]
pub struct ResultSet {
    columns: Vec<String>,
    kinds: Vec<ColumnKind>,
    rows: Vec<Vec<u64>>,
    dataset: Option<Arc<Dataset>>,
}

impl ResultSet {
    /// Wraps raw engine output. Columns are named `c0..cN`; use
    /// [`ResultSet::with_columns`] to attach the real names and
    /// [`ResultSet::with_dataset`] to enable term decoding.
    pub fn new(rows: Vec<Vec<u64>>, kinds: Vec<ColumnKind>) -> Self {
        let columns = (0..kinds.len()).map(|i| format!("c{i}")).collect();
        Self {
            columns,
            kinds,
            rows,
            dataset: None,
        }
    }

    /// Renames the output columns (e.g. to the query's variable names).
    ///
    /// # Panics
    /// Panics if the name count does not match the column count.
    pub fn with_columns(mut self, columns: Vec<String>) -> Self {
        assert_eq!(
            columns.len(),
            self.kinds.len(),
            "column name count must match the schema arity"
        );
        self.columns = columns;
        self
    }

    /// Attaches the data set whose dictionary decodes the term columns.
    pub fn with_dataset(mut self, dataset: Arc<Dataset>) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Output column names, in schema order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Output column kinds, in schema order.
    pub fn kinds(&self) -> &[ColumnKind] {
        &self.kinds
    }

    /// Number of result rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the query matched nothing.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The raw dictionary-encoded rows (the benchmark harness compares
    /// these directly).
    pub fn ids(&self) -> &[Vec<u64>] {
        &self.rows
    }

    /// Consumes the result set into its raw encoded rows.
    pub fn into_ids(self) -> Vec<Vec<u64>> {
        self.rows
    }

    /// Decodes one value of column `col`: term ids resolve through the
    /// dictionary, counts (and ids with no attached data set) render as
    /// numbers.
    pub fn decode(&self, col: usize, value: u64) -> String {
        if self.kinds.get(col) == Some(&ColumnKind::Term) {
            if let Some(ds) = &self.dataset {
                if let Some(term) = ds.dict.get_term(value) {
                    return term.to_string();
                }
            }
        }
        value.to_string()
    }

    /// Iterates the rows, decoding each lazily as it is yielded.
    pub fn iter(&self) -> Rows<'_> {
        Rows { set: self, next: 0 }
    }

    /// Decodes every row eagerly (convenience for tests and small results).
    pub fn decoded(&self) -> Vec<Vec<String>> {
        self.iter().collect()
    }
}

impl<'a> IntoIterator for &'a ResultSet {
    type Item = Vec<String>;
    type IntoIter = Rows<'a>;

    fn into_iter(self) -> Rows<'a> {
        self.iter()
    }
}

/// Lazily decoding row iterator over a [`ResultSet`].
#[derive(Debug, Clone)]
pub struct Rows<'a> {
    set: &'a ResultSet,
    next: usize,
}

impl Iterator for Rows<'_> {
    type Item = Vec<String>;

    fn next(&mut self) -> Option<Vec<String>> {
        let row = self.set.rows.get(self.next)?;
        self.next += 1;
        Some(
            row.iter()
                .enumerate()
                .map(|(c, &v)| self.set.decode(c, v))
                .collect(),
        )
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.set.rows.len() - self.next;
        (rest, Some(rest))
    }
}

impl ExactSizeIterator for Rows<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset() -> Arc<Dataset> {
        let mut ds = Dataset::new();
        ds.add("<s1>", "<type>", "<Text>");
        Arc::new(ds)
    }

    #[test]
    fn default_columns_are_positional() {
        let rs = ResultSet::new(vec![vec![1, 2]], vec![ColumnKind::Term, ColumnKind::Count]);
        assert_eq!(rs.columns(), ["c0", "c1"]);
        assert_eq!(rs.len(), 1);
        assert!(!rs.is_empty());
    }

    #[test]
    fn decoding_uses_dictionary_for_terms_and_numbers_for_counts() {
        let ds = dataset();
        let type_id = ds.expect_id("<type>");
        let rs = ResultSet::new(
            vec![vec![type_id, 42]],
            vec![ColumnKind::Term, ColumnKind::Count],
        )
        .with_columns(vec!["p".into(), "n".into()])
        .with_dataset(ds);
        assert_eq!(
            rs.decoded(),
            vec![vec!["<type>".to_string(), "42".to_string()]]
        );
        assert_eq!(rs.columns(), ["p", "n"]);
    }

    #[test]
    fn iteration_is_lazy_and_sized() {
        let ds = dataset();
        let id = ds.expect_id("<s1>");
        let rs = ResultSet::new(vec![vec![id], vec![id]], vec![ColumnKind::Term]).with_dataset(ds);
        let mut it = rs.iter();
        assert_eq!(it.len(), 2);
        assert_eq!(it.next(), Some(vec!["<s1>".to_string()]));
        assert_eq!(it.len(), 1);
        // &ResultSet is IntoIterator, so `for row in &rs` works.
        assert_eq!((&rs).into_iter().count(), 2);
    }

    #[test]
    fn missing_dataset_or_foreign_id_falls_back_to_numbers() {
        let rs = ResultSet::new(vec![vec![7]], vec![ColumnKind::Term]);
        assert_eq!(rs.decoded(), vec![vec!["7".to_string()]]);
        let rs = ResultSet::new(vec![vec![999]], vec![ColumnKind::Term]).with_dataset(dataset());
        assert_eq!(rs.decoded(), vec![vec!["999".to_string()]]);
    }

    #[test]
    #[should_panic(expected = "column name count")]
    fn with_columns_checks_arity() {
        let _ = ResultSet::new(vec![], vec![ColumnKind::Term]).with_columns(vec![]);
    }
}
