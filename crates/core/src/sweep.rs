//! The Figure 6 property sweep and the Figure 7 splitting experiment.

use swans_datagen::split_properties;
use swans_plan::queries::{QueryContext, QueryId};
use swans_rdf::{Dataset, SortOrder};

use crate::runner::{measure_cold, Measurement};
use crate::store::{Layout, RdfStore, StoreConfig};

/// One measured point of a sweep series.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// X coordinate: the number of properties considered / present.
    pub n_properties: usize,
    /// Triple-store (PSO, column engine) measurement.
    pub triple: Measurement,
    /// Vertically-partitioned (column engine) measurement.
    pub vertical: Measurement,
}

/// A per-query sweep series.
#[derive(Debug, Clone)]
pub struct SweepSeries {
    /// The swept query.
    pub query: String,
    /// Points in step order.
    pub points: Vec<SweepPoint>,
}

/// Figure 6: cold execution time for q2, q3, q4, q6 on the column engine
/// as the number of *considered* properties grows from 28 to 222 (the
/// aggregation restriction list is widened; the data is unchanged).
///
/// When the step reaches the full property count, the restriction join
/// disappears — the paper's explanation for the drop at 222: "there is no
/// final join required anymore to filter out properties" — which our
/// generator mirrors by switching to the unrestricted `*` plan.
pub fn property_sweep(
    dataset: &Dataset,
    queries: &[QueryId],
    steps: &[usize],
    repeats: usize,
    machine: swans_storage::MachineProfile,
) -> Vec<SweepSeries> {
    for q in queries {
        assert!(
            matches!(q, QueryId::Q2 | QueryId::Q3 | QueryId::Q4 | QueryId::Q6),
            "Figure 6 sweeps q2, q3, q4, q6 (got {q})"
        );
    }
    let triple = RdfStore::load(
        dataset,
        StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
    );
    let vertical = RdfStore::load(
        dataset,
        StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine),
    );
    let mut ctx = QueryContext::from_dataset(dataset, 28);
    let n_all = ctx.all_properties.len();

    queries
        .iter()
        .map(|&q| {
            let points = steps
                .iter()
                .map(|&n| {
                    ctx.set_interesting(n);
                    let effective = if n >= n_all { star_of(q) } else { q };
                    SweepPoint {
                        n_properties: n,
                        triple: measure_cold(&triple, effective, &ctx, repeats),
                        vertical: measure_cold(&vertical, effective, &ctx, repeats),
                    }
                })
                .collect();
            SweepSeries {
                query: q.name().to_string(),
                points,
            }
        })
        .collect()
}

fn star_of(q: QueryId) -> QueryId {
    match q {
        QueryId::Q2 => QueryId::Q2Star,
        QueryId::Q3 => QueryId::Q3Star,
        QueryId::Q4 => QueryId::Q4Star,
        QueryId::Q6 => QueryId::Q6Star,
        other => other,
    }
}

/// Figure 7: the splitting scalability experiment. The data set keeps its
/// triple count while properties are split towards 1000 (§4.4); the
/// unrestricted q2\*, q3\*, q4\*, q6\* run cold on the column engine for
/// both layouts.
pub fn splitting_sweep(
    dataset: &Dataset,
    queries: &[QueryId],
    targets: &[usize],
    repeats: usize,
    seed: u64,
    machine: swans_storage::MachineProfile,
) -> Vec<SweepSeries> {
    for q in queries {
        assert!(
            matches!(
                q,
                QueryId::Q2Star | QueryId::Q3Star | QueryId::Q4Star | QueryId::Q6Star
            ),
            "Figure 7 sweeps the star queries (got {q})"
        );
    }
    let base_props = dataset.distinct_properties().len();
    let mut series: Vec<SweepSeries> = queries
        .iter()
        .map(|q| SweepSeries {
            query: q.name().to_string(),
            points: Vec::new(),
        })
        .collect();

    for &target in targets {
        let ds = if target <= base_props {
            dataset.clone()
        } else {
            split_properties(dataset, target, seed)
        };
        let ctx = QueryContext::from_dataset(&ds, 28);
        let triple = RdfStore::load(
            &ds,
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)).on_machine(machine),
        );
        let vertical = RdfStore::load(
            &ds,
            StoreConfig::column(Layout::VerticallyPartitioned).on_machine(machine),
        );
        for (qi, &q) in queries.iter().enumerate() {
            series[qi].points.push(SweepPoint {
                n_properties: target.max(base_props),
                triple: measure_cold(&triple, q, &ctx, repeats),
                vertical: measure_cold(&vertical, q, &ctx, repeats),
            });
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_datagen::{generate, BartonConfig};

    fn small() -> Dataset {
        generate(&BartonConfig {
            scale: 0.0006,
            seed: 13,
            n_properties: 60,
        })
    }

    #[test]
    fn property_sweep_produces_points() {
        let ds = small();
        let series = property_sweep(
            &ds,
            &[QueryId::Q2, QueryId::Q3],
            &[10, 30, 60],
            1,
            swans_storage::MachineProfile::B,
        );
        assert_eq!(series.len(), 2);
        for s in &series {
            assert_eq!(s.points.len(), 3);
            for p in &s.points {
                // Result sizes agree between layouts at every step.
                assert_eq!(p.triple.rows, p.vertical.rows);
            }
        }
        // Widening the restriction can only grow the q2 result.
        let q2 = &series[0].points;
        assert!(q2[2].triple.rows >= q2[0].triple.rows);
    }

    #[test]
    #[should_panic(expected = "Figure 6 sweeps")]
    fn property_sweep_rejects_star_queries() {
        let ds = small();
        let _ = property_sweep(
            &ds,
            &[QueryId::Q2Star],
            &[10],
            1,
            swans_storage::MachineProfile::B,
        );
    }

    #[test]
    fn splitting_sweep_preserves_answers() {
        let ds = small();
        let series = splitting_sweep(
            &ds,
            &[QueryId::Q2Star],
            &[60, 120],
            1,
            7,
            swans_storage::MachineProfile::B,
        );
        assert_eq!(series.len(), 1);
        let pts = &series[0].points;
        assert_eq!(pts.len(), 2);
        for p in pts {
            assert_eq!(p.triple.rows, p.vertical.rows, "at {}", p.n_properties);
        }
        // Splitting multiplies the group-by keys: more properties, more
        // result groups.
        assert!(pts[1].triple.rows >= pts[0].triple.rows);
    }

    #[test]
    #[should_panic(expected = "Figure 7 sweeps")]
    fn splitting_sweep_rejects_base_queries() {
        let ds = small();
        let _ = splitting_sweep(
            &ds,
            &[QueryId::Q2],
            &[100],
            1,
            7,
            swans_storage::MachineProfile::B,
        );
    }
}
