#![warn(missing_docs)]

//! # swans-core
//!
//! The public API of the `swans` RDF system — a reproduction of
//! *"Column-Store Support for RDF Data Management: not all swans are
//! white"* (Sidirourgos, Goncalves, Kersten, Nes, Manegold — VLDB 2008)
//! grown into a layered query system.
//!
//! **Start with [`Database`]** — the front door. It owns a data set (and
//! its term dictionary), materializes it under one physical configuration,
//! and runs the whole pipeline behind one call: SPARQL text → parse → plan
//! → optimize → lower to the layout → execute on the engine → decoded
//! results. Mutations go through the same door:
//! [`Database::insert`] / [`Database::delete`] feed the engine's write
//! path, and [`Database::merge`] folds the buffered delta back into the
//! sorted read store.
//!
//! ```
//! use swans_core::{Database, Layout, StoreConfig};
//! use swans_datagen::{generate, BartonConfig};
//!
//! let dataset = generate(&BartonConfig::with_triples(20_000));
//! let db = Database::open(dataset, StoreConfig::column(Layout::VerticallyPartitioned))?;
//! let results = db.query(
//!     "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t",
//! )?;
//! assert!(!results.is_empty());
//! for row in &results {
//!     println!("{}", row.join("  ")); // decoded terms, not dictionary ids
//! }
//!
//! // The write path: insert, query, merge.
//! db.insert([("<new-subject>", "<type>", "<Text>")])?;
//! let after = db.query("SELECT ?s WHERE { ?s <type> <Text> }")?;
//! assert!(after.decoded().iter().any(|r| r[0] == "<new-subject>"));
//! db.merge()?; // restore sorted-path dispatch
//! assert_eq!(db.pending_delta(), 0);
//! # Ok::<(), swans_core::Error>(())
//! ```
//!
//! The layers underneath are public too:
//!
//! * [`engine::Engine`] — the trait any execution engine implements
//!   (load / execute / footprint); the paper's two engines
//!   ([`swans_rowstore::RowEngine`], [`swans_colstore::ColumnEngine`]) are
//!   the built-in implementations, and third-party engines plug in via
//!   [`Database::open_with_engine`];
//! * [`RdfStore`] — one loaded (engine × layout × machine) configuration,
//!   executing plans through a `Box<dyn Engine>` under the paper's
//!   cold/hot measurement protocol;
//! * [`durable`] — crash-safe persistence: [`Database::open_at`] gives a
//!   database a directory with a checksummed write-ahead log and
//!   RLE-compressed snapshots, so acknowledged batches survive a process
//!   kill and reopen under *any* engine × layout;
//! * [`snapshot`] — concurrent serving: every commit publishes an
//!   immutable [`Snapshot`] version; [`Database::session`] pins one for
//!   snapshot-isolated reads that never block (or get blocked by) the
//!   writer;
//! * [`ResultSet`] — decoded, lazily iterable results;
//! * [`Error`] — the typed error of the whole path (parse / plan /
//!   engine / config);
//! * [`runner`] — the experiment matrices behind Tables 4, 6 and 7,
//!   including the geometric means G, G\* and the G\*/G ratio;
//! * [`sweep`] — the Figure 6 property sweep and the Figure 7
//!   property-splitting scalability experiment.
//!
//! The paper evaluates two RDF storage schemes — the **triple-store** (one
//! 3-column table, clustered SPO or PSO) and **vertical partitioning** (one
//! 2-column table per property) — on two engine architectures: a commercial
//! **row store** ("DBX") and the **MonetDB/SQL column store**. All six
//! engine × layout combinations answer every query identically; only their
//! cost profiles differ.

pub mod db;
pub mod durable;
pub mod engine;
pub mod error;
pub mod result;
pub mod runner;
pub mod snapshot;
pub mod store;
pub mod sweep;

pub use db::Database;
pub use durable::{DurabilityOptions, Durable, RecoveryReport};
pub use engine::{CancelReason, Engine, EngineError, Footprint, PartialStats, QueryBudget};
pub use error::Error;
pub use result::ResultSet;
pub use runner::{geometric_mean, measure_cold, measure_hot, Measurement};
pub use snapshot::{Session, Snapshot};
pub use store::{EngineKind, Layout, QueryRun, RdfStore, StoreConfig};

/// Normalizes a query result for order-insensitive comparison. q8 is
/// compared as a *set*: the paper's vertically-partitioned formulation
/// routes through a temporary table of distinct objects, so its bag
/// multiplicities legitimately differ from the triple-store SQL.
pub fn normalize_result(query: swans_plan::QueryId, mut rows: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    rows.sort_unstable();
    if query == swans_plan::QueryId::Q8 {
        rows.dedup();
    }
    rows
}

/// Scales a machine profile's *seek* penalty by the data-set scale factor.
///
/// Rationale: transfer time shrinks linearly with the data-set scale, but a
/// seek is a constant. A 1/50-scale run would therefore be seek-dominated
/// in a way the paper's full-size runs are not. Scaling the seek penalty by
/// the same factor preserves the paper's seek-vs-transfer balance (e.g.
/// the per-property-table open/seek overhead of the vertically-partitioned
/// cold runs stays ~6–7 ms *per full-scale table*, as the Table 6/7 deltas
/// imply).
pub fn scaled_profile(
    base: swans_storage::MachineProfile,
    data_scale: f64,
) -> swans_storage::MachineProfile {
    swans_storage::MachineProfile {
        seek_ms: base.seek_ms * data_scale,
        ..base
    }
}

/// A machine profile whose seek penalty is scaled to match `dataset`'s
/// size relative to the full Barton data set — the convenient form of
/// [`scaled_profile`] for examples and tests.
pub fn profile_for(
    dataset: &swans_rdf::Dataset,
    base: swans_storage::MachineProfile,
) -> swans_storage::MachineProfile {
    scaled_profile(
        base,
        dataset.len() as f64 / swans_datagen::BARTON_TRIPLES as f64,
    )
}

/// The paper's C-Store stand-in I/O profile: C-Store "only exploits a
/// small fraction of the I/O bandwidth" (Figure 5 — ~12–15 MB/s effective
/// on machines capable of 100–390 MB/s), because of synchronous small
/// reads and no pre-caching. The cap is a property of the *engine*, not
/// the disk — which is why the paper's machine B, with 4× machine A's
/// bandwidth, "does not materialize in a significant improvement in the
/// timings". We model it as a machine-independent effective-bandwidth
/// ceiling.
pub fn cstore_profile(base: swans_storage::MachineProfile) -> swans_storage::MachineProfile {
    swans_storage::MachineProfile {
        io_read_mb_s: base.io_read_mb_s.min(14.0),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_storage::MachineProfile;

    #[test]
    fn normalize_dedups_only_q8() {
        let rows = vec![vec![2u64], vec![1], vec![2]];
        let q8 = normalize_result(swans_plan::QueryId::Q8, rows.clone());
        assert_eq!(q8, vec![vec![1], vec![2]]);
        let q1 = normalize_result(swans_plan::QueryId::Q1, rows);
        assert_eq!(q1, vec![vec![1], vec![2], vec![2]]);
    }

    #[test]
    fn scaled_profile_shrinks_seeks_only() {
        let m = scaled_profile(MachineProfile::B, 0.02);
        assert!((m.seek_ms - MachineProfile::B.seek_ms * 0.02).abs() < 1e-12);
        assert_eq!(m.io_read_mb_s, MachineProfile::B.io_read_mb_s);
    }

    #[test]
    fn cstore_profile_caps_bandwidth_machine_independently() {
        let a = cstore_profile(MachineProfile::A);
        let b = cstore_profile(MachineProfile::B);
        assert_eq!(
            a.io_read_mb_s, b.io_read_mb_s,
            "the engine is the bottleneck"
        );
        assert!(a.io_read_mb_s < 15.0);
        assert_eq!(a.seek_ms, MachineProfile::A.seek_ms);
    }
}
