//! The [`Engine`] trait: the seam between the query front door and any
//! execution engine.
//!
//! The paper's criticism of C-Store is exactly a missing seam like this
//! one: its query plans were "hard-wired in C++ code", so no new query —
//! let alone a new engine — could be added. Here, anything that can load a
//! data set into some physical layout and execute logical [`Plan`]s plugs
//! into [`RdfStore`](crate::RdfStore) and
//! [`Database`](crate::Database) as a `Box<dyn Engine>`; the two paper
//! engines ([`RowEngine`] and [`ColumnEngine`]) are simply the built-in
//! implementations.

use swans_colstore::ColumnEngine;
use swans_plan::algebra::Plan;
use swans_plan::props::PropsContext;
use swans_rdf::{Dataset, Delta, SortOrder};
use swans_rowstore::engine::TripleIndexConfig;
use swans_rowstore::RowEngine;
use swans_storage::StorageManager;

pub use swans_plan::exec::{CancelReason, EngineError, PartialStats, QueryBudget};

use crate::result::ResultSet;
use crate::store::Layout;

/// What an engine has materialized — the footprint hook of the trait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footprint {
    /// Whether a triple-store layout is loaded.
    pub has_triple_store: bool,
    /// Number of loaded vertically-partitioned property tables.
    pub property_tables: usize,
}

/// An execution engine: loads a data set into one physical [`Layout`] and
/// executes logical plans against it.
///
/// Implementations must be panic-free on the execution path: any plan —
/// including malformed or layout-mismatched ones — returns an
/// [`EngineError`] instead of aborting.
pub trait Engine: Send + Sync {
    /// Display name used in configuration labels and result tables.
    fn name(&self) -> &'static str;

    /// Materializes `dataset` under `layout`, registering segments with
    /// `storage`. `compression` enables layout-level compression where the
    /// engine supports it (the column engine's leading-column RLE).
    fn load(
        &mut self,
        storage: &StorageManager,
        dataset: &Dataset,
        layout: Layout,
        compression: bool,
    ) -> Result<(), EngineError>;

    /// Executes a logical plan, returning the (still encoded) result set.
    fn execute(&self, plan: &Plan) -> Result<ResultSet, EngineError>;

    /// Executes a logical plan under a [`QueryBudget`]: the engine checks
    /// the budget cooperatively (deadline, memory limit, external cancel)
    /// and returns [`EngineError::Cancelled`] instead of running to
    /// completion when it expires. Both built-in engines check per
    /// operator and per morsel / per N rows; the default checks only
    /// before and after [`Engine::execute`], which still honors deadlines
    /// and cancellation between plans for engines that never override it.
    fn execute_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<ResultSet, EngineError> {
        budget.check()?;
        let result = self.execute(plan);
        budget.check()?;
        result
    }

    /// What this engine currently has loaded.
    fn footprint(&self) -> Footprint;

    /// Applies a batch of mutations (deletes before inserts — see
    /// [`Delta`]'s semantics). Engines choose their own physical strategy:
    /// the column engine buffers into a write store, the row engine
    /// maintains its B+trees in place. The default declines: a read-only
    /// engine reports `Unsupported` instead of silently dropping writes.
    fn apply(&mut self, storage: &StorageManager, delta: &Delta) -> Result<(), EngineError> {
        let _ = (storage, delta);
        Err(EngineError::Unsupported(
            "this engine has no write path".into(),
        ))
    }

    /// Folds any buffered mutations into the engine's primary layout
    /// (the column engine's write-store merge). A no-op — the default —
    /// for engines that apply mutations in place.
    fn merge(&mut self, storage: &StorageManager) -> Result<(), EngineError> {
        let _ = storage;
        Ok(())
    }

    /// Number of buffered (applied but unmerged) mutations. Zero — the
    /// default — for engines that apply in place.
    fn pending_delta(&self) -> usize {
        0
    }

    /// Lifetime count of merges this engine performed (explicit *and*
    /// threshold-triggered). The durable front door watches this across
    /// [`Engine::apply`] calls to checkpoint right after an automatic
    /// merge. Zero forever — the default — for engines that never merge.
    fn merges(&self) -> u64 {
        0
    }

    /// Sets the buffered-operation count at which [`Engine::apply`] should
    /// merge automatically. Advisory; ignored by the default.
    fn set_merge_threshold(&mut self, ops: usize) {
        let _ = ops;
    }

    /// Sets the intra-query worker count for engines with morsel-parallel
    /// execution. Answers must not depend on the width. Advisory; ignored
    /// by the default (and by the built-in row engine, whose
    /// tuple-at-a-time iterators are inherently sequential).
    fn set_threads(&mut self, threads: usize) {
        let _ = threads;
    }

    /// Enables or disables pre-execution plan verification for engines
    /// that run the static checker in [`swans_plan::verify`](mod@swans_plan::verify) (the column
    /// engine verifies in debug builds by default and opts release
    /// builds in through this switch). Advisory; ignored by the default
    /// (and by the built-in row engine, which takes no dispatch decision
    /// a property claim could corrupt).
    fn set_verify(&mut self, on: bool) {
        let _ = on;
    }

    /// The physical-property context EXPLAIN should annotate plans with —
    /// what this engine's dispatch actually exploits. The default claims
    /// nothing, which is truthful for any engine that does not do
    /// order-aware dispatch (including the built-in row engine).
    fn explain_context(&self) -> PropsContext {
        PropsContext::default()
    }

    /// A *snapshot fork*: an independent engine answering queries from
    /// exactly this engine's current state, unaffected by any mutation the
    /// original absorbs afterwards. This is the seam snapshot-isolated
    /// concurrent reads hang on — the front door forks on every commit and
    /// publishes the fork as the readable version.
    ///
    /// The column engine forks zero-copy (its sorted runs are immutable
    /// `Arc`s); the row engine deep-copies its trees. The default returns
    /// `None`: a third-party engine without fork support still works, but
    /// reads fall back to the writer lock (serialized, not isolated).
    fn fork(&self) -> Option<Box<dyn Engine>> {
        None
    }

    /// Named execution counters (kernel dispatches, merges, ...) since
    /// this engine instance was created or last reset — the auditable form
    /// of operator selection, surfaced per *session* once engines are
    /// forked per reader. The default reports nothing.
    fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        Vec::new()
    }
}

impl Engine for RowEngine {
    fn name(&self) -> &'static str {
        "DBX-sim (row)"
    }

    fn load(
        &mut self,
        storage: &StorageManager,
        dataset: &Dataset,
        layout: Layout,
        _compression: bool,
    ) -> Result<(), EngineError> {
        match layout {
            Layout::TripleStore(order) => {
                // The paper's §4.1 index sets: SPO → unclustered POS, OSP;
                // PSO → all five other permutations.
                let idx = match order {
                    SortOrder::Spo => TripleIndexConfig::spo(),
                    SortOrder::Pso => TripleIndexConfig::pso(),
                    other => TripleIndexConfig {
                        cluster: other,
                        secondaries: vec![],
                    },
                };
                self.load_triple_store(storage, &dataset.triples, &idx);
            }
            Layout::VerticallyPartitioned => {
                self.load_vertical(storage, &dataset.triples);
            }
        }
        Ok(())
    }

    fn execute(&self, plan: &Plan) -> Result<ResultSet, EngineError> {
        let rows = RowEngine::execute(self, plan)?;
        Ok(ResultSet::new(rows, plan.output_kinds()))
    }

    fn execute_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<ResultSet, EngineError> {
        let rows = RowEngine::execute_budgeted(self, plan, budget)?;
        Ok(ResultSet::new(rows, plan.output_kinds()))
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            has_triple_store: self.has_triple_store(),
            property_tables: self.property_table_count(),
        }
    }

    fn apply(&mut self, storage: &StorageManager, delta: &Delta) -> Result<(), EngineError> {
        RowEngine::apply(self, storage, delta)
    }

    fn fork(&self) -> Option<Box<dyn Engine>> {
        Some(Box::new(self.clone()))
    }
}

impl Engine for ColumnEngine {
    fn name(&self) -> &'static str {
        "MonetDB-sim (column)"
    }

    fn load(
        &mut self,
        storage: &StorageManager,
        dataset: &Dataset,
        layout: Layout,
        compression: bool,
    ) -> Result<(), EngineError> {
        match layout {
            Layout::TripleStore(order) => {
                self.load_triple_store(storage, &dataset.triples, order, compression);
            }
            Layout::VerticallyPartitioned => {
                self.load_vertical(storage, &dataset.triples, compression);
            }
        }
        Ok(())
    }

    fn execute(&self, plan: &Plan) -> Result<ResultSet, EngineError> {
        // `execute_rows` is the result boundary of compressed execution:
        // columns that stayed run-encoded through the whole plan expand
        // here (counted in the engine's `runs_expanded` statistic).
        let rows = ColumnEngine::execute_rows(self, plan)?;
        Ok(ResultSet::new(rows, plan.output_kinds()))
    }

    fn execute_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<ResultSet, EngineError> {
        let rows = ColumnEngine::execute_rows_budgeted(self, plan, budget)?;
        Ok(ResultSet::new(rows, plan.output_kinds()))
    }

    fn footprint(&self) -> Footprint {
        Footprint {
            has_triple_store: self.has_triple_store(),
            property_tables: self.property_table_count(),
        }
    }

    fn apply(&mut self, storage: &StorageManager, delta: &Delta) -> Result<(), EngineError> {
        ColumnEngine::apply(self, storage, delta)
    }

    fn merge(&mut self, storage: &StorageManager) -> Result<(), EngineError> {
        ColumnEngine::merge(self, storage)
    }

    fn pending_delta(&self) -> usize {
        ColumnEngine::pending_delta(self)
    }

    fn merges(&self) -> u64 {
        ColumnEngine::merges(self)
    }

    fn set_merge_threshold(&mut self, ops: usize) {
        ColumnEngine::set_merge_threshold(self, ops);
    }

    fn set_threads(&mut self, threads: usize) {
        ColumnEngine::set_threads(self, threads);
    }

    fn set_verify(&mut self, on: bool) {
        ColumnEngine::set_verify(self, on);
    }

    fn explain_context(&self) -> PropsContext {
        self.props_ctx()
    }

    fn fork(&self) -> Option<Box<dyn Engine>> {
        Some(Box::new(ColumnEngine::fork(self)))
    }

    fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        let s = self.exec_stats();
        vec![
            ("merge_joins", s.merge_joins),
            ("hash_joins", s.hash_joins),
            ("leapfrog_dispatches", s.leapfrog_dispatches),
            ("sorted_group_counts", s.sorted_group_counts),
            ("hash_group_counts", s.hash_group_counts),
            ("sorted_distincts", s.sorted_distincts),
            ("sort_distincts", s.sort_distincts),
            ("distinct_passthroughs", s.distinct_passthroughs),
            ("sorted_selects", s.sorted_selects),
            ("rle_selects", s.rle_selects),
            ("sorted_in_selects", s.sorted_in_selects),
            ("delta_union_scans", s.delta_union_scans),
            ("merges", s.merges),
            ("parallel_tasks", s.parallel_tasks),
            ("morsels", s.morsels),
            ("run_scans", s.run_scans),
            ("run_kernel_dispatches", s.run_kernel_dispatches),
            ("runs_expanded", s.runs_expanded),
            ("scan_bytes_compressed", s.scan_bytes_compressed),
            ("scan_bytes_logical", s.scan_bytes_logical),
            ("cancelled_queries", s.cancelled_queries),
            ("peak_mem_bytes", s.peak_mem_bytes),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_plan::algebra::scan_all;
    use swans_storage::MachineProfile;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.add("<s1>", "<type>", "<Text>");
        ds.add("<s2>", "<type>", "<Date>");
        ds.add("<s1>", "<lang>", "\"fre\"");
        ds
    }

    /// Both built-in engines behave identically through the trait object.
    #[test]
    fn trait_objects_load_and_execute() {
        let ds = dataset();
        let engines: Vec<Box<dyn Engine>> =
            vec![Box::new(RowEngine::new()), Box::new(ColumnEngine::new())];
        for mut engine in engines {
            let storage = StorageManager::new(MachineProfile::B);
            engine
                .load(&storage, &ds, Layout::TripleStore(SortOrder::Pso), false)
                .expect("load succeeds");
            let fp = engine.footprint();
            assert!(fp.has_triple_store, "{}", engine.name());
            assert_eq!(fp.property_tables, 0);

            let rs = engine.execute(&scan_all()).expect("scan executes");
            assert_eq!(rs.len(), 3, "{}", engine.name());

            // The other layout was never loaded: typed error, no panic.
            let vp_scan = Plan::ScanProperty {
                property: 0,
                s: None,
                o: None,
                emit_property: false,
            };
            assert_eq!(
                engine.execute(&vp_scan).unwrap_err(),
                EngineError::MissingVerticalLayout,
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn vertical_footprint_counts_property_tables() {
        let ds = dataset();
        let storage = StorageManager::new(MachineProfile::B);
        let mut engine: Box<dyn Engine> = Box::new(ColumnEngine::new());
        engine
            .load(&storage, &ds, Layout::VerticallyPartitioned, true)
            .expect("load succeeds");
        let fp = engine.footprint();
        assert!(!fp.has_triple_store);
        assert_eq!(fp.property_tables, 2); // <type>, <lang>
    }
}
