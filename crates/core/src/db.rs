//! [`Database`]: the front door of the system.
//!
//! One type owns the whole pipeline the paper could not get out of
//! C-Store: a data set plus its dictionary, a physical configuration, and
//! a SPARQL entry point that parses, plans, optimizes, lowers and executes
//! an *arbitrary* query on whatever engine × layout was opened — returning
//! decoded term strings, not raw dictionary codes.
//!
//! # Concurrency model
//!
//! The database is split into a **writer side** (the store, the durable
//! log, the authoritative data set — all behind one mutex) and a
//! **published side** (an `Arc`'d immutable [`Snapshot`] behind an
//! `RwLock` that is only ever *swapped*, never held across work). Every
//! mutation commits under the writer lock — WAL append first, then the
//! engine, then the logical data set — and finishes by publishing a new
//! snapshot: a zero-copy fork of the engine plus the new data-set `Arc`.
//!
//! Reads never take the writer lock (unless the engine cannot fork):
//! [`Database::query`] clones the published `Arc` and executes on that
//! version; [`Database::session`] pins a version for many queries. All
//! mutating methods take `&self`, so a `Database` shared behind an `Arc`
//! serves concurrent readers and writers — the `swans-serve` HTTP front
//! door is exactly that.

use std::path::Path;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

use swans_plan::algebra::Plan;
use swans_plan::exec::QueryBudget;
use swans_plan::props::PropsContext;
use swans_plan::queries::{QueryContext, QueryId};
use swans_rdf::{Dataset, Delta};
use swans_storage::StorageManager;

use crate::durable::{DurabilityOptions, Durable, RecoveryReport};
use crate::error::Error;
use crate::result::ResultSet;
use crate::snapshot::{compile, Session, Snapshot};
use crate::store::{QueryRun, RdfStore, StoreConfig};
use crate::Engine;

/// The writer side: everything a commit mutates, behind one mutex.
struct WriterState {
    dataset: Arc<Dataset>,
    store: RdfStore,
    durable: Option<Durable>,
    /// Version counter of the *last published* snapshot.
    version: u64,
}

/// A data set opened in one physical configuration, queryable with SPARQL
/// and mutable through [`Database::insert`] / [`Database::delete`] — from
/// any number of threads at once (see the module docs for the snapshot
/// publication protocol).
///
/// ```
/// use swans_core::{Database, Layout, StoreConfig};
/// use swans_rdf::Dataset;
///
/// let mut ds = Dataset::new();
/// ds.add("<s1>", "<type>", "<Text>");
/// ds.add("<s1>", "<language>", "<fre>");
/// ds.add("<s2>", "<type>", "<Date>");
/// let db = Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned))?;
///
/// let results = db.query("SELECT ?s WHERE { ?s <type> <Text> }")?;
/// assert_eq!(results.columns(), ["s"]);
/// assert_eq!(results.decoded(), vec![vec!["<s1>".to_string()]]);
/// # Ok::<(), swans_core::Error>(())
/// ```
pub struct Database {
    /// The loaded configuration (immutable after open).
    config: StoreConfig,
    /// The shared storage service (immutable handle; interior state is
    /// its own concern and thread-safe).
    storage: StorageManager,
    writer: Mutex<WriterState>,
    published: RwLock<Arc<Snapshot>>,
}

impl Database {
    /// Opens `dataset` under `config` with the built-in engine the
    /// configuration names. In-memory only: nothing survives a process
    /// restart (see [`Database::open_at`] for the durable form).
    pub fn open(dataset: impl Into<Arc<Dataset>>, config: StoreConfig) -> Result<Self, Error> {
        let dataset = dataset.into();
        let store = RdfStore::try_load(&dataset, config)?;
        Ok(Self::from_parts(dataset, store, None))
    }

    /// Opens `dataset` on a caller-provided [`Engine`] implementation —
    /// the third-party plug-in point. Engines without
    /// [`Engine::fork`] support still work: reads then serialize through
    /// the writer lock instead of running on published snapshots.
    pub fn open_with_engine(
        dataset: impl Into<Arc<Dataset>>,
        config: StoreConfig,
        engine: Box<dyn Engine>,
    ) -> Result<Self, Error> {
        let dataset = dataset.into();
        let store = RdfStore::with_engine(&dataset, config, engine)?;
        Ok(Self::from_parts(dataset, store, None))
    }

    /// Opens (or initializes) a **durable** database rooted at directory
    /// `path`: recovery loads the last valid snapshot and replays the
    /// write-ahead-log tail, so every batch a previous process
    /// acknowledged is present — even if that process was killed
    /// mid-write. A torn or corrupt WAL tail is a clean end-of-log, never
    /// an error. The directory's format is engine-agnostic: it may be
    /// reopened under any `config`.
    ///
    /// ```
    /// use swans_core::{Database, Layout, StoreConfig};
    ///
    /// let dir = std::env::temp_dir().join(format!("swans-open-at-doc-{}", std::process::id()));
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// let config = StoreConfig::column(Layout::VerticallyPartitioned);
    /// let db = Database::open_at(&dir, config.clone())?;
    /// db.insert([("<s1>", "<type>", "<Text>")])?; // logged + fsynced before applying
    /// db.checkpoint()?; // snapshot the store, truncate the log
    /// drop(db);
    ///
    /// // A new process sees the acknowledged state.
    /// let db = Database::open_at(&dir, config)?;
    /// assert_eq!(db.query("SELECT ?s WHERE { ?s <type> <Text> }")?.len(), 1);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), swans_core::Error>(())
    /// ```
    pub fn open_at(path: impl AsRef<Path>, config: StoreConfig) -> Result<Self, Error> {
        Self::open_at_with(path, config, DurabilityOptions::default())
    }

    /// [`Database::open_at`] with explicit [`DurabilityOptions`] (fsync
    /// policy, append verification, auto-checkpoint threshold, fault
    /// injection).
    pub fn open_at_with(
        path: impl AsRef<Path>,
        config: StoreConfig,
        options: DurabilityOptions,
    ) -> Result<Self, Error> {
        let (dataset, durable) = Durable::open(path.as_ref(), options)?;
        Self::finish_durable(dataset, config, durable)
    }

    /// Bulk-imports `dataset` into a **fresh** durable directory at
    /// `path` (an immediate checkpoint makes the import durable), then
    /// opens it. Fails if `path` already holds a durable database.
    pub fn import_at(
        path: impl AsRef<Path>,
        dataset: Dataset,
        config: StoreConfig,
        options: DurabilityOptions,
    ) -> Result<Self, Error> {
        let durable = Durable::create_from(path.as_ref(), &dataset, options)?;
        Self::finish_durable(dataset, config, durable)
    }

    fn finish_durable(
        dataset: Dataset,
        config: StoreConfig,
        mut durable: Durable,
    ) -> Result<Self, Error> {
        let dataset = Arc::new(dataset);
        let store = RdfStore::try_load(&dataset, config)?;
        durable.set_stats(store.storage().stats_handle());
        durable.engine_merges = store.merges();
        Ok(Self::from_parts(dataset, store, Some(durable)))
    }

    /// Assembles the writer side and publishes version 1.
    fn from_parts(dataset: Arc<Dataset>, store: RdfStore, durable: Option<Durable>) -> Self {
        let config = store.config().clone();
        let storage = store.storage().clone();
        let mut writer = WriterState {
            dataset,
            store,
            durable,
            version: 0,
        };
        let first = Self::capture(&mut writer);
        Self {
            config,
            storage,
            writer: Mutex::new(writer),
            published: RwLock::new(first),
        }
    }

    /// Locks the writer side. Poisoning is recovered: every commit step
    /// is ordered so that an unwind leaves a consistent (at worst
    /// slightly stale-published) state, and the next publication
    /// re-exports the writer's truth.
    fn writer(&self) -> MutexGuard<'_, WriterState> {
        self.writer.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Builds the next snapshot from the writer's current state.
    fn capture(writer: &mut WriterState) -> Arc<Snapshot> {
        writer.version += 1;
        Arc::new(Snapshot {
            version: writer.version,
            dataset: writer.dataset.clone(),
            config: writer.store.config().clone(),
            storage: writer.store.storage().clone(),
            engine: writer.store.fork_engine().map(Arc::from),
            pending: writer.store.pending_delta(),
        })
    }

    /// Publishes the writer's current state: the atomic `Arc` swap that
    /// makes a commit visible. Readers holding older snapshots are
    /// untouched; new reads pick up the new version.
    fn publish(&self, writer: &mut WriterState) {
        let snap = Self::capture(writer);
        let mut slot = self.published.write().unwrap_or_else(|e| e.into_inner());
        *slot = snap;
    }

    /// The currently published [`Snapshot`] — the latest acknowledged
    /// version. Holding the returned `Arc` pins that version: it keeps
    /// answering bit-identically no matter what is committed afterwards.
    pub fn snapshot(&self) -> Arc<Snapshot> {
        self.published
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Opens a reader [`Session`]: pins the current snapshot and forks a
    /// private engine for it, so per-session execution counters never
    /// cross-contaminate. Errors with
    /// [`EngineError::Unsupported`](crate::EngineError::Unsupported) if
    /// the engine cannot fork (third-party engines without
    /// [`Engine::fork`]) — plain [`Database::query`] still works there.
    pub fn session(&self) -> Result<Session, Error> {
        Session::pin(self.snapshot())
    }

    /// The data set of the latest published version.
    pub fn dataset(&self) -> Arc<Dataset> {
        self.snapshot().dataset.clone()
    }

    /// The loaded configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The storage manager (I/O statistics, traces, pool control) —
    /// shared by the writer and every published snapshot.
    pub fn storage(&self) -> &StorageManager {
        &self.storage
    }

    /// Total on-disk footprint of this layout in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.storage.total_bytes()
    }

    /// Parses, plans and executes a SPARQL query, returning decoded,
    /// lazily iterable results. Works identically on every engine × layout
    /// configuration, and concurrently with writers: the query runs
    /// against the latest published snapshot (falling back to the writer
    /// lock only for engines without snapshot support).
    pub fn query(&self, sparql: &str) -> Result<ResultSet, Error> {
        let snap = self.snapshot();
        if snap.isolated() {
            return snap.query(sparql);
        }
        let writer = self.writer();
        let compiled = compile(&writer.dataset, &self.config, sparql)?;
        let results = writer.store.execute_plan(&compiled.plan)?;
        Ok(results
            .with_columns(compiled.columns)
            .with_dataset(writer.dataset.clone()))
    }

    /// [`Database::query`] under a resource budget: the deadline,
    /// cancellation token, and memory limit in `budget` are checked
    /// cooperatively throughout execution — per morsel in the column
    /// engine, every few thousand rows in the row engine — and a tripped
    /// budget surfaces as
    /// [`EngineError::Cancelled`](crate::EngineError::Cancelled) (wrapped
    /// in [`Error::Engine`]), never a panic and never a poisoned lock.
    ///
    /// ```
    /// use swans_core::{Database, Layout, QueryBudget, StoreConfig};
    /// use swans_rdf::Dataset;
    ///
    /// let mut ds = Dataset::new();
    /// ds.add("<s1>", "<type>", "<Text>");
    /// let db = Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned))?;
    /// let budget = QueryBudget::unlimited()
    ///     .with_timeout(std::time::Duration::from_secs(30))
    ///     .with_mem_limit(64 << 20);
    /// let results = db.query_budgeted("SELECT ?s WHERE { ?s <type> <Text> }", &budget)?;
    /// assert_eq!(results.len(), 1);
    /// # Ok::<(), swans_core::Error>(())
    /// ```
    pub fn query_budgeted(&self, sparql: &str, budget: &QueryBudget) -> Result<ResultSet, Error> {
        let snap = self.snapshot();
        if snap.isolated() {
            return snap.query_budgeted(sparql, budget);
        }
        let writer = self.writer();
        let compiled = compile(&writer.dataset, &self.config, sparql)?;
        let results = writer.store.execute_plan_budgeted(&compiled.plan, budget)?;
        Ok(results
            .with_columns(compiled.columns)
            .with_dataset(writer.dataset.clone()))
    }

    /// Like [`Database::query`], but also reports the timing and I/O of
    /// the execution under the benchmark measurement protocol.
    ///
    /// The returned [`QueryRun`]'s `rows` field is empty: the rows are
    /// moved into the [`ResultSet`] (reachable encoded via
    /// [`ResultSet::ids`]) rather than materialized twice.
    pub fn query_timed(&self, sparql: &str) -> Result<(ResultSet, QueryRun), Error> {
        let snap = self.snapshot();
        if snap.isolated() {
            let compiled = compile(&snap.dataset, &self.config, sparql)?;
            let mut run = snap.run_plan(&compiled.plan)?;
            let rows = std::mem::take(&mut run.rows);
            let results = ResultSet::new(rows, compiled.plan.output_kinds())
                .with_columns(compiled.columns)
                .with_dataset(snap.dataset.clone());
            return Ok((results, run));
        }
        let writer = self.writer();
        let compiled = compile(&writer.dataset, &self.config, sparql)?;
        let mut run = writer.store.run_plan(&compiled.plan)?;
        let rows = std::mem::take(&mut run.rows);
        let results = ResultSet::new(rows, compiled.plan.output_kinds())
            .with_columns(compiled.columns)
            .with_dataset(writer.dataset.clone());
        Ok((results, run))
    }

    /// Inserts triples given as `(subject, property, object)` term
    /// strings, returning how many were inserted. New terms are interned
    /// into the dictionary incrementally; the data set and the engine's
    /// physical layout absorb the batch together, and the new version is
    /// published atomically before the call returns — a query issued
    /// right after (from any thread) sees the new rows, while readers
    /// already pinned to an older snapshot are untouched.
    ///
    /// Inserts have bag semantics: inserting an already-present triple
    /// stores another copy.
    ///
    /// ```
    /// use swans_core::{Database, Layout, StoreConfig};
    /// use swans_rdf::Dataset;
    ///
    /// let mut ds = Dataset::new();
    /// ds.add("<s1>", "<type>", "<Text>");
    /// let db = Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned))?;
    /// db.insert([("<s2>", "<type>", "<Text>"), ("<s2>", "<language>", "<fre>")])?;
    /// let results = db.query("SELECT ?s WHERE { ?s <type> <Text> }")?;
    /// assert_eq!(results.len(), 2);
    /// # Ok::<(), swans_core::Error>(())
    /// ```
    pub fn insert<'a>(
        &self,
        triples: impl IntoIterator<Item = (&'a str, &'a str, &'a str)>,
    ) -> Result<usize, Error> {
        let mut writer = self.writer();
        let mut delta = Delta::new();
        {
            let dataset = Arc::make_mut(&mut writer.dataset);
            for (s, p, o) in triples {
                delta.insert(dataset.encode(s, p, o));
            }
        }
        if delta.is_empty() {
            return Ok(0);
        }
        self.commit(&mut writer, &delta)?;
        Ok(delta.inserts.len())
    }

    /// Deletes triples given as `(subject, property, object)` term
    /// strings, returning how many of them named triples whose terms are
    /// all known to this database (the remainder cannot be stored here, so
    /// there is nothing to delete and the dictionary is left untouched).
    ///
    /// Deletes have set semantics: every stored copy of a matching triple
    /// is removed. Deleting an absent triple is a no-op.
    ///
    /// ```
    /// use swans_core::{Database, Layout, StoreConfig};
    /// use swans_rdf::Dataset;
    ///
    /// let mut ds = Dataset::new();
    /// ds.add("<s1>", "<type>", "<Text>");
    /// ds.add("<s2>", "<type>", "<Text>");
    /// let db = Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned))?;
    /// db.delete([("<s1>", "<type>", "<Text>")])?;
    /// let results = db.query("SELECT ?s WHERE { ?s <type> <Text> }")?;
    /// assert_eq!(results.decoded(), vec![vec!["<s2>".to_string()]]);
    /// # Ok::<(), swans_core::Error>(())
    /// ```
    pub fn delete<'a>(
        &self,
        triples: impl IntoIterator<Item = (&'a str, &'a str, &'a str)>,
    ) -> Result<usize, Error> {
        let mut writer = self.writer();
        let mut delta = Delta::new();
        for (s, p, o) in triples {
            if let Some(t) = writer.dataset.try_encode(s, p, o) {
                delta.delete(t);
            }
        }
        if delta.is_empty() {
            return Ok(0);
        }
        self.commit(&mut writer, &delta)?;
        Ok(delta.deletes.len())
    }

    /// Applies an already-encoded [`Delta`] (the batch-level escape hatch
    /// for callers that hold ids). The ids must come from this database's
    /// dictionary.
    pub fn apply(&self, delta: &Delta) -> Result<(), Error> {
        if delta.is_empty() {
            return Ok(());
        }
        let mut writer = self.writer();
        self.commit(&mut writer, delta)
    }

    /// The one commit path every mutation takes — under the writer lock.
    /// Durable databases log the batch first — the WAL append (verified
    /// and fsynced under the default [`DurabilityOptions`]) is the
    /// acknowledgement point; if it fails, neither the engine nor the
    /// dataset is touched. Then the engine absorbs the delta ("engine
    /// first": if it declines, the triple bag must not diverge from what
    /// the engine serves — interned terms are harmless, a dictionary
    /// entry with no triples), then the logical dataset; a
    /// threshold-triggered engine merge or a reached auto-checkpoint
    /// budget checkpoints next. **Publication is last**: the new version
    /// becomes visible only after it is durable — a reader can never
    /// observe a batch that a crash could lose.
    fn commit(&self, writer: &mut WriterState, delta: &Delta) -> Result<(), Error> {
        if let Some(durable) = &mut writer.durable {
            durable.append_batch(&writer.dataset.dict, delta)?;
        }
        writer.store.apply(delta)?;
        Arc::make_mut(&mut writer.dataset).apply(delta);
        let wants_checkpoint = writer.durable.as_ref().is_some_and(|durable| {
            writer.store.merges() != durable.engine_merges || durable.wants_checkpoint()
        });
        if wants_checkpoint {
            Self::checkpoint_writer(writer)?;
        }
        self.publish(writer);
        Ok(())
    }

    /// Merges the engine's buffered mutations into its sorted primary
    /// layout, restoring sorted-path dispatch (merge joins, run-based
    /// aggregation) on the column engine, and publishes the merged
    /// version. Readers pinned to pre-merge snapshots keep their
    /// write-store union view — answers are bit-identical either way. A
    /// no-op for engines that apply mutations in place. On a durable
    /// database the merged state is immediately checkpointed — the sorted
    /// store was just rebuilt, so this is exactly when a snapshot is
    /// cheapest to justify.
    pub fn merge(&self) -> Result<(), Error> {
        let mut writer = self.writer();
        writer.store.merge()?;
        if writer.durable.is_some() {
            Self::checkpoint_writer(&mut writer)?;
        }
        self.publish(&mut writer);
        Ok(())
    }

    /// Snapshots the current state into the durable directory (temp
    /// file, verify, atomic rename) and truncates the write-ahead log. A
    /// no-op on non-durable databases. On error, the previous snapshot
    /// and the full WAL are left intact.
    pub fn checkpoint(&self) -> Result<(), Error> {
        let mut writer = self.writer();
        Self::checkpoint_writer(&mut writer)
    }

    fn checkpoint_writer(writer: &mut WriterState) -> Result<(), Error> {
        let merges = writer.store.merges();
        if let Some(durable) = &mut writer.durable {
            durable.checkpoint(&writer.dataset)?;
            durable.engine_merges = merges;
        }
        Ok(())
    }

    /// How recovery went when this database was opened with
    /// [`Database::open_at`]; `None` for in-memory databases.
    pub fn recovery_report(&self) -> Option<RecoveryReport> {
        self.writer().durable.as_ref().map(|d| d.report().clone())
    }

    /// Current write-ahead-log size in bytes (`None` if not durable).
    pub fn wal_bytes(&self) -> Option<u64> {
        self.writer().durable.as_ref().map(Durable::wal_bytes)
    }

    /// Encoded size of the latest snapshot in bytes (`None` if not
    /// durable, 0 if none has been written yet).
    pub fn snapshot_bytes(&self) -> Option<u64> {
        self.writer().durable.as_ref().map(Durable::snapshot_bytes)
    }

    /// Number of applied-but-unmerged mutations buffered at the latest
    /// published version.
    pub fn pending_delta(&self) -> usize {
        self.snapshot().pending
    }

    /// The physical-property context EXPLAIN annotations use — derived
    /// from the latest published snapshot's engine state (or the writer's,
    /// for engines without snapshot support).
    pub fn explain_context(&self) -> PropsContext {
        match self.snapshot().engine.as_deref() {
            Some(engine) => engine.explain_context(),
            None => self.writer().store.explain_context(),
        }
    }

    /// Returns the optimized plan tree `sparql` would execute — already
    /// lowered for this database's layout, and *verified*: the static
    /// checker in `swans_plan::verify` runs against the engine's current
    /// layout context, so a plan with an unjustifiable property claim is
    /// an [`Error::Engine`] naming the offending operator here, before
    /// anything executes. Render the plan with [`Plan::explain`], or use
    /// [`Database::explain_text`] for the physical-property-annotated
    /// form.
    ///
    /// ```
    /// use swans_core::{Database, Layout, StoreConfig};
    /// use swans_rdf::Dataset;
    ///
    /// let mut ds = Dataset::new();
    /// ds.add("<s1>", "<type>", "<Text>");
    /// let db = Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned))?;
    /// let plan = db.explain("SELECT ?s WHERE { ?s <type> <Text> }")?;
    /// assert!(plan.explain().contains("ScanProperty"));
    /// # Ok::<(), swans_core::Error>(())
    /// ```
    pub fn explain(&self, sparql: &str) -> Result<Plan, Error> {
        let plan = compile(&self.dataset(), &self.config, sparql)?.plan;
        swans_plan::verify::verify(&plan, &self.explain_context())
            .map_err(swans_plan::EngineError::Verify)?;
        Ok(plan)
    }

    /// Renders the plan `sparql` would execute with per-node physical
    /// properties (`sorted_by` / `distinct`) under the engine's *current*
    /// state — including the write-store union branch while unmerged
    /// mutations are pending. This is the auditable form of operator
    /// selection: nodes annotated `[unsorted]` will not merge-join.
    ///
    /// The plan is verified first (like [`Database::explain`]) and the
    /// rendering ends with the verifier's coverage footer, e.g.
    /// `-- verified: 7 nodes, 2 merge joins, 0 run-encoded claims`.
    pub fn explain_text(&self, sparql: &str) -> Result<String, Error> {
        let plan = compile(&self.dataset(), &self.config, sparql)?.plan;
        let ctx = self.explain_context();
        let report =
            swans_plan::verify::verify(&plan, &ctx).map_err(swans_plan::EngineError::Verify)?;
        Ok(format!("{}-- {report}\n", plan.explain_annotated(&ctx)))
    }

    /// EXPLAIN ANALYZE: renders the plan like [`Database::explain_text`]
    /// and *executes every rendered node* against the current published
    /// state, printing the measured cardinality as `actual_rows=N` next
    /// to the cost model's `est_rows` estimate. The estimation error
    /// (q-error, `max(est/actual, actual/est)`) of any operator can be
    /// read straight off the output — the same quantity the
    /// `plan-quality` CI gate bounds across the benchmark suite.
    ///
    /// Subtrees are re-executed from scratch per node, so this costs
    /// more than one query execution; it is a diagnostic, not a fast
    /// path.
    pub fn explain_analyze(&self, sparql: &str) -> Result<String, Error> {
        let plan = compile(&self.dataset(), &self.config, sparql)?.plan;
        let ctx = self.explain_context();
        let report =
            swans_plan::verify::verify(&plan, &ctx).map_err(swans_plan::EngineError::Verify)?;
        let mut actual = |node: &Plan| self.execute_plan(node).ok().map(|rs| rs.len() as u64);
        Ok(format!(
            "{}-- {report}\n",
            plan.explain_compared(&ctx, &mut actual)
        ))
    }

    /// Executes a raw logical plan (the algebra-level escape hatch),
    /// decoding results through this database's dictionary.
    pub fn execute_plan(&self, plan: &Plan) -> Result<ResultSet, Error> {
        let snap = self.snapshot();
        if snap.isolated() {
            return snap.execute_plan(plan);
        }
        let writer = self.writer();
        let results = writer.store.execute_plan(plan)?;
        Ok(results.with_dataset(writer.dataset.clone()))
    }

    /// [`Database::execute_plan`] under a resource budget — see
    /// [`Database::query_budgeted`].
    pub fn execute_plan_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<ResultSet, Error> {
        let snap = self.snapshot();
        if snap.isolated() {
            return snap.execute_plan_budgeted(plan, budget);
        }
        let writer = self.writer();
        let results = writer.store.execute_plan_budgeted(plan, budget)?;
        Ok(results.with_dataset(writer.dataset.clone()))
    }

    /// Runs benchmark query `q` through the paper's measurement protocol
    /// (the thin wrapper over the pre-`Database` benchmark path).
    pub fn run_benchmark(&self, q: QueryId, ctx: &QueryContext) -> QueryRun {
        let snap = self.snapshot();
        if snap.isolated() {
            return snap
                .run_benchmark(q, ctx)
                .unwrap_or_else(|e| panic!("benchmark query {q} failed: {e}"));
        }
        self.writer().store.run_query(q, ctx)
    }

    /// A [`QueryContext`] resolving the benchmark constants against this
    /// data set.
    pub fn benchmark_context(&self, n_interesting: usize) -> QueryContext {
        QueryContext::from_dataset(&self.dataset(), n_interesting)
    }

    /// Empties the buffer pool so the next query runs cold.
    pub fn make_cold(&self) {
        self.storage.clear_pool();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Layout;
    use swans_rdf::SortOrder;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.add("<s1>", "<type>", "<Text>");
        ds.add("<s2>", "<type>", "<Text>");
        ds.add("<s3>", "<type>", "<Date>");
        ds.add("<s1>", "<lang>", "\"fre\"");
        ds.add("<s2>", "<lang>", "\"eng\"");
        ds.add("<s3>", "<lang>", "\"fre\"");
        ds
    }

    fn all_configs() -> Vec<StoreConfig> {
        vec![
            StoreConfig::row(Layout::TripleStore(SortOrder::Spo)),
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
            StoreConfig::row(Layout::VerticallyPartitioned),
            StoreConfig::column(Layout::TripleStore(SortOrder::Spo)),
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
            StoreConfig::column(Layout::VerticallyPartitioned),
        ]
    }

    /// The acceptance criterion of the API redesign: a hand-written SPARQL
    /// string executes on all six engine × layout configurations and
    /// returns *decoded*, identical term strings.
    #[test]
    fn query_decodes_identically_on_all_six_configurations() {
        let ds = dataset();
        let q = "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }";
        let mut reference: Option<Vec<Vec<String>>> = None;
        for config in all_configs() {
            let label = config.label();
            let db = Database::open(ds.clone(), config).expect("opens");
            let results = db.query(q).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(results.columns(), ["s", "l"]);
            let mut rows = results.decoded();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(r, &rows, "{label} disagrees"),
            }
        }
        let rows = reference.unwrap();
        assert_eq!(
            rows,
            vec![
                vec!["<s1>".to_string(), "\"fre\"".to_string()],
                vec!["<s2>".to_string(), "\"eng\"".to_string()],
            ]
        );
    }

    #[test]
    fn aggregation_decodes_counts_as_numbers() {
        let ds = dataset();
        let db =
            Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned)).expect("opens");
        let results = db
            .query("SELECT ?t (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t")
            .expect("aggregates");
        assert_eq!(results.columns(), ["t", "n"]);
        let mut rows = results.decoded();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec!["<Date>".to_string(), "1".to_string()],
                vec!["<Text>".to_string(), "2".to_string()],
            ]
        );
    }

    #[test]
    fn errors_are_typed_per_stage() {
        let db = Database::open(
            dataset(),
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
        )
        .expect("opens");
        assert!(matches!(db.query("FROB"), Err(Error::Parse(_))));
        assert!(matches!(
            db.query("SELECT ?s WHERE { ?s <missing> ?o }"),
            Err(Error::Plan(_))
        ));
        assert!(matches!(
            db.query("SELECT ?a ?b WHERE { ?a <type> <Text> . ?b <lang> \"fre\" }"),
            Err(Error::Plan(_))
        ));
        let bad_config = StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).with_pool_pages(0);
        assert!(matches!(
            Database::open(dataset(), bad_config),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn explain_returns_the_lowered_optimized_plan() {
        let ds = dataset();
        let tri = Database::open(
            ds.clone(),
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        )
        .expect("opens");
        let vp =
            Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned)).expect("opens");
        let q = "SELECT ?s WHERE { ?s <type> <Text> }";
        let tri_plan = tri.explain(q).expect("explains").explain();
        let vp_plan = vp.explain(q).expect("explains").explain();
        // The optimizer fused the bound positions into the scans.
        assert!(tri_plan.contains("ScanTriples"), "{tri_plan}");
        assert!(vp_plan.contains("ScanProperty"), "{vp_plan}");
    }

    #[test]
    fn query_timed_reports_io_for_cold_runs() {
        let db = Database::open(
            dataset(),
            StoreConfig::column(Layout::VerticallyPartitioned),
        )
        .expect("opens");
        db.make_cold();
        let (results, run) = db
            .query_timed("SELECT ?s WHERE { ?s <type> <Text> }")
            .expect("runs");
        assert_eq!(results.len(), 2);
        assert!(run.rows.is_empty(), "rows move into the ResultSet");
        assert!(run.io.bytes_read > 0, "cold run must read");
        assert!(run.real_seconds >= run.user_seconds);
    }

    /// The write path through the front door: the same interleaving of
    /// inserts and deletes yields identical decoded answers on all six
    /// configurations, before and after merge.
    #[test]
    fn mutations_agree_on_all_six_configurations() {
        let ds = dataset();
        let q = "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }";
        let mut reference: Option<Vec<Vec<String>>> = None;
        for config in all_configs() {
            let label = config.label();
            let db = Database::open(ds.clone(), config).expect("opens");
            db.insert([("<s4>", "<type>", "<Text>"), ("<s4>", "<lang>", "\"deu\"")])
                .expect("inserts");
            db.delete([("<s2>", "<lang>", "\"eng\"")]).expect("deletes");
            let mut rows = db
                .query(q)
                .unwrap_or_else(|e| panic!("{label}: {e}"))
                .decoded();
            rows.sort();
            assert_eq!(
                rows,
                vec![
                    vec!["<s1>".to_string(), "\"fre\"".to_string()],
                    vec!["<s4>".to_string(), "\"deu\"".to_string()],
                ],
                "{label} pre-merge"
            );
            db.merge().expect("merges");
            assert_eq!(db.pending_delta(), 0);
            let mut merged = db.query(q).expect("queries").decoded();
            merged.sort();
            match &reference {
                None => reference = Some(merged.clone()),
                Some(r) => assert_eq!(r, &merged, "{label} post-merge disagrees"),
            }
            assert_eq!(rows, merged, "{label}: merge changed answers");

            // The mutated data set is the logical truth: a fresh bulk load
            // answers identically.
            let fresh = Database::open(db.dataset(), db.config().clone()).expect("fresh load");
            let mut fresh_rows = fresh.query(q).expect("queries").decoded();
            fresh_rows.sort();
            assert_eq!(fresh_rows, merged, "{label}: fresh load disagrees");
        }
    }

    /// Inserted terms never seen before are interned incrementally and
    /// decode back out; deletes of unknown terms are no-ops.
    #[test]
    fn new_terms_intern_incrementally() {
        let db = Database::open(
            dataset(),
            StoreConfig::column(Layout::VerticallyPartitioned),
        )
        .expect("opens");
        let dict_before = db.dataset().dict.len();
        assert_eq!(
            db.insert([("<fresh>", "<brand-new-prop>", "\"novel\"")])
                .expect("inserts"),
            1
        );
        assert_eq!(db.dataset().dict.len(), dict_before + 3);
        assert_eq!(
            db.delete([("<never>", "<seen>", "<terms>")]).expect("ok"),
            0,
            "unknown terms: nothing to delete"
        );
        assert_eq!(db.dataset().dict.len(), dict_before + 3, "no pollution");
        let rows = db
            .query("SELECT ?o WHERE { <fresh> <brand-new-prop> ?o }")
            .expect("queries")
            .decoded();
        assert_eq!(rows, vec![vec!["\"novel\"".to_string()]]);
    }

    /// EXPLAIN renders per-node physical properties, and the write-store
    /// union branch exactly while a delta is pending.
    #[test]
    fn explain_text_tracks_write_store_state() {
        let db = Database::open(
            dataset(),
            StoreConfig::column(Layout::VerticallyPartitioned),
        )
        .expect("opens");
        let q = "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }";
        let clean = db.explain_text(q).expect("explains");
        assert!(clean.contains("sorted_by="), "{clean}");
        assert!(!clean.contains("WriteStoreScan"), "{clean}");
        db.insert([("<s9>", "<type>", "<Text>")]).expect("inserts");
        let dirty = db.explain_text(q).expect("explains");
        assert!(dirty.contains("WriteStoreScan"), "{dirty}");
        assert!(dirty.contains("[unsorted]"), "{dirty}");
        db.merge().expect("merges");
        let merged = db.explain_text(q).expect("explains");
        assert!(!merged.contains("WriteStoreScan"), "{merged}");
        assert!(merged.contains("sorted_by="), "{merged}");
        // A delete-only delta still shows the (order-preserving) filter
        // branch: scans do run the union path, and EXPLAIN must say so.
        db.delete([("<s3>", "<type>", "<Date>")]).expect("deletes");
        let del_only = db.explain_text(q).expect("explains");
        assert!(del_only.contains("tombstone filter"), "{del_only}");
        assert!(del_only.contains("sorted_by="), "{del_only}");
    }

    /// EXPLAIN is a verification gate: every rendering ends with the
    /// static checker's coverage footer, on every configuration and in
    /// every write-store state.
    #[test]
    fn explain_text_ends_with_the_verification_footer() {
        for config in all_configs() {
            let label = config.label();
            let db = Database::open(dataset(), config).expect("opens");
            let q = "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }";
            let clean = db
                .explain_text(q)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(clean.contains("-- verified:"), "{label}:\n{clean}");
            assert!(clean.contains("nodes"), "{label}:\n{clean}");
            db.insert([("<s9>", "<type>", "<Text>")]).expect("inserts");
            let dirty = db
                .explain_text(q)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert!(dirty.contains("-- verified:"), "{label}:\n{dirty}");
            // `explain` runs the same check and still returns the plan.
            db.explain(q).unwrap_or_else(|e| panic!("{label}: {e}"));
        }
    }

    /// `with_verify` reaches the engine: execution still answers queries
    /// (the static checker accepts every front-door plan), whichever way
    /// the switch is thrown.
    #[test]
    fn verify_config_round_trips_through_execution() {
        let q = "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }";
        for on in [true, false] {
            let config = StoreConfig::column(Layout::VerticallyPartitioned).with_verify(on);
            let db = Database::open(dataset(), config).expect("opens");
            assert_eq!(db.query(q).expect("verified plans execute").len(), 2);
        }
    }

    /// An explicit merge threshold triggers automatic merging through the
    /// configuration.
    #[test]
    fn merge_threshold_config_is_honored() {
        let config = StoreConfig::column(Layout::VerticallyPartitioned).with_merge_threshold(2);
        let db = Database::open(dataset(), config).expect("opens");
        db.insert([("<a>", "<type>", "<Text>")]).expect("inserts");
        assert_eq!(db.pending_delta(), 1);
        db.insert([("<b>", "<type>", "<Text>")]).expect("inserts");
        assert_eq!(db.pending_delta(), 0, "threshold reached: auto-merged");
    }

    /// A declined delta must leave the logical data set untouched: the
    /// dataset and the engine may never diverge.
    #[test]
    fn rejected_delta_does_not_mutate_the_dataset() {
        use crate::engine::{Engine, Footprint};
        use swans_plan::naive;
        use swans_storage::StorageManager;

        /// Read-only engine: keeps the default (declining) write path and
        /// the default (absent) snapshot fork — reads go through the
        /// writer lock.
        struct ReadOnlyEngine {
            triples: Vec<swans_rdf::Triple>,
        }
        impl Engine for ReadOnlyEngine {
            fn name(&self) -> &'static str {
                "read-only"
            }
            fn load(
                &mut self,
                _storage: &StorageManager,
                dataset: &Dataset,
                _layout: Layout,
                _compression: bool,
            ) -> Result<(), crate::EngineError> {
                self.triples = dataset.triples.clone();
                Ok(())
            }
            fn execute(&self, plan: &Plan) -> Result<ResultSet, crate::EngineError> {
                Ok(ResultSet::new(
                    naive::execute(plan, &self.triples),
                    plan.output_kinds(),
                ))
            }
            fn footprint(&self) -> Footprint {
                Footprint {
                    has_triple_store: true,
                    property_tables: 0,
                }
            }
        }

        let db = Database::open_with_engine(
            dataset(),
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
            Box::new(ReadOnlyEngine { triples: vec![] }),
        )
        .expect("loads");
        // No fork: sessions are unavailable, plain queries still answer.
        assert!(db.session().is_err());
        assert!(!db.snapshot().isolated());
        assert_eq!(
            db.query("SELECT ?s WHERE { ?s <type> <Text> }")
                .expect("fallback reads work")
                .len(),
            2
        );
        let before = db.dataset().len();
        assert!(matches!(
            db.insert([("<x>", "<type>", "<Text>")]),
            Err(Error::Engine(_))
        ));
        assert_eq!(db.dataset().len(), before, "triple bag must not diverge");
        assert!(matches!(
            db.delete([("<s1>", "<type>", "<Text>")]),
            Err(Error::Engine(_))
        ));
        assert_eq!(db.dataset().len(), before);
    }

    /// The snapshot publication protocol in one thread: a pinned session
    /// keeps its version's answers while commits publish newer versions,
    /// and versions increase monotonically.
    #[test]
    fn pinned_session_is_isolated_from_later_commits() {
        let db = Database::open(
            dataset(),
            StoreConfig::column(Layout::VerticallyPartitioned),
        )
        .expect("opens");
        let q = "SELECT ?s WHERE { ?s <type> <Text> }";
        let session = db.session().expect("built-in engines fork");
        let v0 = session.version();
        let before = session.query(q).expect("queries").decoded();

        db.insert([("<s9>", "<type>", "<Text>")]).expect("inserts");
        db.merge().expect("merges");

        // The pinned session still answers from its version...
        assert_eq!(session.query(q).expect("queries").decoded(), before);
        assert_eq!(session.version(), v0);
        // ...while a fresh read sees the new version.
        assert_eq!(db.query(q).expect("queries").len(), before.len() + 1);
        assert!(db.snapshot().version() > v0, "versions are monotone");
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU32, Ordering};
        static N: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "swans-db-{}-{}-{}",
            tag,
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// The durable lifecycle end to end: import, mutate, kill (drop),
    /// reopen — under every engine × layout, and the directory written
    /// under one configuration reopens under every other.
    #[test]
    #[cfg_attr(miri, ignore)] // real file I/O
    fn durable_directory_reopens_under_every_configuration() {
        let dir = scratch("reopen");
        let q = "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }";
        {
            let db = Database::import_at(
                &dir,
                dataset(),
                StoreConfig::column(Layout::VerticallyPartitioned),
                DurabilityOptions::default(),
            )
            .expect("imports");
            db.insert([("<s4>", "<type>", "<Text>"), ("<s4>", "<lang>", "\"deu\"")])
                .expect("inserts");
            db.delete([("<s2>", "<lang>", "\"eng\"")]).expect("deletes");
            assert!(db.wal_bytes().unwrap() > 0, "batches logged");
            // No checkpoint, no merge: the WAL tail alone must carry the
            // mutations through the reopen.
        }
        let expected = vec![
            vec!["<s1>".to_string(), "\"fre\"".to_string()],
            vec!["<s4>".to_string(), "\"deu\"".to_string()],
        ];
        for config in all_configs() {
            let label = config.label();
            let db = Database::open_at(&dir, config).unwrap_or_else(|e| panic!("{label}: {e}"));
            let report = db.recovery_report().expect("durable");
            assert_eq!(report.replayed_batches, 2, "{label}");
            assert!(report.snapshot_triples > 0, "{label}");
            let mut rows = db
                .query(q)
                .unwrap_or_else(|e| panic!("{label}: {e}"))
                .decoded();
            rows.sort();
            assert_eq!(rows, expected, "{label} recovered state disagrees");
        }
        let _ = std::fs::remove_dir_all(dir);
    }

    /// A threshold-triggered engine merge checkpoints automatically: the
    /// WAL is truncated without any explicit merge()/checkpoint() call.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn auto_merge_checkpoints_durable_databases() {
        let dir = scratch("automerge");
        let config = StoreConfig::column(Layout::VerticallyPartitioned).with_merge_threshold(2);
        let db = Database::import_at(&dir, dataset(), config, DurabilityOptions::default())
            .expect("imports");
        db.insert([("<a>", "<type>", "<Text>")]).expect("inserts");
        assert!(db.wal_bytes().unwrap() > 0);
        db.insert([("<b>", "<type>", "<Text>")]).expect("inserts");
        assert_eq!(db.pending_delta(), 0, "threshold reached: auto-merged");
        assert_eq!(db.wal_bytes(), Some(0), "auto-merge checkpointed");
        // The checkpoint is complete: a reopen replays nothing.
        drop(db);
        let db = Database::open_at(&dir, StoreConfig::row(Layout::VerticallyPartitioned))
            .expect("reopens");
        assert_eq!(db.recovery_report().unwrap().replayed_batches, 0);
        assert_eq!(
            db.query("SELECT ?s WHERE { ?s <type> <Text> }")
                .expect("queries")
                .len(),
            4
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    /// Durable fsync accounting reaches the store's IoStats window.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn durable_syncs_are_accounted() {
        let dir = scratch("syncs");
        let db = Database::open_at(&dir, StoreConfig::column(Layout::VerticallyPartitioned))
            .expect("opens");
        let before = db.storage().stats();
        db.insert([("<s1>", "<type>", "<Text>")]).expect("inserts");
        let after = db.storage().stats().since(&before);
        assert!(after.syncs >= 1, "commit must fsync");
        assert!(after.bytes_synced > 0);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn benchmark_wrapper_still_runs() {
        use swans_datagen::{generate, BartonConfig};
        let ds = generate(&BartonConfig {
            scale: 0.0004,
            seed: 11,
            n_properties: 40,
        });
        let db =
            Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned)).expect("opens");
        let ctx = db.benchmark_context(20);
        let run = db.run_benchmark(QueryId::Q1, &ctx);
        assert!(!run.rows.is_empty());
    }
}
