//! [`Database`]: the front door of the system.
//!
//! One type owns the whole pipeline the paper could not get out of
//! C-Store: a data set plus its dictionary, a physical configuration, and
//! a SPARQL entry point that parses, plans, optimizes, lowers and executes
//! an *arbitrary* query on whatever engine × layout was opened — returning
//! decoded term strings, not raw dictionary codes.

use std::sync::Arc;

use swans_plan::algebra::Plan;
use swans_plan::queries::{QueryContext, QueryId};
use swans_plan::sparql::compile_sparql;
use swans_rdf::Dataset;

use crate::error::Error;
use crate::result::ResultSet;
use crate::store::{QueryRun, RdfStore, StoreConfig};
use crate::Engine;

/// A data set opened in one physical configuration, queryable with SPARQL.
///
/// ```no_run
/// use swans_core::{Database, Layout, StoreConfig};
/// use swans_datagen::{generate, BartonConfig};
///
/// let dataset = generate(&BartonConfig::with_triples(100_000));
/// let db = Database::open(dataset, StoreConfig::column(Layout::VerticallyPartitioned))?;
/// let results = db.query(
///     "SELECT ?s ?org WHERE {
///          ?s <type> <Text> .
///          ?s <language> <language/iso639-2b/fre> .
///          ?s <origin> ?org
///      }",
/// )?;
/// println!("{:?}", results.columns());
/// for row in &results {
///     println!("{}", row.join("  "));
/// }
/// # Ok::<(), swans_core::Error>(())
/// ```
pub struct Database {
    dataset: Arc<Dataset>,
    store: RdfStore,
}

impl Database {
    /// Opens `dataset` under `config` with the built-in engine the
    /// configuration names.
    pub fn open(dataset: impl Into<Arc<Dataset>>, config: StoreConfig) -> Result<Self, Error> {
        let dataset = dataset.into();
        let store = RdfStore::try_load(&dataset, config)?;
        Ok(Self { dataset, store })
    }

    /// Opens `dataset` on a caller-provided [`Engine`] implementation —
    /// the third-party plug-in point.
    pub fn open_with_engine(
        dataset: impl Into<Arc<Dataset>>,
        config: StoreConfig,
        engine: Box<dyn Engine>,
    ) -> Result<Self, Error> {
        let dataset = dataset.into();
        let store = RdfStore::with_engine(&dataset, config, engine)?;
        Ok(Self { dataset, store })
    }

    /// The data set this database serves.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The underlying store (configuration, storage manager, engine).
    pub fn store(&self) -> &RdfStore {
        &self.store
    }

    /// The loaded configuration.
    pub fn config(&self) -> &StoreConfig {
        self.store.config()
    }

    /// Compiles `sparql` for this database's layout: parse → plan →
    /// optimize → (lower onto property tables when vertically partitioned).
    fn compile(&self, sparql: &str) -> Result<swans_plan::CompiledQuery, Error> {
        Ok(compile_sparql(
            sparql,
            &self.dataset,
            self.store.config().layout.scheme(),
        )?)
    }

    /// Parses, plans and executes a SPARQL query, returning decoded,
    /// lazily iterable results. Works identically on every engine × layout
    /// configuration.
    pub fn query(&self, sparql: &str) -> Result<ResultSet, Error> {
        let compiled = self.compile(sparql)?;
        let results = self.store.execute_plan(&compiled.plan)?;
        Ok(results
            .with_columns(compiled.columns)
            .with_dataset(self.dataset.clone()))
    }

    /// Like [`Database::query`], but also reports the timing and I/O of
    /// the execution under the benchmark measurement protocol.
    ///
    /// The returned [`QueryRun`]'s `rows` field is empty: the rows are
    /// moved into the [`ResultSet`] (reachable encoded via
    /// [`ResultSet::ids`]) rather than materialized twice.
    pub fn query_timed(&self, sparql: &str) -> Result<(ResultSet, QueryRun), Error> {
        let compiled = self.compile(sparql)?;
        let mut run = self.store.run_plan(&compiled.plan)?;
        let rows = std::mem::take(&mut run.rows);
        let results = ResultSet::new(rows, compiled.plan.output_kinds())
            .with_columns(compiled.columns)
            .with_dataset(self.dataset.clone());
        Ok((results, run))
    }

    /// Returns the optimized plan tree `sparql` would execute — already
    /// lowered for this database's layout. Render it with
    /// [`Plan::explain`].
    pub fn explain(&self, sparql: &str) -> Result<Plan, Error> {
        Ok(self.compile(sparql)?.plan)
    }

    /// Executes a raw logical plan (the algebra-level escape hatch),
    /// decoding results through this database's dictionary.
    pub fn execute_plan(&self, plan: &Plan) -> Result<ResultSet, Error> {
        let results = self.store.execute_plan(plan)?;
        Ok(results.with_dataset(self.dataset.clone()))
    }

    /// Runs benchmark query `q` through the paper's measurement protocol
    /// (the thin wrapper over the pre-`Database` benchmark path).
    pub fn run_benchmark(&self, q: QueryId, ctx: &QueryContext) -> QueryRun {
        self.store.run_query(q, ctx)
    }

    /// A [`QueryContext`] resolving the benchmark constants against this
    /// data set.
    pub fn benchmark_context(&self, n_interesting: usize) -> QueryContext {
        QueryContext::from_dataset(&self.dataset, n_interesting)
    }

    /// Empties the buffer pool so the next query runs cold.
    pub fn make_cold(&self) {
        self.store.make_cold();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Layout;
    use swans_rdf::SortOrder;

    fn dataset() -> Dataset {
        let mut ds = Dataset::new();
        ds.add("<s1>", "<type>", "<Text>");
        ds.add("<s2>", "<type>", "<Text>");
        ds.add("<s3>", "<type>", "<Date>");
        ds.add("<s1>", "<lang>", "\"fre\"");
        ds.add("<s2>", "<lang>", "\"eng\"");
        ds.add("<s3>", "<lang>", "\"fre\"");
        ds
    }

    fn all_configs() -> Vec<StoreConfig> {
        vec![
            StoreConfig::row(Layout::TripleStore(SortOrder::Spo)),
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
            StoreConfig::row(Layout::VerticallyPartitioned),
            StoreConfig::column(Layout::TripleStore(SortOrder::Spo)),
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
            StoreConfig::column(Layout::VerticallyPartitioned),
        ]
    }

    /// The acceptance criterion of the API redesign: a hand-written SPARQL
    /// string executes on all six engine × layout configurations and
    /// returns *decoded*, identical term strings.
    #[test]
    fn query_decodes_identically_on_all_six_configurations() {
        let ds = dataset();
        let q = "SELECT ?s ?l WHERE { ?s <type> <Text> . ?s <lang> ?l }";
        let mut reference: Option<Vec<Vec<String>>> = None;
        for config in all_configs() {
            let label = config.label();
            let db = Database::open(ds.clone(), config).expect("opens");
            let results = db.query(q).unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(results.columns(), ["s", "l"]);
            let mut rows = results.decoded();
            rows.sort();
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(r, &rows, "{label} disagrees"),
            }
        }
        let rows = reference.unwrap();
        assert_eq!(
            rows,
            vec![
                vec!["<s1>".to_string(), "\"fre\"".to_string()],
                vec!["<s2>".to_string(), "\"eng\"".to_string()],
            ]
        );
    }

    #[test]
    fn aggregation_decodes_counts_as_numbers() {
        let ds = dataset();
        let db =
            Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned)).expect("opens");
        let results = db
            .query("SELECT ?t (COUNT(*) AS ?n) WHERE { ?s <type> ?t } GROUP BY ?t")
            .expect("aggregates");
        assert_eq!(results.columns(), ["t", "n"]);
        let mut rows = results.decoded();
        rows.sort();
        assert_eq!(
            rows,
            vec![
                vec!["<Date>".to_string(), "1".to_string()],
                vec!["<Text>".to_string(), "2".to_string()],
            ]
        );
    }

    #[test]
    fn errors_are_typed_per_stage() {
        let db = Database::open(
            dataset(),
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
        )
        .expect("opens");
        assert!(matches!(db.query("FROB"), Err(Error::Parse(_))));
        assert!(matches!(
            db.query("SELECT ?s WHERE { ?s <missing> ?o }"),
            Err(Error::Plan(_))
        ));
        assert!(matches!(
            db.query("SELECT ?a ?b WHERE { ?a <type> <Text> . ?b <lang> \"fre\" }"),
            Err(Error::Plan(_))
        ));
        let bad_config = StoreConfig::row(Layout::TripleStore(SortOrder::Pso)).with_pool_pages(0);
        assert!(matches!(
            Database::open(dataset(), bad_config),
            Err(Error::Config(_))
        ));
    }

    #[test]
    fn explain_returns_the_lowered_optimized_plan() {
        let ds = dataset();
        let tri = Database::open(
            ds.clone(),
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        )
        .expect("opens");
        let vp =
            Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned)).expect("opens");
        let q = "SELECT ?s WHERE { ?s <type> <Text> }";
        let tri_plan = tri.explain(q).expect("explains").explain();
        let vp_plan = vp.explain(q).expect("explains").explain();
        // The optimizer fused the bound positions into the scans.
        assert!(tri_plan.contains("ScanTriples"), "{tri_plan}");
        assert!(vp_plan.contains("ScanProperty"), "{vp_plan}");
    }

    #[test]
    fn query_timed_reports_io_for_cold_runs() {
        let db = Database::open(
            dataset(),
            StoreConfig::column(Layout::VerticallyPartitioned),
        )
        .expect("opens");
        db.make_cold();
        let (results, run) = db
            .query_timed("SELECT ?s WHERE { ?s <type> <Text> }")
            .expect("runs");
        assert_eq!(results.len(), 2);
        assert!(run.rows.is_empty(), "rows move into the ResultSet");
        assert!(run.io.bytes_read > 0, "cold run must read");
        assert!(run.real_seconds >= run.user_seconds);
    }

    #[test]
    fn benchmark_wrapper_still_runs() {
        use swans_datagen::{generate, BartonConfig};
        let ds = generate(&BartonConfig {
            scale: 0.0004,
            seed: 11,
            n_properties: 40,
        });
        let db =
            Database::open(ds, StoreConfig::column(Layout::VerticallyPartitioned)).expect("opens");
        let ctx = db.benchmark_context(20);
        let run = db.run_benchmark(QueryId::Q1, &ctx);
        assert!(!run.rows.is_empty());
    }
}
