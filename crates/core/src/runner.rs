//! The measurement protocol of §2.3 and the Table 4/6/7 experiment driver.

use swans_plan::queries::{QueryContext, QueryId};

use crate::store::RdfStore;

/// Averaged timings for one (configuration, query, temperature) cell.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Average wall+I/O seconds (the paper's *real time*).
    pub real_seconds: f64,
    /// Average compute seconds (the paper's *user time*).
    pub user_seconds: f64,
    /// Average bytes read from the simulated disk.
    pub bytes_read: u64,
    /// Rows returned (identical across repetitions).
    pub rows: usize,
}

/// Cold runs: "a run of the query right after a DBMS is started and no
/// data is preloaded" — the pool is emptied before *every* repetition, and
/// the average of `repeats` runs is reported (the paper uses 3).
pub fn measure_cold(
    store: &RdfStore,
    q: QueryId,
    ctx: &QueryContext,
    repeats: usize,
) -> Measurement {
    let repeats = repeats.max(1);
    let mut real = 0.0;
    let mut user = 0.0;
    let mut bytes = 0u64;
    let mut rows = 0usize;
    for _ in 0..repeats {
        store.make_cold();
        let run = store.run_query(q, ctx);
        real += run.real_seconds;
        user += run.user_seconds;
        bytes += run.io.bytes_read;
        rows = run.rows.len();
    }
    Measurement {
        real_seconds: real / repeats as f64,
        user_seconds: user / repeats as f64,
        bytes_read: bytes / repeats as u64,
        rows,
    }
}

/// Hot runs: "repeated runs of the same query without stopping the DBMS,
/// ignoring the initial (semi) cold run" — one warm-up execution, then the
/// average of `repeats` measured runs.
pub fn measure_hot(
    store: &RdfStore,
    q: QueryId,
    ctx: &QueryContext,
    repeats: usize,
) -> Measurement {
    let repeats = repeats.max(1);
    let _ = store.run_query(q, ctx); // warm-up, discarded
    let mut real = 0.0;
    let mut user = 0.0;
    let mut bytes = 0u64;
    let mut rows = 0usize;
    for _ in 0..repeats {
        let run = store.run_query(q, ctx);
        real += run.real_seconds;
        user += run.user_seconds;
        bytes += run.io.bytes_read;
        rows = run.rows.len();
    }
    Measurement {
        real_seconds: real / repeats as f64,
        user_seconds: user / repeats as f64,
        bytes_read: bytes / repeats as u64,
        rows,
    }
}

/// Geometric mean — the paper's summary statistic for query sets (columns
/// G and G\* of Tables 4, 6, 7).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.max(1e-12).ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// One configuration row of Tables 6/7: all 12 queries plus the G, G\*,
/// G\*/G summary.
#[derive(Debug, Clone)]
pub struct ConfigRow {
    /// Configuration label, e.g. `"MonetDB-sim (column) vert/SO"`.
    pub label: String,
    /// Per-query measurements in [`QueryId::ALL`] order.
    pub cells: Vec<Measurement>,
}

impl ConfigRow {
    /// Geometric mean over the initial 7 queries (paper column *G*).
    pub fn g(&self, time: fn(&Measurement) -> f64) -> f64 {
        let base: Vec<f64> = QueryId::ALL
            .iter()
            .zip(&self.cells)
            .filter(|(q, _)| QueryId::BASE7.contains(q))
            .map(|(_, m)| time(m))
            .collect();
        geometric_mean(&base)
    }

    /// Geometric mean over all 12 queries (paper column *G\**).
    pub fn g_star(&self, time: fn(&Measurement) -> f64) -> f64 {
        let all: Vec<f64> = self.cells.iter().map(time).collect();
        geometric_mean(&all)
    }

    /// The paper's G\*/G column: the relative increase when moving from the
    /// restricted 7-query set to the full 12-query set.
    pub fn g_ratio(&self, time: fn(&Measurement) -> f64) -> f64 {
        let g = self.g(time);
        if g <= 0.0 {
            return 0.0;
        }
        self.g_star(time) / g
    }
}

/// Runs all 12 queries against `store` at the given temperature.
pub fn run_all_queries(
    store: &RdfStore,
    ctx: &QueryContext,
    cold: bool,
    repeats: usize,
) -> ConfigRow {
    let cells = QueryId::ALL
        .iter()
        .map(|&q| {
            if cold {
                measure_cold(store, q, ctx, repeats)
            } else {
                measure_hot(store, q, ctx, repeats)
            }
        })
        .collect();
    ConfigRow {
        label: store.config().label(),
        cells,
    }
}

/// Accessor for real time (for [`ConfigRow::g`] etc.).
pub fn real(m: &Measurement) -> f64 {
    m.real_seconds
}

/// Accessor for user time.
pub fn user(m: &Measurement) -> f64 {
    m.user_seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{Layout, StoreConfig};
    use swans_datagen::{generate, BartonConfig};

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        // Unlike the arithmetic mean, one outlier does not dominate.
        let g = geometric_mean(&[1.0, 1.0, 1.0, 1000.0]);
        assert!(g < 6.0);
    }

    #[test]
    fn cold_and_hot_protocols() {
        let ds = generate(&BartonConfig {
            scale: 0.0004,
            seed: 5,
            n_properties: 40,
        });
        let ctx = QueryContext::from_dataset(&ds, 20);
        let store = RdfStore::load(&ds, StoreConfig::column(Layout::VerticallyPartitioned));
        let cold = measure_cold(&store, QueryId::Q1, &ctx, 2);
        let hot = measure_hot(&store, QueryId::Q1, &ctx, 2);
        assert!(cold.bytes_read > 0);
        assert_eq!(hot.bytes_read, 0);
        assert!(cold.real_seconds >= hot.real_seconds);
        assert_eq!(cold.rows, hot.rows);
    }

    #[test]
    fn config_row_summaries() {
        let cells: Vec<Measurement> = (1..=12)
            .map(|i| Measurement {
                real_seconds: i as f64,
                user_seconds: i as f64 / 2.0,
                bytes_read: 0,
                rows: 0,
            })
            .collect();
        let row = ConfigRow {
            label: "test".into(),
            cells,
        };
        // BASE7 = q1,q2,q3,q4,q5,q6,q7 → positions 1,2,4,6,8,9,11 (1-based
        // values 1,2,4,6,8,9,11).
        let g = row.g(real);
        let want = geometric_mean(&[1.0, 2.0, 4.0, 6.0, 8.0, 9.0, 11.0]);
        assert!((g - want).abs() < 1e-9);
        assert!(row.g_star(real) > 0.0);
        assert!(row.g_ratio(real) > 1.0);
    }
}
