//! The typed error of the query-facing API.
//!
//! Every stage of the pipeline — parsing, planning, engine execution,
//! configuration — reports through one [`Error`], so callers of
//! [`Database`](crate::Database) handle a single type instead of a panic
//! per layer.

use swans_plan::exec::EngineError;
use swans_plan::sparql::SparqlError;

/// Anything that can go wrong between a query string and its results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The SPARQL text did not parse.
    Parse(String),
    /// The query parsed but could not be planned: an unsupported construct,
    /// a constant missing from the data set, or an unbound variable.
    Plan(String),
    /// The engine rejected the plan at execution time.
    Engine(EngineError),
    /// The store configuration is invalid.
    Config(String),
    /// Durable storage failed: a write-ahead append, a checkpoint, or
    /// recovery from disk. The batch that triggered it was **not**
    /// acknowledged — on reopen the database reflects only acknowledged
    /// batches.
    Io(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Plan(m) => write!(f, "planning error: {m}"),
            Error::Engine(e) => write!(f, "engine error: {e}"),
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::Io(m) => write!(f, "I/O error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SparqlError> for Error {
    fn from(e: SparqlError) -> Self {
        match e {
            SparqlError::Parse(m) => Error::Parse(m),
            other => Error::Plan(other.to_string()),
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        match e {
            // An engine-level I/O failure is a database-level I/O failure:
            // callers match one variant regardless of which layer hit disk.
            EngineError::Io(m) => Error::Io(m),
            other => Error::Engine(other),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparql_errors_split_into_parse_and_plan() {
        assert_eq!(
            Error::from(SparqlError::Parse("boom".into())),
            Error::Parse("boom".into())
        );
        assert!(matches!(
            Error::from(SparqlError::UnknownTerm("<x>".into())),
            Error::Plan(_)
        ));
        assert!(matches!(
            Error::from(SparqlError::UnboundVariable("v".into())),
            Error::Plan(_)
        ));
        assert!(matches!(
            Error::from(SparqlError::Unsupported("u".into())),
            Error::Plan(_)
        ));
    }

    #[test]
    fn io_errors_unify_across_layers() {
        assert_eq!(
            Error::from(EngineError::Io("fsync failed".into())),
            Error::Io("fsync failed".into())
        );
        let e = Error::from(std::io::Error::other("torn write"));
        assert!(matches!(&e, Error::Io(m) if m.contains("torn write")));
        assert!(e.to_string().contains("I/O error"));
    }

    #[test]
    fn engine_errors_keep_their_source() {
        use std::error::Error as _;
        let e = Error::from(EngineError::MissingTripleStore);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("triple-store"));
    }
}
