//! [`RdfStore`]: one loaded (engine × layout × machine) configuration.
//!
//! The store owns a [`StorageManager`] and a `Box<dyn Engine>` — dispatch
//! goes through the [`Engine`] trait, so the two built-in engines and any
//! third-party implementation are handled identically, and executing a
//! plan the engine cannot run returns a typed error instead of panicking.

use swans_colstore::ColumnEngine;
use swans_plan::algebra::Plan;
use swans_plan::exec::{EngineError, QueryBudget};
use swans_plan::queries::{build_plan, QueryContext, QueryId, Scheme};
use swans_rdf::{Dataset, SortOrder};
use swans_rowstore::RowEngine;
use swans_storage::{IoStats, MachineProfile, StorageManager};

use crate::engine::Engine;
use crate::error::Error;
use crate::result::ResultSet;

/// Which engine architecture executes the queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Tuple-at-a-time row store with B+tree access paths (the paper's
    /// "DBX" stand-in).
    Row,
    /// Column-at-a-time vectorized engine with full-column reads (the
    /// paper's MonetDB/SQL stand-in).
    Column,
}

impl EngineKind {
    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Row => "DBX-sim (row)",
            EngineKind::Column => "MonetDB-sim (column)",
        }
    }

    /// Instantiates an empty engine of this kind.
    pub fn create(self) -> Box<dyn Engine> {
        match self {
            EngineKind::Row => Box::new(RowEngine::new()),
            EngineKind::Column => Box::new(ColumnEngine::new()),
        }
    }
}

/// The physical RDF layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// One `triples(s, p, o)` table clustered by the given order. The row
    /// engine gets the paper's index sets (§4.1): SPO → unclustered POS,
    /// OSP; PSO → all five other permutations.
    TripleStore(SortOrder),
    /// One `(subject, object)` table per property, sorted/clustered SO with
    /// an unclustered OS index (§4.2).
    VerticallyPartitioned,
}

impl Layout {
    /// The scheme the query generator should target.
    pub fn scheme(self) -> Scheme {
        match self {
            Layout::TripleStore(_) => Scheme::TripleStore,
            Layout::VerticallyPartitioned => Scheme::VerticallyPartitioned,
        }
    }

    /// Display name, e.g. `"triple/PSO"`.
    pub fn name(self) -> String {
        match self {
            Layout::TripleStore(o) => format!("triple/{o}"),
            Layout::VerticallyPartitioned => "vert/SO".to_string(),
        }
    }
}

/// Configuration for loading an [`RdfStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Engine architecture.
    pub engine: EngineKind,
    /// Physical layout.
    pub layout: Layout,
    /// Simulated machine (Table 3). Defaults to machine B, the paper's
    /// §4 test-bed.
    pub machine: MachineProfile,
    /// Buffer-pool capacity in pages (`None` = unbounded, the paper's
    /// data-fits-in-RAM setting).
    pub pool_pages: Option<usize>,
    /// Column-store leading-column RLE compression.
    pub compression: bool,
    /// Buffered-mutation count at which the engine should merge its write
    /// store automatically (`None` = the engine's own default).
    pub merge_threshold: Option<usize>,
    /// Intra-query worker threads for engines with morsel-parallel
    /// execution (the column engine). 1 = sequential, the default.
    pub threads: usize,
    /// Pre-execution plan verification override (`None` = the engine's
    /// own default: the column engine verifies in debug builds and skips
    /// in release). `Some(true)` opts a release build into the static
    /// checker; `Some(false)` silences it even in debug.
    pub verify: Option<bool>,
}

impl StoreConfig {
    /// A row-store configuration on machine B.
    pub fn row(layout: Layout) -> Self {
        Self {
            engine: EngineKind::Row,
            layout,
            machine: MachineProfile::B,
            pool_pages: None,
            compression: false,
            merge_threshold: None,
            threads: 1,
            verify: None,
        }
    }

    /// A column-store configuration on machine B (compression on, as the
    /// leading sorted column is trivially RLE-compressible).
    pub fn column(layout: Layout) -> Self {
        Self {
            engine: EngineKind::Column,
            layout,
            machine: MachineProfile::B,
            pool_pages: None,
            compression: true,
            merge_threshold: None,
            threads: 1,
            verify: None,
        }
    }

    /// Overrides the machine profile.
    pub fn on_machine(mut self, machine: MachineProfile) -> Self {
        self.machine = machine;
        self
    }

    /// Restricts the buffer pool (the C-Store stand-in).
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = Some(pages);
        self
    }

    /// Sets the buffered-mutation count at which the engine merges its
    /// write store automatically.
    pub fn with_merge_threshold(mut self, ops: usize) -> Self {
        self.merge_threshold = Some(ops);
        self
    }

    /// Sets the intra-query worker count: engines with morsel-parallel
    /// execution (the column engine) run partitioned operators on up to
    /// `threads` scoped threads. Answers are identical at every width —
    /// only wall-clock changes.
    ///
    /// ```
    /// use swans_core::{Database, Layout, StoreConfig};
    /// use swans_rdf::Dataset;
    ///
    /// let mut ds = Dataset::new();
    /// ds.add("<s1>", "<type>", "<Text>");
    /// ds.add("<s2>", "<type>", "<Date>");
    /// let config = StoreConfig::column(Layout::VerticallyPartitioned).with_threads(4);
    /// let db = Database::open(ds, config)?;
    /// let results = db.query("SELECT ?s WHERE { ?s <type> <Text> }")?;
    /// assert_eq!(results.decoded(), vec![vec!["<s1>".to_string()]]);
    /// # Ok::<(), swans_core::Error>(())
    /// ```
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Opts into (or out of) pre-execution plan verification: the static
    /// checker in `swans_plan::verify` runs on every plan the engine
    /// executes, so an unjustifiable physical-property claim surfaces as
    /// a typed error naming the offending operator instead of a wrong
    /// answer. The column engine verifies in debug builds regardless;
    /// `with_verify(true)` extends that to release builds (the check is
    /// one linear plan walk — negligible next to execution), and
    /// `with_verify(false)` silences it everywhere.
    pub fn with_verify(mut self, on: bool) -> Self {
        self.verify = Some(on);
        self
    }

    /// Human-readable configuration label.
    pub fn label(&self) -> String {
        format!("{} {}", self.engine.name(), self.layout.name())
    }

    /// Checks the configuration for contradictions, describing the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.pool_pages == Some(0) {
            return Err("buffer pool of 0 pages cannot hold any data".into());
        }
        if self.threads == 0 {
            return Err("worker pool needs at least one thread".into());
        }
        let bw = self.machine.io_read_mb_s;
        if bw.is_nan() || bw <= 0.0 {
            return Err(format!(
                "machine profile needs positive read bandwidth (got {bw})"
            ));
        }
        let seek = self.machine.seek_ms;
        if seek.is_nan() || seek < 0.0 {
            return Err(format!(
                "machine profile needs a non-negative seek penalty (got {seek})"
            ));
        }
        Ok(())
    }
}

/// The result and cost of one query execution.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Result rows (dictionary-encoded).
    pub rows: Vec<Vec<u64>>,
    /// Measured compute seconds (the paper's *user time*).
    pub user_seconds: f64,
    /// Compute + simulated I/O wait (the paper's *real time*).
    pub real_seconds: f64,
    /// I/O performed during this execution.
    pub io: IoStats,
}

/// A loaded store: a data set materialized in one physical configuration,
/// executing plans through an [`Engine`] trait object.
pub struct RdfStore {
    config: StoreConfig,
    storage: StorageManager,
    engine: Box<dyn Engine>,
}

impl RdfStore {
    /// Loads `dataset` under `config` with the built-in engine the
    /// configuration names. Loading (sorting, index builds, segment
    /// registration) happens outside the measured window, matching the
    /// benchmark convention of §2.3.
    pub fn try_load(dataset: &Dataset, config: StoreConfig) -> Result<Self, Error> {
        let engine = config.engine.create();
        Self::with_engine(dataset, config, engine)
    }

    /// Loads `dataset` into a caller-provided engine — the plug-in point
    /// for third-party [`Engine`] implementations. `config.engine` is kept
    /// only as a label; dispatch goes through the trait object.
    pub fn with_engine(
        dataset: &Dataset,
        config: StoreConfig,
        mut engine: Box<dyn Engine>,
    ) -> Result<Self, Error> {
        config.validate().map_err(Error::Config)?;
        let storage = match config.pool_pages {
            Some(pages) => StorageManager::with_pool(config.machine, pages),
            None => StorageManager::new(config.machine),
        };
        if let Some(ops) = config.merge_threshold {
            engine.set_merge_threshold(ops);
        }
        engine.set_threads(config.threads);
        if let Some(on) = config.verify {
            engine.set_verify(on);
        }
        engine.load(&storage, dataset, config.layout, config.compression)?;
        // Loading touched nothing through the pool, but be explicit: the
        // first run must observe a cold system with zeroed counters.
        storage.clear_pool();
        storage.reset_stats();
        Ok(Self {
            config,
            storage,
            engine,
        })
    }

    /// [`RdfStore::try_load`] for benchmark call sites that treat a broken
    /// configuration as fatal.
    ///
    /// # Panics
    /// Panics if the configuration is invalid or the engine rejects the
    /// load — use [`RdfStore::try_load`] to handle these as values.
    pub fn load(dataset: &Dataset, config: StoreConfig) -> Self {
        let label = config.label();
        Self::try_load(dataset, config).unwrap_or_else(|e| panic!("failed to load {label}: {e}"))
    }

    /// The loaded configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The engine executing this store's plans.
    pub fn engine(&self) -> &dyn Engine {
        self.engine.as_ref()
    }

    /// The storage manager (I/O statistics, traces, pool control).
    pub fn storage(&self) -> &StorageManager {
        &self.storage
    }

    /// Total on-disk footprint of this layout in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.storage.total_bytes()
    }

    /// Empties the buffer pool so the next execution runs cold.
    pub fn make_cold(&self) {
        self.storage.clear_pool();
    }

    /// Applies a batch of mutations through the engine's write path,
    /// charging the storage layer for the delta (and for any
    /// threshold-triggered merge).
    pub fn apply(&mut self, delta: &swans_rdf::Delta) -> Result<(), Error> {
        self.engine.apply(&self.storage, delta)?;
        Ok(())
    }

    /// Merges any buffered mutations into the primary sorted layout.
    pub fn merge(&mut self) -> Result<(), Error> {
        self.engine.merge(&self.storage)?;
        Ok(())
    }

    /// Number of applied-but-unmerged mutations buffered by the engine.
    pub fn pending_delta(&self) -> usize {
        self.engine.pending_delta()
    }

    /// Lifetime engine merge count (see [`Engine::merges`]).
    pub fn merges(&self) -> u64 {
        self.engine.merges()
    }

    /// The physical-property context EXPLAIN annotations should use for
    /// this store's engine state.
    pub fn explain_context(&self) -> swans_plan::props::PropsContext {
        self.engine.explain_context()
    }

    /// A snapshot fork of the engine (see [`Engine::fork`]): an
    /// independent reader answering exactly the store's current state.
    /// `None` for engines without fork support.
    pub fn fork_engine(&self) -> Option<Box<dyn Engine>> {
        self.engine.fork()
    }

    /// Executes a raw logical plan (no timing), returning the encoded
    /// result set.
    pub fn execute_plan(&self, plan: &Plan) -> Result<ResultSet, EngineError> {
        self.engine.execute(plan)
    }

    /// [`RdfStore::execute_plan`] under a resource budget: the deadline,
    /// cancellation token, and memory limit in `budget` are honoured
    /// cooperatively by the engine; a tripped budget surfaces as
    /// [`EngineError::Cancelled`].
    pub fn execute_plan_budgeted(
        &self,
        plan: &Plan,
        budget: &QueryBudget,
    ) -> Result<ResultSet, EngineError> {
        self.engine.execute_budgeted(plan, budget)
    }

    /// Executes an arbitrary plan under the measurement protocol.
    pub fn run_plan(&self, plan: &Plan) -> Result<QueryRun, EngineError> {
        crate::snapshot::run_plan_on(self.engine.as_ref(), &self.storage, plan)
    }

    /// Builds and executes benchmark query `q`, measuring user/real time
    /// and I/O. Whether the run is cold or hot depends on the pool state —
    /// use [`RdfStore::make_cold`] or prior executions to set it up.
    ///
    /// This is the thin wrapper the experiment drivers (Tables 4/6/7, the
    /// figure sweeps) run on. The generator always produces a valid plan
    /// for this store's own layout, so engine errors cannot occur here;
    /// should an engine misbehave anyway, the benchmark treats that as
    /// fatal.
    pub fn run_query(&self, q: QueryId, ctx: &QueryContext) -> QueryRun {
        let plan = build_plan(q, self.config.layout.scheme(), ctx);
        self.run_plan(&plan).unwrap_or_else(|e| {
            panic!("benchmark query {q} failed on {}: {e}", self.config.label())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_datagen::{generate, BartonConfig};
    use swans_plan::naive;

    fn dataset() -> Dataset {
        generate(&BartonConfig {
            scale: 0.0005, // ~25k triples
            seed: 21,
            n_properties: 60,
        })
    }

    /// All six (engine × layout) configurations return identical results
    /// for every benchmark query — the central correctness invariant of
    /// the reproduction.
    #[test]
    fn all_configurations_agree() {
        let ds = dataset();
        let ctx = QueryContext::from_dataset(&ds, 28);
        let configs = [
            StoreConfig::row(Layout::TripleStore(SortOrder::Spo)),
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
            StoreConfig::row(Layout::VerticallyPartitioned),
            StoreConfig::column(Layout::TripleStore(SortOrder::Spo)),
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
            StoreConfig::column(Layout::VerticallyPartitioned),
        ];
        let stores: Vec<RdfStore> = configs
            .iter()
            .map(|c| RdfStore::load(&ds, c.clone()))
            .collect();
        for q in QueryId::ALL {
            let reference = crate::normalize_result(
                q,
                naive::execute(&build_plan(q, Scheme::TripleStore, &ctx), &ds.triples),
            );
            for store in &stores {
                let got = crate::normalize_result(q, store.run_query(q, &ctx).rows);
                assert_eq!(
                    got,
                    reference,
                    "{} disagrees on {q}",
                    store.config().label()
                );
            }
        }
    }

    #[test]
    fn cold_reads_more_than_hot() {
        let ds = dataset();
        let ctx = QueryContext::from_dataset(&ds, 28);
        let store = RdfStore::load(&ds, StoreConfig::column(Layout::VerticallyPartitioned));
        store.make_cold();
        let cold = store.run_query(QueryId::Q2, &ctx);
        let hot = store.run_query(QueryId::Q2, &ctx);
        assert!(cold.io.bytes_read > 0);
        assert_eq!(hot.io.bytes_read, 0, "hot run must be I/O-free");
        assert!(cold.real_seconds > hot.user_seconds);
        assert_eq!(
            crate::normalize_result(QueryId::Q2, cold.rows),
            crate::normalize_result(QueryId::Q2, hot.rows),
        );
    }

    #[test]
    fn triple_store_cold_reads_more_than_vp_on_column_engine() {
        let ds = dataset();
        let ctx = QueryContext::from_dataset(&ds, 28);
        let tri = RdfStore::load(
            &ds,
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        );
        let vp = RdfStore::load(&ds, StoreConfig::column(Layout::VerticallyPartitioned));
        tri.make_cold();
        vp.make_cold();
        // q1 touches only the <type> data: VP reads one table, the triple
        // store reads whole columns (§4.3's explanation).
        let t = tri.run_query(QueryId::Q1, &ctx);
        let v = vp.run_query(QueryId::Q1, &ctx);
        assert!(
            v.io.bytes_read < t.io.bytes_read,
            "VP {}B vs triple {}B",
            v.io.bytes_read,
            t.io.bytes_read
        );
    }

    #[test]
    fn disk_footprint_reported() {
        let ds = dataset();
        let store = RdfStore::load(&ds, StoreConfig::row(Layout::TripleStore(SortOrder::Pso)));
        // triples + 5 secondaries: at least arity*8*n bytes.
        assert!(store.disk_bytes() > ds.len() as u64 * 24);
    }

    /// Dispatch goes through the trait object: a plan for the layout this
    /// store did NOT load yields a typed error, never a panic.
    #[test]
    fn mismatched_plan_is_a_typed_error() {
        let ds = dataset();
        let ctx = QueryContext::from_dataset(&ds, 8);
        let triple_store = RdfStore::load(
            &ds,
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        );
        let vp_plan = build_plan(QueryId::Q1, Scheme::VerticallyPartitioned, &ctx);
        assert_eq!(
            triple_store.run_plan(&vp_plan).unwrap_err(),
            EngineError::MissingVerticalLayout
        );
        let vp_store = RdfStore::load(&ds, StoreConfig::row(Layout::VerticallyPartitioned));
        let tri_plan = build_plan(QueryId::Q1, Scheme::TripleStore, &ctx);
        assert_eq!(
            vp_store.run_plan(&tri_plan).unwrap_err(),
            EngineError::MissingTripleStore
        );
    }

    #[test]
    fn invalid_config_is_rejected() {
        let ds = dataset();
        let bad = StoreConfig::column(Layout::VerticallyPartitioned).with_pool_pages(0);
        assert!(matches!(
            RdfStore::try_load(&ds, bad),
            Err(Error::Config(_))
        ));
        let mut negative = StoreConfig::row(Layout::TripleStore(SortOrder::Pso));
        negative.machine.io_read_mb_s = 0.0;
        assert!(matches!(
            RdfStore::try_load(&ds, negative),
            Err(Error::Config(_))
        ));
    }

    /// Third-party engines plug in through `with_engine`.
    #[test]
    fn custom_engine_plugs_in() {
        use crate::engine::{Engine, Footprint};
        use crate::result::ResultSet;

        /// A trivial engine that keeps the triples in a Vec and answers
        /// through the naive executor.
        struct NaiveEngine {
            triples: Vec<swans_rdf::Triple>,
        }
        impl Engine for NaiveEngine {
            fn name(&self) -> &'static str {
                "naive-sim"
            }
            fn load(
                &mut self,
                _storage: &StorageManager,
                dataset: &Dataset,
                _layout: Layout,
                _compression: bool,
            ) -> Result<(), EngineError> {
                self.triples = dataset.triples.clone();
                Ok(())
            }
            fn execute(&self, plan: &Plan) -> Result<ResultSet, EngineError> {
                plan.validate().map_err(EngineError::InvalidPlan)?;
                Ok(ResultSet::new(
                    naive::execute(plan, &self.triples),
                    plan.output_kinds(),
                ))
            }
            fn footprint(&self) -> Footprint {
                Footprint {
                    has_triple_store: true,
                    property_tables: 0,
                }
            }
        }

        let ds = dataset();
        let ctx = QueryContext::from_dataset(&ds, 28);
        let store = RdfStore::with_engine(
            &ds,
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
            Box::new(NaiveEngine { triples: vec![] }),
        )
        .expect("naive engine loads");
        assert_eq!(store.engine().name(), "naive-sim");
        let q1 = build_plan(QueryId::Q1, Scheme::TripleStore, &ctx);
        let got = crate::normalize_result(QueryId::Q1, store.run_plan(&q1).unwrap().rows);
        let want = crate::normalize_result(QueryId::Q1, naive::execute(&q1, &ds.triples));
        assert_eq!(got, want);
    }
}
