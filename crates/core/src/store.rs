//! [`RdfStore`]: one loaded (engine × layout × machine) configuration.

use std::time::Instant;

use swans_colstore::ColumnEngine;
use swans_plan::algebra::Plan;
use swans_plan::queries::{build_plan, QueryContext, QueryId, Scheme};
use swans_rdf::{Dataset, SortOrder};
use swans_rowstore::engine::TripleIndexConfig;
use swans_rowstore::RowEngine;
use swans_storage::{IoStats, MachineProfile, StorageManager};

/// Which engine architecture executes the queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Tuple-at-a-time row store with B+tree access paths (the paper's
    /// "DBX" stand-in).
    Row,
    /// Column-at-a-time vectorized engine with full-column reads (the
    /// paper's MonetDB/SQL stand-in).
    Column,
}

impl EngineKind {
    /// Display name used in result tables.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Row => "DBX-sim (row)",
            EngineKind::Column => "MonetDB-sim (column)",
        }
    }
}

/// The physical RDF layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// One `triples(s, p, o)` table clustered by the given order. The row
    /// engine gets the paper's index sets (§4.1): SPO → unclustered POS,
    /// OSP; PSO → all five other permutations.
    TripleStore(SortOrder),
    /// One `(subject, object)` table per property, sorted/clustered SO with
    /// an unclustered OS index (§4.2).
    VerticallyPartitioned,
}

impl Layout {
    /// The scheme the query generator should target.
    pub fn scheme(self) -> Scheme {
        match self {
            Layout::TripleStore(_) => Scheme::TripleStore,
            Layout::VerticallyPartitioned => Scheme::VerticallyPartitioned,
        }
    }

    /// Display name, e.g. `"triple/PSO"`.
    pub fn name(self) -> String {
        match self {
            Layout::TripleStore(o) => format!("triple/{o}"),
            Layout::VerticallyPartitioned => "vert/SO".to_string(),
        }
    }
}

/// Configuration for loading an [`RdfStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Engine architecture.
    pub engine: EngineKind,
    /// Physical layout.
    pub layout: Layout,
    /// Simulated machine (Table 3). Defaults to machine B, the paper's
    /// §4 test-bed.
    pub machine: MachineProfile,
    /// Buffer-pool capacity in pages (`None` = unbounded, the paper's
    /// data-fits-in-RAM setting).
    pub pool_pages: Option<usize>,
    /// Column-store leading-column RLE compression.
    pub compression: bool,
}

impl StoreConfig {
    /// A row-store configuration on machine B.
    pub fn row(layout: Layout) -> Self {
        Self {
            engine: EngineKind::Row,
            layout,
            machine: MachineProfile::B,
            pool_pages: None,
            compression: false,
        }
    }

    /// A column-store configuration on machine B (compression on, as the
    /// leading sorted column is trivially RLE-compressible).
    pub fn column(layout: Layout) -> Self {
        Self {
            engine: EngineKind::Column,
            layout,
            machine: MachineProfile::B,
            pool_pages: None,
            compression: true,
        }
    }

    /// Overrides the machine profile.
    pub fn on_machine(mut self, machine: MachineProfile) -> Self {
        self.machine = machine;
        self
    }

    /// Restricts the buffer pool (the C-Store stand-in).
    pub fn with_pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = Some(pages);
        self
    }

    /// Human-readable configuration label.
    pub fn label(&self) -> String {
        format!("{} {}", self.engine.name(), self.layout.name())
    }
}

/// The result and cost of one query execution.
#[derive(Debug, Clone)]
pub struct QueryRun {
    /// Result rows (dictionary-encoded).
    pub rows: Vec<Vec<u64>>,
    /// Measured compute seconds (the paper's *user time*).
    pub user_seconds: f64,
    /// Compute + simulated I/O wait (the paper's *real time*).
    pub real_seconds: f64,
    /// I/O performed during this execution.
    pub io: IoStats,
}

/// A loaded store: a data set materialized in one physical configuration.
pub struct RdfStore {
    config: StoreConfig,
    storage: StorageManager,
    row: Option<RowEngine>,
    col: Option<ColumnEngine>,
}

impl RdfStore {
    /// Loads `dataset` under `config`. Loading (sorting, index builds,
    /// segment registration) happens outside the measured window, matching
    /// the benchmark convention of §2.3.
    pub fn load(dataset: &Dataset, config: StoreConfig) -> Self {
        let storage = match config.pool_pages {
            Some(pages) => StorageManager::with_pool(config.machine, pages),
            None => StorageManager::new(config.machine),
        };
        let mut row = None;
        let mut col = None;
        match config.engine {
            EngineKind::Row => {
                let mut e = RowEngine::new();
                match config.layout {
                    Layout::TripleStore(order) => {
                        let idx = match order {
                            SortOrder::Spo => TripleIndexConfig::spo(),
                            SortOrder::Pso => TripleIndexConfig::pso(),
                            other => TripleIndexConfig {
                                cluster: other,
                                secondaries: vec![],
                            },
                        };
                        e.load_triple_store(&storage, &dataset.triples, &idx);
                    }
                    Layout::VerticallyPartitioned => {
                        e.load_vertical(&storage, &dataset.triples);
                    }
                }
                row = Some(e);
            }
            EngineKind::Column => {
                let mut e = ColumnEngine::new();
                match config.layout {
                    Layout::TripleStore(order) => {
                        e.load_triple_store(
                            &storage,
                            &dataset.triples,
                            order,
                            config.compression,
                        );
                    }
                    Layout::VerticallyPartitioned => {
                        e.load_vertical(&storage, &dataset.triples, config.compression);
                    }
                }
                col = Some(e);
            }
        }
        // Loading touched nothing through the pool, but be explicit: the
        // first run must observe a cold system with zeroed counters.
        storage.clear_pool();
        storage.reset_stats();
        Self {
            config,
            storage,
            row,
            col,
        }
    }

    /// The loaded configuration.
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// The storage manager (I/O statistics, traces, pool control).
    pub fn storage(&self) -> &StorageManager {
        &self.storage
    }

    /// Total on-disk footprint of this layout in bytes.
    pub fn disk_bytes(&self) -> u64 {
        self.storage.total_bytes()
    }

    /// Empties the buffer pool so the next execution runs cold.
    pub fn make_cold(&self) {
        self.storage.clear_pool();
    }

    /// Executes a raw logical plan (no timing), returning result rows.
    pub fn execute_plan(&self, plan: &Plan) -> Vec<Vec<u64>> {
        match self.config.engine {
            EngineKind::Row => self.row.as_ref().expect("row engine loaded").execute(plan),
            EngineKind::Column => self
                .col
                .as_ref()
                .expect("column engine loaded")
                .execute(plan)
                .to_rows(),
        }
    }

    /// Builds and executes benchmark query `q`, measuring user/real time
    /// and I/O. Whether the run is cold or hot depends on the pool state —
    /// use [`RdfStore::make_cold`] or prior executions to set it up.
    pub fn run_query(&self, q: QueryId, ctx: &QueryContext) -> QueryRun {
        let plan = build_plan(q, self.config.layout.scheme(), ctx);
        self.run_plan(&plan)
    }

    /// Executes an arbitrary plan under the measurement protocol.
    pub fn run_plan(&self, plan: &Plan) -> QueryRun {
        let io_before = self.storage.stats();
        let start = Instant::now();
        let rows = self.execute_plan(plan);
        let user_seconds = start.elapsed().as_secs_f64();
        let io = self.storage.stats().since(&io_before);
        QueryRun {
            rows,
            user_seconds,
            real_seconds: user_seconds + io.io_seconds,
            io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swans_datagen::{generate, BartonConfig};
    use swans_plan::naive;

    fn dataset() -> Dataset {
        generate(&BartonConfig {
            scale: 0.0005, // ~25k triples
            seed: 21,
            n_properties: 60,
        })
    }

    /// All six (engine × layout) configurations return identical results
    /// for every benchmark query — the central correctness invariant of
    /// the reproduction.
    #[test]
    fn all_configurations_agree() {
        let ds = dataset();
        let ctx = QueryContext::from_dataset(&ds, 28);
        let configs = [
            StoreConfig::row(Layout::TripleStore(SortOrder::Spo)),
            StoreConfig::row(Layout::TripleStore(SortOrder::Pso)),
            StoreConfig::row(Layout::VerticallyPartitioned),
            StoreConfig::column(Layout::TripleStore(SortOrder::Spo)),
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
            StoreConfig::column(Layout::VerticallyPartitioned),
        ];
        let stores: Vec<RdfStore> =
            configs.iter().map(|c| RdfStore::load(&ds, c.clone())).collect();
        for q in QueryId::ALL {
            let reference = crate::normalize_result(
                q,
                naive::execute(
                    &build_plan(q, Scheme::TripleStore, &ctx),
                    &ds.triples,
                ),
            );
            for store in &stores {
                let got = crate::normalize_result(q, store.run_query(q, &ctx).rows);
                assert_eq!(
                    got,
                    reference,
                    "{} disagrees on {q}",
                    store.config().label()
                );
            }
        }
    }

    #[test]
    fn cold_reads_more_than_hot() {
        let ds = dataset();
        let ctx = QueryContext::from_dataset(&ds, 28);
        let store = RdfStore::load(&ds, StoreConfig::column(Layout::VerticallyPartitioned));
        store.make_cold();
        let cold = store.run_query(QueryId::Q2, &ctx);
        let hot = store.run_query(QueryId::Q2, &ctx);
        assert!(cold.io.bytes_read > 0);
        assert_eq!(hot.io.bytes_read, 0, "hot run must be I/O-free");
        assert!(cold.real_seconds > hot.user_seconds);
        assert_eq!(
            crate::normalize_result(QueryId::Q2, cold.rows),
            crate::normalize_result(QueryId::Q2, hot.rows),
        );
    }

    #[test]
    fn triple_store_cold_reads_more_than_vp_on_column_engine() {
        let ds = dataset();
        let ctx = QueryContext::from_dataset(&ds, 28);
        let tri = RdfStore::load(
            &ds,
            StoreConfig::column(Layout::TripleStore(SortOrder::Pso)),
        );
        let vp = RdfStore::load(&ds, StoreConfig::column(Layout::VerticallyPartitioned));
        tri.make_cold();
        vp.make_cold();
        // q1 touches only the <type> data: VP reads one table, the triple
        // store reads whole columns (§4.3's explanation).
        let t = tri.run_query(QueryId::Q1, &ctx);
        let v = vp.run_query(QueryId::Q1, &ctx);
        assert!(
            v.io.bytes_read < t.io.bytes_read,
            "VP {}B vs triple {}B",
            v.io.bytes_read,
            t.io.bytes_read
        );
    }

    #[test]
    fn disk_footprint_reported() {
        let ds = dataset();
        let store = RdfStore::load(&ds, StoreConfig::row(Layout::TripleStore(SortOrder::Pso)));
        // triples + 5 secondaries: at least arity*8*n bytes.
        assert!(store.disk_bytes() > ds.len() as u64 * 24);
    }
}
